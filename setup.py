"""Setup shim: enables legacy editable installs where the `wheel` package
is unavailable (offline environments).  All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
