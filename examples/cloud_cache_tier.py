#!/usr/bin/env python3
"""The paper's motivating scenario (§2.1-2.2): a web service with a
Memcached caching layer in front of a database, under diurnal traffic.

Uses the functional key-value cluster to measure hit rates and database
offload, then sizes the caching tier as commodity servers vs Mercury
vs Iridium to show the floor-space argument.

Run:  python examples/cloud_cache_tier.py
"""

from repro import ServerDesign, iridium_stack, mercury_stack
from repro.kvstore import MemcachedCluster
from repro.sim.rng import make_rng
from repro.units import GB, MB
from repro.workloads import NETFLIX_LIKE, WorkloadGenerator, WorkloadSpec
from repro.workloads.distributions import ETC_VALUE_SIZES


def run_cache_layer() -> None:
    """Figure 1b's three-tier flow: read-through cache over a database."""
    cluster = MemcachedCluster(
        node_names=[f"mc{i}" for i in range(8)],
        memory_per_node_bytes=64 * MB,
    )
    spec = WorkloadSpec(
        name="web-reads",
        get_fraction=1.0,
        key_population=200_000,
        key_skew=0.99,
        value_sizes=ETC_VALUE_SIZES,
    )
    generator = WorkloadGenerator(spec, seed=7)

    database_reads = 0
    requests = 60_000
    for request in generator.stream(requests):
        if cluster.get(request.key) is None:
            # Cache miss: the web tier reads the database and populates
            # the cache for future readers (the cache "does not fill
            # itself", §2.3).
            database_reads += 1
            cluster.set(request.key, b"x" * request.value_bytes)

    hit_rate = cluster.hit_rate()
    print(f"Caching layer: {requests:,} reads, hit rate {hit_rate:.1%}")
    print(f"Database saw only {database_reads:,} reads "
          f"({database_reads / requests:.1%} of traffic)")
    print(f"Cluster holds {cluster.item_count():,} items across "
          f"{len(cluster.node_names)} nodes "
          f"({cluster.total_capacity_bytes / MB:.0f} MB aggregate)")


def size_the_tier() -> None:
    """How much rack space does a 28 TB cache tier need (the 2008
    Facebook number from §2.3) in each server technology?"""
    target_tb = 28.0
    commodity_gb_per_server = 128.0  # the Bags baseline box
    mercury = ServerDesign(stack=mercury_stack(32))
    iridium = ServerDesign(stack=iridium_stack(32))

    commodity_servers = target_tb * 1024 / commodity_gb_per_server
    mercury_servers = target_tb * 1024 / mercury.density_gb
    iridium_servers = target_tb * 1024 / iridium.density_gb
    print(f"\nSizing a {target_tb:.0f} TB cache tier (1.5U servers):")
    print(f"  commodity (128 GB each): {commodity_servers:6.0f} servers")
    print(f"  Mercury-32 ({mercury.density_gb:.0f} GB): {mercury_servers:6.0f} servers")
    print(f"  Iridium-32 ({iridium.density_gb:.0f} GB): {iridium_servers:6.0f} servers")


def diurnal_economics() -> None:
    """§2.2: front-ends scale with traffic; the cache tier cannot."""
    traffic = NETFLIX_LIKE
    per_front_end = 20_000.0
    peak = traffic.servers_needed(13, per_front_end)
    trough = traffic.servers_needed(1, per_front_end)
    print(f"\nDiurnal traffic: front-ends scale {trough} -> {peak} over a day,")
    print(f"but the stateful cache tier is provisioned for peak around the "
          f"clock;\n{traffic.stranded_capacity_fraction():.0%} of its "
          f"peak capacity is idle on average -> density, not elasticity,\n"
          f"is what cuts its footprint.")


def main() -> None:
    rng = make_rng("example", 0)
    del rng  # determinism is in the generator; nothing random here
    run_cache_layer()
    size_the_tier()
    diurnal_economics()


if __name__ == "__main__":
    main()
