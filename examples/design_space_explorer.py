#!/usr/bin/env python3
"""Design-space exploration: sweep every Mercury/Iridium configuration
and find the winners under different objectives (the decision the paper's
Table 3 / Figs. 7-8 support).

Run:  python examples/design_space_explorer.py
"""

from repro import OperatingPoint, best_config, design_space, evaluate_server
from repro.analysis import render_table
from repro.units import GB


def main() -> None:
    point = OperatingPoint(verb="GET", value_bytes=64)

    rows = []
    for design in design_space():
        metrics = evaluate_server(design, point)
        rows.append(
            [
                metrics.name,
                metrics.stacks,
                design.binding_constraint,
                metrics.density_gb,
                round(metrics.power_w),
                round(metrics.tps / 1e6, 2),
                round(metrics.ktps_per_watt, 1),
            ]
        )
    print(
        render_table(
            ["Config", "Stacks", "Limit", "GB", "W", "MTPS", "KTPS/W"],
            rows,
            caption="All 36 design points at 64 B GETs",
        )
    )

    print("\nWinners by objective:")
    for label, objective in (
        ("throughput", lambda m: m.tps),
        ("efficiency (TPS/W)", lambda m: m.tps_per_watt),
        ("density (GB)", lambda m: m.density_gb),
        ("accessibility (TPS/GB)", lambda m: m.tps_per_gb),
    ):
        design, metrics = best_config(objective, point)
        print(f"  best {label:24s}: {metrics.name:28s} "
              f"{metrics.tps / 1e6:6.1f} MTPS, {metrics.density_gb:6.0f} GB, "
              f"{metrics.ktps_per_watt:5.1f} KTPS/W")

    # The paper's design rule of thumb, §6.3: Mercury-32 if performance is
    # primary, Iridium-32 if density is primary.
    throughput_winner, _ = best_config(lambda m: m.tps, point)
    density_winner, _ = best_config(lambda m: m.density_gb * 1e9 + m.tps, point)
    print(f"\nPerformance-first choice: {throughput_winner.stack.name}")
    print(f"Density-first choice:     {density_winner.stack.name}")


if __name__ == "__main__":
    main()
