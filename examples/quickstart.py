#!/usr/bin/env python3
"""Quickstart: build a Mercury server, run it at the paper's operating
point, and compare it against the best commodity baseline.

Run:  python examples/quickstart.py
"""

from repro import (
    MEMCACHED_BAGS,
    OperatingPoint,
    ServerDesign,
    evaluate_server,
    iridium_stack,
    mercury_stack,
    thermal_report,
)


def main() -> None:
    # A 1.5U server full of Mercury-32 stacks (32 Cortex-A7s over 4 GB of
    # 3D DRAM per stack), packed under the paper's power/area/port limits.
    mercury = ServerDesign(stack=mercury_stack(cores=32))
    print(f"Mercury-32 server: {mercury.num_stacks} stacks "
          f"({mercury.total_cores} cores, {mercury.density_gb:.0f} GB DRAM), "
          f"limited by {mercury.binding_constraint}")

    # Evaluate it serving 64 B GETs — the paper's headline workload.
    point = OperatingPoint(verb="GET", value_bytes=64)
    metrics = evaluate_server(mercury, point)
    print(f"  {metrics.tps / 1e6:.1f} MTPS at {metrics.power_w:.0f} W "
          f"-> {metrics.ktps_per_watt:.1f} KTPS/W, {metrics.ktps_per_gb:.1f} KTPS/GB")

    # The flash-based Iridium trades throughput for density.
    iridium = ServerDesign(stack=iridium_stack(cores=32))
    imetrics = evaluate_server(iridium, point)
    print(f"Iridium-32 server: {iridium.num_stacks} stacks, "
          f"{iridium.density_gb / 1024:.1f} TB of flash")
    print(f"  {imetrics.tps / 1e6:.1f} MTPS at {imetrics.power_w:.0f} W "
          f"-> {imetrics.ktps_per_watt:.1f} KTPS/W")

    # How do they compare with an optimised Memcached on a Xeon box?
    bags = MEMCACHED_BAGS
    print(f"\nBaseline ({bags.name}): {bags.tps / 1e6:.2f} MTPS at "
          f"{bags.power_w:.0f} W with {bags.memory_gb:.0f} GB")
    print(f"Mercury wins: {metrics.tps / bags.tps:.1f}x TPS, "
          f"{metrics.tps_per_watt / bags.tps_per_watt:.1f}x TPS/W, "
          f"{metrics.density_gb / bags.memory_gb:.1f}x density")
    print(f"Iridium wins: {imetrics.density_gb / bags.memory_gb:.1f}x density "
          f"at {imetrics.tps / bags.tps:.1f}x TPS")

    # And it cools passively: the TDP is spread over ~96 small packages.
    thermal = thermal_report(mercury)
    print(f"\nThermals: {thermal.per_stack_tdp_w:.1f} W per stack "
          f"({thermal.power_density_w_per_cm2:.2f} W/cm^2) -> "
          f"passively coolable: {thermal.passively_coolable}")


if __name__ == "__main__":
    main()
