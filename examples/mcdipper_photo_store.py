#!/usr/bin/env python3
"""McDipper-style photo serving (§3.5, §4.2): a very large footprint,
moderate-rate workload on Iridium, exercising the flash stack end to end
— FTL writes with garbage collection, then read-mostly serving.

Run:  python examples/mcdipper_photo_store.py
"""

from repro import OperatingPoint, ServerDesign, evaluate_server, iridium_stack, mercury_stack
from repro.memory import FlashDevice, FlashTranslationLayer
from repro.sim.rng import make_rng
from repro.units import GB, KB, MB


def ftl_wear_study() -> None:
    """Write a photo corpus into a (scaled-down) flash device, overwrite a
    slice of it, and report GC behaviour — the write-amplification the
    Iridium PUT model charges."""
    device = FlashDevice(
        name="scaled-pbics",
        capacity_bytes=64 * MB,
        page_bytes=8 * KB,
        pages_per_block=64,
        channels=4,
    )
    ftl = FlashTranslationLayer(device, overprovision=0.10)
    rng = make_rng("photos", 3)

    # Initial fill to ~85% of logical capacity.
    live_pages = int(ftl.logical_pages * 0.85)
    for page in range(live_pages):
        ftl.write(page)
    # Churn: photo updates/deletes re-write a random 40% of pages.
    for _ in range(int(live_pages * 0.4)):
        ftl.write(rng.randrange(live_pages))

    lo, hi = ftl.wear_spread()
    print("FTL churn study (scaled p-BiCS device):")
    print(f"  host writes {ftl.stats.host_writes:,}, GC moves "
          f"{ftl.stats.gc_page_moves:,}, erases {ftl.stats.erases:,}")
    print(f"  write amplification {ftl.stats.write_amplification:.2f} "
          f"(model charges {1.3:.1f} at lighter steady-state churn)")
    print(f"  wear spread: min {lo} / max {hi} erases per block")


def photo_tier_sizing() -> None:
    """Serve a 1.5 PB photo cache at 20 KTPS/server-class rates: Iridium's
    sweet spot (huge footprint, moderate request rate)."""
    corpus_tb = 1536.0  # 1.5 PB of photo derivatives
    mercury = ServerDesign(stack=mercury_stack(32))
    iridium = ServerDesign(stack=iridium_stack(32))

    # Photos average ~64 KB; check both architectures at that size.
    point = OperatingPoint(verb="GET", value_bytes=64 * KB)
    m = evaluate_server(mercury, point)
    i = evaluate_server(iridium, point)

    servers_m = corpus_tb * 1024 / m.density_gb
    servers_i = corpus_tb * 1024 / i.density_gb
    print(f"\nServing a {corpus_tb / 1024:.1f} PB photo cache (64 KB GETs):")
    print(f"  Mercury-32: {servers_m:6.0f} servers, "
          f"{m.tps / 1e3:.0f} KTPS each at {m.power_w:.0f} W")
    print(f"  Iridium-32: {servers_i:6.0f} servers, "
          f"{i.tps / 1e3:.0f} KTPS each at {i.power_w:.0f} W")
    rack_units = 1.5
    print(f"  rack space: {servers_m * rack_units:.0f}U vs "
          f"{servers_i * rack_units:.0f}U "
          f"({servers_m / servers_i:.1f}x reduction with flash)")
    fleet_tps_i = servers_i * i.tps
    print(f"  the Iridium fleet still serves {fleet_tps_i / 1e6:.0f} MTPS "
          f"aggregate - ample for a moderate-rate photo tier")


def main() -> None:
    ftl_wear_study()
    photo_tier_sizing()


if __name__ == "__main__":
    main()
