#!/usr/bin/env python3
"""A day in the life of a cache tier (§2.2): provision Mercury for the
Netflix-style daily peak, then watch utilization, SLA, and energy hour
by hour — quantifying why density, not elasticity, shrinks the stateful
tier's footprint.

Run:  python examples/day_in_the_life.py
"""

from repro.analysis.ascii_chart import bar_chart
from repro.analysis.diurnal import day_in_the_life, fleet_for_peak
from repro.baselines import MEMCACHED_BAGS
from repro.core import ServerDesign, mercury_stack
from repro.workloads.diurnal import DiurnalTraffic


def main() -> None:
    traffic = DiurnalTraffic(peak_rate_hz=60e6, trough_fraction=0.3)
    design = ServerDesign(stack=mercury_stack(32))
    servers = fleet_for_peak(design, traffic, utilization_target=0.75)
    report = day_in_the_life(design, servers, traffic)

    print(f"Fleet: {servers} x {report.server_name} "
          f"({servers * 1.5:.1f}U of rack space)\n")
    print(bar_chart(
        [f"{state.hour:02d}:00" for state in report.hours],
        [state.utilization * 100 for state in report.hours],
        width=40,
        title="Hourly utilization (%)",
    ))
    print(f"\npeak utilization  {report.peak_utilization:.0%}")
    print(f"mean utilization  {report.mean_utilization:.0%}")
    print(f"stranded capacity {report.stranded_fraction:.0%} "
          f"(idle on average; cannot be powered off — the tier is stateful)")
    print(f"worst-hour sub-ms SLA {report.worst_sla:.3f}")
    print(f"energy for the day   {report.energy_kwh:.0f} kWh")

    # The same peak on commodity Bags servers, for the footprint contrast.
    import math

    bags_servers = math.ceil(traffic.peak_rate_hz / (MEMCACHED_BAGS.tps * 0.75))
    print(f"\nSame peak on commodity ({MEMCACHED_BAGS.name}) servers: "
          f"{bags_servers} boxes = {bags_servers * 1.5:.0f}U "
          f"vs Mercury's {servers * 1.5:.1f}U "
          f"({bags_servers / servers:.0f}x the rack space)")


if __name__ == "__main__":
    main()
