#!/usr/bin/env python3
"""SLA study: how hard can a Mercury or Iridium stack be driven while a
majority of requests still finish within 1 ms (§6.2's requirement)?

Cross-checks the analytic M/G/1 model against the discrete-event
simulator on the same configuration.

Run:  python examples/sla_latency_study.py
"""

from repro import iridium_stack, mercury_stack
from repro.sim import StackSimulation, sla_fraction_met

SLA_DEADLINE_S = 1e-3


def study(stack, label: str, loads=(0.3, 0.6, 0.9)) -> None:
    model = stack.latency_model()
    service_s = model.request_timing("GET", 64).total_s
    capacity_hz = stack.cores / service_s
    print(f"\n{label}: per-request service {service_s * 1e6:.0f} us, "
          f"stack capacity {capacity_hz / 1e3:.1f} KTPS")
    for load in loads:
        rate = load * capacity_hz
        per_core_rate = rate / stack.cores
        analytic = sla_fraction_met(per_core_rate, service_s, SLA_DEADLINE_S)
        sim = StackSimulation(
            cores=stack.cores, service_time=lambda: service_s, seed=1
        ).run(offered_rate_hz=rate, duration_s=2_000 * service_s,
              warmup_s=200 * service_s)
        print(f"  load {load:.0%}: sub-ms fraction analytic {analytic:.3f}, "
              f"simulated {sim.sla_fraction(SLA_DEADLINE_S):.3f} "
              f"(mean RTT {sim.mean_rtt * 1e6:.0f} us)")


def main() -> None:
    study(mercury_stack(8), "Mercury-8 (A7, 10 ns DRAM)")
    study(iridium_stack(8), "Iridium-8 (A7, 10 us flash)")

    # Where does Iridium stop meeting the SLA for a majority of requests?
    stack = iridium_stack(8)
    service_s = stack.latency_model().request_timing("GET", 64).total_s
    sim = StackSimulation(cores=stack.cores, service_time=lambda: service_s, seed=2)
    max_rate = sim.saturation_throughput(
        start_rate_hz=1_000.0,
        duration_s=1_000 * service_s,
        sla_deadline_s=SLA_DEADLINE_S,
        sla_target=0.5,
    )
    print(f"\nIridium-8 sustains ~{max_rate / 1e3:.1f} KTPS per stack with a "
          f"majority of requests under 1 ms")


if __name__ == "__main__":
    main()
