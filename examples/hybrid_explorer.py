#!/usr/bin/env python3
"""Explore the hybrid (DRAM-fronted flash) design space between Mercury
and Iridium, with hot-tier hit rates from Che's approximation (validated
against the real LRU in the test suite).

Run:  python examples/hybrid_explorer.py
"""

from repro.analysis import bar_chart, render_table
from repro.core.hybrid import HybridStack, hybrid_sweep
from repro.workloads.che import cache_items_for_hit_rate, zipf_popularities


def sweep() -> None:
    rows = hybrid_sweep(cores=32, value_bytes=64)
    print(
        render_table(
            ["DRAM layers", "GB", "hot hit", "GET KTPS/core", "PUT KTPS/core"],
            [
                [int(r["dram_layers"]), round(r["capacity_gb"], 1),
                 f"{r['hot_hit_rate']:.0%}", round(r["get_ktps_per_core"], 2),
                 round(r["put_ktps_per_core"], 2)]
                for r in rows
            ],
            caption="Hybrid design space: 32 A7 cores, zipf-0.99 64B GETs",
        )
    )
    print()
    print(bar_chart(
        [f"{int(r['dram_layers'])} DRAM layers" for r in rows],
        [r["get_ktps_per_core"] for r in rows],
        width=40,
        title="GET KTPS per core vs DRAM layers (0 = Iridium, 8 = Mercury)",
    ))


def sizing_with_che() -> None:
    """How big must a hot tier be for a target hit rate?"""
    population = 500_000
    p = zipf_popularities(population, 0.99)
    print("\nHot-tier sizing (zipf 0.99, 500K objects, Che's approximation):")
    for target in (0.5, 0.7, 0.9):
        items = cache_items_for_hit_rate(p, target)
        print(f"  {target:.0%} hit rate needs the hottest "
              f"{items / population:6.2%} of objects resident")


def recommendation() -> None:
    one = HybridStack(cores=32, dram_layers=1)
    print(
        f"\nSweet spot: {one.name} — {one.capacity_bytes / 2**30:.1f} GB "
        f"per stack ({one.hot_tier_fraction:.1%} of it DRAM), hot-tier hit "
        f"rate {one.hot_hit_rate():.0%},\nGET rate "
        f"{one.get_tps(64) / 1e3:.1f} KTPS/core vs Mercury's "
        f"{HybridStack(32, 8).get_tps(64) / 1e3:.1f} and Iridium's "
        f"{HybridStack(32, 0).get_tps(64) / 1e3:.1f}."
    )


def main() -> None:
    sweep()
    sizing_with_che()
    recommendation()


if __name__ == "__main__":
    main()
