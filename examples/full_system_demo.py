#!/usr/bin/env python3
"""Full-system co-simulation demo: a Mercury stack running *real*
Memcached instances (hash table, slabs, LRU, wire protocol) under a
zipf workload, with the timing model charging simulated time — the
library's closest analogue to the paper's gem5 runs.

Run:  python examples/full_system_demo.py
"""

from repro.core import mercury_stack
from repro.sim.full_system import FullSystemStack
from repro.sim.run_options import RunOptions
from repro.units import MB
from repro.workloads import WorkloadSpec
from repro.workloads.distributions import ETC_VALUE_SIZES


def main() -> None:
    stack = mercury_stack(8)
    system = FullSystemStack(stack=stack, memory_per_core_bytes=16 * MB, seed=42)
    workload = WorkloadSpec(
        name="etc-like",
        get_fraction=0.9,
        key_population=60_000,
        key_skew=0.99,
        value_sizes=ETC_VALUE_SIZES,
    )

    capacity = stack.cores * system.model.tps("GET", 256)
    print(f"Mercury-8 full-system run: ~{capacity / 1e3:.0f} KTPS capacity "
          f"(at 256 B GETs)\n")
    for load in (0.3, 0.6, 0.85):
        results = system.run(
            workload,
            RunOptions(
                offered_rate_hz=load * capacity,
                duration_s=0.4,
                warmup_requests=30_000,
            ),
        )
        breakdown = results.breakdown_fractions()
        print(f"load {load:.0%}: {results.throughput_hz / 1e3:6.1f} KTPS, "
              f"mean RTT {results.mean_rtt * 1e6:5.0f} us, "
              f"hit rate {results.hit_rate:5.1%}, "
              f"sub-ms {results.sla_fraction():.3f}")
        print(f"          breakdown: network {breakdown['network']:.0%} / "
              f"memcached {breakdown['memcached']:.0%} / "
              f"hash {breakdown['hash']:.0%}; "
              f"core imbalance {results.core_load_imbalance():.2f}x")

    print(
        "\nThe measured breakdown matches Fig. 4's analytic split, and the "
        "measured throughput tracks\nthe offered load until queueing sets "
        "in — the full-system check behind the paper's\nTPS = 1/RTT "
        "methodology."
    )


if __name__ == "__main__":
    main()
