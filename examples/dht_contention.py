#!/usr/bin/env python3
"""DHT hot-spot study (§3.8): increasing the number of physical nodes
shrinks each node's arc of the consistent-hash ring, reducing resource
contention — the property Mercury/Iridium get for free from their core
counts.

Run:  python examples/dht_contention.py
"""

from repro.kvstore import ConsistentHashRing
from repro.sim.rng import make_rng
from repro.workloads.distributions import ZipfKeys


def hottest_node_share(physical_nodes: int, vnodes: int, requests: int = 15_000) -> float:
    ring = ConsistentHashRing(
        (f"node{i}" for i in range(physical_nodes)), vnodes=vnodes
    )
    rng = make_rng("dht", physical_nodes * 1000 + vnodes)
    keys = ZipfKeys(population=150_000, skew=0.99)
    sample = (keys.key(rng) for _ in range(requests))
    return ring.hottest_fraction(sample)


def main() -> None:
    print("Share of requests absorbed by the hottest node")
    print("(zipf-0.99 keys; lower is better)\n")
    print(f"{'physical nodes':>15s}  {'v=1':>7s}  {'v=16':>7s}  {'v=100':>7s}")
    for nodes in (6, 16, 96, 768):
        shares = [hottest_node_share(nodes, v) for v in (1, 16, 100)]
        fair = 1.0 / nodes
        print(f"{nodes:>15d}  " + "  ".join(f"{s:7.3%}" for s in shares)
              + f"   (fair share {fair:.3%})")
    print(
        "\nA commodity box exposes ~6-16 Memcached nodes per 1.5U; a "
        "Mercury-32 server exposes ~3,000.\nMore physical nodes -> smaller "
        "arcs -> the hottest node's overload factor shrinks, even before\n"
        "virtual nodes are added (§3.8's argument, reproduced)."
    )


if __name__ == "__main__":
    main()
