#!/usr/bin/env python3
"""Capacity planning with dollars: size a key-value tier three ways
(commodity Xeon, Mercury, Iridium), check flash endurance, and report
TCO — the paper's §2.2 economics argument made executable.

Run:  python examples/capacity_planner.py
"""

from repro import MEMCACHED_BAGS, OperatingPoint, ServerDesign, iridium_stack, mercury_stack
from repro.analysis import render_table
from repro.core.provisioning import (
    Demand,
    candidate_from_baseline,
    candidate_from_design,
    cheapest_plan,
    plan_fleet,
)
from repro.memory import PBICS_19GB
from repro.memory.endurance import endurance_report, max_put_rate_for_lifetime


def plan_tier(name: str, demand: Demand) -> None:
    point = OperatingPoint(value_bytes=demand.value_bytes)
    candidates = [
        candidate_from_baseline(MEMCACHED_BAGS, capex_usd=6_000),
        candidate_from_design(ServerDesign(stack=mercury_stack(32)), 8_000, point),
        candidate_from_design(ServerDesign(stack=iridium_stack(32)), 9_000, point),
    ]
    rows = []
    for candidate in candidates:
        plan = plan_fleet(candidate, demand)
        rows.append(
            [
                candidate.name,
                plan.servers,
                plan.binding,
                round(plan.tier_rack_units),
                round(plan.cost.tco_usd / 1e3),
                round(plan.cost.usd_per_gb, 2),
            ]
        )
    print(
        render_table(
            ["Server", "Count", "Bound by", "U", "3yr TCO (k$)", "$/GB"],
            rows,
            caption=(
                f"{name}: {demand.dataset_gb / 1024:.1f} TB, "
                f"{demand.peak_tps / 1e6:.0f} MTPS peak, "
                f"{demand.value_bytes} B values"
            ),
        )
    )
    best = cheapest_plan(candidates, demand)
    print(f"-> cheapest: {best.candidate.name} ({best.servers} servers)\n")


def endurance_check() -> None:
    """Iridium tiers must also survive their write load (MLC flash)."""
    print("Iridium endurance check (per 19.8 GB stack):")
    for puts, size in ((2.0, 64 * 1024), (100.0, 1024), (2_000.0, 1024)):
        report = endurance_report(PBICS_19GB, put_rate_hz=puts, value_bytes=size)
        verdict = "OK for 3yr" if report.outlives(3.0) else "WEARS OUT"
        print(
            f"  {puts:7.0f} PUT/s of {size:6d} B -> "
            f"{report.drive_writes_per_day:6.2f} DWPD, "
            f"lifetime {report.lifetime_years:7.1f} yr   [{verdict}]"
        )
    ceiling = max_put_rate_for_lifetime(PBICS_19GB, years=3.0, value_bytes=1024)
    print(f"  3-year ceiling at 1 KB values: {ceiling:.0f} PUT/s per stack\n")


def main() -> None:
    # A hot session cache: modest footprint, very high request rate —
    # the throughput-bound regime where Mercury is the right tool.
    plan_tier(
        "Hot cache tier",
        Demand(dataset_gb=2 * 1024, peak_tps=300e6, value_bytes=64),
    )
    # A McDipper-style photo pool: petabyte scale, moderate rate.
    plan_tier(
        "Photo cache tier",
        Demand(dataset_gb=1_536 * 1024, peak_tps=10e6, value_bytes=64 * 1024),
    )
    endurance_check()


if __name__ == "__main__":
    main()
