#!/usr/bin/env python3
"""Node replacement, end to end: kill a cache node, watch the database
load spike, and compute how long until the replacement is warm — the
operational consequence of Memcached's no-persistence failure model
(§2.3), with warm-up times from the IRM transient model (validated
against the functional store in the tests).

Run:  python examples/node_replacement.py
"""

from repro.kvstore import MemcachedCluster
from repro.units import MB
from repro.workloads import (
    WorkloadGenerator,
    WorkloadSpec,
    requests_to_hit_rate,
    warmup_trajectory,
    zipf_popularities,
)


def live_failure_demo() -> None:
    cluster = MemcachedCluster(
        [f"mc{i}" for i in range(8)], memory_per_node_bytes=16 * MB
    )
    spec = WorkloadSpec(name="site", get_fraction=1.0, key_population=40_000)
    generator = WorkloadGenerator(spec, seed=21)

    def run_window(requests: int) -> float:
        """Read-through window; returns the DB read fraction."""
        db_reads = 0
        for request in generator.stream(requests):
            if cluster.get(request.key) is None:
                db_reads += 1
                cluster.set(request.key, b"x" * request.value_bytes)
        return db_reads / requests

    run_window(60_000)  # initial cold fill
    warm = run_window(20_000)
    print(f"steady state: {warm:.1%} of reads reach the database")
    cluster.kill_node("mc3")
    cluster.add_node("mc3b", 16 * MB)
    spike = run_window(10_000)
    recovered = run_window(40_000)
    print(f"node replaced: DB read fraction spikes to {spike:.1%}, "
          f"then recovers to {recovered:.1%}")


def analytic_warmup() -> None:
    population = 1_000_000
    p = zipf_popularities(population, 0.99)
    node_share_items = 120_000  # one node's shard capacity, in objects
    node_request_rate = 50_000.0  # GETs/s reaching the replacement node

    print("\nAnalytic warm-up of the replacement node (IRM transient):")
    for n, rate in warmup_trajectory(
        p, node_share_items, (10_000, 100_000, 1_000_000, 10_000_000)
    ):
        print(f"  after {n:>12,.0f} requests: hit rate {rate:6.1%}")
    to_warm = requests_to_hit_rate(p, node_share_items, 0.9)
    to_steady = requests_to_hit_rate(p, node_share_items, 0.99)
    print(f"  90% of steady state after {to_warm:,.0f} requests "
          f"({to_warm / node_request_rate:.0f} s at "
          f"{node_request_rate:,.0f} GET/s); 99% after "
          f"{to_steady:,.0f} ({to_steady / node_request_rate / 60:.1f} min)")
    print(
        "\nOperational takeaway: the hot head refills in seconds, the "
        "tail takes minutes — plan for\nelevated database load per "
        "replaced node.  A denser fleet (fewer, bigger nodes) loses a\n"
        "larger cache share per failure; Mercury's many small nodes "
        "(§3.8) localise the damage."
    )


def main() -> None:
    live_failure_demo()
    analytic_warmup()


if __name__ == "__main__":
    main()
