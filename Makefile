# Convenience targets for the repro library.

PYTHON ?= python

.PHONY: install test bench report examples telemetry-demo clean

install:
	pip install -e .[dev]

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

report:
	$(PYTHON) -m repro report --out report

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		$(PYTHON) $$script || exit 1; \
	done

telemetry-demo:
	PYTHONPATH=src $(PYTHON) -m repro telemetry --cores 8 --duration 0.2 \
		--out benchmarks/out

clean:
	rm -rf report benchmarks/out .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
