"""Tests for Che's approximation, validated against the real LRU."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.kvstore import Item, LruList
from repro.sim.rng import make_rng
from repro.workloads.che import (
    cache_items_for_hit_rate,
    characteristic_time,
    lru_hit_rate,
    zipf_lru_hit_rate,
    zipf_popularities,
)
from repro.workloads.distributions import ZipfKeys


def simulate_lru_hit_rate(
    population: int, skew: float, cache_items: int, requests: int, seed: int = 0
) -> float:
    """Ground truth: drive a real LRU list with a Zipf stream."""
    lru = LruList()
    zipf = ZipfKeys(population, skew)
    rng = make_rng("che-validate", seed)
    hits = 0
    for _ in range(requests):
        key = zipf.key(rng)
        if key in lru:
            hits += 1
            lru.touch(key)
        else:
            if len(lru) >= cache_items:
                lru.pop_victim()
            lru.insert(Item(key=key, value=b""))
    return hits / requests


class TestPopularities:
    def test_zipf_sums_to_one(self):
        p = zipf_popularities(1000, 0.99)
        assert p.sum() == pytest.approx(1.0)
        assert p[0] > p[1] > p[-1]

    def test_zero_skew_is_uniform(self):
        p = zipf_popularities(100, 0.0)
        assert np.allclose(p, 0.01)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            zipf_popularities(0, 1.0)
        with pytest.raises(ConfigurationError):
            zipf_popularities(10, -1.0)


class TestCharacteristicTime:
    def test_occupancy_at_t_equals_cache_size(self):
        p = zipf_popularities(10_000, 0.99)
        cache = 500
        t = characteristic_time(p, cache)
        occupancy = np.sum(-np.expm1(-p * t))
        assert occupancy == pytest.approx(cache, rel=1e-6)

    def test_t_grows_with_cache(self):
        p = zipf_popularities(10_000, 0.99)
        assert characteristic_time(p, 2_000) > characteristic_time(p, 200)

    def test_validation(self):
        p = zipf_popularities(100, 0.99)
        with pytest.raises(ConfigurationError):
            characteristic_time(p, 0)
        with pytest.raises(ConfigurationError):
            characteristic_time(p, 100)
        with pytest.raises(ConfigurationError):
            characteristic_time(np.array([0.5, 0.6]), 1)  # not normalised


class TestHitRate:
    def test_full_cache_hits_everything(self):
        p = zipf_popularities(100, 0.99)
        assert lru_hit_rate(p, 100) == 1.0

    def test_hit_rate_monotone_in_cache_size(self):
        p = zipf_popularities(50_000, 0.99)
        rates = [lru_hit_rate(p, c) for c in (100, 1_000, 10_000)]
        assert rates == sorted(rates)

    def test_heavier_skew_means_higher_hit_rate(self):
        for cache in (100, 1_000):
            light = lru_hit_rate(zipf_popularities(50_000, 0.6), cache)
            heavy = lru_hit_rate(zipf_popularities(50_000, 1.1), cache)
            assert heavy > light

    def test_matches_real_lru_simulation(self):
        # The headline validation: Che vs the kvstore LRU within a few
        # points across cache sizes.
        population, skew = 5_000, 0.99
        p = zipf_popularities(population, skew)
        for cache in (100, 500, 1_500):
            analytic = lru_hit_rate(p, cache)
            simulated = simulate_lru_hit_rate(
                population, skew, cache, requests=40_000
            )
            assert analytic == pytest.approx(simulated, abs=0.04)

    @given(
        cache=st.integers(min_value=10, max_value=900),
        skew=st.floats(min_value=0.3, max_value=1.3),
    )
    @settings(max_examples=25, deadline=None)
    def test_hit_rate_always_in_unit_interval(self, cache, skew):
        p = zipf_popularities(1_000, skew)
        assert 0.0 < lru_hit_rate(p, cache) < 1.0


class TestZipfHelper:
    def test_fraction_endpoints(self):
        assert zipf_lru_hit_rate(0.0) == 0.0
        assert zipf_lru_hit_rate(1.0) == 1.0

    def test_small_hot_tier_is_effective(self):
        # The hybrid-stack premise: ~3% of a zipf-0.99 set absorbs the
        # majority of the traffic.
        assert zipf_lru_hit_rate(0.03, skew=0.99, population=200_000) > 0.5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            zipf_lru_hit_rate(1.5)


class TestSizingInverse:
    def test_inverse_consistency(self):
        p = zipf_popularities(20_000, 0.99)
        cache = cache_items_for_hit_rate(p, 0.7)
        assert lru_hit_rate(p, cache) == pytest.approx(0.7, abs=0.01)

    def test_higher_target_needs_bigger_cache(self):
        p = zipf_popularities(20_000, 0.99)
        assert cache_items_for_hit_rate(p, 0.9) > cache_items_for_hit_rate(p, 0.5)

    def test_validation(self):
        p = zipf_popularities(100, 0.99)
        with pytest.raises(ConfigurationError):
            cache_items_for_hit_rate(p, 1.0)
