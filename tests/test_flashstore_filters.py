"""Property-based tests for the partial-key cuckoo filter.

The tiered store's GET ≤ 1-flash-read-per-tier guarantee rests on two
filter invariants: *no false negatives ever* (a lost fingerprint would
turn a stored key into a wrong miss) and a bounded false-positive rate
(every FP is a wasted flash read charged to read amplification).  The
churn tests drive insert/delete/overwrite sequences — including failed
inserts, whose kick chains must roll back — and assert the membership
contract against a shadow dict.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.flashstore.filters import CuckooFilter

KEYS = st.binary(min_size=1, max_size=12)


class TestSizingAndValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            CuckooFilter(capacity=0)
        with pytest.raises(ConfigurationError):
            CuckooFilter(capacity=16, fingerprint_bits=2)
        with pytest.raises(ConfigurationError):
            CuckooFilter(capacity=16, slots_per_bucket=0)

    def test_buckets_are_a_power_of_two(self):
        for capacity in (1, 7, 64, 1000):
            f = CuckooFilter(capacity=capacity)
            assert f.bucket_count & (f.bucket_count - 1) == 0
            assert f.slot_count >= capacity

    def test_capacity_inserts_all_fit(self):
        """Sizing targets 84% occupancy, so `capacity` distinct keys
        must insert without a single kick-chain failure."""
        f = CuckooFilter(capacity=2_000, seed=1)
        for i in range(2_000):
            assert f.insert(b"key-%d" % i)
        assert f.failed_inserts == 0
        assert len(f) == 2_000
        assert f.load_factor <= 0.84 + 1e-9
        f.check_invariants()


class TestMembershipContract:
    @given(keys=st.lists(KEYS, max_size=60, unique=True))
    @settings(max_examples=60, deadline=None)
    def test_no_false_negatives_after_inserts(self, keys):
        """Every *successfully* inserted key stays reachable — a tiny
        filter may reject adversarial fingerprint pile-ups, but it must
        never lose what it accepted."""
        f = CuckooFilter(capacity=max(8, len(keys)), seed=3)
        held = [key for key in keys if f.insert(key, value=len(key))]
        for key in held:
            assert f.contains(key)
            assert len(key) in f.lookup(key)
        f.check_invariants()

    @given(
        keys=st.lists(KEYS, min_size=1, max_size=40, unique=True),
        drop_every=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=60, deadline=None)
    def test_no_false_negatives_under_delete_churn(self, keys, drop_every):
        f = CuckooFilter(capacity=max(8, len(keys)), seed=5)
        shadow = {
            key: i for i, key in enumerate(keys) if f.insert(key, value=i)
        }
        dropped = {}
        for i, key in enumerate(list(shadow)):
            if i % drop_every == 0:
                assert f.delete(key, value=shadow[key])
                dropped[key] = shadow.pop(key)
        for key, value in shadow.items():
            assert f.contains(key)
            assert value in f.lookup(key)
        for key, value in dropped.items():
            # Deleted fingerprints may still collide with live ones, but
            # the deleted *value* must be gone.
            assert value not in f.lookup(key)
        f.check_invariants()

    @given(seed=st.integers(min_value=0, max_value=7))
    @settings(max_examples=8, deadline=None)
    def test_failed_insert_rolls_back_the_kick_chain(self, seed):
        """Overfilling a tiny filter must fail eventually, and a failed
        insert must leave every previously held key reachable."""
        f = CuckooFilter(
            capacity=8, slots_per_bucket=2, max_kicks=8, seed=seed
        )
        held = []
        failed = False
        for i in range(10 * f.slot_count):
            key = b"churn-%d-%d" % (seed, i)
            if f.insert(key, value=i):
                held.append((key, i))
            else:
                failed = True
                break
        assert failed, "a 10x-overfilled filter must reject eventually"
        assert f.failed_inserts == 1
        for key, value in held:
            assert f.contains(key)
            assert value in f.lookup(key)
        f.check_invariants()

    def test_relocations_preserve_membership(self):
        """Force real cuckoo kicks (high occupancy) and re-verify every
        key afterwards — relocation must never strand a fingerprint."""
        f = CuckooFilter(capacity=4_000, seed=11)
        keys = [b"reloc-%d" % i for i in range(4_000)]
        for i, key in enumerate(keys):
            assert f.insert(key, value=i)
        assert f.kicks > 0, "occupancy this high must have kicked"
        for i, key in enumerate(keys):
            assert i in f.lookup(key)
        f.check_invariants()


class TestFalsePositiveRate:
    def test_measured_rate_tracks_the_model(self):
        f = CuckooFilter(capacity=4_000, fingerprint_bits=12, seed=7)
        for i in range(4_000):
            f.insert(b"member-%d" % i)
        probes = 20_000
        fps = sum(
            1 for i in range(probes) if f.contains(b"absent-%d" % i)
        )
        measured = fps / probes
        expected = f.expected_false_positive_rate
        assert expected > 0.0
        # Loose two-sided band: right order of magnitude, not exact.
        assert measured <= 4.0 * expected
        assert measured >= expected / 16.0

    def test_narrow_fingerprints_trade_memory_for_fp_rate(self):
        wide = CuckooFilter(capacity=1_000, fingerprint_bits=16, seed=2)
        narrow = CuckooFilter(capacity=1_000, fingerprint_bits=8, seed=2)
        for i in range(1_000):
            wide.insert(b"trade-%d" % i)
            narrow.insert(b"trade-%d" % i)
        assert narrow.fingerprint_bytes < wide.fingerprint_bytes
        assert (
            narrow.expected_false_positive_rate
            > wide.expected_false_positive_rate
        )
