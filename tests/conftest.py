"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.memory.flash import FlashDevice, FlashTiming
from repro.units import KB, MB


@pytest.fixture
def small_flash() -> FlashDevice:
    """A tiny flash device so FTL tests run fast."""
    return FlashDevice(
        name="test-flash",
        capacity_bytes=4 * MB,
        page_bytes=4 * KB,
        pages_per_block=16,
        channels=2,
        timing=FlashTiming(),
    )
