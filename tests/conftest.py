"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.memory.flash import FlashDevice, FlashTiming
from repro.units import KB, MB


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--regen-golden",
        action="store_true",
        default=False,
        help="rewrite tests/golden/*.json from current model output "
        "instead of comparing against it",
    )


@pytest.fixture
def regen_golden(request: pytest.FixtureRequest) -> bool:
    """True when the run should rewrite golden fixtures, not check them."""
    return request.config.getoption("--regen-golden")


@pytest.fixture
def small_flash() -> FlashDevice:
    """A tiny flash device so FTL tests run fast."""
    return FlashDevice(
        name="test-flash",
        capacity_bytes=4 * MB,
        page_bytes=4 * KB,
        pages_per_block=16,
        channels=2,
        timing=FlashTiming(),
    )
