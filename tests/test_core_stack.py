"""Tests for Mercury/Iridium stack configurations."""

import pytest

from repro.core import StackConfig, iridium_stack, mercury_stack
from repro.cpu import CORTEX_A7, CORTEX_A15_1GHZ
from repro.errors import ConfigurationError
from repro.memory import PBICS_19GB, TEZZARON_4GB
from repro.units import GB


class TestConstruction:
    def test_mercury_defaults(self):
        stack = mercury_stack(8)
        assert stack.family == "Mercury"
        assert stack.capacity_bytes == 4 * GB
        assert stack.name == "Mercury-8[A7@1GHz]"
        assert not stack.is_flash

    def test_iridium_defaults(self):
        stack = iridium_stack(8)
        assert stack.family == "Iridium"
        assert stack.capacity_bytes == int(19.8 * GB)
        assert stack.is_flash

    def test_exactly_one_memory_required(self):
        with pytest.raises(ConfigurationError):
            StackConfig(core=CORTEX_A7, cores=1)
        with pytest.raises(ConfigurationError):
            StackConfig(core=CORTEX_A7, cores=1, dram=TEZZARON_4GB, flash=PBICS_19GB)

    def test_zero_cores_rejected(self):
        with pytest.raises(ConfigurationError):
            mercury_stack(0)

    def test_uneven_port_sharing_rejected(self):
        with pytest.raises(ConfigurationError):
            mercury_stack(24)  # 24 cores cannot share 16 ports evenly

    def test_logic_die_area_budget(self):
        # §5.5: >400 A7 cores fit on the logic die — so 32 easily do...
        assert mercury_stack(32).logic_die_utilization < 0.1
        # ...but 512 A15s would not.
        with pytest.raises(ConfigurationError, match="logic die"):
            mercury_stack(512, core=CORTEX_A15_1GHZ)

    def test_400_a7_cores_fit(self):
        stack = mercury_stack(400)
        assert stack.core_die_area_mm2 < stack.logic_die_area_mm2


class TestPortAssignment:
    def test_sixteen_cores_one_port_each(self):
        assignment = mercury_stack(16).port_assignment()
        assert assignment.cores_per_port == 1

    def test_thirty_two_cores_share(self):
        assignment = mercury_stack(32).port_assignment()
        assert assignment.cores_per_port == 2

    def test_iridium_uses_flash_channels(self):
        assert iridium_stack(16).memory_ports == 16


class TestMemorySpec:
    def test_mercury_default_spec_is_device_latency(self):
        spec = mercury_stack(1).default_memory_spec()
        assert spec.kind == "dram"
        assert spec.read_latency_s == TEZZARON_4GB.closed_page_latency_s

    def test_iridium_default_spec(self):
        spec = iridium_stack(1).default_memory_spec()
        assert spec.kind == "flash"
        assert spec.write_latency_s == PBICS_19GB.timing.program_latency_s

    def test_latency_model_override(self):
        from repro.core import dram_spec

        stack = mercury_stack(1)
        fast = stack.latency_model(dram_spec(10e-9)).tps("GET", 64)
        slow = stack.latency_model(dram_spec(100e-9)).tps("GET", 64)
        assert fast > slow


class TestPower:
    def test_idle_memory_power(self):
        stack = mercury_stack(8)
        # 8 A7s + MAC + PHY with no memory traffic.
        expected = 8 * 0.1 + 0.12 + 0.3
        assert stack.power_w(0.0) == pytest.approx(expected)

    def test_phy_excludable(self):
        stack = mercury_stack(8)
        assert stack.power_w(0.0) - stack.power_w(0.0, include_phy=False) == (
            pytest.approx(0.3)
        )

    def test_dram_power_scales_with_bandwidth(self):
        stack = mercury_stack(8)
        assert stack.power_w(10 * GB) - stack.power_w(0.0) == pytest.approx(2.1)

    def test_iridium_memory_power_negligible(self):
        stack = iridium_stack(8)
        assert stack.power_w(10 * GB) - stack.power_w(0.0) == pytest.approx(0.06)

    def test_peak_memory_bandwidth(self):
        assert mercury_stack(1).peak_memory_bandwidth_bytes_s == pytest.approx(
            100 * GB
        )
        assert iridium_stack(1).peak_memory_bandwidth_bytes_s < 100 * GB
