"""Tests for the p-BiCS NAND flash device model."""

import pytest

from repro.errors import CapacityError, ConfigurationError
from repro.memory import PBICS_19GB, FlashDevice, FlashTiming
from repro.units import GB, KB, MS, US


class TestDefaults:
    def test_capacity_is_19_8gb(self):
        assert PBICS_19GB.capacity_bytes == int(19.8 * GB)

    def test_density_advantage_over_dram(self):
        # §4.2.1: ~4.9x the 4 GB Mercury stack in the same footprint.
        from repro.memory import TEZZARON_4GB

        ratio = PBICS_19GB.capacity_bytes / TEZZARON_4GB.capacity_bytes
        assert ratio == pytest.approx(4.95, rel=0.01)
        assert PBICS_19GB.area_mm2 == TEZZARON_4GB.area_mm2

    def test_sixteen_channels_match_mercury_ports(self):
        assert PBICS_19GB.channels == 16

    def test_sixteen_monolithic_layers(self):
        assert PBICS_19GB.monolithic_layers == 16

    def test_timing_defaults(self):
        assert PBICS_19GB.timing.read_latency_s == pytest.approx(10 * US)
        assert PBICS_19GB.timing.program_latency_s == pytest.approx(200 * US)
        assert PBICS_19GB.timing.erase_latency_s == pytest.approx(1.5 * MS)


class TestGeometry:
    def test_block_bytes(self, small_flash):
        assert small_flash.block_bytes == small_flash.page_bytes * 16

    def test_total_pages_times_page_is_capacity(self, small_flash):
        assert small_flash.total_pages * small_flash.page_bytes == (
            small_flash.capacity_bytes
        )

    def test_pages_for(self, small_flash):
        assert small_flash.pages_for(0) == 0
        assert small_flash.pages_for(1) == 1
        assert small_flash.pages_for(small_flash.page_bytes) == 1
        assert small_flash.pages_for(small_flash.page_bytes + 1) == 2

    def test_pages_for_negative_rejected(self, small_flash):
        with pytest.raises(ConfigurationError):
            small_flash.pages_for(-1)


class TestTiming:
    def test_read_time_includes_transfer(self):
        full = PBICS_19GB.read_time()
        assert full > PBICS_19GB.timing.read_latency_s
        assert full == pytest.approx(
            PBICS_19GB.timing.read_latency_s + PBICS_19GB.page_transfer_time()
        )

    def test_partial_read_transfers_less(self):
        assert PBICS_19GB.read_time(64) < PBICS_19GB.read_time()

    def test_read_beyond_page_rejected(self):
        with pytest.raises(CapacityError):
            PBICS_19GB.read_time(PBICS_19GB.page_bytes + 1)

    def test_program_slower_than_read(self):
        assert PBICS_19GB.program_time() > PBICS_19GB.read_time()

    def test_erase_slowest(self):
        assert PBICS_19GB.erase_time() > PBICS_19GB.program_time()


class TestPowerBandwidth:
    def test_power_6mw_per_gbs(self):
        assert PBICS_19GB.power_w(1 * GB) == pytest.approx(0.006)

    def test_flash_far_cheaper_than_dram_per_gbs(self):
        from repro.memory import TEZZARON_4GB

        assert PBICS_19GB.power_w_per_gbs < TEZZARON_4GB.power_w_per_gbs / 10

    def test_peak_read_bandwidth_positive(self):
        assert PBICS_19GB.peak_read_bandwidth_bytes_s > 1 * GB


class TestValidation:
    def test_bad_timing_rejected(self):
        with pytest.raises(ConfigurationError):
            FlashTiming(read_latency_s=0)

    def test_bad_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            FlashDevice(capacity_bytes=0)
        with pytest.raises(ConfigurationError):
            FlashDevice(channels=0)
