"""Fuzz-style property tests for everything that parses wire bytes.

Wire-facing code must never crash on hostile input: it either parses or
raises :class:`ProtocolError`.  The server loop additionally must stay
*consistent* — after arbitrary garbage, well-formed commands still work
and the store invariants hold.
"""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError, ReproError
from repro.kvstore import KVStore
from repro.kvstore.binary_protocol import (
    REQUEST_MAGIC,
    BinaryMessage,
    BinaryServer,
    Opcode,
    arith_request,
    decode,
    encode,
    get_request,
    needs_more_bytes,
    set_request,
    simple_request,
)
from repro.kvstore.protocol import parse_command, parse_response
from repro.kvstore.server_loop import MemcachedServer
from repro.units import MB

ascii_key = st.lists(
    st.integers(min_value=33, max_value=126), min_size=1, max_size=32
).map(bytes)


class TestParserRobustness:
    @given(blob=st.binary(max_size=256))
    @settings(max_examples=200, deadline=None)
    def test_parse_command_never_crashes(self, blob):
        try:
            command, rest = parse_command(blob)
        except ProtocolError:
            return
        assert isinstance(rest, bytes)
        assert command.verb

    @given(blob=st.binary(max_size=256))
    @settings(max_examples=200, deadline=None)
    def test_parse_response_never_crashes(self, blob):
        try:
            parse_response(blob)
        except ProtocolError:
            pass

    @given(blob=st.binary(max_size=128))
    @settings(max_examples=200, deadline=None)
    def test_binary_decode_never_crashes(self, blob):
        try:
            message, rest = decode(blob)
        except ProtocolError:
            return
        assert len(rest) < len(blob)

    @given(blob=st.binary(max_size=64))
    @settings(max_examples=100, deadline=None)
    def test_needs_more_bytes_never_crashes(self, blob):
        assert needs_more_bytes(blob) in (True, False)


class TestServerLoopRobustness:
    @given(garbage=st.binary(min_size=1, max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_connection_survives_garbage(self, garbage):
        server = MemcachedServer(KVStore(2 * MB))
        conn = server.connect()
        try:
            conn.feed(garbage)
        except ReproError:
            pytest.fail("server loop raised on garbage input")
        # The buffer may legitimately hold an incomplete command; flush
        # it with a terminator, then the connection must work normally.
        conn.feed(b"\r\n")
        # Note: garbage may contain a legal 'quit', closing the
        # connection; use a fresh one to verify the store is intact.
        probe = server.connect()
        assert probe.feed(b"set ok 0 0 2\r\nhi\r\n") == b"STORED\r\n"
        assert probe.feed(b"get ok\r\n") == b"VALUE ok 0 2\r\nhi\r\nEND\r\n"
        server.store.check_invariants()

    @given(
        keys=st.lists(ascii_key, min_size=1, max_size=10, unique=True),
        garbage=st.binary(max_size=30),
    )
    @settings(max_examples=60, deadline=None)
    def test_garbage_between_commands_does_not_corrupt(self, keys, garbage):
        # Make the garbage a complete line so it can't eat later commands,
        # and prefix a byte that no verb starts with so random bytes can't
        # spell a *legal* destructive command like "flush_all".
        garbage_line = (
            b"\x01" + garbage.replace(b"\r", b"").replace(b"\n", b"") + b"\r\n"
        )
        server = MemcachedServer(KVStore(4 * MB))
        conn = server.connect()
        for key in keys:
            conn.feed(b"set %s 0 0 1\r\nx\r\n" % key)
            conn.feed(garbage_line)
        if conn.closed:  # garbage may have spelled 'quit'
            conn = server.connect()
        for key in keys:
            reply = conn.feed(b"get %s\r\n" % key)
            assert reply == b"VALUE %s 0 1\r\nx\r\nEND\r\n" % key
        server.store.check_invariants()


class TestBinaryServerRobustness:
    """The binary server must parse-or-ProtocolError, never crash."""

    @given(blob=st.binary(max_size=256))
    @settings(max_examples=200, deadline=None)
    def test_binary_server_survives_garbage(self, blob):
        server = BinaryServer(KVStore(2 * MB))
        try:
            server.handle(blob)
        except ProtocolError:
            pass
        # After arbitrary garbage the server must still serve well-formed
        # requests and keep its store consistent.
        reply = server.handle(encode(set_request(b"ok", b"hi")))
        response, rest = decode(reply)
        assert response.status == 0 and rest == b""
        server.store.check_invariants()

    @given(
        magic=st.integers(min_value=0, max_value=255),
        opcode=st.integers(min_value=0, max_value=255),
        key_length=st.integers(min_value=0, max_value=0xFFFF),
        extras_length=st.integers(min_value=0, max_value=255),
        total_body=st.integers(min_value=0, max_value=512),
        body=st.binary(max_size=512),
    )
    @settings(max_examples=200, deadline=None)
    def test_malformed_headers_never_crash(
        self, magic, opcode, key_length, extras_length, total_body, body
    ):
        """Headers with inconsistent lengths / bad magic / unknown opcodes."""
        header = struct.pack(
            ">BBHBBHIIQ", magic, opcode, key_length, extras_length, 0, 0,
            total_body, 0, 0,
        )
        server = BinaryServer(KVStore(2 * MB))
        try:
            server.handle(header + body)
        except ProtocolError:
            pass

    @given(data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_truncated_frames_are_buffered_not_crashed(self, data):
        """Any prefix of a valid frame is an incomplete message: the
        server waits for more bytes instead of raising or responding."""
        full = encode(set_request(b"some-key", b"some-value-payload"))
        cut = data.draw(st.integers(min_value=0, max_value=len(full) - 1))
        server = BinaryServer(KVStore(2 * MB))
        assert server.handle(full[:cut]) == b""

    @given(
        current=st.integers(min_value=0, max_value=2**64 - 1),
        delta=st.integers(min_value=0, max_value=2**64 - 1),
        decrement=st.booleans(),
    )
    @settings(max_examples=100, deadline=None)
    def test_arith_full_uint64_range(self, current, delta, decrement):
        """Counters are uint64: incr wraps at 2^64, decr floors at 0.

        This found a real crash: incr past 2^64-1 used to overflow
        struct.pack(">Q") in the response encoder.
        """
        server = BinaryServer(KVStore(2 * MB))
        server.handle(encode(set_request(b"ctr", str(current).encode())))
        reply = server.handle(
            encode(arith_request(b"ctr", delta, decrement=decrement))
        )
        response, rest = decode(reply)
        assert rest == b"" and response.status == 0
        value = struct.unpack(">Q", response.value)[0]
        expected = max(0, current - delta) if decrement else (current + delta) % 2**64
        assert value == expected

    def test_incr_wrap_regression(self):
        """The exact overflow: a counter at 2^64-1 incremented by 1."""
        server = BinaryServer(KVStore(2 * MB))
        server.handle(encode(set_request(b"ctr", str(2**64 - 1).encode())))
        reply = server.handle(encode(arith_request(b"ctr", 1)))
        response, _rest = decode(reply)
        assert response.status == 0
        assert struct.unpack(">Q", response.value)[0] == 0

    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(
                    [Opcode.SET, Opcode.GET, Opcode.ADD, Opcode.DELETE,
                     Opcode.INCREMENT, Opcode.APPEND]
                ),
                st.integers(min_value=0, max_value=15),
            ),
            max_size=60,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_random_valid_binary_streams(self, ops):
        """Every response in a random valid stream decodes cleanly."""
        server = BinaryServer(KVStore(8 * MB))
        wire = bytearray()
        for opcode, index in ops:
            key = b"key-%d" % index
            if opcode in (Opcode.SET, Opcode.ADD):
                request = encode(set_request(key, b"7", opcode=opcode))
            elif opcode is Opcode.APPEND:
                request = encode(
                    BinaryMessage(
                        magic=REQUEST_MAGIC, opcode=Opcode.APPEND,
                        key=key, value=b"x",
                    )
                )
            elif opcode is Opcode.INCREMENT:
                request = encode(arith_request(key, 3, initial=0, expiry=0))
            elif opcode is Opcode.DELETE:
                request = encode(simple_request(Opcode.DELETE, key))
            else:
                request = encode(get_request(key))
            wire += request
        out = server.handle(bytes(wire))
        while out:
            response, out = decode(out)
            assert not response.is_request
        server.store.check_invariants()


class TestRandomCommandStreams:
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["set", "get", "delete", "add", "incr"]),
                st.integers(min_value=0, max_value=15),
            ),
            max_size=80,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_server_matches_direct_store(self, ops):
        """The wire path and direct API calls must agree state-for-state."""
        wire_server = MemcachedServer(KVStore(8 * MB))
        wire = wire_server.connect()
        direct = KVStore(8 * MB)
        for op, index in ops:
            key = b"key-%d" % index
            if op == "set":
                wire.feed(b"set %s 0 0 1\r\n7\r\n" % key)
                direct.set(key, b"7")
            elif op == "add":
                wire.feed(b"add %s 0 0 1\r\n9\r\n" % key)
                direct.add(key, b"9")
            elif op == "delete":
                wire.feed(b"delete %s\r\n" % key)
                direct.delete(key)
            elif op == "incr":
                wire.feed(b"incr %s 2\r\n" % key)
                try:
                    direct.incr(key, 2)
                except ReproError:
                    pass
            else:
                wire_reply = wire.feed(b"get %s\r\n" % key)
                direct_item = direct.get(key)
                if direct_item is None:
                    assert wire_reply == b"END\r\n"
                else:
                    assert direct_item.value in wire_reply
        assert len(wire_server.store) == len(direct)
        wire_server.store.check_invariants()
