"""Fuzz-style property tests for everything that parses wire bytes.

Wire-facing code must never crash on hostile input: it either parses or
raises :class:`ProtocolError`.  The server loop additionally must stay
*consistent* — after arbitrary garbage, well-formed commands still work
and the store invariants hold.
"""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError, ReproError
from repro.kvstore import KVStore
from repro.kvstore.binary_protocol import (
    REQUEST_MAGIC,
    BinaryMessage,
    BinaryServer,
    Opcode,
    Status,
    arith_request,
    batch_request,
    decode,
    decode_multiget_response,
    decode_multiset_response,
    encode,
    get_request,
    multiget_request,
    multiset_request,
    needs_more_bytes,
    set_request,
    simple_request,
)
from repro.kvstore.protocol import parse_command, parse_response
from repro.kvstore.server_loop import MemcachedServer
from repro.units import MB

ascii_key = st.lists(
    st.integers(min_value=33, max_value=126), min_size=1, max_size=32
).map(bytes)


class TestParserRobustness:
    @given(blob=st.binary(max_size=256))
    @settings(max_examples=200, deadline=None)
    def test_parse_command_never_crashes(self, blob):
        try:
            command, rest = parse_command(blob)
        except ProtocolError:
            return
        assert isinstance(rest, bytes)
        assert command.verb

    @given(blob=st.binary(max_size=256))
    @settings(max_examples=200, deadline=None)
    def test_parse_response_never_crashes(self, blob):
        try:
            parse_response(blob)
        except ProtocolError:
            pass

    @given(blob=st.binary(max_size=128))
    @settings(max_examples=200, deadline=None)
    def test_binary_decode_never_crashes(self, blob):
        try:
            message, rest = decode(blob)
        except ProtocolError:
            return
        assert len(rest) < len(blob)

    @given(blob=st.binary(max_size=64))
    @settings(max_examples=100, deadline=None)
    def test_needs_more_bytes_never_crashes(self, blob):
        assert needs_more_bytes(blob) in (True, False)


class TestServerLoopRobustness:
    @given(garbage=st.binary(min_size=1, max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_connection_survives_garbage(self, garbage):
        server = MemcachedServer(KVStore(2 * MB))
        conn = server.connect()
        try:
            conn.feed(garbage)
        except ReproError:
            pytest.fail("server loop raised on garbage input")
        # The buffer may legitimately hold an incomplete command; flush
        # it with a terminator, then the connection must work normally.
        conn.feed(b"\r\n")
        # Note: garbage may contain a legal 'quit', closing the
        # connection; use a fresh one to verify the store is intact.
        probe = server.connect()
        assert probe.feed(b"set ok 0 0 2\r\nhi\r\n") == b"STORED\r\n"
        assert probe.feed(b"get ok\r\n") == b"VALUE ok 0 2\r\nhi\r\nEND\r\n"
        server.store.check_invariants()

    @given(
        keys=st.lists(ascii_key, min_size=1, max_size=10, unique=True),
        garbage=st.binary(max_size=30),
    )
    @settings(max_examples=60, deadline=None)
    def test_garbage_between_commands_does_not_corrupt(self, keys, garbage):
        # Make the garbage a complete line so it can't eat later commands,
        # and prefix a byte that no verb starts with so random bytes can't
        # spell a *legal* destructive command like "flush_all".
        garbage_line = (
            b"\x01" + garbage.replace(b"\r", b"").replace(b"\n", b"") + b"\r\n"
        )
        server = MemcachedServer(KVStore(4 * MB))
        conn = server.connect()
        for key in keys:
            conn.feed(b"set %s 0 0 1\r\nx\r\n" % key)
            conn.feed(garbage_line)
        if conn.closed:  # garbage may have spelled 'quit'
            conn = server.connect()
        for key in keys:
            reply = conn.feed(b"get %s\r\n" % key)
            assert reply == b"VALUE %s 0 1\r\nx\r\nEND\r\n" % key
        server.store.check_invariants()


class TestBinaryServerRobustness:
    """The binary server must parse-or-ProtocolError, never crash."""

    @given(blob=st.binary(max_size=256))
    @settings(max_examples=200, deadline=None)
    def test_binary_server_survives_garbage(self, blob):
        server = BinaryServer(KVStore(2 * MB))
        try:
            server.handle(blob)
        except ProtocolError:
            pass
        # After arbitrary garbage the server must still serve well-formed
        # requests and keep its store consistent.
        reply = server.handle(encode(set_request(b"ok", b"hi")))
        response, rest = decode(reply)
        assert response.status == 0 and rest == b""
        server.store.check_invariants()

    @given(
        magic=st.integers(min_value=0, max_value=255),
        opcode=st.integers(min_value=0, max_value=255),
        key_length=st.integers(min_value=0, max_value=0xFFFF),
        extras_length=st.integers(min_value=0, max_value=255),
        total_body=st.integers(min_value=0, max_value=512),
        body=st.binary(max_size=512),
    )
    @settings(max_examples=200, deadline=None)
    def test_malformed_headers_never_crash(
        self, magic, opcode, key_length, extras_length, total_body, body
    ):
        """Headers with inconsistent lengths / bad magic / unknown opcodes."""
        header = struct.pack(
            ">BBHBBHIIQ", magic, opcode, key_length, extras_length, 0, 0,
            total_body, 0, 0,
        )
        server = BinaryServer(KVStore(2 * MB))
        try:
            server.handle(header + body)
        except ProtocolError:
            pass

    @given(data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_truncated_frames_are_buffered_not_crashed(self, data):
        """Any prefix of a valid frame is an incomplete message: the
        server waits for more bytes instead of raising or responding."""
        full = encode(set_request(b"some-key", b"some-value-payload"))
        cut = data.draw(st.integers(min_value=0, max_value=len(full) - 1))
        server = BinaryServer(KVStore(2 * MB))
        assert server.handle(full[:cut]) == b""

    @given(
        current=st.integers(min_value=0, max_value=2**64 - 1),
        delta=st.integers(min_value=0, max_value=2**64 - 1),
        decrement=st.booleans(),
    )
    @settings(max_examples=100, deadline=None)
    def test_arith_full_uint64_range(self, current, delta, decrement):
        """Counters are uint64: incr wraps at 2^64, decr floors at 0.

        This found a real crash: incr past 2^64-1 used to overflow
        struct.pack(">Q") in the response encoder.
        """
        server = BinaryServer(KVStore(2 * MB))
        server.handle(encode(set_request(b"ctr", str(current).encode())))
        reply = server.handle(
            encode(arith_request(b"ctr", delta, decrement=decrement))
        )
        response, rest = decode(reply)
        assert rest == b"" and response.status == 0
        value = struct.unpack(">Q", response.value)[0]
        expected = max(0, current - delta) if decrement else (current + delta) % 2**64
        assert value == expected

    def test_incr_wrap_regression(self):
        """The exact overflow: a counter at 2^64-1 incremented by 1."""
        server = BinaryServer(KVStore(2 * MB))
        server.handle(encode(set_request(b"ctr", str(2**64 - 1).encode())))
        reply = server.handle(encode(arith_request(b"ctr", 1)))
        response, _rest = decode(reply)
        assert response.status == 0
        assert struct.unpack(">Q", response.value)[0] == 0

    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(
                    [Opcode.SET, Opcode.GET, Opcode.ADD, Opcode.DELETE,
                     Opcode.INCREMENT, Opcode.APPEND]
                ),
                st.integers(min_value=0, max_value=15),
            ),
            max_size=60,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_random_valid_binary_streams(self, ops):
        """Every response in a random valid stream decodes cleanly."""
        server = BinaryServer(KVStore(8 * MB))
        wire = bytearray()
        for opcode, index in ops:
            key = b"key-%d" % index
            if opcode in (Opcode.SET, Opcode.ADD):
                request = encode(set_request(key, b"7", opcode=opcode))
            elif opcode is Opcode.APPEND:
                request = encode(
                    BinaryMessage(
                        magic=REQUEST_MAGIC, opcode=Opcode.APPEND,
                        key=key, value=b"x",
                    )
                )
            elif opcode is Opcode.INCREMENT:
                request = encode(arith_request(key, 3, initial=0, expiry=0))
            elif opcode is Opcode.DELETE:
                request = encode(simple_request(Opcode.DELETE, key))
            else:
                request = encode(get_request(key))
            wire += request
        out = server.handle(bytes(wire))
        while out:
            response, out = decode(out)
            assert not response.is_request
        server.store.check_invariants()


class TestAsciiMsetRobustness:
    """``mset`` frames: hostile headers and sub-blocks must degrade to
    clean errors (or buffering, when merely short on bytes) — never a
    crash, never a desynced connection, never a half-applied frame."""

    def _server(self):
        server = MemcachedServer(KVStore(2 * MB))
        return server, server.connect()

    def _assert_usable(self, server, conn):
        if conn.closed:
            conn = server.connect()
        assert conn.feed(b"set probe 0 0 2\r\nhi\r\n") == b"STORED\r\n"
        server.store.check_invariants()

    def test_zero_op_mset_is_legal_and_empty(self):
        server, conn = self._server()
        assert conn.feed(b"mset 0\r\n") == b""
        assert server.connection_stats().batches == 1
        assert server.connection_stats().batched_ops == 0
        self._assert_usable(server, conn)

    @pytest.mark.parametrize(
        "frame",
        [
            b"mset\r\n",  # missing count
            b"mset -1\r\n",  # negative count
            b"mset 9999\r\n",  # count above MAX_BATCH_OPS
            b"mset nope\r\n",  # non-numeric count
            b"mset 1 extra\r\n",  # trailing token
            b"mset 1\r\ngarbage-sub-line\r\n",  # sub-block missing fields
            b"mset 1\r\nk 0 0 nope\r\n",  # non-numeric data length
            b"mset 1\r\nk 0 0 -3\r\n",  # negative data length
            b"mset 1\r\nk 0 0 2\r\nhiX\r\n",  # data block not CRLF-terminated
        ],
    )
    def test_malformed_mset_frames_error_cleanly(self, frame):
        server, conn = self._server()
        reply = conn.feed(frame)
        assert reply.startswith((b"CLIENT_ERROR", b"ERROR"))
        assert len(server.store) == 0  # nothing half-applied
        self._assert_usable(server, conn)

    def test_short_data_block_buffers_then_applies(self):
        """A well-formed prefix short on payload bytes is *incomplete*,
        not malformed: the server waits, then applies the whole frame."""
        server, conn = self._server()
        assert conn.feed(b"mset 2\r\na 0 0 2\r\nhi\r\nb 0 0 3\r\n") == b""
        assert len(server.store) == 0  # nothing applied yet
        assert conn.feed(b"xyz\r\n") == b"STORED\r\nSTORED\r\n"
        assert server.store.get(b"b").value == b"xyz"
        self._assert_usable(server, conn)

    @given(
        count=st.integers(min_value=0, max_value=20),
        blob=st.binary(max_size=120),
    )
    @settings(max_examples=120, deadline=None)
    def test_mset_header_with_random_tail_never_crashes(self, count, blob):
        server, conn = self._server()
        try:
            conn.feed(b"mset %d\r\n" % count + blob + b"\r\n")
        except ReproError:
            pytest.fail("mset path raised on garbage input")
        # Flush any legitimately-buffered partial frame, then probe.
        conn.feed(b"\r\n" * 4)
        self._assert_usable(server, conn)

    @given(
        ops=st.lists(
            st.tuples(ascii_key, st.binary(min_size=1, max_size=16)),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_valid_mset_matches_serial_sets(self, ops):
        """Differential at the wire: one mset frame == n serial sets."""
        batched_server, batched = self._server()
        serial_server, serial = self._server()
        frame = bytearray(b"mset %d\r\n" % len(ops))
        serial_replies = []
        for key, value in ops:
            value = value.replace(b"\r", b" ").replace(b"\n", b" ")
            frame += b"%s 0 0 %d\r\n%s\r\n" % (key, len(value), value)
            serial_replies.append(
                serial.feed(b"set %s 0 0 %d\r\n%s\r\n" % (key, len(value), value))
            )
        assert batched.feed(bytes(frame)) == b"".join(serial_replies)
        assert sorted(
            (item.key, bytes(item.value))
            for item in batched_server.store.items_live()
        ) == sorted(
            (item.key, bytes(item.value))
            for item in serial_server.store.items_live()
        )


class TestBinaryBatchFrameRobustness:
    """MULTIGET/MULTISET/BATCH frames: every structural defect inside an
    otherwise well-formed frame gets INVALID_ARGUMENTS, and the server
    keeps serving."""

    def _assert_usable(self, server):
        reply = server.handle(encode(set_request(b"probe", b"ok")))
        response, rest = decode(reply)
        assert response.status == Status.NO_ERROR and rest == b""
        server.store.check_invariants()

    def _one_status(self, server, message):
        reply = server.handle(encode(message))
        response, rest = decode(reply)
        assert rest == b""
        return response

    @pytest.mark.parametrize(
        "opcode", [Opcode.MULTIGET, Opcode.MULTISET, Opcode.BATCH]
    )
    @pytest.mark.parametrize(
        "value",
        [
            b"",  # truncated count
            b"\x00",  # half a count
            struct.pack(">H", 5000),  # count above MAX_BATCH_OPS
            struct.pack(">H", 3),  # count promises ops, body empty
            struct.pack(">H", 1) + b"\xff",  # truncated first op
        ],
        ids=["empty", "half-count", "oversized", "missing-ops", "cut-op"],
    )
    def test_malformed_counts_rejected(self, opcode, value):
        server = BinaryServer(KVStore(2 * MB))
        message = BinaryMessage(
            magic=REQUEST_MAGIC, opcode=opcode, value=value
        )
        assert (
            self._one_status(server, message).status == Status.INVALID_ARGUMENTS
        )
        assert server.batches == 0  # rejected frames don't count
        self._assert_usable(server)

    def test_zero_op_frames_are_legal(self):
        server = BinaryServer(KVStore(2 * MB))
        empty = struct.pack(">H", 0)
        for opcode in (Opcode.MULTIGET, Opcode.MULTISET, Opcode.BATCH):
            message = BinaryMessage(
                magic=REQUEST_MAGIC, opcode=opcode, value=empty
            )
            response = self._one_status(server, message)
            assert response.status == Status.NO_ERROR
            assert response.value == struct.pack(">H", 0)
        self._assert_usable(server)

    def test_empty_key_rejected(self):
        server = BinaryServer(KVStore(2 * MB))
        blob = struct.pack(">H", 1) + struct.pack(">H", 0)
        message = BinaryMessage(
            magic=REQUEST_MAGIC, opcode=Opcode.MULTIGET, value=blob
        )
        assert (
            self._one_status(server, message).status == Status.INVALID_ARGUMENTS
        )
        self._assert_usable(server)

    def test_trailing_bytes_rejected(self):
        server = BinaryServer(KVStore(2 * MB))
        for build in (
            lambda: multiget_request([b"k"]),
            lambda: multiset_request([(b"k", b"v", 0, 0)]),
            lambda: batch_request([get_request(b"k")]),
        ):
            message = build()
            padded = BinaryMessage(
                magic=message.magic,
                opcode=message.opcode,
                value=message.value + b"\x00",
            )
            assert (
                self._one_status(server, padded).status
                == Status.INVALID_ARGUMENTS
            )
        self._assert_usable(server)

    def test_forbidden_inner_opcodes_reject_whole_envelope(self):
        """QUIT/FLUSH/nested-batch frames can't ride in a BATCH; the
        builder refuses them and a hand-built envelope is rejected
        wholesale — no prefix of it executes."""
        for inner in (
            simple_request(Opcode.QUIT),
            simple_request(Opcode.FLUSH),
            multiget_request([b"k"]),
        ):
            with pytest.raises(ProtocolError, match="cannot ride"):
                batch_request([set_request(b"a", b"1"), inner])
            server = BinaryServer(KVStore(2 * MB))
            blob = struct.pack(">H", 2) + encode(
                set_request(b"a", b"1")
            ) + encode(inner)
            envelope = BinaryMessage(
                magic=REQUEST_MAGIC, opcode=Opcode.BATCH, value=blob
            )
            assert (
                self._one_status(server, envelope).status
                == Status.INVALID_ARGUMENTS
            )
            assert len(server.store) == 0  # the leading SET did not run
            assert not server.closed  # the smuggled QUIT did not run
            self._assert_usable(server)

    def test_mixed_opcode_batch_executes_in_order(self):
        server = BinaryServer(KVStore(2 * MB))
        envelope = batch_request([
            set_request(b"k", b"1"),
            get_request(b"k"),
            simple_request(Opcode.DELETE, b"k"),
            get_request(b"k"),
        ])
        response = self._one_status(server, envelope)
        assert response.status == Status.NO_ERROR
        (responded,) = struct.unpack_from(">H", response.value, 0)
        assert responded == 4
        inner, rest = decode(response.value[2:])
        statuses = [inner.status]
        while rest:
            inner, rest = decode(rest)
            statuses.append(inner.status)
        assert statuses == [
            Status.NO_ERROR,  # set
            Status.NO_ERROR,  # get hit
            Status.NO_ERROR,  # delete
            Status.KEY_NOT_FOUND,  # get after delete
        ]
        assert server.batches == 1 and server.batched_ops == 4
        self._assert_usable(server)

    @given(blob=st.binary(max_size=200))
    @settings(max_examples=200, deadline=None)
    def test_random_frame_bodies_never_crash(self, blob):
        """Arbitrary bytes as the value of each batch opcode: the server
        answers with *some* status and keeps serving."""
        server = BinaryServer(KVStore(2 * MB))
        for opcode in (Opcode.MULTIGET, Opcode.MULTISET, Opcode.BATCH):
            message = BinaryMessage(
                magic=REQUEST_MAGIC, opcode=opcode, value=blob
            )
            response = self._one_status(server, message)
            assert not response.is_request
        self._assert_usable(server)

    @given(
        keys=st.lists(ascii_key, min_size=0, max_size=12, unique=True),
        present=st.integers(min_value=0, max_value=11),
    )
    @settings(max_examples=60, deadline=None)
    def test_multiget_round_trip(self, keys, present):
        """A valid multiget returns exactly the stored subset."""
        server = BinaryServer(KVStore(4 * MB))
        stored = {key for key in keys[:present]}
        for key in stored:
            server.handle(encode(set_request(key, b"v:" + key)))
        response = self._one_status(server, multiget_request(keys))
        assert response.status == Status.NO_ERROR
        found = decode_multiget_response(response)
        assert set(found) == stored
        for key, (_flags, value) in found.items():
            assert value == b"v:" + key

    @given(
        ops=st.lists(
            st.tuples(ascii_key, st.binary(max_size=24)),
            min_size=0,
            max_size=12,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_multiset_round_trip(self, ops):
        server = BinaryServer(KVStore(4 * MB))
        message = multiset_request(
            [(key, value, 7, 0) for key, value in ops]
        )
        response = self._one_status(server, message)
        assert response.status == Status.NO_ERROR
        statuses = decode_multiset_response(response)
        assert statuses == [Status.NO_ERROR] * len(ops)
        for key, value in ops:  # last write per key wins
            final = dict(ops)[key]
            assert bytes(server.store.get(key).value) == final


class TestRandomCommandStreams:
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["set", "get", "delete", "add", "incr"]),
                st.integers(min_value=0, max_value=15),
            ),
            max_size=80,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_server_matches_direct_store(self, ops):
        """The wire path and direct API calls must agree state-for-state."""
        wire_server = MemcachedServer(KVStore(8 * MB))
        wire = wire_server.connect()
        direct = KVStore(8 * MB)
        for op, index in ops:
            key = b"key-%d" % index
            if op == "set":
                wire.feed(b"set %s 0 0 1\r\n7\r\n" % key)
                direct.set(key, b"7")
            elif op == "add":
                wire.feed(b"add %s 0 0 1\r\n9\r\n" % key)
                direct.add(key, b"9")
            elif op == "delete":
                wire.feed(b"delete %s\r\n" % key)
                direct.delete(key)
            elif op == "incr":
                wire.feed(b"incr %s 2\r\n" % key)
                try:
                    direct.incr(key, 2)
                except ReproError:
                    pass
            else:
                wire_reply = wire.feed(b"get %s\r\n" % key)
                direct_item = direct.get(key)
                if direct_item is None:
                    assert wire_reply == b"END\r\n"
                else:
                    assert direct_item.value in wire_reply
        assert len(wire_server.store) == len(direct)
        wire_server.store.check_invariants()
