"""Tests for the request-latency model: anchors, monotonicity, shape."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LatencyModel, dram_spec, flash_spec
from repro.core.latency_model import MemorySpec
from repro.cpu import CORTEX_A7, CORTEX_A15_1GHZ
from repro.errors import ConfigurationError
from repro.units import GB, NS, US
from repro.workloads import REQUEST_SIZE_SWEEP


def mercury_model(core=CORTEX_A7, latency=10 * NS, has_l2=True) -> LatencyModel:
    return LatencyModel(core=core, memory=dram_spec(latency), has_l2=has_l2)


def iridium_model(core=CORTEX_A7, read=10 * US, has_l2=True) -> LatencyModel:
    return LatencyModel(core=core, memory=flash_spec(read_latency_s=read), has_l2=has_l2)


class TestMemorySpec:
    def test_dram_spec(self):
        spec = dram_spec(30 * NS)
        assert spec.kind == "dram"
        assert not spec.is_flash
        assert spec.write_latency_s == spec.read_latency_s

    def test_flash_spec_defaults(self):
        spec = flash_spec()
        assert spec.is_flash
        assert spec.read_latency_s == pytest.approx(10 * US)
        assert spec.write_latency_s == pytest.approx(200 * US)

    def test_bad_specs_rejected(self):
        with pytest.raises(ConfigurationError):
            MemorySpec(kind="sram", read_latency_s=1e-9)
        with pytest.raises(ConfigurationError):
            MemorySpec(kind="dram", read_latency_s=0)
        with pytest.raises(ConfigurationError):
            MemorySpec(kind="flash", read_latency_s=1e-6, write_latency_s=0)


class TestPaperAnchors:
    """The calibration anchor points of DESIGN.md §5 (15% tolerance)."""

    def test_a7_mercury_64b_get(self):
        tps = mercury_model().tps("GET", 64)
        assert tps == pytest.approx(11_000, rel=0.15)

    def test_a15_mercury_64b_get(self):
        tps = mercury_model(core=CORTEX_A15_1GHZ).tps("GET", 64)
        assert tps == pytest.approx(27_000, rel=0.15)

    def test_fig4_get_breakdown_at_64b(self):
        timing = mercury_model(core=CORTEX_A15_1GHZ).request_timing("GET", 64)
        fractions = timing.fractions()
        assert fractions["network"] == pytest.approx(0.87, abs=0.04)
        assert fractions["memcached"] == pytest.approx(0.10, abs=0.04)
        assert fractions["hash"] == pytest.approx(0.03, abs=0.02)

    def test_fig4_put_metadata_share_larger(self):
        model = mercury_model(core=CORTEX_A15_1GHZ)
        get_frac = model.request_timing("GET", 1024).fractions()["memcached"]
        put_frac = model.request_timing("PUT", 1024).fractions()["memcached"]
        assert put_frac > 1.5 * get_frac
        assert put_frac < 0.35

    def test_a15_vs_a7_with_l2_about_3x(self):
        a7 = mercury_model().tps("GET", 64)
        a15 = mercury_model(core=CORTEX_A15_1GHZ).tps("GET", 64)
        assert 2.0 < a15 / a7 < 3.2

    def test_a15_vs_a7_without_l2_only_1_to_2x(self):
        a7 = mercury_model(has_l2=False).tps("GET", 64)
        a15 = mercury_model(core=CORTEX_A15_1GHZ, has_l2=False).tps("GET", 64)
        assert 1.0 < a15 / a7 < 2.5

    def test_iridium_a7_64b_get(self):
        tps = iridium_model().tps("GET", 64)
        assert tps == pytest.approx(5_400, rel=0.15)

    def test_iridium_put_below_1ktps(self):
        assert iridium_model().tps("PUT", 64) < 1_000
        assert iridium_model(core=CORTEX_A15_1GHZ).tps("PUT", 64) < 1_100

    def test_iridium_without_l2_collapses(self):
        # §6.2: "removing the L2 cache yields average TPS below 100".
        assert iridium_model(has_l2=False).tps("GET", 64) < 100
        assert iridium_model(core=CORTEX_A15_1GHZ, has_l2=False).tps("GET", 64) < 200

    def test_iridium_a15_advantage_shrinks(self):
        # Flash-bound: §6.2 says ~25%; accept up to ~50%.
        a7 = iridium_model().tps("GET", 64)
        a15 = iridium_model(core=CORTEX_A15_1GHZ).tps("GET", 64)
        assert 1.1 < a15 / a7 < 1.6

    def test_a7_per_core_peak_bandwidth(self):
        bw = mercury_model().max_memory_bandwidth("GET", REQUEST_SIZE_SWEEP)
        assert bw == pytest.approx(0.2 * GB, rel=0.2)


class TestShape:
    def test_tps_decreases_with_request_size(self):
        model = mercury_model()
        tps = [model.tps("GET", size) for size in REQUEST_SIZE_SWEEP]
        assert tps == sorted(tps, reverse=True)

    def test_tps_decreases_with_dram_latency(self):
        tps = [
            mercury_model(latency=lat, has_l2=False).tps("GET", 64)
            for lat in (10 * NS, 30 * NS, 50 * NS, 100 * NS)
        ]
        assert tps == sorted(tps, reverse=True)

    def test_l2_matters_more_at_high_latency(self):
        # Fig. 5: at 10 ns the L2 barely helps; at 100 ns it is critical.
        def gain(latency):
            with_l2 = mercury_model(latency=latency).tps("GET", 64)
            without = mercury_model(latency=latency, has_l2=False).tps("GET", 64)
            return with_l2 / without

        assert gain(100 * NS) > gain(10 * NS)
        assert gain(10 * NS) < 1.4

    def test_put_slower_than_get_small_sizes(self):
        model = mercury_model()
        assert model.tps("PUT", 64) < model.tps("GET", 64)

    def test_iridium_flash_latency_sensitivity(self):
        fast = iridium_model(read=10 * US).tps("GET", 64)
        slow = iridium_model(read=20 * US).tps("GET", 64)
        assert fast > slow
        assert fast / slow < 2.0  # CPU time dilutes the 2x read gap

    def test_network_dominates_large_gets_everywhere(self):
        timing = mercury_model().request_timing("GET", 1 << 20)
        assert timing.fractions()["network"] > 0.95

    def test_breakdown_sums_to_total(self):
        for verb in ("GET", "PUT"):
            timing = mercury_model().request_timing(verb, 4096)
            assert sum(timing.fractions().values()) == pytest.approx(1.0)

    def test_memory_bandwidth_grows_with_size(self):
        model = mercury_model()
        assert model.memory_bandwidth("GET", 1 << 20) > model.memory_bandwidth(
            "GET", 64
        )

    @given(
        size=st.integers(min_value=0, max_value=1 << 20),
        verb=st.sampled_from(["GET", "PUT"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_components_always_positive(self, size, verb):
        timing = mercury_model().request_timing(verb, size)
        assert timing.hash_s > 0
        assert timing.memcached_s > 0
        assert timing.network_s > 0
        assert timing.tps > 0

    @given(size=st.integers(min_value=0, max_value=1 << 20))
    @settings(max_examples=40, deadline=None)
    def test_iridium_never_faster_than_mercury(self, size):
        mercury = mercury_model().request_timing("GET", size).total_s
        iridium = iridium_model().request_timing("GET", size).total_s
        assert iridium > mercury


class TestValidation:
    def test_unknown_verb_rejected(self):
        with pytest.raises(ConfigurationError):
            mercury_model().request_timing("SCAN", 64)

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigurationError):
            mercury_model().request_timing("GET", -1)

    def test_empty_sweep_rejected(self):
        with pytest.raises(ConfigurationError):
            mercury_model().max_memory_bandwidth("GET", ())
