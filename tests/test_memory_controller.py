"""Tests for port allocation and the M/D/1 channel model."""

import pytest

from repro.errors import ConfigurationError
from repro.memory import PortAllocator, QueuedChannel
from repro.units import GB


class TestPortAllocator:
    def test_one_core_gets_all_ports(self):
        assignment = PortAllocator(16, 6.25 * GB).assign(1)
        assert assignment.ports_per_core == 16
        assert assignment.bandwidth_per_core_bytes_s == pytest.approx(100 * GB)

    def test_sixteen_cores_one_port_each(self):
        assignment = PortAllocator(16, 6.25 * GB).assign(16)
        assert assignment.ports_per_core == 1
        assert assignment.cores_per_port == 1
        assert assignment.bandwidth_per_core_bytes_s == pytest.approx(6.25 * GB)

    def test_thirty_two_cores_share_ports(self):
        # §4.1.2/§5.3: past 16 cores, two Memcached threads share a port.
        assignment = PortAllocator(16, 6.25 * GB).assign(32)
        assert assignment.cores_per_port == 2
        assert assignment.ports_per_core == 0
        assert assignment.bandwidth_per_core_bytes_s == pytest.approx(3.125 * GB)

    def test_uneven_sharing_rejected(self):
        with pytest.raises(ConfigurationError, match="evenly"):
            PortAllocator(16, 6.25 * GB).assign(24)

    def test_odd_core_counts_below_ports_allowed(self):
        assignment = PortAllocator(16, 6.25 * GB).assign(3)
        assert assignment.ports_per_core == 5  # one port left idle

    def test_zero_cores_rejected(self):
        with pytest.raises(ConfigurationError):
            PortAllocator(16, 6.25 * GB).assign(0)

    def test_bad_construction_rejected(self):
        with pytest.raises(ConfigurationError):
            PortAllocator(0, 6.25 * GB)
        with pytest.raises(ConfigurationError):
            PortAllocator(16, 0.0)


class TestQueuedChannel:
    def test_zero_load_means_no_wait(self):
        channel = QueuedChannel(service_time_s=1e-6)
        assert channel.waiting_time(0.0) == 0.0
        assert channel.response_time(0.0) == pytest.approx(1e-6)

    def test_wait_grows_with_load(self):
        channel = QueuedChannel(service_time_s=1e-6)
        waits = [channel.waiting_time(rate) for rate in (1e5, 5e5, 9e5)]
        assert waits == sorted(waits)
        assert waits[-1] > waits[0] * 5

    def test_md1_formula_at_half_load(self):
        channel = QueuedChannel(service_time_s=1e-6)
        # rho=0.5: W_q = 0.5*S/(2*0.5) = S/2.
        assert channel.waiting_time(5e5) == pytest.approx(0.5e-6)

    def test_saturation_rejected(self):
        channel = QueuedChannel(service_time_s=1e-6)
        with pytest.raises(ConfigurationError, match="saturated"):
            channel.waiting_time(1e6)

    def test_max_rate_for_response_inverts(self):
        channel = QueuedChannel(service_time_s=1e-6)
        target = 2e-6
        rate = channel.max_rate_for_response(target)
        assert channel.response_time(rate) == pytest.approx(target, rel=1e-6)

    def test_max_rate_unreachable_target(self):
        channel = QueuedChannel(service_time_s=1e-6)
        assert channel.max_rate_for_response(0.5e-6) == 0.0

    def test_port_sharing_is_benign_at_64b(self):
        # Validates the paper's linear-scaling assumption for Mercury-32:
        # two A7s sharing one DRAM port at 64 B-request rates add
        # negligible queueing delay.
        per_core_tps = 12_000.0
        bytes_per_request = 2 * 200  # item in + out, generously
        service = bytes_per_request / (6.25 * GB)
        channel = QueuedChannel(service_time_s=service)
        wait = channel.waiting_time(2 * per_core_tps)
        assert wait < 1e-9  # far below any RTT component
