"""Unit tests for :mod:`repro.analysis.bench_track`.

History append/load round-trips through real files (tmp_path); the
regression report is checked against hand-built runs; the CLI entry
point's exit codes are what CI gates on.
"""

import json

import pytest

from repro.analysis.bench_track import (
    Delta,
    append_run,
    load_history,
    main,
    regression_report,
    render_report,
)
from repro.errors import ConfigurationError


class TestHistoryFile:
    def test_load_missing_is_empty(self, tmp_path):
        history = load_history(tmp_path / "BENCH_history.json")
        assert history == {"version": 1, "runs": []}

    def test_append_and_reload(self, tmp_path):
        path = tmp_path / "BENCH_history.json"
        entry = append_run(
            path,
            {"bench_a": {"tps": 1000.0, "wall_s": 0.5}},
            meta={"python": "3.12"},
        )
        assert entry["seq"] == 1
        append_run(path, {"bench_a": {"tps": 900.0, "wall_s": 0.6}})
        history = load_history(path)
        assert [run["seq"] for run in history["runs"]] == [1, 2]
        assert history["runs"][0]["meta"]["python"] == "3.12"
        assert history["runs"][1]["records"]["bench_a"]["tps"] == 900.0

    def test_append_drops_non_finite_and_rejects_empty(self, tmp_path):
        path = tmp_path / "h.json"
        entry = append_run(
            path, {"b": {"tps": 100.0, "rtt_s": float("nan")}}
        )
        assert entry["records"]["b"] == {"tps": 100.0}
        with pytest.raises(ConfigurationError):
            append_run(path, {})
        with pytest.raises(ConfigurationError):
            append_run(path, {"b": {"tps": float("inf")}})

    def test_history_capped(self, tmp_path):
        path = tmp_path / "h.json"
        for i in range(5):
            append_run(path, {"b": {"wall_s": float(i + 1)}}, max_runs=3)
        runs = load_history(path)["runs"]
        assert [run["seq"] for run in runs] == [3, 4, 5]

    def test_corrupt_file_raises(self, tmp_path):
        path = tmp_path / "h.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError):
            load_history(path)
        path.write_text(json.dumps({"version": 99, "runs": []}))
        with pytest.raises(ConfigurationError):
            load_history(path)


def _history(*runs):
    return {
        "version": 1,
        "runs": [
            {"seq": i + 1, "records": records} for i, records in enumerate(runs)
        ],
    }


class TestRegressionReport:
    def test_needs_two_runs(self):
        assert regression_report(_history()) == []
        assert regression_report(_history({"b": {"tps": 1.0}})) == []

    def test_flags_tps_drop_over_threshold(self):
        history = _history(
            {"fast": {"tps": 1000.0}, "slow": {"tps": 1000.0}},
            {"fast": {"tps": 950.0}, "slow": {"tps": 850.0}},
        )
        deltas = regression_report(history, tps_threshold=0.10)
        by_bench = {d.bench: d for d in deltas}
        assert not by_bench["fast"].flagged  # -5% is inside the budget
        assert by_bench["slow"].flagged  # -15% is not
        assert by_bench["slow"].change == pytest.approx(-0.15)

    def test_flags_wall_clock_growth(self):
        history = _history(
            {"b": {"wall_s": 1.0}},
            {"b": {"wall_s": 2.0}},
        )
        assert regression_report(history, wall_threshold=0.75)[0].flagged
        assert not regression_report(history, wall_threshold=1.5)[0].flagged

    def test_rtt_reported_but_never_flagged(self):
        history = _history(
            {"b": {"rtt_s": 1e-4}},
            {"b": {"rtt_s": 9e-4}},
        )
        (delta,) = regression_report(history)
        assert delta.field == "rtt_s" and not delta.flagged

    def test_disjoint_benchmarks_skipped(self):
        history = _history(
            {"old_bench": {"tps": 1.0}},
            {"new_bench": {"tps": 1.0}},
        )
        assert regression_report(history) == []

    def test_render(self):
        history = _history(
            {"b": {"tps": 1000.0}},
            {"b": {"tps": 800.0}},
        )
        text = render_report(regression_report(history))
        assert "1 regression(s) flagged" in text
        assert "tps dropped 20.0%" in text
        assert render_report([]).startswith("bench tracker: fewer than two runs")
        clean = render_report(
            regression_report(_history({"b": {"tps": 1.0}}, {"b": {"tps": 1.0}}))
        )
        assert "no regressions flagged" in clean

    def test_delta_ratio_edge_cases(self):
        assert Delta("b", "tps", 0.0, 5.0, False).ratio == float("inf")
        assert Delta("b", "tps", 0.0, 0.0, False).ratio == 1.0
        assert Delta("b", "tps", 2.0, 1.0, False).change == pytest.approx(-0.5)


class TestCli:
    def _write(self, tmp_path, *runs):
        path = tmp_path / "BENCH_history.json"
        path.write_text(json.dumps(_history(*runs)))
        return path

    def test_clean_run_exits_zero(self, tmp_path, capsys):
        path = self._write(
            tmp_path, {"b": {"tps": 1000.0}}, {"b": {"tps": 1010.0}}
        )
        assert main(["--history", str(path), "--check"]) == 0
        assert "no regressions flagged" in capsys.readouterr().out

    def test_regression_fails_check(self, tmp_path, capsys):
        path = self._write(
            tmp_path, {"b": {"tps": 1000.0}}, {"b": {"tps": 800.0}}
        )
        assert main(["--history", str(path), "--check"]) == 1
        # Without --check it reports but does not fail.
        assert main(["--history", str(path)]) == 0

    def test_threshold_flag(self, tmp_path):
        path = self._write(
            tmp_path, {"b": {"tps": 1000.0}}, {"b": {"tps": 800.0}}
        )
        assert main(["--history", str(path), "--check", "--tps-threshold", "0.3"]) == 0

    def test_corrupt_history_exits_two(self, tmp_path, capsys):
        path = tmp_path / "h.json"
        path.write_text("{not json")
        assert main(["--history", str(path)]) == 2
        assert "error:" in capsys.readouterr().out
