"""Full-system integration tests for the tiered flash store.

The wiring contract: ``RunOptions.flashstore`` routes every served op
through a per-core :class:`TieredFlashStore` mirror, swaps the
calibrated flash stall for the measured per-op flash time, charges
conversion/compaction to the DES cores as follow-from background work,
and surfaces per-tier results in ``FullSystemResults.flashstore`` plus
``flashstore_*`` registry metrics and per-tier GET/PUT spans in the
causal tracer.  Invalid combinations (DRAM stack, replication,
batching) must refuse loudly rather than silently measure nothing.
"""

from __future__ import annotations

import pytest

from repro.core import iridium_stack, mercury_stack
from repro.errors import ConfigurationError
from repro.flashstore import TieredStoreConfig
from repro.kvstore.batching import BatchPolicy
from repro.replication.config import ReplicationConfig
from repro.sim.full_system import FullSystemStack
from repro.sim.run_options import RunOptions
from repro.telemetry import TelemetrySession
from repro.units import MB
from repro.workloads import WorkloadSpec
from repro.workloads.distributions import fixed_size

WORKLOAD = WorkloadSpec(
    name="flashstore-system",
    get_fraction=0.5,
    key_population=4_000,
    value_sizes=fixed_size(64),
)

CONFIG = TieredStoreConfig(log_segment_pages=8)


def _build(family="iridium", seed=7):
    build = mercury_stack if family == "mercury" else iridium_stack
    return FullSystemStack(
        stack=build(cores=4), memory_per_core_bytes=8 * MB, seed=seed
    )


def _options(**overrides):
    defaults = dict(
        offered_rate_hz=12_000.0,
        duration_s=0.3,
        warmup_requests=4_000,
        flashstore=CONFIG,
    )
    defaults.update(overrides)
    return RunOptions(**defaults)


class TestInvalidCombinations:
    def test_mercury_stack_refuses(self):
        with pytest.raises(ConfigurationError, match="flash"):
            _build("mercury").run(WORKLOAD, _options())

    def test_replication_refuses(self):
        with pytest.raises(ConfigurationError, match="replication"):
            _build().run(
                WORKLOAD,
                _options(replication=ReplicationConfig(n=2, r=1, w=2)),
            )

    def test_batching_refuses(self):
        with pytest.raises(ConfigurationError, match="batched"):
            _build().run(
                WORKLOAD,
                _options(
                    batching=BatchPolicy(batch_max=16, linger_s=100e-6)
                ),
            )


class TestResultsSurface:
    @pytest.fixture(scope="class")
    def run(self):
        telemetry = TelemetrySession(max_traces=50_000)
        system = _build()
        results = system.run(WORKLOAD, _options(telemetry=telemetry))
        return results, telemetry

    def test_summary_has_the_headline_ratios(self, run):
        results, _ = run
        summary = results.flashstore
        assert summary["host_puts"] > 0
        assert summary["get_hits"] > 0
        assert summary["write_amplification"] > 0.0
        assert 1.0 <= summary["read_amplification"] <= 1.1
        assert summary["index_bytes_per_key"] > 0.0
        assert summary["conversions"] > 0
        assert set(summary["pages_programmed"]) == {
            "log", "conversion", "compaction"
        }
        assert set(summary["hits_by_tier"]) == {"log", "hash", "sorted"}

    def test_summary_serialises_with_results(self, run):
        results, _ = run
        payload = results.to_dict()
        assert payload["flashstore"] == results.flashstore

    def test_gauges_and_background_histograms_land_in_registry(self, run):
        _, telemetry = run
        names = {metric.name for metric in telemetry.registry}
        assert "flashstore_write_amplification" in names
        assert "flashstore_read_amplification" in names
        assert "flashstore_index_bytes_per_key" in names
        busy = [
            metric
            for metric in telemetry.registry
            if metric.name == "background_busy_seconds"
            and ("task", "conversion") in metric.labels
        ]
        assert busy and busy[0].count > 0

    def test_warmup_traffic_is_not_metered(self, run):
        results, telemetry = run
        appends = [
            metric.value
            for metric in telemetry.registry
            if metric.name == "flashstore_appends_total"
        ]
        # Counters only see the measured window: they equal the results'
        # host_puts, which exclude the 4000 warmup PUTs.
        assert appends == [results.flashstore["host_puts"]]

    def test_per_tier_spans_nest_under_memcached(self, run):
        _, telemetry = run
        tier_spans = 0
        for trace in telemetry.tracer.traces:
            by_id = {span.span_id: span for span in trace.spans}
            for span in trace.spans:
                if not span.name.startswith("flash_"):
                    continue
                tier_spans += 1
                assert span.name in (
                    "flash_log", "flash_hash", "flash_sorted"
                )
                parent = by_id[span.parent_id]
                assert parent.name == "memcached"
                assert span.start_s >= parent.start_s - 1e-12
                assert span.end_s <= parent.end_s + 1e-12
        assert tier_spans > 100

    def test_background_work_rides_follow_from_spans(self, run):
        _, telemetry = run
        follow = {span.name for span in telemetry.tracer.follow_spans}
        assert "conversion" in follow
        assert "compaction" in follow


class TestRunOptionsRoundTrip:
    def test_flashstore_config_round_trips(self):
        options = _options()
        rebuilt = RunOptions.from_dict(options.to_dict())
        assert rebuilt.flashstore == CONFIG
        assert rebuilt == options

    def test_config_rejects_unknown_fields(self):
        with pytest.raises(ConfigurationError):
            TieredStoreConfig.from_dict({"log_segment_pages": 8, "bogus": 1})

    def test_config_validates_knobs(self):
        with pytest.raises(ConfigurationError):
            TieredStoreConfig(log_segment_pages=0)
        with pytest.raises(ConfigurationError):
            TieredStoreConfig(fingerprint_bits=2)
        with pytest.raises(ConfigurationError):
            TieredStoreConfig(max_hash_stores=0)


class TestTieredTiming:
    def test_request_timing_tiered_swaps_the_flash_stall(self):
        model = iridium_stack(cores=4).latency_model()
        base = model.request_timing("GET", 64)
        tiered = model.request_timing_tiered("GET", 64, 30e-6)
        assert tiered.hash_s == base.hash_s
        assert tiered.network_s <= base.network_s
        assert tiered.memcached_s != base.memcached_s
        # More flash service means strictly more memcached time.
        slower = model.request_timing_tiered("GET", 64, 60e-6)
        assert slower.memcached_s > tiered.memcached_s

    def test_rejects_dram_stacks_and_negative_service(self):
        dram = mercury_stack(cores=4).latency_model()
        with pytest.raises(ConfigurationError):
            dram.request_timing_tiered("GET", 64, 10e-6)
        flash = iridium_stack(cores=4).latency_model()
        with pytest.raises(ConfigurationError):
            flash.request_timing_tiered("GET", 64, -1e-6)
