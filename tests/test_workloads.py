"""Tests for workload generation: distributions, streams, diurnal, sweep."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.sim.rng import make_rng
from repro.workloads import (
    ETC_VALUE_SIZES,
    NETFLIX_LIKE,
    REQUEST_SIZE_SWEEP,
    DiurnalTraffic,
    Request,
    WorkloadGenerator,
    WorkloadSpec,
    ZipfKeys,
    sweep_sizes,
)
from repro.workloads.distributions import ValueSizeDistribution, fixed_size, lognormal_sizes
from repro.workloads.sweep import sweep_labels


class TestZipfKeys:
    def test_probabilities_sum_to_one(self):
        zipf = ZipfKeys(population=100, skew=0.99)
        assert sum(zipf.probability(r) for r in range(100)) == pytest.approx(1.0)

    def test_rank_zero_is_hottest(self):
        zipf = ZipfKeys(population=1000, skew=0.99)
        assert zipf.probability(0) > zipf.probability(1) > zipf.probability(999)

    def test_sampling_respects_skew(self):
        rng = make_rng("zipf", 0)
        zipf = ZipfKeys(population=10_000, skew=0.99)
        ranks = [zipf.rank(rng) for _ in range(5_000)]
        top_ten_share = sum(1 for r in ranks if r < 10) / len(ranks)
        assert top_ten_share > 0.2  # heavy head

    def test_uniform_when_skew_zero(self):
        rng = make_rng("zipf", 1)
        zipf = ZipfKeys(population=10, skew=0.0)
        for rank in range(10):
            assert zipf.probability(rank) == pytest.approx(0.1)

    def test_keys_are_stable_labels(self):
        rng = make_rng("zipf", 2)
        key = ZipfKeys(population=10).key(rng)
        assert key.startswith(b"key-")

    def test_bad_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            ZipfKeys(population=0)
        with pytest.raises(ConfigurationError):
            ZipfKeys(population=10, skew=-1)
        with pytest.raises(ConfigurationError):
            ZipfKeys(population=10).probability(10)

    @given(skew=st.floats(min_value=0.0, max_value=2.0))
    @settings(max_examples=20, deadline=None)
    def test_ranks_always_in_range(self, skew):
        rng = make_rng("zipf-prop", 0)
        zipf = ZipfKeys(population=50, skew=skew)
        for _ in range(200):
            assert 0 <= zipf.rank(rng) < 50


class TestValueSizes:
    def test_fixed_size_always_same(self):
        rng = make_rng("sizes", 0)
        dist = fixed_size(64)
        assert all(dist.sample(rng) == 64 for _ in range(20))
        assert dist.mean == 64.0

    def test_etc_mix_mean_is_sub_kb(self):
        # Atikoglu et al.: ETC values concentrate well below 1 KB.
        assert ETC_VALUE_SIZES.mean < 4096

    def test_etc_samples_come_from_the_mix(self):
        rng = make_rng("sizes", 1)
        allowed = {size for size, _w in ETC_VALUE_SIZES.points}
        for _ in range(200):
            assert ETC_VALUE_SIZES.sample(rng) in allowed

    def test_lognormal_builder(self):
        dist = lognormal_sizes("photos", median_bytes=65536, sigma=1.0)
        assert dist.mean > 10_000
        rng = make_rng("sizes", 2)
        assert all(dist.sample(rng) >= 1 for _ in range(100))

    def test_lognormal_bad_params(self):
        with pytest.raises(ConfigurationError):
            lognormal_sizes("x", median_bytes=0, sigma=1.0)
        with pytest.raises(ConfigurationError):
            lognormal_sizes("x", median_bytes=1 << 30, sigma=0.1, max_bytes=1024)

    def test_empty_distribution_rejected(self):
        with pytest.raises(ConfigurationError):
            ValueSizeDistribution(name="empty", points=())


class TestWorkloadGenerator:
    def test_all_get_spec(self):
        spec = WorkloadSpec(name="g", get_fraction=1.0)
        generator = WorkloadGenerator(spec, seed=0)
        assert all(r.verb == "GET" for r in generator.stream(100))

    def test_mixed_spec_roughly_matches_fraction(self):
        spec = WorkloadSpec(name="m", get_fraction=0.7)
        generator = WorkloadGenerator(spec, seed=0)
        gets = sum(1 for r in generator.stream(2000) if r.verb == "GET")
        assert 0.6 < gets / 2000 < 0.8

    def test_value_size_stable_per_key(self):
        spec = WorkloadSpec(name="s", value_sizes=ETC_VALUE_SIZES, key_population=50)
        generator = WorkloadGenerator(spec, seed=0)
        sizes: dict[bytes, int] = {}
        for request in generator.stream(500):
            if request.key in sizes:
                assert sizes[request.key] == request.value_bytes
            sizes[request.key] = request.value_bytes

    def test_deterministic_given_seed(self):
        spec = WorkloadSpec(name="d")
        a = [r for r in WorkloadGenerator(spec, seed=5).stream(50)]
        b = [r for r in WorkloadGenerator(spec, seed=5).stream(50)]
        assert a == b

    def test_bad_spec_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(name="bad", get_fraction=1.5)
        with pytest.raises(ConfigurationError):
            WorkloadSpec(name="bad", key_population=0)

    def test_bad_request_rejected(self):
        with pytest.raises(ConfigurationError):
            Request(verb="SCAN", key=b"k", value_bytes=1)
        with pytest.raises(ConfigurationError):
            Request(verb="GET", key=b"k", value_bytes=-1)

    def test_negative_count_rejected(self):
        generator = WorkloadGenerator(WorkloadSpec(name="n"))
        with pytest.raises(ConfigurationError):
            list(generator.stream(-1))


class TestDiurnal:
    def test_peak_at_peak_hour(self):
        traffic = DiurnalTraffic(peak_rate_hz=1000.0, trough_fraction=0.2, peak_hour=13)
        assert traffic.rate(13) == pytest.approx(1000.0)
        assert traffic.rate(1) == pytest.approx(200.0)

    def test_mean_rate_between_trough_and_peak(self):
        assert NETFLIX_LIKE.mean_rate() == pytest.approx(
            NETFLIX_LIKE.peak_rate_hz * 0.65
        )

    def test_rate_wraps_around_midnight(self):
        traffic = DiurnalTraffic(peak_rate_hz=100.0)
        assert traffic.rate(0.0) == pytest.approx(traffic.rate(24.0))

    def test_servers_needed_tracks_traffic(self):
        peak = NETFLIX_LIKE.servers_needed(13, per_server_rate_hz=20_000)
        trough = NETFLIX_LIKE.servers_needed(1, per_server_rate_hz=20_000)
        assert peak > trough >= 1

    def test_stranded_capacity(self):
        traffic = DiurnalTraffic(peak_rate_hz=100.0, trough_fraction=0.0)
        assert traffic.stranded_capacity_fraction() == pytest.approx(0.5)

    def test_bad_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            DiurnalTraffic(peak_rate_hz=0)
        with pytest.raises(ConfigurationError):
            DiurnalTraffic(peak_rate_hz=1, trough_fraction=2.0)
        with pytest.raises(ConfigurationError):
            NETFLIX_LIKE.servers_needed(1, per_server_rate_hz=0)


class TestSweep:
    def test_paper_sweep_is_64b_to_1mb_doubling(self):
        assert REQUEST_SIZE_SWEEP[0] == 64
        assert REQUEST_SIZE_SWEEP[-1] == 1 << 20
        assert len(REQUEST_SIZE_SWEEP) == 15
        for small, large in zip(REQUEST_SIZE_SWEEP, REQUEST_SIZE_SWEEP[1:]):
            assert large == 2 * small

    def test_sweep_sizes_builder(self):
        assert sweep_sizes(64, 256) == [64, 128, 256]
        assert sweep_sizes(100, 100) == [100]
        assert sweep_sizes() == list(REQUEST_SIZE_SWEEP)

    def test_sweep_labels(self):
        labels = sweep_labels()
        assert labels[0] == "64"
        assert labels[-1] == "1M"

    def test_bad_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep_sizes(0, 64)
        with pytest.raises(ConfigurationError):
            sweep_sizes(128, 64)

    def test_non_power_of_two_multiple_bounds_rejected(self):
        # A sweep that can never land on max_bytes used to stop early
        # and silently drop the requested maximum.
        with pytest.raises(ConfigurationError, match="power of two"):
            sweep_sizes(64, 100)
        with pytest.raises(ConfigurationError, match="power of two"):
            sweep_sizes(64, 192)  # 3x is not a power of two
        with pytest.raises(ConfigurationError, match="power of two"):
            sweep_sizes(100, 250)
