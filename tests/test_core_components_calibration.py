"""Tests for the Table 1 catalogue and the calibration constants."""

import pytest

from repro.core import DEFAULT_CALIBRATION, CalibrationConstants, component_by_name
from repro.core.components import COMPONENT_CATALOG
from repro.errors import ConfigurationError
from repro.units import GB


class TestComponentCatalog:
    def test_table1_has_seven_rows(self):
        assert len(COMPONENT_CATALOG) == 7

    @pytest.mark.parametrize(
        "name,power_w,area_mm2",
        [
            ("A7@1GHz", 0.100, 0.58),
            ("A15@1GHz", 0.600, 2.82),
            ("A15@1.5GHz", 1.000, 2.82),
            ("3D Stack NIC (MAC)", 0.120, 0.43),
            ("Physical NIC (PHY)", 0.300, 220.0),
        ],
    )
    def test_fixed_power_rows(self, name, power_w, area_mm2):
        component = component_by_name(name)
        assert component.power_w == pytest.approx(power_w)
        assert component.area_mm2 == pytest.approx(area_mm2)

    def test_dram_row_is_bandwidth_proportional(self):
        dram = component_by_name("3D DRAM (4GB)")
        assert dram.power_w_per_gbs == pytest.approx(0.210)
        assert dram.power_at(10 * GB) == pytest.approx(2.10)

    def test_flash_row(self):
        flash = component_by_name("3D NAND Flash (19.8GB)")
        assert flash.power_w_per_gbs == pytest.approx(0.006)
        assert flash.area_mm2 == pytest.approx(279.0)

    def test_unknown_component_raises(self):
        with pytest.raises(ConfigurationError):
            component_by_name("quantum link")

    def test_all_rows_have_provenance(self):
        for component in COMPONENT_CATALOG:
            assert component.provenance

    def test_negative_bandwidth_rejected(self):
        with pytest.raises(ConfigurationError):
            component_by_name("3D DRAM (4GB)").power_at(-1.0)

    def test_catalog_matches_cpu_models(self):
        # Table 1 and the CPU catalogue must agree.
        from repro.cpu import CORTEX_A7, CORTEX_A15_1GHZ

        assert component_by_name("A7@1GHz").power_w == CORTEX_A7.power_w
        assert component_by_name("A15@1GHz").area_mm2 == CORTEX_A15_1GHZ.area_mm2


class TestCalibration:
    def test_defaults_validate(self):
        assert DEFAULT_CALIBRATION.tcp.per_transaction_instructions > 0

    def test_hash_instructions_linear(self):
        cal = DEFAULT_CALIBRATION
        assert cal.hash_instructions(64) > cal.hash_instructions(8)
        assert cal.hash_instructions() == cal.hash_instructions(cal.default_key_bytes)

    def test_hash_bad_key_length(self):
        with pytest.raises(ConfigurationError):
            DEFAULT_CALIBRATION.hash_instructions(0)

    def test_negative_constants_rejected(self):
        with pytest.raises(ConfigurationError):
            CalibrationConstants(memcached_get_instructions=-1)

    def test_sub_unit_mlp_rejected(self):
        with pytest.raises(ConfigurationError):
            CalibrationConstants(ifetch_mlp_cap=0.5)

    def test_write_amplification_floor(self):
        with pytest.raises(ConfigurationError):
            CalibrationConstants(flash_write_amplification=0.9)

    def test_no_l2_footprint_larger_than_with_l2(self):
        # The premise: losing the L2 exposes far more instruction misses.
        cal = DEFAULT_CALIBRATION
        assert cal.ifetch_misses_without_l2 > 10 * cal.ifetch_misses_with_l2

    def test_put_heavier_than_get(self):
        cal = DEFAULT_CALIBRATION
        assert cal.memcached_put_instructions > cal.memcached_get_instructions
        assert cal.data_accesses_put > cal.data_accesses_get

    def test_ablation_constants_are_overridable(self):
        custom = CalibrationConstants(memcached_get_instructions=9_999.0)
        assert custom.memcached_get_instructions == 9_999.0
        # and the default is untouched (frozen instances)
        assert DEFAULT_CALIBRATION.memcached_get_instructions != 9_999.0
