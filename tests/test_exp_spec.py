"""ExperimentSpec / StackSpec / GridSpec: validation and round trips."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import OperatingPoint, evaluate_server
from repro.core.server import ServerDesign
from repro.core.stack import mercury_stack
from repro.errors import ConfigurationError
from repro.exp import CORE_MODELS, ExperimentSpec, GridSpec, StackSpec, design_point_grid
from repro.exp.spec import workload_from_dict, workload_to_dict
from repro.sim.run_options import RunOptions
from repro.telemetry import TelemetrySession
from repro.workloads import WorkloadSpec
from repro.workloads.distributions import ETC_VALUE_SIZES, fixed_size


def full_system_spec(**overrides) -> ExperimentSpec:
    fields = dict(
        kind="full_system",
        stack=StackSpec(cores=2, memory_per_core_bytes=4 << 20),
        seed=7,
        workload=WorkloadSpec(
            name="spec-test",
            get_fraction=0.9,
            key_population=2_000,
            value_sizes=fixed_size(64),
        ),
        options=RunOptions(offered_rate_hz=5e3, duration_s=0.1),
    )
    fields.update(overrides)
    return ExperimentSpec(**fields)


class TestStackSpec:
    def test_build_matches_direct_construction(self):
        built = StackSpec(family="mercury", cores=8, core="A7@1GHz").build()
        direct = mercury_stack(8, core=CORE_MODELS["A7@1GHz"])
        # StackConfig holds a live NIC MAC object, so compare identity
        # by the fields that define the design point.
        assert built.name == direct.name
        assert built.cores == direct.cores
        assert built.core == direct.core
        assert built.capacity_bytes == direct.capacity_bytes
        assert built.has_l2 == direct.has_l2

    def test_unknown_family_rejected(self):
        with pytest.raises(ConfigurationError, match="family"):
            StackSpec(family="jupiter")

    def test_unknown_core_rejected(self):
        with pytest.raises(ConfigurationError, match="core model"):
            StackSpec(core="M1@3GHz")

    def test_round_trip(self):
        spec = StackSpec(family="iridium", cores=16, core="A15@1GHz",
                         has_l2=False, memory_per_core_bytes=1 << 22)
        assert StackSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec


class TestWorkloadSerialisation:
    def test_fixed_size_round_trip(self):
        workload = WorkloadSpec(
            name="w", get_fraction=0.8, key_population=500,
            value_sizes=fixed_size(128),
        )
        assert workload_from_dict(workload_to_dict(workload)) == workload

    def test_etc_distribution_round_trip(self):
        workload = WorkloadSpec(name="etc", value_sizes=ETC_VALUE_SIZES)
        rebuilt = workload_from_dict(
            json.loads(json.dumps(workload_to_dict(workload)))
        )
        assert rebuilt == workload
        assert rebuilt.value_sizes.points == ETC_VALUE_SIZES.points


class TestExperimentSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="kind"):
            ExperimentSpec(kind="quantum")

    def test_full_system_requires_workload_and_options(self):
        with pytest.raises(ConfigurationError, match="workload"):
            ExperimentSpec(kind="full_system")

    def test_instrumented_options_rejected(self):
        options = RunOptions(5e3, 0.1).with_instruments(
            telemetry=TelemetrySession()
        )
        with pytest.raises(ConfigurationError, match="instruments"):
            full_system_spec(options=options)

    def test_label_excluded_from_identity(self):
        a = full_system_spec(label="first")
        b = full_system_spec(label="second")
        assert a == b

    def test_round_trip_through_json(self):
        spec = full_system_spec()
        rebuilt = ExperimentSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))
        )
        assert rebuilt == spec
        assert rebuilt.to_dict() == spec.to_dict()

    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        cores=st.sampled_from((1, 2, 4, 8, 16, 32)),
        core=st.sampled_from(sorted(CORE_MODELS)),
        verb=st.sampled_from(("GET", "PUT")),
        value_bytes=st.sampled_from((64, 128, 4096)),
        scale=st.floats(min_value=0.1, max_value=10.0),
    )
    @settings(max_examples=50)
    def test_design_point_round_trip_property(
        self, seed, cores, core, verb, value_bytes, scale
    ):
        spec = ExperimentSpec(
            kind="design_point",
            stack=StackSpec(cores=cores, core=core),
            seed=seed,
            verb=verb,
            value_bytes=value_bytes,
            calibration_scale=(("tcp.per_byte_instructions", scale),),
        )
        rebuilt = ExperimentSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))
        )
        assert rebuilt == spec

    def test_design_point_execute_matches_evaluate_server(self):
        spec = ExperimentSpec(
            kind="design_point", stack=StackSpec(cores=32), verb="GET"
        )
        result = spec.execute()
        metrics = evaluate_server(
            ServerDesign(stack=mercury_stack(32)), OperatingPoint()
        )
        assert result["tps"] == metrics.tps
        assert result["density_gb"] == metrics.density_gb
        assert result["power_w"] == metrics.power_w

    def test_headline_execute_reports_ratios(self):
        result = ExperimentSpec(kind="headline").execute()
        assert result["kind"] == "headline"
        assert result["mercury_tps_x"] > 3.0

    def test_full_system_execute_is_deterministic(self):
        spec = full_system_spec()
        assert spec.execute() == spec.execute()


class TestGridSpec:
    def test_expansion_order_and_labels(self):
        grid = GridSpec(
            name="g",
            base=ExperimentSpec(kind="design_point"),
            axes=(
                ("stack.family", ("mercury", "iridium")),
                ("stack.cores", (4, 8)),
            ),
        )
        specs = grid.expand()
        assert len(grid) == len(specs) == 4
        assert [s.label for s in specs] == [
            "g[family=mercury,cores=4]",
            "g[family=mercury,cores=8]",
            "g[family=iridium,cores=4]",
            "g[family=iridium,cores=8]",
        ]

    def test_unknown_axis_path_rejected(self):
        grid = GridSpec(
            name="g",
            base=ExperimentSpec(kind="design_point"),
            axes=(("stack.wheels", (1, 2)),),
        )
        with pytest.raises(ConfigurationError, match="wheels"):
            grid.expand()

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigurationError, match="no values"):
            GridSpec(
                name="g",
                base=ExperimentSpec(kind="design_point"),
                axes=(("stack.cores", ()),),
            )

    def test_round_trip(self):
        grid = design_point_grid(cores_per_stack=(2, 4))
        rebuilt = GridSpec.from_dict(json.loads(json.dumps(grid.to_dict())))
        assert rebuilt == grid
        assert rebuilt.expand() == grid.expand()

    def test_fig7_grid_covers_design_space(self):
        from repro.core.design_space import CORES_PER_STACK_SWEEP, EVALUATED_CORES

        grid = design_point_grid()
        assert len(grid) == 2 * len(EVALUATED_CORES) * len(CORES_PER_STACK_SWEEP)
