"""Tests for the TCP cost model and the NIC MAC/PHY."""

import pytest

from repro.errors import ConfigurationError
from repro.network import DEFAULT_TCP_COSTS, NicMac, NicPhy, TcpCostModel
from repro.network.packets import request_wire_payloads


class TestTcpCostModel:
    def test_instruction_components_add_up(self):
        model = TcpCostModel(
            per_transaction_instructions=1000,
            per_packet_instructions=100,
            per_byte_instructions=1.0,
        )
        wire = request_wire_payloads("GET", 64)
        expected = 1000 + 100 * wire.total_packets + wire.total_payload
        assert model.instructions_for(wire) == pytest.approx(expected)

    def test_cost_grows_with_value_size(self):
        small = DEFAULT_TCP_COSTS.instructions_for(request_wire_payloads("GET", 64))
        large = DEFAULT_TCP_COSTS.instructions_for(request_wire_payloads("GET", 1 << 20))
        assert large > 50 * small

    def test_packet_burst_costs(self):
        assert DEFAULT_TCP_COSTS.instructions_for_packets(0, 0) == 0.0
        assert DEFAULT_TCP_COSTS.instructions_for_packets(2, 100) == pytest.approx(
            2 * DEFAULT_TCP_COSTS.per_packet_instructions
            + 100 * DEFAULT_TCP_COSTS.per_byte_instructions
        )

    def test_negative_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            DEFAULT_TCP_COSTS.instructions_for_packets(-1, 0)
        with pytest.raises(ConfigurationError):
            TcpCostModel(per_transaction_instructions=-1)


class TestNicPhy:
    def test_table1_power_and_area(self):
        phy = NicPhy()
        assert phy.power_w == pytest.approx(0.300)
        assert phy.area_mm2 == pytest.approx(220.0)

    def test_dual_phy_chip_area(self):
        # §5.5: each 441 mm^2 PHY chip carries two PHYs.
        assert NicPhy().chip_area_mm2 == pytest.approx(440.0)

    def test_wire_time(self):
        phy = NicPhy()
        assert phy.wire_time(1_250_000_000) == pytest.approx(1.0, rel=0.01)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ConfigurationError):
            NicPhy().wire_time(-1)


class TestNicMac:
    def test_table1_power_and_area(self):
        mac = NicMac()
        assert mac.power_w == pytest.approx(0.120)
        assert mac.area_mm2 == pytest.approx(0.43)

    def test_routing_by_tcp_port(self):
        # §4.1.4: cores on one stack run Memcached on different TCP ports.
        mac = NicMac()
        mac.bind(11211, core_id=0)
        mac.bind(11212, core_id=1)
        assert mac.core_for_port(11211) == 0
        assert mac.core_for_port(11212) == 1

    def test_duplicate_bind_rejected(self):
        mac = NicMac()
        mac.bind(11211, core_id=0)
        with pytest.raises(ConfigurationError):
            mac.bind(11211, core_id=1)

    def test_unbound_port_rejected(self):
        with pytest.raises(ConfigurationError):
            NicMac().core_for_port(11211)

    def test_enqueue_dequeue_fifo(self):
        mac = NicMac()
        mac.bind(11211, core_id=0)
        assert mac.enqueue(11211, 100)
        assert mac.enqueue(11211, 200)
        assert mac.queue_depth(0) == 2
        assert mac.dequeue(0) == (11211, 100)
        assert mac.dequeue(0) == (11211, 200)
        assert mac.dequeue(0) is None
        assert mac.forwarded == 2

    def test_buffer_overflow_drops(self):
        mac = NicMac(buffer_bytes=1000)
        mac.bind(11211, core_id=0)
        assert mac.enqueue(11211, 900)
        assert not mac.enqueue(11211, 200)
        assert mac.drops == 1
        assert mac.buffered_bytes == 900

    def test_dequeue_frees_buffer_space(self):
        mac = NicMac(buffer_bytes=1000)
        mac.bind(11211, core_id=0)
        mac.enqueue(11211, 900)
        mac.dequeue(0)
        assert mac.enqueue(11211, 900)

    def test_per_core_queues_are_independent(self):
        mac = NicMac()
        mac.bind(1, core_id=0)
        mac.bind(2, core_id=1)
        mac.enqueue(2, 64)
        assert mac.dequeue(0) is None
        assert mac.dequeue(1) == (2, 64)

    def test_bad_packet_size_rejected(self):
        mac = NicMac()
        mac.bind(1, core_id=0)
        with pytest.raises(ConfigurationError):
            mac.enqueue(1, 0)

    def test_telemetry_registry_mirrors_buffering(self):
        from repro.telemetry import MetricsRegistry

        registry = MetricsRegistry()
        mac = NicMac(buffer_bytes=1000, registry=registry)
        mac.bind(11211, core_id=0)
        mac.enqueue(11211, 900)
        assert not mac.enqueue(11211, 200)
        mac.dequeue(0)
        assert registry.counter("nic_mac_drops_total").value == 1
        assert registry.counter("nic_mac_forwarded_total").value == 1
        gauge = registry.gauge("nic_mac_buffered_bytes")
        assert gauge.value == 0
        assert gauge.high_water == 900
