"""Tests for the FAWN baseline and the Pareto-frontier analysis."""

import pytest

from repro.analysis.pareto import OBJECTIVES, ParetoPoint, pareto_frontier
from repro.baselines import MEMCACHED_14, TSSP
from repro.baselines.fawn import FAWN_KV, FawnCluster
from repro.errors import ConfigurationError


class TestFawn:
    def test_published_efficiency_ballpark(self):
        # Andersen et al. report ~330-365 queries/joule.
        assert FAWN_KV.queries_per_joule == pytest.approx(350, rel=0.05)

    def test_beats_disk_systems_by_two_orders(self):
        # The FAWN paper's claim is vs *disk-based* clusters (~1-5
        # queries/joule); in-memory memcached on a Xeon is a different
        # class and actually exceeds FAWN's per-watt rate.
        disk_based_queries_per_joule = 3.0
        assert FAWN_KV.queries_per_joule > 100 * disk_based_queries_per_joule
        assert FAWN_KV.tps_per_watt < MEMCACHED_14.tps_per_watt

    def test_absolute_throughput_is_tiny(self):
        # FAWN wins joules, not TPS: a 21-node cluster serves ~27 KTPS.
        assert FAWN_KV.tps < 50_000
        assert FAWN_KV.tps < TSSP.tps

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FawnCluster(nodes=0)
        with pytest.raises(ConfigurationError):
            FawnCluster(per_node_qps=0)


class TestParetoPoint:
    def test_domination(self):
        a = ParetoPoint(metrics=None, scores=(2.0, 2.0))
        b = ParetoPoint(metrics=None, scores=(1.0, 2.0))
        c = ParetoPoint(metrics=None, scores=(3.0, 1.0))
        assert a.dominates(b)
        assert not b.dominates(a)
        assert not a.dominates(c) and not c.dominates(a)
        assert not a.dominates(a)


class TestFrontier:
    def test_frontier_is_nonempty_subset(self):
        frontier = pareto_frontier(("tps", "density_gb"))
        assert 1 <= len(frontier) <= 36

    def test_endpoint_designs_on_tps_density_frontier(self):
        # Mercury-32/A7 (TPS winner) and Iridium-*/A7 (density winner)
        # must both sit on the TPS-vs-density frontier.
        names = {
            point.metrics.name for point in pareto_frontier(("tps", "density_gb"))
        }
        assert "Mercury-32[A7@1GHz]" in names
        assert any(name.startswith("Iridium") for name in names)

    def test_no_point_dominated_within_frontier(self):
        frontier = pareto_frontier(("tps", "tps_per_watt", "density_gb"))
        for a in frontier:
            assert not any(b.dominates(a) for b in frontier)

    def test_a15_designs_mostly_dominated(self):
        # The A7's power advantage makes most A15 configs dominated on
        # (TPS, efficiency, density) simultaneously.
        frontier = pareto_frontier(("tps", "tps_per_watt", "density_gb"))
        a15_count = sum(1 for p in frontier if "A15" in p.metrics.name)
        assert a15_count <= len(frontier) / 2

    def test_sorted_by_first_objective(self):
        frontier = pareto_frontier(("tps", "density_gb"))
        scores = [point.scores[0] for point in frontier]
        assert scores == sorted(scores, reverse=True)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            pareto_frontier(("tps",))
        with pytest.raises(ConfigurationError):
            pareto_frontier(("tps", "blast_radius"))

    def test_objectives_registry_complete(self):
        assert set(OBJECTIVES) == {
            "tps", "tps_per_watt", "tps_per_gb", "density_gb", "low_power",
        }
