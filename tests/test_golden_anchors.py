"""Golden regression tests: pin the paper artefacts to checked-in JSON.

The analytical models behind Tables 1-4 and Figures 5-8 are the paper
reproduction's contract — refactors elsewhere in the tree (fault
injection, telemetry, network plumbing) must not move a single number.
These tests regenerate each artefact and compare it against fixtures
under ``tests/golden/`` with explicit tolerances: strings and integers
must match exactly, floats to ``REL_TOL`` relative error (they are pure
arithmetic, so anything beyond round-off means the model changed).

To bless an *intentional* model change::

    pytest tests/test_golden_anchors.py --regen-golden

then review the fixture diff like any other code change.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import pytest

from repro.analysis import (
    figure5_mercury_latency_sweep,
    figure6_iridium_latency_sweep,
    figure7_density_vs_tps,
    figure8_power_vs_tps,
    table1_components,
    table2_memory_technologies,
    table3_configurations,
    table4_comparison,
)
from repro.core import iridium_stack, mercury_stack

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Relative tolerance for floats.  The artefacts are closed-form
#: arithmetic on fixed constants; 1e-9 admits float round-off across
#: platforms and nothing else.
REL_TOL = 1e-9

_TABLES = {
    "table1": table1_components,
    "table2": table2_memory_technologies,
    "table3": table3_configurations,
    "table4": table4_comparison,
}

_FIGURES = {
    "fig5": figure5_mercury_latency_sweep,
    "fig6": figure6_iridium_latency_sweep,
    "fig7": figure7_density_vs_tps,
    "fig8": figure8_power_vs_tps,
}

#: Latency-model anchor points: (family, cores, verb, value_bytes).
_ANCHORS = [
    ("mercury", 32, "GET", 64),
    ("mercury", 32, "GET", 1024),
    ("mercury", 32, "PUT", 64),
    ("iridium", 32, "GET", 64),
    ("iridium", 32, "GET", 4096),
    ("iridium", 32, "PUT", 1024),
]


def _assert_close(expected, actual, path: str = "$") -> None:
    """Structural equality with float tolerance; paths name mismatches."""
    if isinstance(expected, (int, float)) and not isinstance(expected, bool):
        assert isinstance(actual, (int, float)) and not isinstance(actual, bool), (
            f"{path}: expected a number, got {actual!r}"
        )
        assert math.isclose(expected, actual, rel_tol=REL_TOL, abs_tol=1e-12), (
            f"{path}: {actual!r} != golden {expected!r} (rel_tol={REL_TOL})"
        )
    elif isinstance(expected, list):
        assert isinstance(actual, list) and len(actual) == len(expected), (
            f"{path}: length {len(actual) if isinstance(actual, list) else 'n/a'} "
            f"!= golden {len(expected)}"
        )
        for index, (e, a) in enumerate(zip(expected, actual)):
            _assert_close(e, a, f"{path}[{index}]")
    elif isinstance(expected, dict):
        assert isinstance(actual, dict) and set(actual) == set(expected), (
            f"{path}: keys {sorted(actual) if isinstance(actual, dict) else 'n/a'} "
            f"!= golden {sorted(expected)}"
        )
        for key in expected:
            _assert_close(expected[key], actual[key], f"{path}.{key}")
    else:
        assert expected == actual, f"{path}: {actual!r} != golden {expected!r}"


def _check(name: str, payload, regen: bool) -> None:
    """Compare ``payload`` against the fixture, or rewrite it."""
    # Round-trip through JSON so tuples become lists and numbers take
    # their serialised types — the same shapes the fixture holds.
    payload = json.loads(json.dumps(payload))
    path = GOLDEN_DIR / f"{name}.json"
    if regen:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return
    if not path.exists():
        pytest.fail(
            f"missing golden fixture {path}; generate it with --regen-golden"
        )
    _assert_close(json.loads(path.read_text()), payload, path=name)


def _tables_payload() -> dict:
    payload = {}
    for name, builder in _TABLES.items():
        headers, rows = builder()
        payload[name] = {"headers": list(headers), "rows": [list(r) for r in rows]}
    return payload


def _figures_payload() -> dict:
    payload = {}
    for name, builder in _FIGURES.items():
        payload[name] = [
            {
                "title": panel.title,
                "x_label": panel.x_label,
                "x_values": list(panel.x_values),
                "series": {k: list(v) for k, v in panel.series.items()},
            }
            for panel in builder()
        ]
    return payload


def _latency_payload() -> dict:
    payload = {}
    for family, cores, verb, value_bytes in _ANCHORS:
        build = mercury_stack if family == "mercury" else iridium_stack
        timing = build(cores=cores).latency_model().request_timing(
            verb, value_bytes
        )
        payload[f"{family}-{cores} {verb} {value_bytes}B"] = {
            "hash_s": timing.hash_s,
            "memcached_s": timing.memcached_s,
            "network_s": timing.network_s,
            "total_s": timing.total_s,
            "tps": timing.tps,
        }
    return payload


def test_tables_match_golden(regen_golden):
    _check("tables", _tables_payload(), regen_golden)


def test_figures_match_golden(regen_golden):
    _check("figures", _figures_payload(), regen_golden)


def test_latency_anchors_match_golden(regen_golden):
    _check("latency_anchors", _latency_payload(), regen_golden)
