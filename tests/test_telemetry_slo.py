"""Unit tests for :mod:`repro.telemetry.slo`.

The burn-rate arithmetic is checked against hand-computed fractions;
the lifecycle tests drive a synthetic violation window through
``evaluate`` and assert the PR's alerting contract: a sustained
violation fires exactly once, and the alert clears when the short
window recovers.
"""

import pytest

from repro.errors import ConfigurationError
from repro.sim.events import Simulator
from repro.telemetry import (
    BurnRateRule,
    MetricsRegistry,
    SloMonitor,
    SloObjective,
    default_burn_rules,
    paper_sla_objectives,
)


def _monitor(threshold=10.0, registry=None, sinks=()):
    objective = SloObjective("availability", target=0.99)
    rule = BurnRateRule(
        name="availability_burn",
        objective="availability",
        long_window_s=1.0,
        short_window_s=0.5,
        threshold=threshold,
    )
    return SloMonitor(
        [objective],
        [rule],
        resolution_s=0.1,
        registry=registry if registry is not None else MetricsRegistry(),
        sinks=sinks,
    )


class TestValidation:
    def test_objective_bounds(self):
        with pytest.raises(ConfigurationError):
            SloObjective("x", target=1.0)
        with pytest.raises(ConfigurationError):
            SloObjective("x", target=0.999, deadline_s=0.0)

    def test_rule_bounds(self):
        with pytest.raises(ConfigurationError):
            BurnRateRule("r", "o", long_window_s=1.0, short_window_s=2.0, threshold=1.0)
        with pytest.raises(ConfigurationError):
            BurnRateRule("r", "o", long_window_s=1.0, short_window_s=0.5, threshold=0.0)

    def test_monitor_cross_checks(self):
        objective = SloObjective("a", target=0.99)
        with pytest.raises(ConfigurationError):
            SloMonitor([], [])
        with pytest.raises(ConfigurationError):
            SloMonitor(
                [objective],
                [BurnRateRule("r", "missing", 1.0, 0.5, 10.0)],
            )
        with pytest.raises(ConfigurationError):
            # Short window finer than the resolution.
            SloMonitor(
                [objective],
                [BurnRateRule("r", "a", 1.0, 0.01, 10.0)],
                resolution_s=0.1,
            )
        with pytest.raises(ConfigurationError):
            SloMonitor([objective, SloObjective("a", target=0.9)])


class TestObjectiveSemantics:
    def test_latency_objective_needs_deadline_met(self):
        objective = SloObjective("lat", target=0.999, deadline_s=1e-3)
        assert objective.is_good(5e-4, ok=True)
        assert not objective.is_good(2e-3, ok=True)
        assert not objective.is_good(None, ok=True)
        assert not objective.is_good(5e-4, ok=False)
        assert objective.error_budget == pytest.approx(1e-3)

    def test_availability_objective_ignores_latency(self):
        objective = SloObjective("avail", target=0.99)
        assert objective.is_good(None, ok=True)
        assert objective.is_good(10.0, ok=True)
        assert not objective.is_good(None, ok=False)


class TestBurnMath:
    def test_bad_fraction_and_burn(self):
        monitor = _monitor()
        # 10 outcomes in [0, 0.5): 8 good, 2 bad -> bad fraction 0.2.
        for i in range(10):
            monitor.record(0.04 * (i + 1), ok=i >= 2)
        assert monitor.bad_fraction("availability", 0.5, 0.5) == pytest.approx(0.2)
        # Budget is 0.01, so burn = 20x.
        assert monitor.burn_rate("availability", 0.5, 0.5) == pytest.approx(20.0)

    def test_empty_window_burns_nothing(self):
        monitor = _monitor()
        assert monitor.bad_fraction("availability", 0.5, 10.0) == 0.0
        assert monitor.burn_rate("availability", 0.5, 10.0) == 0.0


class TestAlertLifecycle:
    def _feed(self, monitor, start_s, end_s, ok, rate_hz=100):
        step = 1.0 / rate_hz
        t = start_s
        while t < end_s:
            monitor.record(t, ok=ok)
            t += step

    def test_sustained_violation_fires_exactly_once_then_clears(self):
        events = []
        registry = MetricsRegistry()
        monitor = _monitor(
            registry=registry,
            sinks=[lambda event, alert, now: events.append((event, alert.rule, now))],
        )
        # Healthy for 1s, hard outage for 1s, healthy again.
        self._feed(monitor, 0.0, 1.0, ok=True)
        self._feed(monitor, 1.0, 2.0, ok=False)
        self._feed(monitor, 2.0, 4.0, ok=True)
        transitions = []
        for tick in range(1, 41):
            transitions += monitor.evaluate(tick * 0.1)
        fired = [t for t in transitions if t[0] == "fire"]
        cleared = [t for t in transitions if t[0] == "clear"]
        assert len(fired) == 1 and len(cleared) == 1
        alert = fired[0][1]
        assert alert is cleared[0][1]
        # Fired inside the outage (needs the long window >= threshold,
        # so not instantly), cleared once the short window recovered.
        assert 1.0 <= alert.fired_at_s <= 2.0
        assert alert.cleared_at_s > 2.0
        assert alert.peak_burn >= 10.0
        assert not alert.active
        assert monitor.active_alerts == ()
        # Sinks saw the same two transitions.
        assert [event for event, _, _ in events] == ["fire", "clear"]
        # And the registry counted them.
        assert registry.get(
            "slo_alerts_fired_total", {"rule": "availability_burn"}
        ).value == 1
        assert registry.get(
            "slo_alerts_cleared_total", {"rule": "availability_burn"}
        ).value == 1
        assert registry.get("slo_alerts_active").value == 0

    def test_short_blip_does_not_fire(self):
        monitor = _monitor()
        self._feed(monitor, 0.0, 1.0, ok=True)
        self._feed(monitor, 1.0, 1.03, ok=False)  # 3 bad outcomes
        self._feed(monitor, 1.03, 2.0, ok=True)
        for tick in range(1, 21):
            monitor.evaluate(tick * 0.1)
        # Neither window sustains a 10x burn from a 30 ms blip.
        assert monitor.alerts == []

    def test_evaluate_in_steady_violation_is_quiet(self):
        monitor = _monitor()
        self._feed(monitor, 0.0, 2.0, ok=False)
        first = monitor.evaluate(2.0)
        second = monitor.evaluate(2.1)
        assert [event for event, _ in first] == ["fire"]
        assert second == []
        assert len(monitor.alerts) == 1

    def test_install_evaluates_on_the_simulated_clock(self):
        monitor = _monitor()
        sim = Simulator()
        monitor.install(sim, horizon_s=4.0)

        def outcomes(t: float, ok: bool) -> None:
            monitor.record(t, ok=ok)

        t = 0.01
        while t < 4.0:
            sim.schedule_at(t, lambda t=t: outcomes(t, not 1.0 <= t < 2.0))
            t += 0.01
        sim.run()
        assert len(monitor.alerts) == 1
        alert = monitor.alerts[0]
        assert 1.0 <= alert.fired_at_s <= 2.0
        assert alert.cleared_at_s is not None and alert.cleared_at_s >= 2.0
        payload = alert.to_dict()
        assert payload["rule"] == "availability_burn"
        assert payload["peak_burn"] > 0


class TestHelpers:
    def test_paper_objectives(self):
        latency, availability = paper_sla_objectives()
        assert latency.deadline_s == pytest.approx(1.1e-3)
        assert availability.deadline_s is None
        assert latency.target == availability.target == 0.999

    def test_default_rules_one_per_objective(self):
        rules = default_burn_rules(
            paper_sla_objectives(), short_window_s=0.1, long_window_s=0.3
        )
        assert [rule.name for rule in rules] == ["latency_burn", "availability_burn"]
        assert all(rule.threshold == 10.0 for rule in rules)
