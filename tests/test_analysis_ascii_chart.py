"""Tests for the ASCII chart renderers."""

import pytest

from repro.analysis.ascii_chart import bar_chart, series_chart
from repro.errors import ConfigurationError


class TestBarChart:
    def test_bars_scale_to_peak(self):
        text = bar_chart(["a", "b"], [10.0, 5.0], width=20)
        lines = text.splitlines()
        assert lines[0].count("#") == 20
        assert lines[1].count("#") == 10

    def test_title_first(self):
        text = bar_chart(["a"], [1.0], title="My chart")
        assert text.splitlines()[0] == "My chart"

    def test_zero_values_render_empty(self):
        text = bar_chart(["a", "b"], [0.0, 0.0])
        assert "#" not in text

    def test_small_nonzero_gets_minimum_bar(self):
        text = bar_chart(["big", "tiny"], [1000.0, 0.1], width=30)
        tiny_line = text.splitlines()[1]
        assert tiny_line.count("#") == 1

    def test_alignment(self):
        text = bar_chart(["a", "long-label"], [1.0, 2.0])
        lines = text.splitlines()
        assert lines[0].index("1") == lines[1].index("2")

    @pytest.mark.parametrize(
        "labels,values",
        [([], []), (["a"], []), (["a"], [-1.0])],
    )
    def test_bad_inputs_rejected(self, labels, values):
        with pytest.raises(ConfigurationError):
            bar_chart(labels, values)

    def test_narrow_width_rejected(self):
        with pytest.raises(ConfigurationError):
            bar_chart(["a"], [1.0], width=5)


class TestSeriesChart:
    def test_sections_share_scale(self):
        text = series_chart(
            ["x1", "x2"],
            {"high": [100.0, 50.0], "low": [10.0, 5.0]},
            width=20,
        )
        lines = text.splitlines()
        high_bars = [l.count("#") for l in lines if l.startswith("x")][:2]
        assert high_bars[0] == 20
        low_section = text.split("-- low")[1]
        assert max(l.count("#") for l in low_section.splitlines() if l) == 2

    def test_section_headers(self):
        text = series_chart(["x"], {"alpha": [1.0], "beta": [2.0]})
        assert "-- alpha" in text and "-- beta" in text

    def test_mismatched_series_rejected(self):
        with pytest.raises(ConfigurationError):
            series_chart(["x1", "x2"], {"s": [1.0]})

    def test_empty_series_rejected(self):
        with pytest.raises(ConfigurationError):
            series_chart(["x"], {})

    def test_figure_integration(self):
        from repro.analysis import figure4_breakdown

        panel = figure4_breakdown()[0]
        text = series_chart(panel.x_values, panel.series, title=panel.title)
        assert "Network Stack" in text
        assert "#" in text
