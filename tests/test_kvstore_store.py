"""Tests for the KVStore engine: verbs, TTL, CAS, eviction, invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, StorageError
from repro.kvstore import KVStore, StoreResult
from repro.units import MB


def make_store(limit=4 * MB, policy="lru") -> KVStore:
    return KVStore(memory_limit_bytes=limit, policy=policy)


class TestBasicVerbs:
    def test_set_get_roundtrip(self):
        store = make_store()
        assert store.set(b"k", b"hello") is StoreResult.STORED
        item = store.get(b"k")
        assert item is not None and item.value == b"hello"

    def test_get_missing(self):
        store = make_store()
        assert store.get(b"k") is None
        assert store.stats.get_misses == 1

    def test_set_overwrites(self):
        store = make_store()
        store.set(b"k", b"one")
        store.set(b"k", b"two")
        assert store.get(b"k").value == b"two"
        assert len(store) == 1

    def test_add_only_if_absent(self):
        store = make_store()
        assert store.add(b"k", b"one") is StoreResult.STORED
        assert store.add(b"k", b"two") is StoreResult.NOT_STORED
        assert store.get(b"k").value == b"one"

    def test_replace_only_if_present(self):
        store = make_store()
        assert store.replace(b"k", b"x") is StoreResult.NOT_STORED
        store.set(b"k", b"one")
        assert store.replace(b"k", b"two") is StoreResult.STORED
        assert store.get(b"k").value == b"two"

    def test_delete(self):
        store = make_store()
        store.set(b"k", b"v")
        assert store.delete(b"k") is StoreResult.DELETED
        assert store.delete(b"k") is StoreResult.NOT_FOUND
        assert store.get(b"k") is None

    def test_flags_preserved(self):
        store = make_store()
        store.set(b"k", b"v", flags=42)
        assert store.get(b"k").flags == 42

    def test_append_prepend(self):
        store = make_store()
        store.set(b"k", b"mid")
        assert store.append(b"k", b"-end") is StoreResult.STORED
        assert store.prepend(b"k", b"start-") is StoreResult.STORED
        assert store.get(b"k").value == b"start-mid-end"

    def test_append_missing_not_stored(self):
        store = make_store()
        assert store.append(b"k", b"x") is StoreResult.NOT_STORED


class TestCas:
    def test_cas_success(self):
        store = make_store()
        store.set(b"k", b"one")
        cas = store.gets(b"k").cas
        assert store.cas(b"k", b"two", cas) is StoreResult.STORED
        assert store.get(b"k").value == b"two"

    def test_cas_stale_id_exists(self):
        store = make_store()
        store.set(b"k", b"one")
        stale = store.gets(b"k").cas
        store.set(b"k", b"interloper")
        assert store.cas(b"k", b"two", stale) is StoreResult.EXISTS
        assert store.get(b"k").value == b"interloper"

    def test_cas_missing_key(self):
        store = make_store()
        assert store.cas(b"k", b"v", 1) is StoreResult.NOT_FOUND


class TestArithmetic:
    def test_incr_decr(self):
        store = make_store()
        store.set(b"n", b"10")
        assert store.incr(b"n", 5) == 15
        assert store.decr(b"n", 3) == 12
        assert store.get(b"n").value == b"12"

    def test_decr_floors_at_zero(self):
        store = make_store()
        store.set(b"n", b"3")
        assert store.decr(b"n", 10) == 0

    def test_incr_missing_returns_none(self):
        assert make_store().incr(b"n", 1) is None

    def test_incr_non_numeric_raises(self):
        store = make_store()
        store.set(b"n", b"abc")
        with pytest.raises(StorageError):
            store.incr(b"n", 1)

    def test_incr_preserves_expiry(self):
        store = make_store()
        store.set(b"n", b"1", expire=100)
        store.incr(b"n", 1)
        store.advance_time(99)
        assert store.get(b"n") is not None
        store.advance_time(2)
        assert store.get(b"n") is None


class TestTtl:
    def test_relative_expiry(self):
        store = make_store()
        store.set(b"k", b"v", expire=10)
        store.advance_time(9.99)
        assert store.get(b"k") is not None
        store.advance_time(0.02)
        assert store.get(b"k") is None

    def test_absolute_expiry_beyond_30_days(self):
        store = make_store()
        absolute = 40 * 24 * 3600.0
        store.set(b"k", b"v", expire=absolute)
        store.advance_time(absolute - 1)
        assert store.get(b"k") is not None
        store.advance_time(2)
        assert store.get(b"k") is None

    def test_negative_ttl_expires_immediately(self):
        store = make_store()
        store.set(b"k", b"v", expire=-1)
        assert store.get(b"k") is None

    def test_touch_extends(self):
        store = make_store()
        store.set(b"k", b"v", expire=5)
        assert store.touch(b"k", 100) is StoreResult.TOUCHED
        store.advance_time(50)
        assert store.get(b"k") is not None

    def test_touch_missing(self):
        assert make_store().touch(b"k", 10) is StoreResult.NOT_FOUND

    def test_expired_item_frees_memory(self):
        store = make_store()
        store.set(b"k", b"v", expire=1)
        store.advance_time(2)
        store.get(b"k")
        store.check_invariants()
        assert len(store) == 0

    def test_flush_all_invalidates_everything(self):
        store = make_store()
        for i in range(10):
            store.set(b"key-%d" % i, b"v")
        store.flush_all()
        for i in range(10):
            assert store.get(b"key-%d" % i) is None

    def test_sets_after_flush_survive(self):
        store = make_store()
        store.set(b"old", b"v")
        store.flush_all()
        store.advance_time(0.001)
        store.set(b"new", b"v")
        assert store.get(b"new") is not None
        assert store.get(b"old") is None

    def test_time_cannot_go_backwards(self):
        with pytest.raises(ConfigurationError):
            make_store().advance_time(-1)


class TestEviction:
    def test_eviction_on_pressure(self):
        store = make_store(limit=1 * MB)
        value = b"x" * 1000
        for i in range(2000):  # far more than 1 MB worth
            store.set(b"key-%d" % i, value)
        assert store.stats.evictions > 0
        store.check_invariants()
        # Recent keys survive; the earliest were evicted.
        assert store.get(b"key-1999") is not None
        assert store.get(b"key-0") is None

    def test_lru_eviction_spares_touched_keys(self):
        store = make_store(limit=1 * MB)
        value = b"x" * 1000
        store.set(b"precious", value)
        for i in range(900):
            store.set(b"key-%d" % i, value)
            store.get(b"precious")  # keep it hot
        assert store.get(b"precious") is not None

    def test_bags_policy_also_evicts(self):
        store = make_store(limit=1 * MB, policy="bags")
        value = b"x" * 1000
        for i in range(2000):
            store.set(b"key-%d" % i, value)
        assert store.stats.evictions > 0
        assert store.get(b"key-1999") is not None
        store.check_invariants()

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            KVStore(4 * MB, policy="random")


class TestStats:
    def test_hit_rate(self):
        store = make_store()
        store.set(b"k", b"v")
        store.get(b"k")
        store.get(b"missing")
        assert store.stats.hit_rate == pytest.approx(0.5)
        assert store.stats.cmd_get == 2

    def test_byte_counters(self):
        store = make_store()
        store.set(b"k", b"12345")
        store.get(b"k")
        assert store.stats.bytes_written == 5
        assert store.stats.bytes_read == 5


class TestStoreProperties:
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["set", "get", "delete", "add", "tick"]),
                st.integers(min_value=0, max_value=40),
                st.integers(min_value=0, max_value=2000),
            ),
            max_size=250,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_dict_model_without_pressure(self, ops):
        # With a roomy budget and no TTLs the store must behave exactly
        # like a dict.
        store = make_store(limit=64 * MB)
        model: dict[bytes, bytes] = {}
        for op, index, size in ops:
            key = b"key-%d" % index
            value = b"v" * size
            if op == "set":
                store.set(key, value)
                model[key] = value
            elif op == "add":
                result = store.add(key, value)
                if key in model:
                    assert result is StoreResult.NOT_STORED
                else:
                    model[key] = value
            elif op == "get":
                item = store.get(key)
                if key in model:
                    assert item is not None and item.value == model[key]
                else:
                    assert item is None
            elif op == "delete":
                result = store.delete(key)
                assert (result is StoreResult.DELETED) == (key in model)
                model.pop(key, None)
            else:
                store.advance_time(1.0)
        store.check_invariants()
        assert len(store) == len(model)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_invariants_hold_under_memory_pressure(self, seed):
        import random

        rng = random.Random(seed)
        store = make_store(limit=1 * MB)
        for _ in range(300):
            key = b"key-%d" % rng.randrange(100)
            action = rng.random()
            if action < 0.6:
                store.set(key, b"x" * rng.randrange(1, 20_000))
            elif action < 0.8:
                store.get(key)
            else:
                store.delete(key)
        store.check_invariants()
