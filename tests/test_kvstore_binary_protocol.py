"""Tests for the memcached binary protocol."""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.kvstore import KVStore
from repro.kvstore.binary_protocol import (
    HEADER_LENGTH,
    REQUEST_MAGIC,
    RESPONSE_MAGIC,
    BinaryMessage,
    BinaryServer,
    Opcode,
    Status,
    arith_request,
    decode,
    encode,
    get_request,
    needs_more_bytes,
    set_request,
    simple_request,
)
from repro.units import MB

safe_keys = st.lists(
    st.integers(min_value=33, max_value=126), min_size=1, max_size=64
).map(bytes)


def make_server() -> BinaryServer:
    return BinaryServer(KVStore(4 * MB))


def roundtrip(server: BinaryServer, request: BinaryMessage) -> BinaryMessage:
    response, rest = decode(server.handle(encode(request)))
    assert rest == b""
    return response


class TestCodec:
    def test_header_is_24_bytes(self):
        wire = encode(simple_request(Opcode.NOOP))
        assert len(wire) == HEADER_LENGTH

    def test_encode_decode_roundtrip(self):
        original = set_request(b"key", b"value", flags=7, expiry=60, opaque=123)
        decoded, rest = decode(encode(original))
        assert rest == b""
        assert decoded == original

    @given(
        key=safe_keys,
        value=st.binary(max_size=512),
        flags=st.integers(min_value=0, max_value=0xFFFFFFFF),
        opaque=st.integers(min_value=0, max_value=0xFFFFFFFF),
        cas=st.integers(min_value=0, max_value=(1 << 64) - 1),
    )
    @settings(max_examples=80, deadline=None)
    def test_roundtrip_property(self, key, value, flags, opaque, cas):
        original = set_request(key, value, flags=flags, cas=cas, opaque=opaque)
        decoded, _ = decode(encode(original))
        assert decoded == original

    def test_short_header_rejected(self):
        with pytest.raises(ProtocolError, match="short"):
            decode(b"\x80\x00")

    def test_bad_magic_rejected(self):
        wire = bytearray(encode(simple_request(Opcode.NOOP)))
        wire[0] = 0x55
        with pytest.raises(ProtocolError, match="magic"):
            decode(bytes(wire))

    def test_unknown_opcode_rejected(self):
        wire = bytearray(encode(simple_request(Opcode.NOOP)))
        wire[1] = 0x7F
        with pytest.raises(ProtocolError, match="opcode"):
            decode(bytes(wire))

    def test_truncated_body_rejected(self):
        wire = encode(set_request(b"k", b"v" * 100))
        with pytest.raises(ProtocolError, match="incomplete"):
            decode(wire[:-1])

    def test_needs_more_bytes(self):
        wire = encode(set_request(b"k", b"v" * 100))
        assert needs_more_bytes(wire[:10])
        assert needs_more_bytes(wire[:-1])
        assert not needs_more_bytes(wire)

    def test_pipelined_messages(self):
        wire = encode(simple_request(Opcode.NOOP)) + encode(get_request(b"k"))
        first, rest = decode(wire)
        second, rest2 = decode(rest)
        assert first.opcode is Opcode.NOOP
        assert second.opcode is Opcode.GET
        assert rest2 == b""


class TestServerOps:
    def test_set_then_get(self):
        server = make_server()
        response = roundtrip(server, set_request(b"k", b"hello", flags=9))
        assert response.status == Status.NO_ERROR
        assert response.cas > 0
        response = roundtrip(server, get_request(b"k"))
        assert response.value == b"hello"
        assert struct.unpack(">I", response.extras)[0] == 9

    def test_get_miss(self):
        response = roundtrip(make_server(), get_request(b"ghost"))
        assert response.status == Status.KEY_NOT_FOUND

    def test_getq_miss_is_silent(self):
        server = make_server()
        assert server.handle(encode(get_request(b"ghost", quiet=True))) == b""

    def test_getq_hit_responds(self):
        server = make_server()
        roundtrip(server, set_request(b"k", b"v"))
        response = roundtrip(server, get_request(b"k", quiet=True))
        assert response.value == b"v"

    def test_add_and_replace_semantics(self):
        server = make_server()
        assert roundtrip(server, set_request(b"k", b"1", opcode=Opcode.ADD)).status == Status.NO_ERROR
        assert roundtrip(server, set_request(b"k", b"2", opcode=Opcode.ADD)).status == Status.ITEM_NOT_STORED
        assert roundtrip(server, set_request(b"k", b"3", opcode=Opcode.REPLACE)).status == Status.NO_ERROR
        assert roundtrip(server, set_request(b"x", b"4", opcode=Opcode.REPLACE)).status == Status.ITEM_NOT_STORED

    def test_cas_via_set(self):
        server = make_server()
        cas = roundtrip(server, set_request(b"k", b"old")).cas
        ok = roundtrip(server, set_request(b"k", b"new", cas=cas))
        assert ok.status == Status.NO_ERROR
        stale = roundtrip(server, set_request(b"k", b"xxx", cas=cas))
        assert stale.status == Status.KEY_EXISTS

    def test_delete(self):
        server = make_server()
        roundtrip(server, set_request(b"k", b"v"))
        assert roundtrip(server, simple_request(Opcode.DELETE, b"k")).status == Status.NO_ERROR
        assert roundtrip(server, simple_request(Opcode.DELETE, b"k")).status == Status.KEY_NOT_FOUND

    def test_increment_existing(self):
        server = make_server()
        roundtrip(server, set_request(b"n", b"10"))
        response = roundtrip(server, arith_request(b"n", delta=5))
        assert struct.unpack(">Q", response.value)[0] == 15

    def test_increment_seeds_initial(self):
        server = make_server()
        response = roundtrip(server, arith_request(b"n", delta=5, initial=100, expiry=0))
        assert struct.unpack(">Q", response.value)[0] == 100
        response = roundtrip(server, arith_request(b"n", delta=5))
        assert struct.unpack(">Q", response.value)[0] == 105

    def test_increment_without_initial_misses(self):
        response = roundtrip(make_server(), arith_request(b"n", delta=5))
        assert response.status == Status.KEY_NOT_FOUND

    def test_decrement_floors_at_zero(self):
        server = make_server()
        roundtrip(server, set_request(b"n", b"3"))
        response = roundtrip(server, arith_request(b"n", delta=10, decrement=True))
        assert struct.unpack(">Q", response.value)[0] == 0

    def test_increment_non_numeric_is_delta_badval(self):
        server = make_server()
        roundtrip(server, set_request(b"n", b"abc"))
        response = roundtrip(server, arith_request(b"n", delta=1))
        assert response.status == Status.DELTA_BADVAL

    def test_append_prepend(self):
        server = make_server()
        roundtrip(server, set_request(b"k", b"mid"))
        append = BinaryMessage(magic=REQUEST_MAGIC, opcode=Opcode.APPEND, key=b"k", value=b"-end")
        prepend = BinaryMessage(magic=REQUEST_MAGIC, opcode=Opcode.PREPEND, key=b"k", value=b"pre-")
        assert roundtrip(server, append).status == Status.NO_ERROR
        assert roundtrip(server, prepend).status == Status.NO_ERROR
        assert roundtrip(server, get_request(b"k")).value == b"pre-mid-end"

    def test_touch(self):
        server = make_server()
        roundtrip(server, set_request(b"k", b"v"))
        touch = BinaryMessage(
            magic=REQUEST_MAGIC, opcode=Opcode.TOUCH, key=b"k",
            extras=struct.pack(">I", 500),
        )
        assert roundtrip(server, touch).status == Status.NO_ERROR
        server.store.advance_time(100)
        assert roundtrip(server, get_request(b"k")).status == Status.NO_ERROR

    def test_gat_fetches_and_extends(self):
        server = make_server()
        roundtrip(server, set_request(b"k", b"v", expiry=5))
        gat = BinaryMessage(
            magic=REQUEST_MAGIC, opcode=Opcode.GAT, key=b"k",
            extras=struct.pack(">I", 500),
        )
        response = roundtrip(server, gat)
        assert response.status == Status.NO_ERROR
        assert response.value == b"v"
        server.store.advance_time(100)  # beyond the original 5s TTL
        assert roundtrip(server, get_request(b"k")).status == Status.NO_ERROR

    def test_gat_miss(self):
        gat = BinaryMessage(
            magic=REQUEST_MAGIC, opcode=Opcode.GAT, key=b"ghost",
            extras=struct.pack(">I", 500),
        )
        assert roundtrip(make_server(), gat).status == Status.KEY_NOT_FOUND

    def test_gatq_miss_is_silent(self):
        server = make_server()
        gatq = BinaryMessage(
            magic=REQUEST_MAGIC, opcode=Opcode.GATQ, key=b"ghost",
            extras=struct.pack(">I", 500),
        )
        assert server.handle(encode(gatq)) == b""

    def test_gat_bad_extras(self):
        gat = BinaryMessage(magic=REQUEST_MAGIC, opcode=Opcode.GAT, key=b"k")
        assert roundtrip(make_server(), gat).status == Status.INVALID_ARGUMENTS

    def test_version_noop_flush_quit(self):
        server = make_server()
        assert roundtrip(server, simple_request(Opcode.NOOP)).status == Status.NO_ERROR
        assert b"memcached" in roundtrip(server, simple_request(Opcode.VERSION)).value
        roundtrip(server, set_request(b"k", b"v"))
        server.store.advance_time(1.0)
        assert roundtrip(server, simple_request(Opcode.FLUSH)).status == Status.NO_ERROR
        assert roundtrip(server, get_request(b"k")).status == Status.KEY_NOT_FOUND
        assert roundtrip(server, simple_request(Opcode.QUIT)).status == Status.NO_ERROR
        assert server.closed

    def test_opaque_echoed(self):
        server = make_server()
        response = roundtrip(server, get_request(b"ghost", opaque=0xDEADBEEF))
        assert response.opaque == 0xDEADBEEF

    def test_malformed_extras_invalid_arguments(self):
        bad_set = BinaryMessage(
            magic=REQUEST_MAGIC, opcode=Opcode.SET, key=b"k", extras=b"\x00", value=b"v"
        )
        assert roundtrip(make_server(), bad_set).status == Status.INVALID_ARGUMENTS

    def test_response_magic(self):
        response = roundtrip(make_server(), simple_request(Opcode.NOOP))
        assert response.magic == RESPONSE_MAGIC


class TestServerStream:
    def test_pipelined_batch(self):
        server = make_server()
        wire = (
            encode(set_request(b"a", b"1"))
            + encode(set_request(b"b", b"2"))
            + encode(get_request(b"a"))
        )
        out = server.handle(wire)
        r1, rest = decode(out)
        r2, rest = decode(rest)
        r3, rest = decode(rest)
        assert rest == b""
        assert (r1.status, r2.status) == (Status.NO_ERROR, Status.NO_ERROR)
        assert r3.value == b"1"

    def test_partial_message_left_unhandled(self):
        server = make_server()
        wire = encode(set_request(b"k", b"v" * 50))
        assert server.handle(wire[:30]) == b""

    def test_text_and_binary_share_one_store(self):
        from repro.kvstore.server_loop import MemcachedServer

        store = KVStore(4 * MB)
        text = MemcachedServer(store)
        binary = BinaryServer(store)
        text.handle(b"set k 0 0 5\r\nhello\r\n")
        assert roundtrip(binary, get_request(b"k")).value == b"hello"
