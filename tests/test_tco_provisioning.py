"""Tests for the TCO model and the capacity planner."""

import pytest

from repro.baselines import MEMCACHED_BAGS
from repro.core import ServerDesign, iridium_stack, mercury_stack
from repro.core.provisioning import (
    Demand,
    ServerCandidate,
    candidate_from_baseline,
    candidate_from_design,
    cheapest_plan,
    plan_fleet,
)
from repro.errors import ConfigurationError
from repro.power.tco import DEFAULT_COSTS, CostModel, FleetCost


class TestCostModel:
    def test_energy_cost_scales_with_power_and_pue(self):
        base = DEFAULT_COSTS.energy_cost_usd(100.0)
        assert DEFAULT_COSTS.energy_cost_usd(200.0) == pytest.approx(2 * base)
        lean = CostModel(pue=1.0)
        assert lean.energy_cost_usd(100.0) < base

    def test_energy_cost_magnitude(self):
        # 600 W at PUE 1.5, $0.07/kWh over 3 years: ~$1.6-1.7K.
        cost = DEFAULT_COSTS.energy_cost_usd(600.0)
        assert 1_300 < cost < 2_100

    def test_space_cost(self):
        cost = DEFAULT_COSTS.space_cost_usd(1.5)
        assert cost == pytest.approx(1.5 * 18.0 * 36)

    def test_server_tco_additive(self):
        total = DEFAULT_COSTS.server_tco_usd(5_000, 600.0, 1.5)
        assert total == pytest.approx(
            5_000
            + DEFAULT_COSTS.energy_cost_usd(600.0)
            + DEFAULT_COSTS.space_cost_usd(1.5)
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CostModel(pue=0.9)
        with pytest.raises(ConfigurationError):
            CostModel(depreciation_years=0)
        with pytest.raises(ConfigurationError):
            DEFAULT_COSTS.energy_cost_usd(-1)
        with pytest.raises(ConfigurationError):
            DEFAULT_COSTS.server_tco_usd(-1, 100)

    def test_fleet_cost_ratios(self):
        fleet = FleetCost(
            server_name="x", servers=2, tco_usd=20_000, tps=2e6,
            capacity_gb=256, rack_units=3.0,
        )
        assert fleet.usd_per_mtps == pytest.approx(10_000)
        assert fleet.usd_per_gb == pytest.approx(78.125)


class TestCandidates:
    def test_candidate_from_design(self):
        candidate = candidate_from_design(
            ServerDesign(stack=mercury_stack(32)), capex_usd=8_000
        )
        assert candidate.tps > 30e6
        assert candidate.capacity_gb == pytest.approx(376, rel=0.02)

    def test_candidate_from_baseline(self):
        candidate = candidate_from_baseline(MEMCACHED_BAGS, capex_usd=6_000)
        assert candidate.name == "Bags"
        assert candidate.capacity_gb == 128

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ServerCandidate(name="x", tps=0, capacity_gb=1, wall_power_w=1,
                            capex_usd=1)


class TestPlanning:
    def mercury(self) -> ServerCandidate:
        return candidate_from_design(
            ServerDesign(stack=mercury_stack(32)), capex_usd=8_000
        )

    def iridium(self) -> ServerCandidate:
        return candidate_from_design(
            ServerDesign(stack=iridium_stack(32)), capex_usd=9_000
        )

    def commodity(self) -> ServerCandidate:
        return candidate_from_baseline(MEMCACHED_BAGS, capex_usd=6_000)

    def test_throughput_bound_demand(self):
        demand = Demand(dataset_gb=100, peak_tps=100e6)
        plan = plan_fleet(self.mercury(), demand)
        assert plan.binding == "throughput"
        assert plan.servers == pytest.approx(4, abs=1)
        assert plan.cost.tps >= demand.peak_tps

    def test_capacity_bound_demand(self):
        demand = Demand(dataset_gb=50_000, peak_tps=1e6)
        plan = plan_fleet(self.iridium(), demand)
        assert plan.binding == "capacity"
        assert plan.cost.capacity_gb >= demand.dataset_gb

    def test_utilization_headroom_respected(self):
        tight = Demand(dataset_gb=1, peak_tps=1e6, utilization_target=0.5)
        loose = Demand(dataset_gb=1, peak_tps=1e6, utilization_target=1.0)
        candidate = self.commodity()
        assert plan_fleet(candidate, tight).servers >= plan_fleet(
            candidate, loose
        ).servers

    def test_mercury_wins_hot_tiers(self):
        # High rate, modest dataset: the paper's Mercury use case.
        demand = Demand(dataset_gb=2_000, peak_tps=200e6)
        best = cheapest_plan(
            [self.mercury(), self.iridium(), self.commodity()], demand
        )
        assert best.candidate.name.startswith("Mercury")

    def test_iridium_wins_cold_footprint_tiers(self):
        # Huge dataset, low rate: the McDipper use case.
        demand = Demand(dataset_gb=500_000, peak_tps=5e6)
        best = cheapest_plan(
            [self.mercury(), self.iridium(), self.commodity()], demand
        )
        assert best.candidate.name.startswith("Iridium")

    def test_both_3d_designs_beat_commodity_on_density_tiers(self):
        demand = Demand(dataset_gb=28 * 1024, peak_tps=10e6)
        commodity_plan = plan_fleet(self.commodity(), demand)
        mercury_plan = plan_fleet(self.mercury(), demand)
        assert mercury_plan.cost.tco_usd < commodity_plan.cost.tco_usd
        assert mercury_plan.tier_rack_units < commodity_plan.tier_rack_units / 2

    def test_empty_candidates_rejected(self):
        with pytest.raises(ConfigurationError):
            cheapest_plan([], Demand(dataset_gb=1, peak_tps=1))

    def test_demand_validation(self):
        with pytest.raises(ConfigurationError):
            Demand(dataset_gb=0, peak_tps=1)
        with pytest.raises(ConfigurationError):
            Demand(dataset_gb=1, peak_tps=1, utilization_target=0.0)
