"""Golden regression for the batch-size → throughput scaling grid.

Pins three saturated full-system cells — Mercury-2 serial, Mercury-2 at
batch 16, Iridium-2 at batch 16 — so any change to the batch former,
the coalesced latency model, or flush accounting shows up as a diff
against a blessed fixture.  The DES is seeded and single-threaded, so
the numbers match exactly up to float round-off; drift means the
batched request path changed and should be reviewed like a model
change.

To bless an intentional change::

    pytest tests/test_golden_batching.py --regen-golden
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import pytest

from repro.core import iridium_stack, mercury_stack
from repro.kvstore.batching import BatchPolicy
from repro.sim.full_system import FullSystemStack
from repro.sim.run_options import RunOptions
from repro.units import MB
from repro.workloads import WorkloadSpec
from repro.workloads.distributions import fixed_size

GOLDEN_DIR = Path(__file__).parent / "golden"
REL_TOL = 1e-9

CORES = 2
DURATION_S = 0.2
WORKLOAD = WorkloadSpec(
    name="batching-golden",
    get_fraction=0.95,
    key_population=4_000,
    value_sizes=fixed_size(64),
)

#: The three pinned grid cells: (label, stack family, batch policy).
CELLS = (
    ("mercury-serial", "mercury", None),
    ("mercury-b16", "mercury", BatchPolicy(batch_max=16, linger_s=200e-6)),
    ("iridium-b16", "iridium", BatchPolicy(batch_max=16, linger_s=200e-6)),
)


def _run_cell(family: str, batching: BatchPolicy | None):
    build = mercury_stack if family == "mercury" else iridium_stack
    system = FullSystemStack(
        stack=build(cores=CORES), memory_per_core_bytes=8 * MB, seed=42
    )
    capacity = CORES * system.model.tps("GET", 64)
    return system.run(
        WORKLOAD,
        RunOptions(
            offered_rate_hz=8.0 * capacity,
            duration_s=DURATION_S,
            warmup_requests=4_000,
            batching=batching,
        ),
    )


def _scaling_payload() -> dict:
    payload = {}
    for label, family, batching in CELLS:
        results = _run_cell(family, batching)
        gets = results.get_hits + results.get_misses
        payload[label] = {
            "batch_max": batching.batch_max if batching else 1,
            "completed": results.completed,
            "tps": results.completed / DURATION_S,
            "batches": results.batches,
            "batched_ops": results.batched_ops,
            "mean_batch_size": results.mean_batch_size,
            "batch_flush_reasons": dict(sorted(results.batch_flush_reasons.items())),
            "hit_rate": results.get_hits / gets if gets else 0.0,
            "p99_rtt_s": results.rtt_percentile(0.99),
        }
    return payload


def _assert_close(expected, actual, path: str = "$") -> None:
    if isinstance(expected, (int, float)) and not isinstance(expected, bool):
        assert isinstance(actual, (int, float)) and not isinstance(actual, bool), (
            f"{path}: expected a number, got {actual!r}"
        )
        assert math.isclose(expected, actual, rel_tol=REL_TOL, abs_tol=1e-12), (
            f"{path}: {actual!r} != golden {expected!r} (rel_tol={REL_TOL})"
        )
    elif isinstance(expected, list):
        assert isinstance(actual, list) and len(actual) == len(expected), (
            f"{path}: length mismatch vs golden"
        )
        for index, (e, a) in enumerate(zip(expected, actual)):
            _assert_close(e, a, f"{path}[{index}]")
    elif isinstance(expected, dict):
        assert isinstance(actual, dict) and set(actual) == set(expected), (
            f"{path}: key mismatch vs golden"
        )
        for key in expected:
            _assert_close(expected[key], actual[key], f"{path}.{key}")
    else:
        assert expected == actual, f"{path}: {actual!r} != golden {expected!r}"


def test_batching_scaling_matches_golden(regen_golden):
    payload = json.loads(json.dumps(_scaling_payload()))
    path = GOLDEN_DIR / "batching_scaling.json"
    if regen_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return
    if not path.exists():
        pytest.fail(f"missing golden fixture {path}; generate with --regen-golden")
    _assert_close(json.loads(path.read_text()), payload, "batching_scaling")


def test_golden_fixture_tells_the_batching_story():
    """Independent of exact numbers, the checked-in fixture must show
    the claim: coalescing lifts saturated DRAM-stack throughput by 2x+
    while the flash stack, device-bound, gains modestly but monotonely."""
    path = GOLDEN_DIR / "batching_scaling.json"
    if not path.exists():
        pytest.skip("fixture not generated yet")
    payload = json.loads(path.read_text())
    serial = payload["mercury-serial"]
    batched = payload["mercury-b16"]
    assert serial["batches"] == 0
    assert batched["batches"] > 0
    assert batched["mean_batch_size"] > 4.0
    assert batched["tps"] >= 2.0 * serial["tps"]
    assert set(batched["batch_flush_reasons"]) <= {"size", "linger"}
    assert payload["iridium-b16"]["batches"] > 0
