"""Tests for FIFO resources on the event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim import FifoResource, Simulator


class TestSingleServer:
    def test_serves_in_order_with_waiting(self):
        sim = Simulator()
        core = FifoResource(sim, "core")
        waits = []
        core.submit(2.0, waits.append)
        core.submit(1.0, waits.append)
        core.submit(1.0, waits.append)
        sim.run()
        assert waits == [pytest.approx(0.0), pytest.approx(2.0), pytest.approx(3.0)]
        assert sim.now == pytest.approx(4.0)
        assert core.jobs_served == 3

    def test_idle_resource_serves_immediately(self):
        sim = Simulator()
        core = FifoResource(sim, "core")
        waits = []
        core.submit(1.0, waits.append)
        sim.run()
        core.submit(1.0, waits.append)
        sim.run()
        assert waits == [pytest.approx(0.0), pytest.approx(0.0)]

    def test_queue_depth_tracked(self):
        sim = Simulator()
        core = FifoResource(sim, "core")
        for _ in range(5):
            core.submit(1.0, lambda w: None)
        assert core.queue_depth == 4
        assert core.busy == 1
        sim.run()
        assert core.max_queue_depth == 4
        assert core.queue_depth == 0

    def test_zero_service_time_allowed(self):
        sim = Simulator()
        core = FifoResource(sim, "core")
        done = []
        core.submit(0.0, lambda w: done.append(w))
        sim.run()
        assert done == [0.0]

    def test_negative_service_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            FifoResource(sim, "core").submit(-1.0, lambda w: None)

    def test_zero_servers_rejected(self):
        with pytest.raises(SimulationError):
            FifoResource(Simulator(), "core", servers=0)


class TestMultiServer:
    def test_parallel_servers_overlap(self):
        sim = Simulator()
        pool = FifoResource(sim, "pool", servers=2)
        finish_times = []
        for _ in range(2):
            pool.submit(1.0, lambda w: finish_times.append(sim.now))
        sim.run()
        assert finish_times == [pytest.approx(1.0), pytest.approx(1.0)]

    def test_third_job_waits_for_first_free_server(self):
        sim = Simulator()
        pool = FifoResource(sim, "pool", servers=2)
        waits = []
        pool.submit(1.0, waits.append)
        pool.submit(2.0, waits.append)
        pool.submit(1.0, waits.append)
        sim.run()
        assert waits[2] == pytest.approx(1.0)

    def test_utilization(self):
        sim = Simulator()
        pool = FifoResource(sim, "pool", servers=2)
        pool.submit(1.0, lambda w: None)
        pool.submit(1.0, lambda w: None)
        sim.run()
        assert pool.utilization(elapsed=1.0) == pytest.approx(1.0)
        assert pool.utilization(elapsed=2.0) == pytest.approx(0.5)

    def test_utilization_requires_positive_elapsed(self):
        pool = FifoResource(Simulator(), "pool")
        with pytest.raises(SimulationError):
            pool.utilization(0.0)

    def test_mean_wait(self):
        sim = Simulator()
        core = FifoResource(sim, "core")
        core.submit(2.0, lambda w: None)
        core.submit(2.0, lambda w: None)
        sim.run()
        assert core.mean_wait == pytest.approx(1.0)
