"""Tests for cache warm-up transients and crossover finding."""

import numpy as np
import pytest

from repro.analysis.crossover import (
    find_crossover,
    iridium_put_fraction_crossover,
    mercury_efficiency_factor_crossover,
    mercury_iridium_tco_crossover,
)
from repro.errors import ConfigurationError
from repro.kvstore import KVStore
from repro.sim.rng import make_rng
from repro.units import MB
from repro.workloads.che import zipf_popularities
from repro.workloads.distributions import ZipfKeys
from repro.workloads.warmup import (
    expected_unique,
    requests_to_hit_rate,
    transient_hit_rate,
    warmup_trajectory,
)


class TestExpectedUnique:
    def test_zero_requests_zero_unique(self):
        p = zipf_popularities(1000, 0.99)
        assert expected_unique(p, 0) == 0.0

    def test_monotone_and_bounded(self):
        p = zipf_popularities(1000, 0.99)
        values = [expected_unique(p, n) for n in (10, 100, 1_000, 100_000)]
        assert values == sorted(values)
        assert values[-1] <= 1000

    def test_uniform_matches_closed_form(self):
        # Uniform popularity: U(n) = N(1 - (1-1/N)^n).
        population = 500
        p = zipf_popularities(population, 0.0)
        n = 700
        expected = population * (1 - (1 - 1 / population) ** n)
        assert expected_unique(p, n) == pytest.approx(expected, rel=1e-6)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            expected_unique(zipf_popularities(10, 1.0), -1)


class TestTransientHitRate:
    def test_cold_cache_misses(self):
        p = zipf_popularities(1000, 0.99)
        assert transient_hit_rate(p, 0) == 0.0

    def test_approaches_one_with_huge_cache(self):
        p = zipf_popularities(1000, 0.99)
        assert transient_hit_rate(p, 10_000_000) > 0.99

    def test_matches_real_store_fill_phase(self):
        # Ground truth: replay a zipf stream against a big KVStore (no
        # evictions) and compare the miss curve.
        population, skew = 2_000, 0.99
        store = KVStore(64 * MB)
        zipf = ZipfKeys(population, skew)
        rng = make_rng("warmup", 3)
        hits = 0
        n = 8_000
        for _ in range(n):
            key = zipf.key(rng)
            if store.get(key) is not None:
                hits += 1
            else:
                store.set(key, b"x")
        # Average hit rate over the run = (1/n) * sum H(k); approximate
        # via the analytic instantaneous rate at n/2.
        p = zipf_popularities(population, skew)
        midpoint = transient_hit_rate(p, n / 2)
        assert hits / n == pytest.approx(midpoint, abs=0.05)


class TestTrajectory:
    def test_clamped_at_steady_state(self):
        p = zipf_popularities(10_000, 0.99)
        trajectory = warmup_trajectory(p, cache_items=500, checkpoints=(1e7,))
        from repro.workloads.che import lru_hit_rate

        assert trajectory[0][1] == pytest.approx(lru_hit_rate(p, 500))

    def test_monotone_in_requests(self):
        p = zipf_popularities(10_000, 0.99)
        trajectory = warmup_trajectory(p, 2_000, (100, 1_000, 10_000, 100_000))
        rates = [rate for _n, rate in trajectory]
        assert rates == sorted(rates)

    def test_validation(self):
        p = zipf_popularities(100, 0.99)
        with pytest.raises(ConfigurationError):
            warmup_trajectory(p, 10, ())
        with pytest.raises(ConfigurationError):
            warmup_trajectory(p, 10, (-1.0,))


class TestRequestsToHitRate:
    def test_target_reached(self):
        p = zipf_popularities(50_000, 0.99)
        needed = requests_to_hit_rate(p, cache_items=5_000, target_fraction_of_steady=0.9)
        from repro.workloads.che import lru_hit_rate

        steady = lru_hit_rate(p, 5_000)
        assert transient_hit_rate(p, needed) == pytest.approx(0.9 * steady, rel=0.01)

    def test_higher_target_takes_longer(self):
        p = zipf_popularities(50_000, 0.99)
        fast = requests_to_hit_rate(p, 5_000, 0.5)
        slow = requests_to_hit_rate(p, 5_000, 0.95)
        assert slow > fast

    def test_validation(self):
        p = zipf_popularities(100, 0.99)
        with pytest.raises(ConfigurationError):
            requests_to_hit_rate(p, 10, 1.0)


class TestFindCrossover:
    def test_linear_function_root(self):
        assert find_crossover(lambda x: x - 3.0, 0.0, 10.0) == pytest.approx(3.0)

    def test_no_sign_change_returns_none(self):
        assert find_crossover(lambda x: x + 1.0, 0.0, 10.0) is None

    def test_endpoints_exact(self):
        assert find_crossover(lambda x: x, 0.0, 5.0) == 0.0

    def test_bad_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            find_crossover(lambda x: x, 5.0, 5.0)


class TestPaperCrossovers:
    def test_iridium_tolerates_substantial_put_fractions(self):
        # Iridium beats Bags on TPS until PUTs exceed roughly half the
        # mix — far beyond any caching workload (ETC is ~3% PUTs).
        crossover = iridium_put_fraction_crossover()
        assert crossover is not None
        assert 0.3 < crossover < 0.9

    def test_tco_boundary_between_mercury_and_iridium(self):
        # For a 20 MTPS tier, Mercury is the cheaper fleet below ~1 TB
        # and Iridium above — the Mercury/McDipper deployment boundary.
        crossover = mercury_iridium_tco_crossover(peak_tps=20e6)
        assert crossover is not None
        assert 300 < crossover < 3_000

    def test_tco_boundary_moves_with_rate(self):
        low_rate = mercury_iridium_tco_crossover(peak_tps=5e6)
        high_rate = mercury_iridium_tco_crossover(peak_tps=80e6)
        assert low_rate is not None and high_rate is not None
        # More traffic pushes the boundary outward (Mercury stays the
        # right answer for bigger datasets).
        assert high_rate > low_rate

    def test_mercury_efficiency_lead_never_collapses_to_2x(self):
        # Across the whole 64 B - 1 MB sweep, Mercury's TPS/W lead over
        # the wire-scaled Bags baseline stays above 2x: no crossover.
        assert mercury_efficiency_factor_crossover(2.0) is None

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            mercury_efficiency_factor_crossover(0.0)
