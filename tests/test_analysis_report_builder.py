"""Tests for the one-shot report builder."""

import json

import pytest

from repro.analysis.report_builder import build_report
from repro.errors import ConfigurationError


class TestBuildReport:
    def test_writes_every_artefact(self, tmp_path):
        written = build_report(tmp_path / "report")
        names = {path.name for path in written}
        for table in ("table1", "table2", "table3", "table4"):
            assert f"{table}.txt" in names
            assert f"{table}.csv" in names
        for figure in ("fig4", "fig5", "fig6", "fig7", "fig8"):
            assert f"{figure}.txt" in names
            assert f"{figure}.json" in names
        assert "headlines.txt" in names
        assert "thermal.txt" in names
        assert "INDEX.md" in names

    def test_contents_are_valid(self, tmp_path):
        directory = tmp_path / "report"
        build_report(directory)
        table4 = (directory / "table4.txt").read_text()
        assert "Mercury-32" in table4 and "TSSP" in table4
        fig5 = json.loads((directory / "fig5.json").read_text())
        assert len(fig5) == 4
        headlines = (directory / "headlines.txt").read_text()
        assert "worst-case error" in headlines
        index = (directory / "INDEX.md").read_text()
        assert "Table 4" in index

    def test_idempotent(self, tmp_path):
        directory = tmp_path / "report"
        first = build_report(directory)
        second = build_report(directory)
        assert {p.name for p in first} == {p.name for p in second}

    def test_refuses_file_target(self, tmp_path):
        target = tmp_path / "not-a-dir"
        target.write_text("x")
        with pytest.raises(ConfigurationError):
            build_report(target)
