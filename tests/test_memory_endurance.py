"""Tests for the flash endurance / Iridium lifetime model."""

import pytest

from repro.errors import ConfigurationError
from repro.memory import PBICS_19GB
from repro.memory.endurance import (
    DEFAULT_PE_CYCLES,
    endurance_report,
    max_put_rate_for_lifetime,
)


class TestEnduranceReport:
    def test_no_writes_lasts_forever(self):
        report = endurance_report(PBICS_19GB, put_rate_hz=0.0, value_bytes=64)
        assert report.lifetime_years == float("inf")
        assert report.drive_writes_per_day == 0.0

    def test_lifetime_inverse_in_rate(self):
        slow = endurance_report(PBICS_19GB, put_rate_hz=100.0, value_bytes=64)
        fast = endurance_report(PBICS_19GB, put_rate_hz=200.0, value_bytes=64)
        assert slow.lifetime_s == pytest.approx(2 * fast.lifetime_s)

    def test_amplification_shortens_life(self):
        lean = endurance_report(
            PBICS_19GB, 100.0, 64, write_amplification=1.0
        )
        heavy = endurance_report(
            PBICS_19GB, 100.0, 64, write_amplification=2.0
        )
        assert heavy.lifetime_s == pytest.approx(lean.lifetime_s / 2)

    def test_mcdipper_rate_survives_deployment(self):
        # McDipper-style photo traffic is write-once/read-many: 2 PUT/s of
        # 64 KB turns the 19.8 GB device over every ~2 days and must still
        # outlive a 3-year depreciation window on MLC endurance.
        report = endurance_report(PBICS_19GB, put_rate_hz=2.0, value_bytes=64 * 1024)
        assert report.outlives(3.0)

    def test_write_heavy_traffic_wears_out(self):
        # Full-rate small PUTs (the Iridium PUT ceiling ~1 KTPS/core x 32
        # cores) would exhaust MLC endurance well within a year if values
        # are large.
        report = endurance_report(
            PBICS_19GB, put_rate_hz=32_000.0, value_bytes=4096
        )
        assert not report.outlives(1.0)

    def test_dwpd_sanity(self):
        report = endurance_report(PBICS_19GB, put_rate_hz=100.0, value_bytes=2048)
        expected = report.write_bytes_per_s * 86_400 / PBICS_19GB.capacity_bytes
        assert report.drive_writes_per_day == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            endurance_report(PBICS_19GB, -1.0, 64)
        with pytest.raises(ConfigurationError):
            endurance_report(PBICS_19GB, 1.0, 64, write_amplification=0.5)
        with pytest.raises(ConfigurationError):
            endurance_report(PBICS_19GB, 1.0, 64, pe_cycles=0)
        report = endurance_report(PBICS_19GB, 1.0, 64)
        with pytest.raises(ConfigurationError):
            report.outlives(0.0)


class TestPlanningInverse:
    def test_inverse_consistency(self):
        rate = max_put_rate_for_lifetime(PBICS_19GB, years=3.0, value_bytes=1024)
        report = endurance_report(PBICS_19GB, put_rate_hz=rate, value_bytes=1024)
        assert report.lifetime_years == pytest.approx(3.0, rel=1e-6)

    def test_longer_target_means_lower_rate(self):
        three = max_put_rate_for_lifetime(PBICS_19GB, 3.0, 1024)
        five = max_put_rate_for_lifetime(PBICS_19GB, 5.0, 1024)
        assert five < three

    def test_defaults_documented(self):
        assert DEFAULT_PE_CYCLES == 3_000

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            max_put_rate_for_lifetime(PBICS_19GB, 0.0, 64)
