"""Tests for item records and key hashing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.kvstore import ITEM_OVERHEAD_BYTES, Item, fnv1a_32, hash_key, jenkins_oaat
from repro.kvstore.hashing import hash_cost_instructions

keys = st.binary(min_size=1, max_size=64).filter(
    lambda k: b" " not in k and b"\r" not in k and b"\n" not in k
)


class TestItem:
    def test_total_bytes_accounting(self):
        item = Item(key=b"k" * 10, value=b"v" * 100)
        assert item.total_bytes == ITEM_OVERHEAD_BYTES + 110

    def test_cas_ids_are_unique_and_increasing(self):
        a = Item(key=b"a", value=b"")
        b = Item(key=b"b", value=b"")
        assert b.cas > a.cas

    def test_bump_cas_changes_id(self):
        item = Item(key=b"a", value=b"")
        old = item.cas
        item.bump_cas()
        assert item.cas > old

    def test_expiry(self):
        item = Item(key=b"a", value=b"", expire_at=10.0)
        assert not item.is_expired(9.99)
        assert item.is_expired(10.0)

    def test_zero_expiry_never_expires(self):
        item = Item(key=b"a", value=b"")
        assert not item.is_expired(1e12)

    def test_empty_key_rejected(self):
        with pytest.raises(StorageError):
            Item(key=b"", value=b"x")

    def test_overlong_key_rejected(self):
        with pytest.raises(StorageError):
            Item(key=b"k" * 251, value=b"")

    def test_whitespace_key_rejected(self):
        with pytest.raises(StorageError):
            Item(key=b"a b", value=b"")
        with pytest.raises(StorageError):
            Item(key=b"a\r\nb", value=b"")


class TestHashes:
    def test_fnv1a_known_vectors(self):
        # Standard FNV-1a 32-bit test vectors.
        assert fnv1a_32(b"") == 0x811C9DC5
        assert fnv1a_32(b"a") == 0xE40C292C
        assert fnv1a_32(b"foobar") == 0xBF9CF968

    def test_jenkins_deterministic(self):
        assert jenkins_oaat(b"key-1") == jenkins_oaat(b"key-1")
        assert jenkins_oaat(b"key-1") != jenkins_oaat(b"key-2")

    def test_hash_key_dispatch(self):
        assert hash_key(b"x", "fnv1a") == fnv1a_32(b"x")
        assert hash_key(b"x", "jenkins") == jenkins_oaat(b"x")
        assert hash_key(b"x") == jenkins_oaat(b"x")  # default

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(StorageError, match="unknown hash algorithm"):
            hash_key(b"x", "sha0")

    @given(key=keys)
    @settings(max_examples=100, deadline=None)
    def test_hashes_fit_32_bits(self, key):
        for func in (fnv1a_32, jenkins_oaat):
            assert 0 <= func(key) < 1 << 32

    @given(data=st.binary(max_size=256))
    @settings(max_examples=100, deadline=None)
    def test_jenkins_avalanche_is_nontrivial(self, data):
        # Flipping one bit should change the hash (not a proof of quality,
        # just a regression guard against a broken shift).
        flipped = bytes([data[0] ^ 1]) + data[1:] if data else b"\x01"
        if flipped != data:
            assert jenkins_oaat(flipped) != jenkins_oaat(data)


class TestHashCost:
    def test_linear_in_key_length(self):
        short = hash_cost_instructions(8)
        long = hash_cost_instructions(64)
        assert long > short
        assert long - short == pytest.approx(18.0 * 56)

    def test_negative_length_rejected(self):
        with pytest.raises(StorageError):
            hash_cost_instructions(-1)
