"""Tests for the sharded Memcached cluster."""

import pytest

from repro.errors import ConfigurationError
from repro.kvstore import MemcachedCluster
from repro.units import MB


def make_cluster(nodes=4) -> MemcachedCluster:
    return MemcachedCluster(
        node_names=[f"mc{i}" for i in range(nodes)],
        memory_per_node_bytes=4 * MB,
    )


class TestSharding:
    def test_set_get_through_cluster(self):
        cluster = make_cluster()
        cluster.set(b"k", b"v")
        assert cluster.get(b"k").value == b"v"

    def test_key_lives_on_exactly_one_node(self):
        # §2.3: "a key should only be on one server".
        cluster = make_cluster()
        cluster.set(b"k", b"v")
        holders = [
            name for name, store in cluster.stores.items()
            if store.table.find(b"k") is not None
        ]
        assert len(holders) == 1
        assert holders[0] == cluster.node_for(b"k")

    def test_keys_spread_across_nodes(self):
        cluster = make_cluster(nodes=8)
        for i in range(2000):
            cluster.set(b"key-%d" % i, b"v")
        populated = [name for name, s in cluster.stores.items() if len(s) > 0]
        assert len(populated) == 8

    def test_aggregate_capacity(self):
        # §2.3: "the cache is the aggregate size of all servers".
        cluster = make_cluster(nodes=4)
        assert cluster.total_capacity_bytes == 16 * MB

    def test_delete_routes_to_owner(self):
        cluster = make_cluster()
        cluster.set(b"k", b"v")
        cluster.delete(b"k")
        assert cluster.get(b"k") is None


class TestMembershipChanges:
    def test_node_death_loses_only_its_data(self):
        cluster = make_cluster(nodes=4)
        keys = [b"key-%d" % i for i in range(400)]
        for key in keys:
            cluster.set(key, b"v")
        victim = cluster.node_for(keys[0])
        lost = [k for k in keys if cluster.node_for(k) == victim]
        cluster.kill_node(victim)
        hits = sum(1 for k in keys if cluster.get(k) is not None)
        # Everything not owned by the victim must still be present.
        assert hits == len(keys) - len(lost)

    def test_add_node_keeps_most_data_warm(self):
        cluster = make_cluster(nodes=4)
        keys = [b"key-%d" % i for i in range(400)]
        for key in keys:
            cluster.set(key, b"v")
        cluster.add_node("mc-new", 4 * MB)
        hits = sum(1 for k in keys if cluster.get(k) is not None)
        # Only keys remapping to the new node go cold (~1/5 of them).
        assert hits > 400 * 0.6

    def test_duplicate_add_rejected(self):
        cluster = make_cluster()
        with pytest.raises(ConfigurationError):
            cluster.add_node("mc0", 4 * MB)

    def test_kill_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            make_cluster().kill_node("ghost")

    def test_empty_cluster_rejected(self):
        with pytest.raises(ConfigurationError):
            MemcachedCluster(node_names=[], memory_per_node_bytes=4 * MB)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            MemcachedCluster(node_names=["a", "a"], memory_per_node_bytes=4 * MB)


class TestClusterAccounting:
    def test_hit_rate_aggregates_nodes(self):
        cluster = make_cluster()
        cluster.set(b"k", b"v")
        cluster.get(b"k")
        cluster.get(b"missing")
        assert cluster.hit_rate() == pytest.approx(0.5)

    def test_item_count(self):
        cluster = make_cluster()
        for i in range(25):
            cluster.set(b"key-%d" % i, b"v")
        assert cluster.item_count() == 25

    def test_advance_time_expires_cluster_wide(self):
        cluster = make_cluster()
        for i in range(20):
            cluster.set(b"key-%d" % i, b"v", expire=5)
        cluster.advance_time(6)
        assert all(cluster.get(b"key-%d" % i) is None for i in range(20))
