"""Hybrid DES/fluid fidelity: policy, planning, and DES-equivalence.

Three layers of guarantees, tested bottom-up.  The :class:`FidelityPolicy`
value object must validate and round-trip exactly (it is part of the
experiment cache key).  The segment planner must tile ``[0, duration]``
with guard-banded DES islands and fluid windows that are contiguous,
deterministic, and conservative around faults.  And the headline
contract: a hybrid run draws the same RNG stream and executes the same
store operations as pure DES, so everything RNG-determined (completions,
hits, misses, puts, response bytes) is *bit-identical*, while folded
timing aggregates (TPS, p99, p99.9) stay within 5 %.
"""

import dataclasses

import pytest

from repro.core import mercury_stack
from repro.errors import ConfigurationError
from repro.exp.scenarios import get_scenario
from repro.faults.schedule import (
    FaultEvent,
    FaultSchedule,
    crash_restart,
    lossy_link,
)
from repro.sim.fidelity import (
    FidelityPolicy,
    allocate_proportional,
    fault_intervals,
    plan_segments,
)
from repro.sim.full_system import FullSystemStack
from repro.sim.run_options import RunOptions
from repro.units import MB
from repro.workloads import WorkloadSpec
from repro.workloads.diurnal import DiurnalSchedule
from repro.workloads.distributions import fixed_size

CORES = 4
RATE_HZ = 20_000.0
DURATION_S = 1.0

WORKLOAD = WorkloadSpec(
    name="fidelity-equivalence",
    get_fraction=0.9,
    key_population=20_000,
    value_sizes=fixed_size(64),
)


def _run(
    seed=1,
    fidelity=None,
    faults=None,
    fill_on_miss=False,
    energy=False,
    diurnal=None,
    rate_hz=RATE_HZ,
    duration_s=DURATION_S,
    cores=CORES,
    workload=WORKLOAD,
):
    options = RunOptions(
        offered_rate_hz=rate_hz,
        duration_s=duration_s,
        warmup_requests=10_000,
        fill_on_miss=fill_on_miss,
        faults=faults,
        energy_summary=energy,
        diurnal=diurnal,
        fidelity=fidelity,
    )
    stack = FullSystemStack(
        stack=mercury_stack(cores), memory_per_core_bytes=8 * MB, seed=seed
    )
    return stack.run(workload, options)


def _signature(results):
    """Everything determined by the RNG stream and store contents alone."""
    return (
        results.completed,
        results.get_hits,
        results.get_misses,
        results.puts,
        results.response_bytes,
    )


def _within(a, b, tol):
    ref = max(abs(a), abs(b))
    return ref == 0.0 or abs(a - b) <= tol * ref


def _assert_equivalent(des, hybrid):
    """The acceptance contract: exact functional outputs, 5 % timing."""
    assert _signature(hybrid) == _signature(des)
    assert _within(hybrid.throughput_hz, des.throughput_hz, 0.05)
    assert _within(hybrid.rtt_percentile(0.99), des.rtt_percentile(0.99), 0.05)
    assert _within(
        hybrid.rtt_percentile(0.999), des.rtt_percentile(0.999), 0.05
    )


class TestFidelityPolicy:
    def test_defaults(self):
        policy = FidelityPolicy()
        assert policy.mode == "hybrid"
        assert policy.guard_band_s == 0.05
        assert policy.calibration_s == 0.05
        assert policy.min_fluid_window_s == 0.05
        assert policy.max_fluid_step_s == 0.1
        assert policy.max_utilization == 0.9

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            FidelityPolicy().mode = "fluid"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mode": "turbo"},
            {"guard_band_s": -0.01},
            {"calibration_s": 0.0},
            {"min_fluid_window_s": 0.0},
            {"max_fluid_step_s": -1.0},
            {"max_utilization": 0.0},
            {"max_utilization": 1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            FidelityPolicy(**kwargs)

    def test_round_trip(self):
        policy = FidelityPolicy(
            mode="fluid", guard_band_s=0.02, calibration_s=0.3
        )
        assert FidelityPolicy.from_dict(policy.to_dict()) == policy

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigurationError):
            FidelityPolicy.from_dict({"mode": "hybrid", "warp_factor": 9})

    def test_travels_through_run_options(self):
        options = RunOptions(
            offered_rate_hz=1000.0,
            duration_s=1.0,
            fidelity=FidelityPolicy(mode="hybrid", calibration_s=0.2),
        )
        rebuilt = RunOptions.from_dict(options.to_dict())
        assert rebuilt.fidelity == options.fidelity
        # Fidelity-free options must keep their historical cache keys.
        plain = RunOptions(offered_rate_hz=1000.0, duration_s=1.0)
        assert "fidelity" not in plain.to_dict()


class TestPlanSegments:
    def test_full_mode_is_one_des_segment(self):
        plan = plan_segments(FidelityPolicy(mode="full"), None, 4.0)
        assert plan == [(0.0, 4.0, "des")]

    def test_fault_free_hybrid_shape(self):
        plan = plan_segments(FidelityPolicy(), None, 1.0)
        assert plan == [
            (0.0, 0.05, "des"),
            (0.05, 0.95, "fluid"),
            (0.95, 1.0, "des"),
        ]

    def test_fault_island_is_guard_banded(self):
        plan = plan_segments(
            FidelityPolicy(), crash_restart("core0", 0.4, 0.5), 1.0
        )
        expected = [
            (0.0, 0.05, "des"),
            (0.05, 0.35, "fluid"),
            (0.35, 0.55, "des"),
            (0.55, 0.95, "fluid"),
            (0.95, 1.0, "des"),
        ]
        assert [kind for _, _, kind in plan] == [k for _, _, k in expected]
        for (start, end, _), (want_start, want_end, _) in zip(plan, expected):
            assert start == pytest.approx(want_start)
            assert end == pytest.approx(want_end)

    def test_overlapping_islands_merge(self):
        plan = plan_segments(
            FidelityPolicy(), crash_restart("core0", 0.08, 0.12), 1.0
        )
        # The guarded crash island [0.03, 0.17] overlaps the calibration
        # prefix, so the run opens with one fused DES segment.
        assert plan[0][2] == "des"
        assert plan[0][0] == 0.0
        assert plan[0][1] == pytest.approx(0.17)
        assert plan[1][2] == "fluid"

    def test_short_fluid_sliver_stays_des(self):
        plan = plan_segments(
            FidelityPolicy(), crash_restart("core0", 0.12, 0.3), 1.0
        )
        # The gap between calibration (ends 0.05) and the guarded island
        # (starts 0.07) is below min_fluid_window_s: not worth the mode
        # switch, so it folds into one DES segment.
        assert plan[0][2] == "des"
        assert plan[0][0] == 0.0
        assert plan[0][1] == pytest.approx(0.35)

    def test_unmatched_crash_pins_des_to_run_end(self):
        faults = FaultSchedule(
            name="no-restart",
            events=(FaultEvent(kind="node_crash", at_s=0.5, node="core0"),),
        )
        plan = plan_segments(FidelityPolicy(), faults, 1.0)
        assert plan[-1] == (0.45, 1.0, "des")

    def test_plans_tile_the_run_exactly(self):
        schedules = [
            None,
            crash_restart("core0", 0.4, 0.5),
            lossy_link(0.01, 0.2, 0.3),
            crash_restart("core0", 0.9, 2.0),
        ]
        for faults in schedules:
            plan = plan_segments(FidelityPolicy(), faults, 1.0)
            assert plan[0][0] == 0.0
            assert plan[-1][1] == 1.0
            for (_, end, kind), (start, _, next_kind) in zip(plan, plan[1:]):
                assert end == start
                assert kind != next_kind  # adjacent same-kind runs merge

    def test_rejects_non_positive_duration(self):
        with pytest.raises(ConfigurationError):
            plan_segments(FidelityPolicy(), None, 0.0)


class TestAllocateProportional:
    def test_sums_to_n_and_tracks_weights(self):
        alloc = allocate_proportional([3, 1], 4)
        assert alloc == {0: 3, 1: 1}

    def test_largest_remainder_ties_break_by_lower_index(self):
        assert allocate_proportional([1, 1, 1], 2) == {0: 1, 1: 1}

    def test_zero_weight_gets_nothing(self):
        assert allocate_proportional([0, 4], 4) == {1: 4}

    def test_empty_cases(self):
        assert allocate_proportional([], 5) == {}
        assert allocate_proportional([1, 2], 0) == {}

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            allocate_proportional([1], -1)

    def test_exactness_over_many_shapes(self):
        for weights in ([7, 3, 5], [1, 0, 0, 99], [2, 2, 2, 2, 2]):
            for n in (1, 10, 97):
                alloc = allocate_proportional(weights, n)
                assert sum(alloc.values()) == n
                assert all(weights[i] > 0 for i in alloc)


class TestFaultIntervals:
    def test_crash_restart_pair_spans_the_outage(self):
        assert fault_intervals(crash_restart("core0", 1.0, 3.0)) == [
            (1.0, 3.0)
        ]

    def test_unmatched_crash_extends_forever(self):
        faults = FaultSchedule(
            name="down",
            events=(FaultEvent(kind="node_crash", at_s=2.0, node="core0"),),
        )
        assert fault_intervals(faults) == [(2.0, float("inf"))]

    def test_window_fault_spans_its_window(self):
        assert fault_intervals(lossy_link(0.01, 1.0, 2.5)) == [(1.0, 2.5)]


class TestHybridEquivalence:
    """DES vs hybrid on the tier-1 scenario shapes (4 cores, 20 kHz, 1 s)."""

    def test_baseline(self):
        des = _run(seed=1)
        hybrid = _run(seed=1, fidelity=FidelityPolicy(calibration_s=0.1))
        _assert_equivalent(des, hybrid)
        assert hybrid.fidelity["sim_fidelity_fluid_windows_total"] >= 1
        assert "sim_fidelity_fallback_reason" not in hybrid.fidelity

    def test_crash_restart(self):
        faults = crash_restart("core0", 0.4, 0.6)
        des = _run(seed=42, faults=faults, fill_on_miss=True)
        hybrid = _run(
            seed=42,
            faults=faults,
            fill_on_miss=True,
            fidelity=FidelityPolicy(calibration_s=0.2),
        )
        _assert_equivalent(des, hybrid)
        # The guarded outage ran as a DES island, so fault-plane
        # outcomes match exactly too.
        assert hybrid.failed == des.failed
        assert hybrid.mac_drops == des.mac_drops
        assert hybrid.fidelity["sim_fidelity_fluid_windows_total"] >= 1
        # Once the outage produces losses, the runtime tripwire keeps
        # the rest of the run at DES fidelity — and says why.
        assert (
            hybrid.fidelity["sim_fidelity_fallback_reason"]
            == "losses_observed"
        )

    def test_lossy_link_window(self):
        faults = lossy_link(0.01, 0.4, 0.6)
        des = _run(seed=1, faults=faults, fill_on_miss=True)
        hybrid = _run(
            seed=1,
            faults=faults,
            fill_on_miss=True,
            fidelity=FidelityPolicy(calibration_s=0.1),
        )
        _assert_equivalent(des, hybrid)
        assert hybrid.mac_drops == des.mac_drops
        assert hybrid.fidelity["sim_fidelity_fluid_windows_total"] >= 1

    def test_energy_diurnal(self):
        diurnal = DiurnalSchedule(day_length_s=1.0, trough_fraction=0.3)
        des = _run(seed=7, energy=True, diurnal=diurnal)
        hybrid = _run(
            seed=7,
            energy=True,
            diurnal=diurnal,
            fidelity=FidelityPolicy(calibration_s=0.3),
        )
        _assert_equivalent(des, hybrid)
        assert _within(hybrid.energy["total_j"], des.energy["total_j"], 0.05)
        assert hybrid.fidelity["sim_fidelity_fluid_windows_total"] >= 1

    def test_hybrid_is_deterministic(self):
        policy = FidelityPolicy(calibration_s=0.1)
        first = _run(seed=1, fidelity=policy)
        second = _run(seed=1, fidelity=policy)
        assert _signature(second) == _signature(first)
        assert second.rtt_histogram.count == first.rtt_histogram.count
        assert second.rtt_histogram.mean == first.rtt_histogram.mean
        assert second.fidelity == first.fidelity

    def test_fluid_mode_fast_forwards_too(self):
        des = _run(seed=1)
        fluid = _run(
            seed=1, fidelity=FidelityPolicy(mode="fluid", calibration_s=0.1)
        )
        _assert_equivalent(des, fluid)
        assert fluid.fidelity["sim_fidelity_mode"] == "fluid"
        assert fluid.fidelity["sim_fidelity_fluid_windows_total"] >= 1


class TestFallbacks:
    def test_structural_batching_falls_back_to_pure_des(self):
        scenario = get_scenario("batched")
        base = scenario.run_options(RATE_HZ, DURATION_S, warmup_requests=8_000)
        hybrid_options = dataclasses.replace(
            base, fidelity=FidelityPolicy(mode="hybrid")
        )
        workload = scenario.workload(64)
        stack = FullSystemStack(
            stack=mercury_stack(CORES), memory_per_core_bytes=8 * MB, seed=1
        )
        des = stack.run(workload, base)
        stack = FullSystemStack(
            stack=mercury_stack(CORES), memory_per_core_bytes=8 * MB, seed=1
        )
        hybrid = stack.run(workload, hybrid_options)
        # Frame coalescing is event-level interleaving — the phenomenon
        # itself — so the run silently degrades to full DES and says so.
        assert hybrid.fidelity["sim_fidelity_fallback_reason"] == "batching"
        assert hybrid.fidelity["sim_fidelity_fluid_windows_total"] == 0
        assert _signature(hybrid) == _signature(des)
        assert hybrid.rtt_histogram.mean == des.rtt_histogram.mean
        assert hybrid.batches == des.batches

    def test_saturated_calibration_refuses_to_fold(self):
        # One core at ~1.3x its service capacity: the calibrated
        # utilisation exceeds max_utilization, every fluid candidate is
        # refused, and the run stays exact DES end to end.
        des = _run(seed=1, cores=1, rate_hz=15_000.0, duration_s=0.5)
        hybrid = _run(
            seed=1,
            cores=1,
            rate_hz=15_000.0,
            duration_s=0.5,
            fidelity=FidelityPolicy(calibration_s=0.1),
        )
        assert hybrid.fidelity["sim_fidelity_fallback_reason"] == "saturated"
        assert hybrid.fidelity["sim_fidelity_fluid_seconds_total"] == 0.0
        assert _signature(hybrid) == _signature(des)
        assert hybrid.rtt_histogram.mean == des.rtt_histogram.mean

    def test_provenance_dict_accounts_for_the_whole_run(self):
        hybrid = _run(seed=1, fidelity=FidelityPolicy(calibration_s=0.1))
        prov = hybrid.fidelity
        assert prov["sim_fidelity_mode"] == "hybrid"
        assert prov["sim_fidelity_fluid_requests_total"] > 0
        total = (
            prov["sim_fidelity_fluid_seconds_total"]
            + prov["sim_fidelity_des_seconds_total"]
        )
        assert total == pytest.approx(DURATION_S)
