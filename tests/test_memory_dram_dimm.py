"""Tests for the Table 2 memory-technology catalogue."""

import pytest

from repro.errors import ConfigurationError
from repro.memory import MEMORY_TECH_CATALOG, memory_tech_by_name
from repro.units import GB, MB


class TestCatalog:
    def test_table2_row_count(self):
        assert len(MEMORY_TECH_CATALOG) == 7

    def test_ddr3_row(self):
        tech = memory_tech_by_name("DDR3-1333")
        assert tech.bandwidth_bytes_s == pytest.approx(10.7 * GB)
        assert tech.capacity_bytes == 2 * GB
        assert not tech.stacked

    def test_future_tezzaron_row(self):
        tech = memory_tech_by_name("Future Tezzaron (3D-stack)")
        assert tech.bandwidth_bytes_s == pytest.approx(100 * GB)
        assert tech.capacity_bytes == 4 * GB
        assert tech.stacked

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError, match="unknown memory technology"):
            memory_tech_by_name("HBM5")

    def test_stacked_parts_beat_dimms_on_bandwidth_density(self):
        # The comparison Table 2 exists to make: per-byte bandwidth of the
        # stacked parts exceeds every DIMM package.
        dimms = [t for t in MEMORY_TECH_CATALOG if not t.stacked]
        stacked = [t for t in MEMORY_TECH_CATALOG if t.stacked]
        best_dimm = max(t.bandwidth_per_byte for t in dimms)
        for tech in stacked:
            assert tech.bandwidth_per_byte > best_dimm

    def test_all_entries_cited(self):
        for tech in MEMORY_TECH_CATALOG:
            assert tech.citation
