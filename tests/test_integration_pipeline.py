"""Integration: protocol bytes -> store -> response bytes, end to end.

Drives the functional Memcached through real wire framing, the way a
client would, including the cluster path.
"""

import pytest

from repro.kvstore import (
    Command,
    KVStore,
    MemcachedCluster,
    Response,
    StoreResult,
    parse_command,
    parse_response,
    render_command,
    render_response,
)
from repro.units import MB


def serve(store: KVStore, wire: bytes) -> bytes:
    """A minimal server loop: parse every command, apply it, render."""
    out = bytearray()
    rest = wire
    while rest:
        command, rest = parse_command(rest)
        out += apply_command(store, command)
    return bytes(out)


def apply_command(store: KVStore, command: Command) -> bytes:
    if command.verb in ("get", "gets"):
        values = []
        for key in command.keys:
            item = store.get(key)
            if item is not None:
                cas = item.cas if command.verb == "gets" else None
                values.append((key, item.flags, item.value, cas))
        return render_response(Response(status="END", values=tuple(values)))
    if command.verb == "set":
        result = store.set(command.key, command.data, command.flags, command.exptime)
    elif command.verb == "add":
        result = store.add(command.key, command.data, command.flags, command.exptime)
    elif command.verb == "replace":
        result = store.replace(command.key, command.data, command.flags, command.exptime)
    elif command.verb == "append":
        result = store.append(command.key, command.data)
    elif command.verb == "prepend":
        result = store.prepend(command.key, command.data)
    elif command.verb == "cas":
        result = store.cas(command.key, command.data, command.cas, command.flags, command.exptime)
    elif command.verb == "delete":
        result = store.delete(command.key)
    elif command.verb in ("incr", "decr"):
        if command.verb == "incr":
            value = store.incr(command.key, command.delta)
        else:
            value = store.decr(command.key, command.delta)
        if value is None:
            return b"NOT_FOUND\r\n"
        return b"%d\r\n" % value
    elif command.verb == "touch":
        result = store.touch(command.key, command.exptime)
    elif command.verb == "flush_all":
        store.flush_all()
        return b"OK\r\n"
    else:
        return b"ERROR\r\n"
    if command.noreply:
        return b""
    return result.value.encode() + b"\r\n"


class TestWireLevelSession:
    def test_set_then_get(self):
        store = KVStore(4 * MB)
        reply = serve(store, b"set greeting 5 0 5\r\nhello\r\n")
        assert reply == b"STORED\r\n"
        reply = serve(store, b"get greeting\r\n")
        response = parse_response(reply)
        assert response.values[0][2] == b"hello"
        assert response.values[0][1] == 5
        assert response.status == "END"

    def test_multi_get_partial_hits(self):
        store = KVStore(4 * MB)
        serve(store, b"set a 0 0 1\r\nx\r\n")
        response = parse_response(serve(store, b"get a b c\r\n"))
        assert len(response.values) == 1

    def test_cas_session(self):
        store = KVStore(4 * MB)
        serve(store, b"set k 0 0 3\r\nold\r\n")
        response = parse_response(serve(store, b"gets k\r\n"))
        cas = response.values[0][3]
        assert serve(store, b"cas k 0 0 3 %d\r\nnew\r\n" % cas) == b"STORED\r\n"
        assert serve(store, b"cas k 0 0 3 %d\r\nxxx\r\n" % cas) == b"EXISTS\r\n"

    def test_counter_session(self):
        store = KVStore(4 * MB)
        serve(store, b"set hits 0 0 1\r\n5\r\n")
        assert serve(store, b"incr hits 3\r\n") == b"8\r\n"
        assert serve(store, b"decr hits 10\r\n") == b"0\r\n"
        assert serve(store, b"incr ghost 1\r\n") == b"NOT_FOUND\r\n"

    def test_pipelined_batch(self):
        store = KVStore(4 * MB)
        batch = (
            b"set a 0 0 1\r\n1\r\n"
            b"set b 0 0 1\r\n2\r\n"
            b"get a b\r\n"
            b"delete a\r\n"
        )
        reply = serve(store, batch)
        assert reply.count(b"STORED") == 2
        assert b"VALUE a" in reply and b"VALUE b" in reply
        assert reply.endswith(b"DELETED\r\n")

    def test_noreply_suppresses_response(self):
        store = KVStore(4 * MB)
        assert serve(store, b"set a 0 0 1 noreply\r\nx\r\n") == b""
        assert store.get(b"a") is not None

    def test_flush_all_session(self):
        store = KVStore(4 * MB)
        serve(store, b"set a 0 0 1\r\nx\r\n")
        store.advance_time(1.0)
        assert serve(store, b"flush_all\r\n") == b"OK\r\n"
        response = parse_response(serve(store, b"get a\r\n"))
        assert response.values == ()

    def test_render_command_feeds_server(self):
        store = KVStore(4 * MB)
        wire = render_command(Command(verb="set", keys=(b"k",), data=b"v" * 100))
        wire += render_command(Command(verb="get", keys=(b"k",)))
        reply = serve(store, wire)
        assert parse_response(reply[len(b"STORED\r\n"):]).values[0][2] == b"v" * 100


class TestClusterSession:
    def test_cluster_serves_wire_protocol_per_node(self):
        cluster = MemcachedCluster(["n0", "n1", "n2"], memory_per_node_bytes=4 * MB)
        for i in range(60):
            key = b"key-%d" % i
            node = cluster.store_for(key)
            reply = serve(node, b"set %s 0 0 2\r\nhi\r\n" % key)
            assert reply == b"STORED\r\n"
        hits = 0
        for i in range(60):
            key = b"key-%d" % i
            node = cluster.store_for(key)
            response = parse_response(serve(node, b"get %s\r\n" % key))
            hits += len(response.values)
        assert hits == 60
