"""Critical-path extraction, tail attribution, waterfall, digest."""

import pytest

from repro.errors import ConfigurationError
from repro.telemetry import (
    MetricsRegistry,
    Tracer,
    compute_trace_digest,
    critical_path,
    tail_attribution,
    waterfall,
)


def flat_trace(tracer, arrival=0.0, stages=(("queue", 3e-5), ("memcached", 1e-5))):
    trace = tracer.begin(arrival, verb="GET")
    t = arrival
    for name, duration in stages:
        trace.add_span(name, t, duration, kind="server", node="core0")
        t += duration
    trace.finish(t)
    return trace


def quorum_put_trace(tracer, arrival=0.0):
    """A PUT fanned to two replicas; the slower branch bounds the RTT."""
    trace = tracer.begin(arrival, verb="PUT")
    fast = trace.add_span("replica_put", arrival, 5e-5, kind="server", node="core0")
    trace.add_span("queue", arrival, 4e-5, parent=fast, node="core0")
    trace.add_span("memcached", arrival + 4e-5, 1e-5, parent=fast, node="core0")
    slow = trace.add_span("replica_put", arrival, 8e-5, kind="server", node="core1")
    trace.add_span("queue", arrival, 6e-5, parent=slow, node="core1")
    trace.add_span("memcached", arrival + 6e-5, 2e-5, parent=slow, node="core1")
    trace.finish(arrival + 8e-5)
    return trace


class TestCriticalPath:
    def test_flat_trace_path_is_the_stage_chain(self):
        tracer = Tracer(MetricsRegistry())
        trace = flat_trace(tracer)
        path = critical_path(trace)
        assert [segment.component for segment in path] == ["queue", "memcached"]
        assert sum(s.duration_s for s in path) == pytest.approx(trace.rtt_s)

    def test_losing_replica_branch_contributes_nothing(self):
        tracer = Tracer(MetricsRegistry())
        trace = quorum_put_trace(tracer)
        path = critical_path(trace)
        # Branch-qualified components, and only the slow (core1) branch.
        assert [s.component for s in path] == [
            "replica_put.queue",
            "replica_put.memcached",
        ]
        assert all(s.node == "core1" for s in path)
        assert sum(s.duration_s for s in path) == pytest.approx(trace.rtt_s)

    def test_uncovered_time_attributes_to_client(self):
        tracer = Tracer(MetricsRegistry())
        trace = tracer.begin(0.0)
        trace.add_span("queue", 2e-5, 3e-5)
        trace.finish(5e-5)
        path = critical_path(trace)
        assert [s.component for s in path] == ["client", "queue"]
        assert path[0].duration_s == pytest.approx(2e-5)
        assert sum(s.duration_s for s in path) == pytest.approx(trace.rtt_s)

    def test_segments_tile_the_request_interval(self):
        tracer = Tracer(MetricsRegistry())
        trace = quorum_put_trace(tracer, arrival=1.0)
        path = critical_path(trace)
        assert path[0].start_s == pytest.approx(trace.arrival_s)
        assert path[-1].end_s == pytest.approx(trace.end_s)
        for before, after in zip(path, path[1:]):
            assert before.end_s == pytest.approx(after.start_s)

    def test_unfinished_trace_rejected(self):
        trace = Tracer(MetricsRegistry()).begin(0.0)
        with pytest.raises(ConfigurationError):
            critical_path(trace)
        with pytest.raises(ConfigurationError):
            waterfall(trace)


class TestTailAttribution:
    def test_shares_sum_to_one_per_cohort(self):
        tracer = Tracer(MetricsRegistry())
        traces = [
            flat_trace(tracer, arrival=float(i), stages=(("queue", (i + 1) * 1e-5),
                                                         ("memcached", 1e-5)))
            for i in range(10)
        ]
        table = tail_attribution(traces, quantiles=(0.5, 0.9))
        for q in (0.5, 0.9):
            assert sum(table.shares[q].values()) == pytest.approx(1.0)
        assert table.cohort_sizes[0.5] == 5
        assert table.cohort_sizes[0.9] == 1
        # The tail cohort is the slowest trace: queue-dominated.
        assert table.shares[0.9]["queue"] > table.shares[0.5]["queue"]

    def test_render_lists_components_and_cohorts(self):
        tracer = Tracer(MetricsRegistry())
        table = tail_attribution([quorum_put_trace(tracer)], quantiles=(0.5,))
        text = table.render()
        assert "replica_put.queue" in text
        assert "cohort size" in text
        assert "p50" in text

    def test_needs_a_finished_trace(self):
        with pytest.raises(ConfigurationError):
            tail_attribution([])
        tracer = Tracer(MetricsRegistry())
        with pytest.raises(ConfigurationError):
            tail_attribution([flat_trace(tracer)], quantiles=(1.0,))


class TestWaterfall:
    def test_marks_critical_spans(self):
        tracer = Tracer(MetricsRegistry())
        trace = quorum_put_trace(tracer)
        text = waterfall(trace)
        assert f"trace {trace.request_id}" in text
        assert "#" in text  # critical bars
        assert "-" in text  # off-path bars (the losing branch)
        assert "*queue" in text
        assert "verb=PUT" in text


class TestTraceDigest:
    def test_digest_is_deterministic(self):
        def build():
            tracer = Tracer(MetricsRegistry(), sampling_seed=3)
            for i in range(5):
                tracer.commit(flat_trace(tracer, arrival=float(i)))
            return tracer

        first, second = compute_trace_digest(build()), compute_trace_digest(build())
        assert first == second
        assert first["committed"] == 5
        assert first["retained"] == 5
        assert "critical_path" in first
        assert len(first["trace_ids_sha256"]) == 16

    def test_empty_tracer_digest_has_no_critical_path(self):
        digest = compute_trace_digest(Tracer(MetricsRegistry()))
        assert digest["committed"] == 0
        assert "critical_path" not in digest
