"""Tests for the analytic queueing models."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.sim import MG1, MM1, sla_fraction_met


class TestMM1:
    def test_utilization(self):
        assert MM1(arrival_rate=50, service_rate=100).utilization == pytest.approx(0.5)

    def test_unstable_queue_rejected(self):
        with pytest.raises(ConfigurationError, match="unstable"):
            _ = MM1(arrival_rate=100, service_rate=100).utilization

    def test_mean_response_formula(self):
        # W = 1 / (mu - lambda).
        queue = MM1(arrival_rate=50, service_rate=100)
        assert queue.mean_response == pytest.approx(1.0 / 50.0)

    def test_mean_wait_is_response_minus_service(self):
        queue = MM1(arrival_rate=50, service_rate=100)
        assert queue.mean_wait == pytest.approx(queue.mean_response - 0.01)

    def test_queue_length_littles_law(self):
        queue = MM1(arrival_rate=50, service_rate=100)
        # L = lambda * W for the queue+service population: rho/(1-rho).
        assert queue.mean_queue_length == pytest.approx(1.0)

    def test_percentile_median_below_mean(self):
        queue = MM1(arrival_rate=50, service_rate=100)
        assert queue.response_percentile(0.5) < queue.mean_response
        assert queue.response_percentile(0.99) > queue.mean_response

    def test_fraction_under_is_cdf(self):
        queue = MM1(arrival_rate=50, service_rate=100)
        p99 = queue.response_percentile(0.99)
        assert queue.fraction_under(p99) == pytest.approx(0.99, rel=1e-6)

    def test_bad_percentile_rejected(self):
        queue = MM1(arrival_rate=1, service_rate=10)
        with pytest.raises(ConfigurationError):
            queue.response_percentile(0.0)

    @given(rho=st.floats(min_value=0.01, max_value=0.95))
    @settings(max_examples=50, deadline=None)
    def test_response_grows_with_load(self, rho):
        slow = MM1(arrival_rate=rho * 100, service_rate=100)
        slower = MM1(arrival_rate=min(0.99, rho * 1.02) * 100, service_rate=100)
        assert slower.mean_response >= slow.mean_response


class TestMG1:
    def test_deterministic_service_halves_wait_vs_exponential(self):
        # P-K: W_q(D) = W_q(M) / 2 at equal rho.
        det = MG1(arrival_rate=50, mean_service=0.01, scv=0.0)
        exp = MG1(arrival_rate=50, mean_service=0.01, scv=1.0)
        assert det.mean_wait == pytest.approx(exp.mean_wait / 2.0)

    def test_exponential_matches_mm1(self):
        mg1 = MG1(arrival_rate=50, mean_service=0.01, scv=1.0)
        mm1 = MM1(arrival_rate=50, service_rate=100)
        assert mg1.mean_response == pytest.approx(mm1.mean_response)

    def test_zero_load_response_is_service(self):
        queue = MG1(arrival_rate=0.0, mean_service=0.01)
        assert queue.mean_response == pytest.approx(0.01)

    def test_fraction_under_monotone_in_deadline(self):
        queue = MG1(arrival_rate=80, mean_service=0.01, scv=0.5)
        fractions = [queue.fraction_under(d) for d in (0.01, 0.02, 0.05, 0.2)]
        assert fractions == sorted(fractions)
        assert fractions[-1] > 0.99

    def test_percentile_never_below_service(self):
        queue = MG1(arrival_rate=10, mean_service=0.01)
        assert queue.response_percentile(0.1) >= 0.01

    def test_bad_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            MG1(arrival_rate=1, mean_service=0)
        with pytest.raises(ConfigurationError):
            MG1(arrival_rate=1, mean_service=0.01, scv=-1)


class TestSlaFraction:
    def test_zero_load_meets_sla_iff_service_fits(self):
        assert sla_fraction_met(0.0, 0.5e-3, 1e-3) == 1.0
        assert sla_fraction_met(0.0, 2e-3, 1e-3) == 0.0

    def test_light_load_meets_sla(self):
        # Mercury-ish: 85 us service, 1 ms deadline, 30% load.
        fraction = sla_fraction_met(0.3 / 85e-6, 85e-6, 1e-3)
        assert fraction > 0.99

    def test_fraction_degrades_with_load(self):
        service = 193e-6  # Iridium-ish
        fractions = [
            sla_fraction_met(load / service, service, 1e-3)
            for load in (0.3, 0.6, 0.9)
        ]
        assert fractions == sorted(fractions, reverse=True)

    def test_majority_threshold_interpretation(self):
        # The paper's claim: Iridium keeps a *majority* under 1 ms.
        service = 193e-6
        assert sla_fraction_met(0.9 / service, service, 1e-3) > 0.5
