"""Golden regression for the replication availability/recovery curve.

Pins the full-system crash experiment for N ∈ {1, 2, 3}: per-window
availability relative to a fault-free run of the same configuration,
plus the replication bookkeeping (write amplification, hints,
anti-entropy repairs).  The DES is seeded and single-threaded, so the
fixture matches exactly up to float round-off; any drift means the
replicated request path changed and the diff should be reviewed like a
model change.

To bless an intentional change::

    pytest tests/test_replication_golden.py --regen-golden
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import pytest

from repro.core import mercury_stack
from repro.faults.resilience import DEFAULT_RESILIENCE
from repro.faults.schedule import FaultEvent, FaultSchedule
from repro.replication.config import ReplicationConfig
from repro.sim.full_system import FullSystemStack
from repro.sim.run_options import RunOptions
from repro.units import MB
from repro.workloads import WorkloadSpec
from repro.workloads.distributions import fixed_size

GOLDEN_DIR = Path(__file__).parent / "golden"
REL_TOL = 1e-9

CORES = 4
CRASH_S, RESTART_S = 0.3, 0.6
DURATION_S = 1.2
WINDOW_S = 0.1

SCHEDULE = FaultSchedule(
    name="replication-golden",
    events=(
        FaultEvent(kind="node_crash", at_s=CRASH_S, node="core0"),
        FaultEvent(kind="node_restart", at_s=RESTART_S, node="core0"),
    ),
)


def _run(n: int, faults: FaultSchedule | None):
    system = FullSystemStack(
        stack=mercury_stack(cores=CORES),
        memory_per_core_bytes=8 * MB,
        seed=42,
    )
    capacity = CORES * system.model.tps("GET", 64)
    workload = WorkloadSpec(
        name="replication-golden",
        get_fraction=0.9,
        key_population=8_000,
        value_sizes=fixed_size(64),
    )
    replication = (
        ReplicationConfig(n=n, r=min(2, n), w=min(2, n)) if n > 1 else None
    )
    return system.run(
        workload,
        RunOptions(
            offered_rate_hz=0.3 * capacity,
            duration_s=DURATION_S,
            warmup_requests=24_000,
            window_s=WINDOW_S,
            fill_on_miss=True,
            faults=faults,
            resilience=DEFAULT_RESILIENCE if faults else None,
            replication=replication,
        ),
    )


def _availability_payload() -> dict:
    payload = {}
    for n in (1, 2, 3):
        baseline = _run(n, faults=None)
        faulted = _run(n, faults=SCHEDULE)
        windows = []
        for window in sorted(baseline.window_gets):
            base_gets = baseline.window_gets[window]
            gets = faulted.window_gets.get(window, 0)
            if not base_gets or not gets:
                continue
            base_rate = baseline.window_hits.get(window, 0) / base_gets
            rate = faulted.window_hits.get(window, 0) / gets
            windows.append(
                {
                    "window_s": round(window * WINDOW_S, 6),
                    "availability": rate / base_rate if base_rate else 0.0,
                }
            )
        payload[f"n{n}"] = {
            "quorum": {
                "n": n,
                "r": min(2, n) if n > 1 else 1,
                "w": min(2, n) if n > 1 else 1,
            },
            "write_amplification": faulted.write_amplification,
            "min_availability": min(w["availability"] for w in windows),
            "availability_curve": windows,
            "hints_queued": faulted.hints_queued,
            "hints_replayed": faulted.hints_replayed,
            "antientropy_repairs": faulted.antientropy_repairs,
            "completed": faulted.completed,
            "failed": faulted.failed,
        }
    return payload


def _assert_close(expected, actual, path: str = "$") -> None:
    if isinstance(expected, (int, float)) and not isinstance(expected, bool):
        assert isinstance(actual, (int, float)) and not isinstance(actual, bool), (
            f"{path}: expected a number, got {actual!r}"
        )
        assert math.isclose(expected, actual, rel_tol=REL_TOL, abs_tol=1e-12), (
            f"{path}: {actual!r} != golden {expected!r} (rel_tol={REL_TOL})"
        )
    elif isinstance(expected, list):
        assert isinstance(actual, list) and len(actual) == len(expected), (
            f"{path}: length mismatch vs golden"
        )
        for index, (e, a) in enumerate(zip(expected, actual)):
            _assert_close(e, a, f"{path}[{index}]")
    elif isinstance(expected, dict):
        assert isinstance(actual, dict) and set(actual) == set(expected), (
            f"{path}: key mismatch vs golden"
        )
        for key in expected:
            _assert_close(expected[key], actual[key], f"{path}.{key}")
    else:
        assert expected == actual, f"{path}: {actual!r} != golden {expected!r}"


@pytest.mark.slow
def test_replication_availability_matches_golden(regen_golden):
    payload = json.loads(json.dumps(_availability_payload()))
    path = GOLDEN_DIR / "replication_availability.json"
    if regen_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return
    if not path.exists():
        pytest.fail(f"missing golden fixture {path}; generate with --regen-golden")
    _assert_close(json.loads(path.read_text()), payload, "replication_availability")


@pytest.mark.slow
def test_golden_fixture_tells_the_availability_story():
    """Independent of exact numbers, the checked-in fixture must show
    the claim: N=3 never dips below 99% while N=1 troughs visibly."""
    path = GOLDEN_DIR / "replication_availability.json"
    if not path.exists():
        pytest.skip("fixture not generated yet")
    payload = json.loads(path.read_text())
    assert payload["n3"]["min_availability"] >= 0.99
    assert payload["n1"]["min_availability"] < 0.95
    assert payload["n3"]["write_amplification"] > 2.0
