"""Telemetry primitives: counters, gauges, streaming histograms, exporters."""

import math
import random
import statistics

import pytest

from repro.errors import ConfigurationError
from repro.telemetry import (
    MetricsRegistry,
    NULL_REGISTRY,
    StreamingHistogram,
    describe_metric,
    escape_label_value,
    metric_description,
    prometheus_text,
    summary_table,
)


def exact_quantile(samples, p):
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(p * len(ordered)))]


class TestCounterGauge:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total")
        counter.inc()
        counter.inc(4)
        assert registry.counter("requests_total").value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().counter("c").inc(-1)

    def test_gauge_tracks_high_water(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(3)
        gauge.set(9)
        gauge.set(2)
        assert gauge.value == 2
        assert gauge.high_water == 9

    def test_labels_distinguish_metrics(self):
        registry = MetricsRegistry()
        registry.counter("served", {"core": "0"}).inc()
        registry.counter("served", {"core": "1"}).inc(2)
        assert registry.counter("served", {"core": "0"}).value == 1
        assert registry.counter("served", {"core": "1"}).value == 2

    def test_name_collision_across_kinds_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ConfigurationError):
            registry.gauge("x")

    def test_invalid_name_rejected(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().counter("bad name!")


class TestStreamingHistogram:
    def test_exact_count_sum_min_max(self):
        histogram = StreamingHistogram("h")
        for value in (1e-5, 2e-5, 3e-5):
            histogram.record(value)
        assert histogram.count == 3
        assert histogram.mean == pytest.approx(2e-5)
        assert histogram.minimum == 1e-5
        assert histogram.maximum == 3e-5

    @pytest.mark.parametrize("distribution", ["uniform", "lognormal"])
    def test_percentiles_within_one_bucket_of_exact(self, distribution):
        rng = random.Random(7)
        if distribution == "uniform":
            samples = [rng.uniform(1e-5, 1e-3) for _ in range(20_000)]
        else:
            samples = [rng.lognormvariate(-9.0, 0.8) for _ in range(20_000)]
        histogram = StreamingHistogram("h")
        for sample in samples:
            histogram.record(sample)
        quantiles = statistics.quantiles(samples, n=1000)
        for p in (0.5, 0.95, 0.99, 0.999):
            exact = quantiles[int(p * 1000) - 1]
            estimate = histogram.percentile(p)
            # The estimate is the bucket's upper edge: at most one
            # bucket width above the exact order statistic.
            assert exact / histogram.bucket_ratio <= estimate
            assert estimate <= exact * histogram.bucket_ratio

    def test_merge_is_associative_and_exact(self):
        rng = random.Random(3)
        samples = [rng.lognormvariate(-8.0, 1.0) for _ in range(9_000)]
        thirds = [samples[0:3000], samples[3000:6000], samples[6000:9000]]
        parts = []
        for third in thirds:
            histogram = StreamingHistogram("h")
            for sample in third:
                histogram.record(sample)
            parts.append(histogram)
        whole = StreamingHistogram("h")
        for sample in samples:
            whole.record(sample)
        left = parts[0].merge(parts[1]).merge(parts[2])
        right = parts[0].merge(parts[1].merge(parts[2]))
        for merged in (left, right):
            assert merged.counts == whole.counts
            assert merged.count == whole.count
            assert merged.total == pytest.approx(whole.total)
            assert merged.minimum == whole.minimum
            assert merged.maximum == whole.maximum
        assert left.percentile(0.99) == whole.percentile(0.99)

    def test_merge_rejects_mismatched_buckets(self):
        a = StreamingHistogram("h", buckets_per_decade=10)
        b = StreamingHistogram("h", buckets_per_decade=20)
        with pytest.raises(ConfigurationError):
            a.merge(b)

    def test_fraction_below(self):
        histogram = StreamingHistogram("h")
        rng = random.Random(11)
        samples = [rng.uniform(1e-5, 1e-3) for _ in range(10_000)]
        for sample in samples:
            histogram.record(sample)
        threshold = 5e-4
        exact = sum(1 for s in samples if s <= threshold) / len(samples)
        assert histogram.fraction_below(threshold) == pytest.approx(exact, abs=0.05)
        assert histogram.fraction_below(1.0) == 1.0
        assert histogram.fraction_below(1e-9) == 0.0

    def test_out_of_range_samples_clamp_to_edge_buckets(self):
        histogram = StreamingHistogram("h", min_value=1e-6, max_value=1.0)
        histogram.record(1e-9)  # under range
        histogram.record(50.0)  # over range
        assert histogram.count == 2
        assert histogram.counts[0] == 1
        assert histogram.counts[-1] == 1
        assert histogram.maximum == 50.0

    def test_empty_histogram_is_quiet(self):
        histogram = StreamingHistogram("h")
        assert histogram.mean == 0.0
        assert histogram.percentile(0.99) == 0.0
        assert histogram.fraction_below(1.0) == 0.0

    def test_negative_and_bad_quantile_rejected(self):
        histogram = StreamingHistogram("h")
        with pytest.raises(ConfigurationError):
            histogram.record(-1.0)
        with pytest.raises(ConfigurationError):
            histogram.percentile(1.5)

    def test_to_dict_lists_occupied_buckets_only(self):
        histogram = StreamingHistogram("h")
        histogram.record(1e-4)
        snapshot = histogram.to_dict()
        assert snapshot["count"] == 1
        assert len(snapshot["buckets"]) == 1

    def test_dict_round_trip_is_exact(self):
        rng = random.Random(5)
        histogram = StreamingHistogram("h")
        for _ in range(5_000):
            histogram.record(rng.lognormvariate(-8.0, 1.2))
        histogram.record(3e-8)   # below range
        histogram.record(500.0)  # above range
        restored = StreamingHistogram.from_dict(histogram.to_dict(), name="h")
        # Bucket keys map back to the same indices; nothing quantised.
        assert restored.counts == histogram.counts
        assert restored.count == histogram.count
        assert restored.total == histogram.total
        assert restored.minimum == histogram.minimum == 3e-8
        assert restored.maximum == histogram.maximum == 500.0
        assert restored.percentile(0.99) == histogram.percentile(0.99)

    def test_round_trip_then_merge_carries_min_max_exactly(self):
        a = StreamingHistogram("h")
        b = StreamingHistogram("h")
        a.record(2.5e-5)
        b.record(7.7e-3)
        revived_a = StreamingHistogram.from_dict(a.to_dict())
        merged = revived_a.merge(b)
        assert merged.minimum == 2.5e-5
        assert merged.maximum == 7.7e-3
        assert merged.count == 2
        # And a second round trip of the merge is still exact.
        again = StreamingHistogram.from_dict(merged.to_dict())
        assert again.minimum == 2.5e-5 and again.maximum == 7.7e-3
        assert again.counts == merged.counts

    def test_round_trip_empty_histogram(self):
        restored = StreamingHistogram.from_dict(StreamingHistogram("h").to_dict())
        assert restored.count == 0
        assert restored.minimum == 0.0 and restored.maximum == 0.0

    def test_round_trip_preserves_custom_geometry(self):
        histogram = StreamingHistogram(
            "h", min_value=1e-3, max_value=10.0, buckets_per_decade=5
        )
        histogram.record(0.5)
        restored = StreamingHistogram.from_dict(histogram.to_dict())
        assert restored.buckets_per_decade == 5
        assert restored.min_value == 1e-3
        assert restored.counts == histogram.counts


class TestNullRegistry:
    def test_records_nothing(self):
        NULL_REGISTRY.counter("c").inc()
        NULL_REGISTRY.gauge("g").set(5)
        NULL_REGISTRY.histogram("h").record(1.0)
        assert len(NULL_REGISTRY) == 0
        assert list(NULL_REGISTRY) == []
        assert NULL_REGISTRY.histogram("h").count == 0

    def test_disabled_flag(self):
        assert not NULL_REGISTRY.enabled
        assert MetricsRegistry().enabled


class TestExporters:
    def test_prometheus_text_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("ops_total").inc(7)
        registry.gauge("depth", {"core": "0"}).set(4)
        histogram = registry.histogram("rtt_seconds")
        for value in (1e-4, 2e-4, 3e-4):
            histogram.record(value)
        text = prometheus_text(registry)
        assert "# TYPE ops_total counter" in text
        assert "ops_total 7" in text
        assert 'depth{core="0"} 4' in text
        assert 'rtt_seconds{quantile="0.5"}' in text
        assert "rtt_seconds_count 3" in text
        sum_line = next(l for l in text.splitlines() if l.startswith("rtt_seconds_sum"))
        assert float(sum_line.split()[1]) == pytest.approx(6e-4)

    def test_empty_registry_exports_empty(self):
        assert prometheus_text(MetricsRegistry()) == ""
        assert "no metrics" in summary_table(MetricsRegistry())

    def test_summary_table_mentions_metrics(self):
        registry = MetricsRegistry()
        registry.counter("ops_total").inc()
        registry.histogram("rtt_seconds").record(1e-4)
        text = summary_table(registry)
        assert "ops_total" in text
        assert "rtt_seconds" in text
        assert "p99" in text

    def test_label_value_escaping(self):
        assert escape_label_value('plain') == "plain"
        assert escape_label_value('a\\b') == "a\\\\b"
        assert escape_label_value('say "hi"') == 'say \\"hi\\"'
        assert escape_label_value("two\nlines") == "two\\nlines"
        # Order matters: the backslash introduced by the quote escape
        # must not be doubled again.
        assert escape_label_value('\\"') == '\\\\\\"'

    def test_prometheus_escapes_label_values(self):
        registry = MetricsRegistry()
        registry.counter("ops_total", {"path": 'C:\\tmp\n"x"'}).inc()
        text = prometheus_text(registry)
        assert 'ops_total{path="C:\\\\tmp\\n\\"x\\""} 1' in text
        # The raw newline never reaches the exposition output.
        assert all("\n" not in line or line == "" for line in text.split("\n"))

    def test_help_lines_from_description_registry(self):
        registry = MetricsRegistry()
        registry.counter("requests_completed_total").inc()
        registry.counter("totally_undocumented_total").inc()
        text = prometheus_text(registry)
        assert (
            "# HELP requests_completed_total "
            "Requests that completed within the run horizon" in text
        )
        # HELP precedes TYPE for documented metrics; undocumented ones
        # still get their TYPE line, just no HELP.
        lines = text.splitlines()
        help_index = lines.index(
            "# HELP requests_completed_total "
            "Requests that completed within the run horizon"
        )
        assert lines[help_index + 1] == "# TYPE requests_completed_total counter"
        assert "# HELP totally_undocumented_total" not in text
        assert "# TYPE totally_undocumented_total counter" in text

    def test_help_text_escaped(self):
        describe_metric("weird_total", "line one\nline \\two")
        try:
            registry = MetricsRegistry()
            registry.counter("weird_total").inc()
            text = prometheus_text(registry)
            assert "# HELP weird_total line one\\nline \\\\two" in text
        finally:
            from repro.telemetry.metrics import METRIC_DESCRIPTIONS

            METRIC_DESCRIPTIONS.pop("weird_total", None)

    def test_describe_metric_validates_and_reads_back(self):
        with pytest.raises(ConfigurationError):
            describe_metric("bad name!", "nope")
        assert metric_description("requests_completed_total")
        assert metric_description("never_registered_total") is None

    def test_help_emitted_once_per_metric_name(self):
        registry = MetricsRegistry()
        registry.counter("requests_served_total", {"core": "0"}).inc()
        registry.counter("requests_served_total", {"core": "1"}).inc()
        text = prometheus_text(registry)
        assert text.count("# HELP requests_served_total") == 1
        assert text.count("# TYPE requests_served_total") == 1
