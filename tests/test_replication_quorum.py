"""Unit tests for the quorum replication subsystem.

Covers the N/R/W config contract, stack-aware placement, the
client-side coordinator (fan-out writes, version-resolved reads,
read-repair, crash/restart with hinted handoff), the hint queue's
newest-wins semantics, anti-entropy reconvergence, and the
replica-aware :class:`ResilientClient`.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.kvstore.client import FaultyNetwork, ResilientClient
from repro.kvstore.consistent_hash import ConsistentHashRing
from repro.replication.antientropy import AntiEntropySweeper
from repro.replication.config import (
    DEFAULT_REPLICATION,
    SINGLE_COPY,
    QuorumConfig,
    ReplicationConfig,
)
from repro.replication.coordinator import ReplicationCoordinator
from repro.replication.handoff import HintQueue
from repro.replication.placement import ReplicaPlacement, default_stack_of
from repro.telemetry.metrics import MetricsRegistry
from repro.units import MB

NODES = [f"stack{i}:core0" for i in range(5)]


def make_coordinator(n=3, r=2, w=2, nodes=None, **kwargs):
    return ReplicationCoordinator(
        nodes if nodes is not None else list(NODES),
        memory_per_node_bytes=4 * MB,
        quorum=QuorumConfig(n, r, w),
        **kwargs,
    )


class TestQuorumConfig:
    def test_default_is_overlapping_3_2_2(self):
        q = QuorumConfig()
        assert (q.n, q.r, q.w) == (3, 2, 2)
        assert q.overlapping

    def test_non_overlapping_detected(self):
        assert not QuorumConfig(n=3, r=1, w=1).overlapping

    @pytest.mark.parametrize("n,r,w", [(0, 1, 1), (3, 0, 2), (3, 4, 2), (3, 2, 0), (3, 2, 4)])
    def test_invalid_triples_rejected(self, n, r, w):
        with pytest.raises(ConfigurationError):
            QuorumConfig(n=n, r=r, w=w)

    def test_replication_config_validates_and_exposes_quorum(self):
        config = ReplicationConfig(n=3, r=2, w=2)
        assert config.quorum == QuorumConfig(3, 2, 2)
        with pytest.raises(ConfigurationError):
            ReplicationConfig(anti_entropy_interval_s=0.0)
        with pytest.raises(ConfigurationError):
            ReplicationConfig(anti_entropy_buckets=0)
        with pytest.raises(ConfigurationError):
            ReplicationConfig(max_repairs_per_sweep=0)

    def test_named_presets(self):
        assert SINGLE_COPY.n == 1
        assert DEFAULT_REPLICATION.quorum.overlapping


class TestPlacement:
    def test_preferred_list_has_n_distinct_nodes(self):
        ring = ConsistentHashRing(NODES)
        placement = ReplicaPlacement(ring, n=3)
        for i in range(200):
            replicas = placement.replicas_for(b"key-%d" % i)
            assert len(replicas) == 3
            assert len(set(replicas)) == 3

    def test_stack_rule_keeps_failure_domains_distinct(self):
        # Two nodes per stack: replicas must never share a stack while
        # enough stacks exist.
        nodes = [f"stack{s}:core{c}" for s in range(4) for c in range(2)]
        placement = ReplicaPlacement(ConsistentHashRing(nodes), n=3)
        for i in range(200):
            stacks = placement.stacks_for(b"key-%d" % i)
            assert len(set(stacks)) == 3

    def test_stack_rule_relaxes_when_stacks_are_scarce(self):
        # 2 stacks, 3 replicas: distinct nodes still required, stacks
        # necessarily repeat.
        nodes = [f"stack{s}:core{c}" for s in range(2) for c in range(3)]
        placement = ReplicaPlacement(ConsistentHashRing(nodes), n=3)
        replicas = placement.replicas_for(b"alpha")
        assert len(set(replicas)) == 3

    def test_exclusion_extends_the_walk_deterministically(self):
        ring = ConsistentHashRing(NODES)
        placement = ReplicaPlacement(ring, n=3)
        key = b"the-key"
        original = placement.replicas_for(key)
        down = original[0]
        shifted = placement.replicas_for(key, exclude={down})
        assert down not in shifted
        # Surviving members keep their relative order; re-placement is
        # the walk extended past the excluded node.
        assert shifted[: 2] == original[1:]
        # Readmission restores the original preferred list exactly.
        assert placement.replicas_for(key) == original

    def test_primary_for_raises_when_everything_excluded(self):
        placement = ReplicaPlacement(ConsistentHashRing(NODES), n=2)
        with pytest.raises(ConfigurationError):
            placement.primary_for(b"k", exclude=set(NODES))

    def test_default_stack_of(self):
        assert default_stack_of("stack3:core7") == "stack3"
        assert default_stack_of("plainnode") == "plainnode"


class TestHintQueue:
    def test_newest_version_wins_per_key(self):
        q = HintQueue()
        assert q.park("n1", b"k", 5, payload="old")
        assert not q.park("n1", b"k", 3, payload="older")  # stale, ignored
        assert q.park("n1", b"k", 9, payload="new")
        (hint,) = q.drain("n1")
        assert hint.version == 9 and hint.payload == "new"

    def test_drain_orders_by_version_then_key(self):
        q = HintQueue()
        q.park("n1", b"b", 2)
        q.park("n1", b"a", 2)
        q.park("n1", b"c", 1)
        assert [h.key for h in q.drain("n1")] == [b"c", b"a", b"b"]
        assert q.depth("n1") == 0

    def test_bounded_queue_drops_new_keys(self):
        q = HintQueue(max_hints_per_node=2)
        assert q.park("n1", b"a", 1)
        assert q.park("n1", b"b", 1)
        assert not q.park("n1", b"c", 1)  # full: dropped
        assert q.park("n1", b"a", 2)  # existing key: still updatable
        assert q.dropped == 1 and len(q) == 2


class TestCoordinator:
    def test_write_fans_to_n_and_read_returns_value(self):
        c = make_coordinator()
        outcome = c.put(b"k", b"v")
        assert outcome.ok and outcome.acks == 3 and len(outcome.replicas) == 3
        assert c.item_count() == 3
        assert c.get(b"k").value == b"v"

    def test_versions_are_monotone(self):
        c = make_coordinator()
        v1 = c.put(b"k", b"a").version
        v2 = c.put(b"k", b"b").version
        assert v2 > v1
        assert c.get(b"k").flags == v2

    def test_write_succeeds_at_w_with_one_replica_down(self):
        c = make_coordinator()
        victim = c.replicas_for(b"k")[0]
        c.crash_node(victim)
        outcome = c.put(b"k", b"v")
        assert outcome.ok and outcome.acks == 2 and outcome.hinted == 1
        assert c.get(b"k").value == b"v"

    def test_write_fails_below_w(self):
        c = make_coordinator()
        replicas = c.replicas_for(b"k")
        c.crash_node(replicas[0])
        c.crash_node(replicas[1])
        outcome = c.put(b"k", b"v")
        assert not outcome.ok and outcome.acks == 1
        assert c.quorum_write_failures == 1

    def test_restart_replays_hints_newest_version_wins(self):
        c = make_coordinator()
        victim = c.replicas_for(b"k")[0]
        c.put(b"k", b"v1")
        c.crash_node(victim)
        c.put(b"k", b"v2")
        c.put(b"k", b"v3")  # overwrites the parked hint
        assert c.hints.depth(victim) == 1
        replayed = c.restart_node(victim)
        assert replayed == 1
        item = c.stores[victim].peek(b"k")
        assert item.value == b"v3"

    def test_read_repair_heals_stale_replica(self):
        c = make_coordinator(n=3, r=3, w=2)
        c.put(b"k", b"new")
        # Manually regress one replica to an older version.
        stale_node = c.replicas_for(b"k")[2]
        c.stores[stale_node].set(b"k", b"old", flags=0)
        item = c.get(b"k")
        assert item.value == b"new"
        assert c.read_repairs == 1
        assert c.divergence_detected == 1 and c.divergence_healed == 1
        assert c.stores[stale_node].peek(b"k").value == b"new"

    def test_read_skips_down_replica_and_extends_walk(self):
        c = make_coordinator()
        key = b"k"
        c.put(key, b"v")
        primary = c.replicas_for(key)[0]
        c.crash_node(primary)
        targets = c.read_targets(key)
        assert primary not in targets and len(targets) == 2
        assert c.get(key).value == b"v"

    def test_crash_loses_contents(self):
        c = make_coordinator()
        c.put(b"k", b"v")
        victim = c.replicas_for(b"k")[0]
        c.crash_node(victim)
        c.restart_node(victim)
        # No writes happened while down: the node restarts cold except
        # for replayed hints (none here).
        assert c.stores[victim].peek(b"k") is None

    def test_delete_removes_from_live_replicas(self):
        c = make_coordinator()
        c.put(b"k", b"v")
        assert c.delete(b"k")
        assert c.get(b"k") is None

    def test_membership_validation(self):
        with pytest.raises(ConfigurationError):
            make_coordinator(nodes=[])
        with pytest.raises(ConfigurationError):
            make_coordinator(nodes=["a", "a"])
        with pytest.raises(ConfigurationError):
            make_coordinator(n=4, r=2, w=2, nodes=["a", "b"])
        c = make_coordinator()
        with pytest.raises(ConfigurationError):
            c.restart_node(NODES[0])  # not down
        c.crash_node(NODES[0])
        with pytest.raises(ConfigurationError):
            c.crash_node(NODES[0])  # already down

    def test_counters_mirror_into_registry(self):
        registry = MetricsRegistry()
        c = make_coordinator(registry=registry)
        c.put(b"k", b"v")
        victim = c.replicas_for(b"k")[0]
        c.crash_node(victim)
        c.put(b"k", b"v2")
        c.restart_node(victim)
        snapshot = {m.name: m.value for m in registry if hasattr(m, "value")}
        assert snapshot["replication_replica_writes_total"] == 5
        assert snapshot["replication_hints_queued_total"] == 1
        assert snapshot["replication_hints_replayed_total"] == 1


class TestAntiEntropy:
    def test_sweep_reconverges_a_cold_restarted_node(self):
        c = make_coordinator()
        keys = [b"key-%d" % i for i in range(50)]
        for key in keys:
            c.put(key, b"value")
        victim = NODES[0]
        before = len(c.stores[victim].items_live())
        c.crash_node(victim)
        c.restart_node(victim)  # cold: hints only cover writes-while-down
        assert len(c.stores[victim].items_live()) == 0
        sweeper = AntiEntropySweeper(c, buckets=16)
        report = sweeper.sweep()
        assert report.repairs == before
        assert len(c.stores[victim].items_live()) == before
        # A second sweep finds nothing to do.
        assert sweeper.sweep().repairs == 0

    def test_converged_group_skips_every_bucket(self):
        c = make_coordinator()
        for i in range(30):
            c.put(b"key-%d" % i, b"v")
        report = AntiEntropySweeper(c, buckets=8).sweep()
        assert report.buckets_dirty == 0 and report.repairs == 0

    def test_repair_cap_truncates_and_resumes(self):
        c = make_coordinator()
        for i in range(40):
            c.put(b"key-%d" % i, b"v")
        victim = NODES[1]
        missing = len(c.stores[victim].items_live())
        c.crash_node(victim)
        c.restart_node(victim)
        sweeper = AntiEntropySweeper(c, buckets=16, max_repairs_per_sweep=5)
        first = sweeper.sweep()
        assert first.truncated and first.repairs == 5
        total = first.repairs
        for _ in range(missing):
            report = sweeper.sweep()
            total += report.repairs
            if not report.truncated:
                break
        assert total == missing

    def test_newest_version_wins_across_group(self):
        c = make_coordinator()
        c.put(b"k", b"new")
        stale_node = c.replicas_for(b"k")[1]
        c.stores[stale_node].set(b"k", b"old", flags=0)
        AntiEntropySweeper(c, buckets=4).sweep()
        assert c.stores[stale_node].peek(b"k").value == b"new"


class TestResilientClientQuorum:
    NODES = ["s0:c0", "s1:c0", "s2:c0", "s3:c0"]

    def make(self, quorum=None, network=None, **kwargs):
        return ResilientClient(
            list(self.NODES), 4 * MB, network=network, quorum=quorum, **kwargs
        )

    def test_set_fans_to_preferred_list(self):
        client = self.make(quorum=QuorumConfig(3, 2, 2))
        assert client.set(b"k", b"v")
        assert client.replica_writes == 3
        holders = [
            node for node in self.NODES
            if client._stores[node].peek(b"k") is not None
        ]
        assert sorted(holders) == sorted(client.placement.replicas_for(b"k"))

    def test_hedge_targets_next_replica_not_next_ring_node(self):
        client = self.make(quorum=QuorumConfig(3, 2, 2))
        replicas = client.placement.replicas_for(b"k")
        assert client._hedge_node(b"k") == replicas[1]
        plain = self.make()
        nodes = sorted(plain.ring.nodes)
        expected = nodes[(nodes.index(plain.node_for(b"k")) + 1) % len(nodes)]
        assert plain._hedge_node(b"k") == expected

    def test_n1_quorum_preserves_old_hedge_behaviour(self):
        single = self.make(quorum=QuorumConfig(1, 1, 1))
        plain = self.make()
        for i in range(20):
            key = b"key-%d" % i
            assert single._hedge_node(key) == plain._hedge_node(key)

    def test_get_survives_primary_crash_via_replicas(self):
        network = FaultyNetwork(seed=7)
        client = self.make(quorum=QuorumConfig(3, 2, 2), network=network)
        assert client.set(b"k", b"v")
        network.crash(client.placement.replicas_for(b"k")[0])
        result = client.get(b"k")
        assert result is not None and result.value == b"v"

    def test_set_reports_quorum_failure(self):
        network = FaultyNetwork(seed=7)
        client = self.make(quorum=QuorumConfig(3, 3, 3), network=network)
        network.crash(client.placement.replicas_for(b"k")[0])
        assert not client.set(b"k", b"v")  # w=3 unreachable with 1 down

    def test_delete_fans_out(self):
        client = self.make(quorum=QuorumConfig(3, 2, 2))
        client.set(b"k", b"v")
        assert client.delete(b"k")
        for node in self.NODES:
            assert client._stores[node].peek(b"k") is None

    def test_quorum_larger_than_cluster_rejected(self):
        with pytest.raises(ConfigurationError):
            ResilientClient(["a", "b"], 4 * MB, quorum=QuorumConfig(3, 2, 2))
