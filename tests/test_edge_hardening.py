"""Assorted edge-case hardening across modules.

Each test pins down a boundary behaviour that no other test exercises:
zero-sized things, exactly-at-the-limit values, degenerate
configurations, and formatting corner cases.
"""

import pytest

from repro.analysis.report import render_series, render_table
from repro.core import OperatingPoint, dram_spec, mercury_stack
from repro.cpu.cache import Cache
from repro.errors import CapacityError, ConfigurationError, StorageError
from repro.kvstore import Item, KVStore, SlabAllocator
from repro.memory import TEZZARON_4GB
from repro.sim import Simulator
from repro.units import MB


class TestRenderingEdges:
    def test_negative_and_zero_cells(self):
        text = render_table(["x"], [[-1.5], [0], [0.0001], [12345.6]])
        assert "-1.5" in text
        assert "0" in text
        assert "12,346" in text

    def test_empty_rows_table(self):
        text = render_table(["a", "b"], [])
        assert "a" in text and len(text.splitlines()) == 2

    def test_series_with_single_point(self):
        text = render_series("x", ["only"], {"s": [1.0]})
        assert "only" in text


class TestStoreEdges:
    def test_zero_byte_value(self):
        store = KVStore(2 * MB)
        store.set(b"empty", b"")
        item = store.get(b"empty")
        assert item is not None and item.value == b""

    def test_value_exactly_at_page_limit(self):
        store = KVStore(4 * MB)
        max_value = store.slabs.max_item_bytes - 56 - 1  # overhead + 1B key
        assert store.set(b"k", b"x" * max_value).name == "STORED"

    def test_value_over_page_limit_is_oom(self):
        store = KVStore(4 * MB)
        over = store.slabs.max_item_bytes
        assert store.set(b"k", b"x" * over).name == "OUT_OF_MEMORY"

    def test_key_at_250_limit(self):
        store = KVStore(2 * MB)
        key = b"k" * 250
        store.set(key, b"v")
        assert store.get(key) is not None
        with pytest.raises(StorageError):
            Item(key=b"k" * 251, value=b"")

    def test_touch_to_never_expire(self):
        store = KVStore(2 * MB)
        store.set(b"k", b"v", expire=5)
        store.touch(b"k", 0)
        store.advance_time(1e9)
        assert store.get(b"k") is not None

    def test_incr_wraps_large_numbers(self):
        store = KVStore(2 * MB)
        store.set(b"n", str(2**63).encode())
        assert store.incr(b"n", 1) == 2**63 + 1


class TestSlabEdges:
    def test_one_byte_item_uses_min_chunk(self):
        slabs = SlabAllocator(2 * MB)
        assert slabs.class_for(1).chunk_size == slabs.classes[0].chunk_size

    def test_item_exactly_chunk_size(self):
        slabs = SlabAllocator(2 * MB)
        chunk = slabs.classes[3].chunk_size
        assert slabs.class_for(chunk).chunk_size == chunk

    def test_item_one_over_chunk_size(self):
        slabs = SlabAllocator(2 * MB)
        chunk = slabs.classes[3].chunk_size
        assert slabs.class_for(chunk + 1).chunk_size > chunk


class TestCacheEdges:
    def test_direct_mapped_cache(self):
        cache = Cache(size_bytes=256, line_size=64, associativity=1)
        cache.access(0)
        cache.access(256)  # same set, evicts
        assert not cache.contains(0)

    def test_fully_associative_cache(self):
        cache = Cache(size_bytes=256, line_size=64, associativity=4)
        assert cache.num_sets == 1
        for address in (0, 64, 128, 192):
            cache.access(address)
        assert cache.resident_lines == 4

    def test_access_range_zero_length(self):
        cache = Cache(size_bytes=1024)
        assert cache.access_range(100, 0) == 0

    def test_access_range_crossing_one_line_boundary(self):
        cache = Cache(size_bytes=1024)
        assert cache.access_range(60, 8) == 2  # straddles lines 0 and 1


class TestModelEdges:
    def test_zero_byte_get(self):
        model = mercury_stack(1).latency_model()
        timing = model.request_timing("GET", 0)
        assert timing.total_s > 0
        assert timing.tps > model.tps("GET", 1 << 20)

    def test_lowercase_verbs_accepted(self):
        model = mercury_stack(1).latency_model()
        assert model.request_timing("get", 64).total_s == (
            model.request_timing("GET", 64).total_s
        )
        assert OperatingPoint(verb="put").verb == "put"

    def test_dram_address_space_last_byte(self):
        port, bank, _row = TEZZARON_4GB.decompose_address(
            TEZZARON_4GB.capacity_bytes - 1
        )
        assert port == 15 and bank == 7

    def test_memory_spec_extreme_latency(self):
        model = mercury_stack(1).latency_model(dram_spec(1e-6))  # 1 us DRAM
        assert model.tps("GET", 64) < mercury_stack(1).latency_model().tps("GET", 64)


class TestSimEdges:
    def test_zero_delay_event_fires_now(self):
        sim = Simulator()
        fired = []
        sim.schedule(0.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [0.0]

    def test_cancel_after_fire_is_harmless(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.run()
        event.cancel()  # no effect, no error

    def test_run_until_exact_event_time_includes_it(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append(1))
        sim.run(until=2.0)
        assert fired == [1]
