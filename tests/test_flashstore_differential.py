"""Differential tests: the tiered store must never change *what* runs
return, only what it costs.

The subsystem's core wiring rule is a functional/timing split: hit and
miss outcomes always come from the real Memcached server path, while the
tiered store mirrors each op for flash-cost accounting only.  These
tests enforce that split three ways — a shadow-dict replay of the store
itself (including through a crash), a full-system tiered-vs-plain run
whose functional counters must match exactly (fault-free and through a
crash/restart window), and a disabled-path double run that must stay
bit-identical to the pre-flashstore baseline.
"""

from __future__ import annotations

import json
from dataclasses import replace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import iridium_stack
from repro.faults.schedule import crash_restart
from repro.flashstore import TieredFlashStore, TieredStoreConfig
from repro.memory.flash import FlashDevice, FlashTiming
from repro.sim.full_system import FullSystemStack
from repro.sim.run_options import RunOptions
from repro.units import KB, MB
from repro.workloads import WorkloadSpec
from repro.workloads.distributions import fixed_size

WORKLOAD = WorkloadSpec(
    name="flashstore-diff",
    get_fraction=0.5,
    key_population=4_000,
    value_sizes=fixed_size(64),
)


def _build(seed=3):
    return FullSystemStack(
        stack=iridium_stack(cores=4),
        memory_per_core_bytes=8 * MB,
        seed=seed,
    )


def _tiny_flash() -> FlashDevice:
    """Fixture-free tiny device (hypothesis re-runs need a fresh one
    per generated input, which a function-scoped fixture can't give)."""
    return FlashDevice(
        name="diff-flash",
        capacity_bytes=4 * MB,
        page_bytes=4 * KB,
        pages_per_block=16,
        channels=2,
        timing=FlashTiming(),
    )


def _functional(results):
    """Outcome counters that must not depend on the cost model
    (``completed`` is excluded: it only counts requests finishing inside
    the simulated window, which is timing by definition)."""
    return (
        results.get_hits,
        results.get_misses,
        results.puts,
        results.failed,
    )


class TestShadowDictReplay:
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["put", "get"]),
                st.integers(min_value=0, max_value=60),
            ),
            max_size=300,
        ),
        crash_after=st.integers(min_value=0, max_value=300),
    )
    @settings(max_examples=30, deadline=None)
    def test_membership_matches_a_dict_through_crashes(
        self, ops, crash_after
    ):
        """found/miss from the tiered store equals dict membership at
        every step, across seals, conversions, merges, and one crash."""
        config = TieredStoreConfig(log_segment_pages=2, max_hash_stores=2)
        store = TieredFlashStore(_tiny_flash(), config, seed=1)
        shadow: set[bytes] = set()
        for step, (verb, key_index) in enumerate(ops):
            key = b"key-%d" % key_index
            if step == crash_after:
                store.flush()
                shadow.clear()
            if verb == "put":
                cost = store.put(key, 180)
                assert cost.found and cost.tier == "log"
                shadow.add(key)
            else:
                cost = store.get(key)
                assert cost.found == (key in shadow), (step, key)
                assert (key in store) == (key in shadow)

    def test_densest_packing_never_exhausts_the_log_index(self, small_flash):
        """Minimum-size items at maximum count per segment must not
        overflow the sized-for-worst-case filter."""
        config = TieredStoreConfig(
            log_segment_pages=2, expected_item_bytes=64
        )
        store = TieredFlashStore(small_flash, config, seed=2)
        for i in range(1_000):
            store.put(b"dense-%d" % i, 64)
        for i in range(1_000):
            assert store.get(b"dense-%d" % i).found


class TestFullSystemDifferential:
    #: Below the baseline's saturation point: the MAC queue cap sheds
    #: load by *timing*, so functional equality is only promised while
    #: neither run overflows a queue (asserted via mac_drops below).
    OPTIONS = RunOptions(
        offered_rate_hz=4_000.0, duration_s=0.3, warmup_requests=4_000
    )
    CONFIG = TieredStoreConfig(log_segment_pages=8)

    def test_fault_free_functional_counters_match(self):
        plain = _build().run(WORKLOAD, self.OPTIONS)
        tiered = _build().run(
            WORKLOAD, replace(self.OPTIONS, flashstore=self.CONFIG)
        )
        assert plain.mac_drops == 0 and tiered.mac_drops == 0
        assert _functional(plain) == _functional(tiered)
        assert tiered.flashstore is not None
        assert plain.flashstore is None

    def test_crash_window_functional_counters_match(self):
        """Through a crash/restart the tiered store flushes alongside
        the store restart; hit/miss/fail accounting must not diverge."""
        schedule = crash_restart("core0", 0.08, 0.16)
        options = replace(self.OPTIONS, faults=schedule)
        plain = _build().run(WORKLOAD, options)
        tiered = _build().run(
            WORKLOAD, replace(options, flashstore=self.CONFIG)
        )
        assert plain.failed > 0  # the crash actually bit
        assert _functional(plain) == _functional(tiered)
        # Cold tiers after restart: the run still measured real traffic.
        assert tiered.flashstore["host_puts"] > 0

    def test_tiered_double_run_is_deterministic(self):
        options = replace(self.OPTIONS, flashstore=self.CONFIG)
        first = _build().run(WORKLOAD, options)
        second = _build().run(WORKLOAD, options)
        assert json.dumps(first.to_dict(), sort_keys=True) == json.dumps(
            second.to_dict(), sort_keys=True
        )


class TestDisabledPathIsUntouched:
    def test_disabled_double_run_bit_identical_without_flashstore_key(self):
        """flashstore=None must leave results byte-identical run to run
        and keep the serialised payload free of the new key, so old
        experiment-cache entries stay valid."""
        options = RunOptions(
            offered_rate_hz=20_000.0, duration_s=0.2, warmup_requests=2_000
        )
        first = _build().run(WORKLOAD, options)
        second = _build().run(WORKLOAD, options)
        first_json = json.dumps(first.to_dict(), sort_keys=True)
        assert first_json == json.dumps(second.to_dict(), sort_keys=True)
        assert "flashstore" not in first.to_dict()
        assert "flashstore" not in options.to_dict()
