"""Tests for the consistent-hash ring (§3.8's substrate)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.kvstore import ConsistentHashRing
from repro.sim.rng import make_rng


def sample_keys(count: int, seed: int = 0) -> list[bytes]:
    rng = make_rng("chash-test", seed)
    return [b"key-%d" % rng.randrange(10**9) for _ in range(count)]


class TestMembership:
    def test_add_and_lookup(self):
        ring = ConsistentHashRing(["a", "b", "c"])
        assert ring.node_for(b"some-key") in {"a", "b", "c"}
        assert len(ring) == 3

    def test_empty_ring_rejected(self):
        with pytest.raises(ConfigurationError, match="empty"):
            ConsistentHashRing().node_for(b"k")

    def test_duplicate_node_rejected(self):
        ring = ConsistentHashRing(["a"])
        with pytest.raises(ConfigurationError):
            ring.add_node("a")

    def test_remove_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            ConsistentHashRing(["a"]).remove_node("b")

    def test_remove_leaves_others(self):
        ring = ConsistentHashRing(["a", "b"])
        ring.remove_node("a")
        assert ring.nodes == frozenset({"b"})
        assert ring.node_for(b"k") == "b"

    def test_bad_vnodes_rejected(self):
        with pytest.raises(ConfigurationError):
            ConsistentHashRing(vnodes=0)


class TestConsistency:
    def test_lookup_is_deterministic(self):
        ring = ConsistentHashRing(["a", "b", "c"], vnodes=64)
        for key in sample_keys(100):
            assert ring.node_for(key) == ring.node_for(key)

    def test_monotonicity_on_node_add(self):
        # Consistent hashing's defining property: adding a node only moves
        # keys TO the new node, never between old nodes.
        ring = ConsistentHashRing(["a", "b", "c"], vnodes=64)
        keys = sample_keys(500)
        before = {key: ring.node_for(key) for key in keys}
        ring.add_node("d")
        for key in keys:
            after = ring.node_for(key)
            assert after == before[key] or after == "d"

    def test_remove_only_moves_victims_keys(self):
        ring = ConsistentHashRing(["a", "b", "c"], vnodes=64)
        keys = sample_keys(500, seed=1)
        before = {key: ring.node_for(key) for key in keys}
        ring.remove_node("b")
        for key in keys:
            if before[key] != "b":
                assert ring.node_for(key) == before[key]

    def test_add_then_remove_restores_mapping(self):
        ring = ConsistentHashRing(["a", "b"], vnodes=32)
        keys = sample_keys(200, seed=2)
        before = {key: ring.node_for(key) for key in keys}
        ring.add_node("c")
        ring.remove_node("c")
        assert {key: ring.node_for(key) for key in keys} == before

    @given(node_count=st.integers(min_value=1, max_value=12))
    @settings(max_examples=15, deadline=None)
    def test_all_keys_routed_to_member_nodes(self, node_count):
        names = [f"n{i}" for i in range(node_count)]
        ring = ConsistentHashRing(names, vnodes=16)
        for key in sample_keys(100, seed=node_count):
            assert ring.node_for(key) in set(names)


class TestLoadDistribution:
    def test_arc_fractions_sum_to_one(self):
        ring = ConsistentHashRing(["a", "b", "c"], vnodes=100)
        assert sum(ring.arc_fractions().values()) == pytest.approx(1.0)

    def test_vnodes_even_out_arcs(self):
        keys = sample_keys(4000, seed=3)
        few = ConsistentHashRing(["a", "b", "c", "d"], vnodes=1)
        many = ConsistentHashRing(["a", "b", "c", "d"], vnodes=200)
        assert many.hottest_fraction(keys) <= few.hottest_fraction(keys)

    def test_load_distribution_counts_every_key(self):
        ring = ConsistentHashRing(["a", "b"], vnodes=32)
        keys = sample_keys(300, seed=4)
        loads = ring.load_distribution(keys)
        assert sum(loads.values()) == 300

    def test_more_physical_nodes_reduce_hotspots(self):
        # §3.8's claim, the property Mercury's density provides for free.
        keys = sample_keys(6000, seed=5)
        shares = []
        for count in (4, 16, 64):
            ring = ConsistentHashRing([f"n{i}" for i in range(count)], vnodes=50)
            shares.append(ring.hottest_fraction(keys))
        assert shares[0] > shares[1] > shares[2]

    def test_hottest_fraction_of_nothing_is_zero(self):
        ring = ConsistentHashRing(["a"])
        assert ring.hottest_fraction([]) == 0.0
