"""Property-based tests for the batching layer.

Hypothesis drives random op streams, clock schedules, and policies at
:class:`~repro.kvstore.batching.BatchBuffer` and at the client's
``submit_*``/``barrier`` pipeline, pinning the invariants the
differential suite relies on:

* **No drop, no dup** — every submitted future resolves exactly once;
  every non-deduplicated op ships in exactly one batch.
* **Program order per key** — a buffer never reorders, so each key's
  mutation sequence inside the concatenated batch stream is its
  submission sequence (and with dedup off, the GETs too).
* **Size bound** — no batch exceeds ``batch_max``; size-flushed batches
  are exactly full.
* **Linger bound** — a buffer reports expiry exactly at
  ``opened_at + linger_s``, never later, so a caller that flushes
  expired buffers first can never hold an op past its deadline.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, ProtocolError
from repro.kvstore.batching import (
    FLUSH_BARRIER,
    FLUSH_SIZE,
    BatchBuffer,
    BatchOp,
    BatchPolicy,
)
from repro.kvstore.client import ResilientClient
from repro.faults.resilience import ResiliencePolicy
from repro.units import MB

import pytest

policies = st.builds(
    BatchPolicy,
    batch_max=st.integers(min_value=1, max_value=8),
    linger_s=st.floats(
        min_value=0.0, max_value=1e-2, allow_nan=False, allow_infinity=False
    ),
    dedup_gets=st.booleans(),
)

#: (verb, key-index) streams over a deliberately small key alphabet so
#: dedup and per-key ordering actually trigger.
op_specs = st.lists(
    st.tuples(
        st.sampled_from(["get", "set", "delete"]),
        st.integers(min_value=0, max_value=5),
    ),
    min_size=1,
    max_size=60,
)

clock_steps = st.lists(
    st.floats(min_value=0.0, max_value=5e-3, allow_nan=False, allow_infinity=False),
    min_size=60,
    max_size=60,
)


def build_op(index, verb, key_index):
    key = f"k{key_index}".encode()
    if verb == "set":
        return BatchOp(verb=verb, key=key, value=str(index).encode())
    return BatchOp(verb=verb, key=key)


class TestBufferProperties:
    @given(policy=policies, specs=op_specs, steps=clock_steps)
    @settings(max_examples=120, deadline=None)
    def test_no_drop_no_dup_and_size_bound(self, policy, specs, steps):
        buffer = BatchBuffer(policy)
        now = 0.0
        submitted = []  # (op, its futures at submission)
        batches = []
        for index, (verb, key_index) in enumerate(specs):
            now += steps[index]
            if buffer.expired(now):
                batch = buffer.take("linger", now)
                if batch is not None:
                    batches.append(batch)
            op = build_op(index, verb, key_index)
            submitted.append((op, list(op.futures)))
            batch = buffer.append(op, now)
            if batch is not None:
                batches.append(batch)
        final = buffer.take(FLUSH_BARRIER, now)
        if final is not None:
            batches.append(final)
        assert len(buffer) == 0

        shipped = [op for batch in batches for op in batch.ops]
        # Size bound: never above batch_max; size flushes exactly full.
        for batch in batches:
            assert len(batch) <= policy.batch_max
            if batch.reason == FLUSH_SIZE:
                assert len(batch) == policy.batch_max
            assert batch.flushed_at >= batch.opened_at

        # No drop, no dup: every submitted future appears exactly once
        # across the shipped ops' fan-out lists.
        shipped_futures = [f for op in shipped for f in op.futures]
        assert len(shipped_futures) == len(set(map(id, shipped_futures)))
        submitted_futures = {id(f) for _op, fs in submitted for f in fs}
        assert {id(f) for f in shipped_futures} == submitted_futures

        # Resolving each batch resolves every waiter exactly once.
        for batch in batches:
            for op in batch.ops:
                op.resolve("x")
        assert all(f.done for _op, fs in submitted for f in fs)

    @given(policy=policies, specs=op_specs, steps=clock_steps)
    @settings(max_examples=120, deadline=None)
    def test_per_key_program_order(self, policy, specs, steps):
        buffer = BatchBuffer(policy)
        now = 0.0
        batches = []
        expected = {}  # key -> submitted mutation payloads, in order
        for index, (verb, key_index) in enumerate(specs):
            now += steps[index]
            op = build_op(index, verb, key_index)
            if verb != "get":
                expected.setdefault(op.key, []).append((verb, op.value))
            batch = buffer.append(op, now)
            if batch is not None:
                batches.append(batch)
        final = buffer.take(FLUSH_BARRIER, now)
        if final is not None:
            batches.append(final)

        observed = {}
        for batch in batches:
            for op in batch.ops:
                if op.verb != "get":
                    observed.setdefault(op.key, []).append((op.verb, op.value))
        assert observed == expected

        if not policy.dedup_gets:
            # With dedup off the *entire* per-key stream is order-preserved.
            full_expected, full_observed = {}, {}
            for index, (verb, key_index) in enumerate(specs):
                key = f"k{key_index}".encode()
                full_expected.setdefault(key, []).append(verb)
            for batch in batches:
                for op in batch.ops:
                    full_observed.setdefault(op.key, []).append(op.verb)
            assert full_observed == full_expected

    @given(
        policy=policies,
        opened_at=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        delta=st.floats(min_value=-1e-3, max_value=1e-2, allow_nan=False),
    )
    @settings(max_examples=120, deadline=None)
    def test_linger_deadline_is_exact(self, policy, opened_at, delta):
        buffer = BatchBuffer(policy)
        assert buffer.deadline is None
        assert not buffer.expired(opened_at)
        flushed = buffer.append(BatchOp(verb="get", key=b"k"), opened_at)
        if flushed is not None:  # batch_max == 1: nothing lingers
            assert buffer.deadline is None
            return
        deadline = buffer.deadline
        assert deadline == opened_at + policy.linger_s
        now = opened_at + policy.linger_s + delta
        # Expiry is exactly ``now >= deadline`` — never early, never late.
        assert buffer.expired(now) == (now >= deadline)
        assert buffer.expired(deadline)


class TestFutureAndPolicy:
    def test_future_resolves_exactly_once(self):
        op = BatchOp(verb="get", key=b"k")
        with pytest.raises(ProtocolError):
            op.future.result()
        op.resolve(41)
        assert op.future.result() == 41
        with pytest.raises(ProtocolError):
            op.resolve(42)

    @given(policy=policies)
    @settings(max_examples=60, deadline=None)
    def test_policy_round_trips(self, policy):
        assert BatchPolicy.from_dict(policy.to_dict()) == policy

    def test_policy_validation(self):
        with pytest.raises(ConfigurationError):
            BatchPolicy(batch_max=0)
        with pytest.raises(ConfigurationError):
            BatchPolicy(batch_max=2000)
        with pytest.raises(ConfigurationError):
            BatchPolicy(linger_s=-1.0)
        with pytest.raises(ConfigurationError):
            BatchPolicy.from_dict({"batch_max": 2, "nope": 1})


class TestClientPipelineProperties:
    """The same invariants at the ResilientClient submit/barrier surface."""

    @given(
        specs=op_specs,
        batch_max=st.integers(min_value=1, max_value=8),
        dedup=st.booleans(),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_pipeline_resolves_everything_in_order(
        self, specs, batch_max, dedup, seed
    ):
        rng = random.Random(seed)
        client = ResilientClient(
            ["a", "b"],
            memory_per_node_bytes=MB,
            policy=ResiliencePolicy(failover_after=None, hedge_after_s=None),
            batching=BatchPolicy(
                batch_max=batch_max, linger_s=1e-3, dedup_gets=dedup
            ),
            seed=seed,
        )
        futures = []
        submitted = 0
        for index, (verb, key_index) in enumerate(specs):
            key = f"k{key_index}".encode()
            if verb == "get":
                futures.append((verb, key, client.submit_get(key)))
            elif verb == "set":
                futures.append(
                    (verb, key, client.submit_set(key, str(index).encode()))
                )
            else:
                futures.append((verb, key, client.submit_delete(key)))
            submitted += 1
            if rng.random() < 0.1:
                client.advance_clock(rng.random() * 2e-3)
        client.barrier()

        assert client.pending_ops() == 0
        # No drop: every submitted future resolved exactly once.
        assert all(future.done for _v, _k, future in futures)
        # Accounting: shipped ops + deduplicated folds == submissions.
        assert client.batched_ops + client.deduped_gets == submitted
        if not dedup:
            assert client.deduped_gets == 0
        if batch_max == 1:
            assert client.deduped_gets == 0  # nothing lingers to fold onto

        # Outcome correctness: the last mutation wins — a final barriered
        # GET per key must observe the per-key program order's tail.
        last_mutation = {}
        for index, (verb, key_index) in enumerate(specs):
            key = f"k{key_index}".encode()
            if verb != "get":
                last_mutation[key] = (verb, str(index).encode())
        checks = [
            (key, client.submit_get(key)) for key in sorted(last_mutation)
        ]
        client.barrier()
        for key, future in checks:
            verb, value = last_mutation[key]
            got = future.result()
            if verb == "set":
                assert got is not None and got.value == value
            else:
                assert got is None
