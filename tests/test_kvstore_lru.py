"""Tests for the strict LRU list and the Bags pseudo-LRU."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.kvstore import BagLru, Item, LruList


def make_item(index: int, last_access: float = 0.0) -> Item:
    return Item(key=b"key-%d" % index, value=b"v", last_access=last_access)


class TestLruList:
    def test_insert_and_victim(self):
        lru = LruList()
        lru.insert(make_item(1))
        lru.insert(make_item(2))
        assert lru.victim().key == b"key-1"
        assert len(lru) == 2

    def test_touch_moves_to_front(self):
        lru = LruList()
        for i in (1, 2, 3):
            lru.insert(make_item(i))
        lru.touch(b"key-1")
        assert lru.victim().key == b"key-2"
        assert lru.keys_mru_order() == [b"key-1", b"key-3", b"key-2"]

    def test_pop_victim_order_is_lru(self):
        lru = LruList()
        for i in range(5):
            lru.insert(make_item(i))
        order = [lru.pop_victim().key for _ in range(5)]
        assert order == [b"key-%d" % i for i in range(5)]
        assert lru.pop_victim() is None

    def test_remove_middle(self):
        lru = LruList()
        for i in (1, 2, 3):
            lru.insert(make_item(i))
        lru.remove(b"key-2")
        assert lru.keys_mru_order() == [b"key-3", b"key-1"]
        assert b"key-2" not in lru

    def test_remove_head_and_tail(self):
        lru = LruList()
        for i in (1, 2, 3):
            lru.insert(make_item(i))
        lru.remove(b"key-3")  # head
        lru.remove(b"key-1")  # tail
        assert lru.keys_mru_order() == [b"key-2"]

    def test_duplicate_insert_rejected(self):
        lru = LruList()
        lru.insert(make_item(1))
        with pytest.raises(StorageError):
            lru.insert(make_item(1))

    def test_touch_missing_rejected(self):
        with pytest.raises(StorageError):
            LruList().touch(b"nope")

    def test_remove_missing_rejected(self):
        with pytest.raises(StorageError):
            LruList().remove(b"nope")

    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["insert", "touch", "remove", "pop"]),
                st.integers(min_value=0, max_value=30),
            ),
            max_size=200,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_model_equivalence_with_ordered_list(self, ops):
        lru = LruList()
        model: list[bytes] = []  # MRU first
        for op, index in ops:
            key = b"key-%d" % index
            if op == "insert":
                if key in model:
                    continue
                lru.insert(make_item(index))
                model.insert(0, key)
            elif op == "touch":
                if key not in model:
                    continue
                lru.touch(key)
                model.remove(key)
                model.insert(0, key)
            elif op == "remove":
                if key not in model:
                    continue
                lru.remove(key)
                model.remove(key)
            else:
                victim = lru.pop_victim()
                if model:
                    assert victim.key == model.pop()
                else:
                    assert victim is None
        assert lru.keys_mru_order() == model


class TestBagLru:
    def test_insert_and_evict_oldest(self):
        bags = BagLru(bag_capacity=2)
        for i in range(4):
            bags.insert(make_item(i))
        assert bags.bag_count == 2
        assert bags.pop_victim().key == b"key-0"

    def test_touched_items_get_a_pass(self):
        bags = BagLru(bag_capacity=10)
        cold = make_item(0, last_access=0.0)
        hot = make_item(1, last_access=0.0)
        bags.insert(cold)
        bags.insert(hot)
        hot.last_access = 5.0  # the store stamps this on GET
        # Eviction order: hot was bagged first? No — cold first.  Make hot
        # oldest to exercise the re-file path.
        victim = bags.pop_victim()
        assert victim.key == b"key-0"  # cold goes first anyway
        bags2 = BagLru(bag_capacity=10)
        hot2 = make_item(2, last_access=0.0)
        cold2 = make_item(3, last_access=0.0)
        bags2.insert(hot2)
        bags2.insert(cold2)
        hot2.last_access = 9.0
        assert bags2.pop_victim().key == b"key-3"  # hot2 re-filed, cold2 evicted

    def test_removed_items_are_skipped(self):
        bags = BagLru(bag_capacity=4)
        for i in range(3):
            bags.insert(make_item(i))
        bags.remove(b"key-0")
        assert bags.pop_victim().key == b"key-1"
        assert len(bags) == 1

    def test_empty_pop_returns_none(self):
        assert BagLru().pop_victim() is None

    def test_duplicate_insert_rejected(self):
        bags = BagLru()
        bags.insert(make_item(1))
        with pytest.raises(StorageError):
            bags.insert(make_item(1))

    def test_touch_missing_rejected(self):
        with pytest.raises(StorageError):
            BagLru().touch(b"nope")

    def test_bad_capacity_rejected(self):
        with pytest.raises(StorageError):
            BagLru(bag_capacity=0)

    @given(count=st.integers(min_value=1, max_value=120))
    @settings(max_examples=30, deadline=None)
    def test_all_items_eventually_evictable(self, count):
        bags = BagLru(bag_capacity=7)
        for i in range(count):
            bags.insert(make_item(i))
        evicted = set()
        while True:
            victim = bags.pop_victim()
            if victim is None:
                break
            evicted.add(victim.key)
        assert evicted == {b"key-%d" % i for i in range(count)}
        assert len(bags) == 0
