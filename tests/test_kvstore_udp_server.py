"""Tests for the UDP transport server."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.kvstore import KVStore
from repro.kvstore.server_loop import MemcachedServer
from repro.kvstore.udp_server import (
    FRAME_HEADER_BYTES,
    UdpFrame,
    UdpMemcachedServer,
    decode_frame,
    encode_frame,
    reassemble,
    split_response,
)
from repro.units import MB


def make_udp(mtu_payload: int | None = None) -> UdpMemcachedServer:
    return UdpMemcachedServer(
        MemcachedServer(KVStore(4 * MB)), mtu_payload=mtu_payload
    )


def request_datagram(payload: bytes, request_id: int = 7) -> bytes:
    return encode_frame(
        UdpFrame(request_id=request_id, sequence=0, total=1, payload=payload)
    )


class TestFraming:
    def test_encode_decode_roundtrip(self):
        frame = UdpFrame(request_id=300, sequence=2, total=5, payload=b"data")
        assert decode_frame(encode_frame(frame)) == frame

    def test_short_datagram_rejected(self):
        with pytest.raises(ProtocolError, match="short"):
            decode_frame(b"\x00\x01")

    def test_bad_sequence_rejected(self):
        with pytest.raises(ProtocolError):
            UdpFrame(request_id=1, sequence=3, total=3, payload=b"")

    def test_nonzero_reserved_rejected(self):
        raw = bytearray(request_datagram(b"x"))
        raw[7] = 1
        with pytest.raises(ProtocolError, match="reserved"):
            decode_frame(bytes(raw))

    @given(
        request_id=st.integers(min_value=0, max_value=0xFFFF),
        payload=st.binary(max_size=4000),
        mtu=st.integers(min_value=32, max_value=1400),
    )
    @settings(max_examples=60, deadline=None)
    def test_split_reassemble_roundtrip(self, request_id, payload, mtu):
        datagrams = split_response(request_id, payload, mtu)
        assert all(len(d) <= mtu for d in datagrams)
        assert reassemble(datagrams) == payload

    def test_reassemble_detects_loss(self):
        datagrams = split_response(5, b"x" * 1000, 108)
        assert len(datagrams) > 2
        with pytest.raises(ProtocolError, match="missing"):
            reassemble(datagrams[:-1])

    def test_reassemble_detects_mixed_ids(self):
        a = split_response(1, b"x" * 10, 100)
        b = split_response(2, b"y" * 10, 100)
        with pytest.raises(ProtocolError, match="mixed"):
            reassemble(a + b)

    def test_reassemble_detects_duplicates(self):
        datagrams = split_response(5, b"x" * 300, 108)
        with pytest.raises(ProtocolError, match="duplicate|inconsistent|missing"):
            reassemble([datagrams[0], datagrams[0]])

    def test_tiny_mtu_rejected(self):
        with pytest.raises(ProtocolError):
            split_response(1, b"x", FRAME_HEADER_BYTES)


class TestUdpServer:
    def test_get_over_udp(self):
        udp = make_udp()
        udp.server.handle(b"set k 0 0 5\r\nhello\r\n")  # warm over "TCP"
        responses = udp.handle_datagram(request_datagram(b"get k\r\n"))
        assert len(responses) == 1
        payload = reassemble(responses)
        assert payload == b"VALUE k 0 5\r\nhello\r\nEND\r\n"

    def test_response_request_id_echoed(self):
        udp = make_udp()
        responses = udp.handle_datagram(request_datagram(b"get k\r\n", request_id=999))
        assert decode_frame(responses[0]).request_id == 999

    def test_large_response_splits_across_datagrams(self):
        udp = make_udp(mtu_payload=256)
        value = b"x" * 2000
        udp.server.handle(b"set big 0 0 %d\r\n%s\r\n" % (len(value), value))
        responses = udp.handle_datagram(request_datagram(b"get big\r\n"))
        assert len(responses) > 5
        assert value in reassemble(responses)

    def test_set_over_udp_works_too(self):
        udp = make_udp()
        responses = udp.handle_datagram(
            request_datagram(b"set u 0 0 2\r\nok\r\n")
        )
        assert reassemble(responses) == b"STORED\r\n"
        assert udp.server.store.get(b"u").value == b"ok"

    def test_multi_datagram_request_rejected(self):
        udp = make_udp()
        frame = encode_frame(
            UdpFrame(request_id=1, sequence=0, total=2, payload=b"get k\r\n")
        )
        with pytest.raises(ProtocolError, match="multi-datagram"):
            udp.handle_datagram(frame)

    def test_incomplete_command_rejected(self):
        udp = make_udp()
        with pytest.raises(ProtocolError, match="incomplete"):
            udp.handle_datagram(request_datagram(b"set k 0 0 100\r\nshort"))

    def test_requests_are_stateless(self):
        udp = make_udp()
        udp.handle_datagram(request_datagram(b"get a\r\n"))
        udp.handle_datagram(request_datagram(b"get b\r\n"))
        assert udp.requests_served == 2
