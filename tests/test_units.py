"""Tests for repro.units."""

import pytest

from repro import units


class TestConstants:
    def test_time_scale(self):
        assert units.US == pytest.approx(1000 * units.NS)
        assert units.MS == pytest.approx(1000 * units.US)
        assert units.SECOND == pytest.approx(1000 * units.MS)

    def test_size_scale(self):
        assert units.MB == 1024 * units.KB
        assert units.GB == 1024 * units.MB
        assert units.TB == 1024 * units.GB

    def test_area(self):
        assert units.CM2 == 100 * units.MM2
        assert units.INCH == pytest.approx(25.4)


class TestConversions:
    def test_to_kilo_and_million(self):
        assert units.to_kilo(27_000) == 27.0
        assert units.to_million(3_150_000) == pytest.approx(3.15)

    def test_gb(self):
        assert units.gb(4 * units.GB) == 4.0

    def test_gbps(self):
        assert units.gbps(6.25 * units.GB) == pytest.approx(6.25)

    def test_mm2_to_cm2(self):
        assert units.mm2_to_cm2(441.0) == pytest.approx(4.41)


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("64", 64),
            ("128", 128),
            ("1K", 1024),
            ("4k", 4096),
            ("1M", 1 << 20),
            ("2G", 2 << 30),
            (" 512 ", 512),
        ],
    )
    def test_valid(self, text, expected):
        assert units.parse_size(text) == expected

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            units.parse_size("banana")


class TestFormatSize:
    @pytest.mark.parametrize(
        "value,expected",
        [(64, "64"), (1024, "1K"), (65536, "64K"), (1 << 20, "1M"), (96, "96")],
    )
    def test_round_labels(self, value, expected):
        assert units.format_size(value) == expected

    def test_roundtrip_on_sweep(self):
        from repro.workloads.sweep import REQUEST_SIZE_SWEEP

        for size in REQUEST_SIZE_SWEEP:
            assert units.parse_size(units.format_size(size)) == size
