"""Tests for server metrics, the design-space sweep, and thermal checks."""

import pytest

from repro.core import (
    OperatingPoint,
    ServerDesign,
    best_config,
    design_space,
    evaluate_server,
    flash_spec,
    iridium_stack,
    mercury_stack,
    thermal_report,
)
from repro.core.design_space import CORES_PER_STACK_SWEEP, EVALUATED_CORES
from repro.errors import ConfigurationError
from repro.units import GB


class TestOperatingPoint:
    def test_defaults_are_64b_get(self):
        point = OperatingPoint()
        assert point.verb == "GET"
        assert point.value_bytes == 64

    def test_bad_point_rejected(self):
        with pytest.raises(ConfigurationError):
            OperatingPoint(verb="SCAN")
        with pytest.raises(ConfigurationError):
            OperatingPoint(value_bytes=-1)


class TestEvaluateServer:
    def test_tps_is_per_core_times_cores(self):
        design = ServerDesign(stack=mercury_stack(8))
        metrics = evaluate_server(design)
        per_core = design.stack.latency_model().tps("GET", 64)
        assert metrics.tps == pytest.approx(per_core * design.total_cores)

    def test_derived_ratios(self):
        metrics = evaluate_server(ServerDesign(stack=mercury_stack(8)))
        assert metrics.tps_per_watt == pytest.approx(metrics.tps / metrics.power_w)
        assert metrics.tps_per_gb == pytest.approx(metrics.tps / metrics.density_gb)
        assert metrics.ktps_per_watt == pytest.approx(metrics.tps_per_watt / 1e3)

    def test_bandwidth_is_tps_times_size(self):
        point = OperatingPoint(value_bytes=128)
        metrics = evaluate_server(ServerDesign(stack=mercury_stack(8)), point)
        assert metrics.bandwidth_bytes_s == pytest.approx(metrics.tps * 128)

    def test_memory_override_flows_through(self):
        design = ServerDesign(stack=iridium_stack(8))
        fast = evaluate_server(design, OperatingPoint(memory=flash_spec(10e-6)))
        slow = evaluate_server(design, OperatingPoint(memory=flash_spec(20e-6)))
        assert fast.tps > slow.tps

    def test_put_point_slower_than_get(self):
        design = ServerDesign(stack=iridium_stack(8))
        get = evaluate_server(design, OperatingPoint(verb="GET"))
        put = evaluate_server(design, OperatingPoint(verb="PUT"))
        assert put.tps < get.tps / 3

    def test_large_requests_draw_more_power(self):
        design = ServerDesign(stack=mercury_stack(32))
        small = evaluate_server(design, OperatingPoint(value_bytes=64))
        large = evaluate_server(design, OperatingPoint(value_bytes=1 << 20))
        assert large.power_w > small.power_w
        assert large.tps < small.tps


class TestDesignSpace:
    def test_full_grid_size(self):
        designs = list(design_space())
        assert len(designs) == 2 * len(EVALUATED_CORES) * len(CORES_PER_STACK_SWEEP)

    def test_sweep_values_match_paper(self):
        assert CORES_PER_STACK_SWEEP == (1, 2, 4, 8, 16, 32)
        assert [c.name for c in EVALUATED_CORES] == [
            "A15@1.5GHz",
            "A15@1GHz",
            "A7@1GHz",
        ]

    def test_family_filter(self):
        mercuries = list(design_space(families=("Mercury",)))
        assert all(d.stack.family == "Mercury" for d in mercuries)

    def test_unknown_family_rejected(self):
        with pytest.raises(ConfigurationError):
            list(design_space(families=("Osmium",)))

    def test_best_throughput_is_a7_mercury_32(self):
        # §6.4: "A Mercury-32 system using A7s is the most efficient
        # design" and also the TPS winner.
        design, _metrics = best_config(lambda m: m.tps)
        assert design.stack.name == "Mercury-32[A7@1GHz]"

    def test_best_efficiency_is_a7_mercury_32(self):
        design, _ = best_config(lambda m: m.tps_per_watt)
        assert design.stack.name == "Mercury-32[A7@1GHz]"

    def test_best_density_is_iridium(self):
        design, metrics = best_config(lambda m: m.density_gb)
        assert design.stack.family == "Iridium"
        assert metrics.density_gb == pytest.approx(1901, rel=0.01)

    def test_a7_dominates_a15_on_efficiency_at_same_n(self):
        # §6.3-6.4: the A7's low power always wins TPS/W at equal n.
        from repro.cpu import CORTEX_A7, CORTEX_A15_1GHZ

        for n in (8, 16, 32):
            a7 = evaluate_server(ServerDesign(stack=mercury_stack(n, core=CORTEX_A7)))
            a15 = evaluate_server(
                ServerDesign(stack=mercury_stack(n, core=CORTEX_A15_1GHZ))
            )
            assert a7.tps_per_watt > a15.tps_per_watt


class TestThermal:
    def test_mercury32_passively_coolable(self):
        # §6.5: per-stack TDP ~6.2 W, within passive cooling.
        report = thermal_report(ServerDesign(stack=mercury_stack(32)))
        assert report.per_stack_tdp_w < 10.0
        assert report.passively_coolable
        assert report.per_stack_tdp_w == pytest.approx(6.2, rel=0.3)

    def test_server_tdp_matches_budget_power(self):
        design = ServerDesign(stack=mercury_stack(32))
        report = thermal_report(design)
        assert report.server_tdp_w == pytest.approx(design.budget_power_w())

    def test_power_density_far_below_a_xeon(self):
        # A Xeon package dissipates >50 W/cm^2; a stack is ~1 W/cm^2.
        report = thermal_report(ServerDesign(stack=mercury_stack(32)))
        assert report.power_density_w_per_cm2 < 3.0

    def test_headroom_positive_for_all_a7_configs(self):
        for n in (1, 2, 4, 8, 16, 32):
            report = thermal_report(ServerDesign(stack=mercury_stack(n)))
            assert report.headroom_w > 0
