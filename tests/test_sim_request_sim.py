"""Tests for the stack-level discrete-event simulation."""

import pytest

from repro.errors import ConfigurationError
from repro.sim import MG1, SimResults, StackSimulation
from repro.sim.rng import make_rng


def constant(value: float):
    return lambda: value


class TestSimResults:
    def test_throughput(self):
        results = SimResults(duration_s=2.0, offered_rate_hz=10.0, completed=20)
        assert results.throughput_hz == pytest.approx(10.0)

    def test_percentile_and_sla(self):
        results = SimResults(
            duration_s=1.0, offered_rate_hz=1.0, completed=4,
            rtts=[1e-4, 2e-4, 3e-4, 2e-3],
        )
        assert results.rtt_percentile(0.5) == pytest.approx(3e-4)
        assert results.sla_fraction(1e-3) == pytest.approx(0.75)

    def test_empty_results(self):
        results = SimResults(duration_s=1.0, offered_rate_hz=1.0, completed=0)
        assert results.mean_rtt == 0.0
        assert results.sla_fraction() == 0.0

    def test_bad_percentile_rejected(self):
        results = SimResults(duration_s=1.0, offered_rate_hz=1.0, completed=0)
        with pytest.raises(ConfigurationError):
            results.rtt_percentile(1.5)


class TestStackSimulation:
    def test_light_load_rtt_is_service_plus_wire(self):
        service, wire = 100e-6, 5e-6
        sim = StackSimulation(cores=4, service_time=constant(service), wire_time=wire)
        results = sim.run(offered_rate_hz=100.0, duration_s=1.0)
        assert results.completed > 50
        assert results.mean_rtt == pytest.approx(service + wire, rel=0.05)
        assert results.mean_wait < service * 0.1

    def test_throughput_tracks_offered_load_below_saturation(self):
        service = 100e-6
        sim = StackSimulation(cores=8, service_time=constant(service))
        capacity = 8 / service
        results = sim.run(offered_rate_hz=0.5 * capacity, duration_s=0.5)
        assert results.throughput_hz == pytest.approx(0.5 * capacity, rel=0.05)

    def test_saturation_caps_throughput(self):
        service = 100e-6
        sim = StackSimulation(cores=2, service_time=constant(service))
        capacity = 2 / service
        results = sim.run(offered_rate_hz=3 * capacity, duration_s=0.2)
        assert results.throughput_hz < capacity * 1.05

    def test_deterministic_given_seed(self):
        def run(seed):
            return StackSimulation(
                cores=2, service_time=constant(1e-4), seed=seed
            ).run(offered_rate_hz=5_000.0, duration_s=0.2)

        a, b = run(42), run(42)
        assert a.completed == b.completed
        assert a.rtts == b.rtts
        c = run(43)
        assert c.rtts != a.rtts

    def test_warmup_excluded_from_measurement(self):
        # Arrivals during warm-up are served but not measured: the count
        # reflects only the measurement window, not warmup + window.
        sim = StackSimulation(cores=1, service_time=constant(1e-4))
        results = sim.run(offered_rate_hz=1000.0, duration_s=0.5, warmup_s=0.5)
        assert results.completed == pytest.approx(500, rel=0.2)

    def test_matches_mg1_mean_wait(self):
        # A 1-core deterministic-service stack at 60% load is an M/D/1
        # queue; the DES must agree with Pollaczek-Khinchine.
        service = 100e-6
        rate = 0.6 / service
        sim = StackSimulation(cores=1, service_time=constant(service), seed=9)
        results = sim.run(offered_rate_hz=rate, duration_s=3.0, warmup_s=0.5)
        analytic = MG1(arrival_rate=rate, mean_service=service, scv=0.0)
        assert results.mean_wait == pytest.approx(analytic.mean_wait, rel=0.15)

    def test_linear_scaling_across_cores(self):
        # §5.3's methodology: n independent cores serve n times the load
        # at the same per-request latency.
        service = 100e-6

        def throughput(cores: int) -> float:
            sim = StackSimulation(cores=cores, service_time=constant(service), seed=3)
            return sim.run(
                offered_rate_hz=0.7 * cores / service, duration_s=0.3
            ).throughput_hz

        t1, t4 = throughput(1), throughput(4)
        assert t4 == pytest.approx(4 * t1, rel=0.1)

    def test_bad_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            StackSimulation(cores=0, service_time=constant(1.0))
        with pytest.raises(ConfigurationError):
            StackSimulation(cores=1, service_time=constant(1.0), wire_time=-1)
        sim = StackSimulation(cores=1, service_time=constant(1.0))
        with pytest.raises(ConfigurationError):
            sim.run(offered_rate_hz=0.0, duration_s=1.0)
        with pytest.raises(ConfigurationError):
            sim.run(offered_rate_hz=1.0, duration_s=0.0)


class TestSaturationSearch:
    def test_finds_sla_boundary(self):
        service = 200e-6
        sim = StackSimulation(cores=1, service_time=constant(service), seed=5)
        rate = sim.saturation_throughput(
            start_rate_hz=100.0, duration_s=0.3, sla_deadline_s=1e-3, sla_target=0.5
        )
        # Must be below the hard capacity and above a trivial load.
        assert 0.3 / service < rate < 1.0 / service

    def test_bad_target_rejected(self):
        sim = StackSimulation(cores=1, service_time=constant(1e-4))
        with pytest.raises(ConfigurationError):
            sim.saturation_throughput(100.0, 0.1, sla_target=0.0)


class TestRng:
    def test_make_rng_deterministic(self):
        assert make_rng("a", 1).random() == make_rng("a", 1).random()
        assert make_rng("a", 1).random() != make_rng("a", 2).random()
        assert make_rng("a", 1).random() != make_rng("b", 1).random()

    def test_exponential_positive(self):
        from repro.sim.rng import exponential

        rng = make_rng("exp", 0)
        samples = [exponential(rng, 10.0) for _ in range(100)]
        assert all(s > 0 for s in samples)
        assert sum(samples) / 100 == pytest.approx(0.1, rel=0.5)

    def test_exponential_bad_rate(self):
        from repro.sim.rng import exponential

        with pytest.raises(ValueError):
            exponential(make_rng("exp", 0), 0.0)
