"""Tests for multiget batching in the latency model."""

import pytest

from repro.core import mercury_stack
from repro.cpu import CORTEX_A7
from repro.errors import ConfigurationError


def model():
    return mercury_stack(1).latency_model()


class TestMultigetTiming:
    def test_single_key_close_to_plain_get(self):
        m = model()
        plain = m.request_timing("GET", 64).total_s
        batched = m.multiget_timing(1, 64).total_s
        assert batched == pytest.approx(plain, rel=0.02)

    def test_batched_rtt_grows_sublinearly(self):
        m = model()
        one = m.multiget_timing(1, 64).total_s
        ten = m.multiget_timing(10, 64).total_s
        assert ten < 10 * one
        assert ten > one

    def test_per_key_throughput_improves_with_batch(self):
        m = model()
        rates = [m.multiget_per_key_tps(n, 64) for n in (1, 4, 16, 64)]
        assert rates == sorted(rates)
        # Amortising the 33K-instruction transaction cost over 16 keys
        # should better than double per-key throughput.
        assert rates[2] > 2 * rates[0]

    def test_amortisation_saturates(self):
        # Past the point where per-key work dominates, batching stops
        # helping much: the marginal gain from 64->256 keys is small.
        m = model()
        g64 = m.multiget_per_key_tps(64, 64)
        g256 = m.multiget_per_key_tps(256, 64)
        assert g256 / g64 < 1.5

    def test_large_values_gain_little(self):
        # Batching amortises fixed cost; 64 KB values are per-byte bound.
        m = model()
        gain_small = m.multiget_per_key_tps(16, 64) / m.multiget_per_key_tps(1, 64)
        gain_large = m.multiget_per_key_tps(16, 65536) / m.multiget_per_key_tps(
            1, 65536
        )
        assert gain_small > 2.0
        assert gain_large < 1.2

    def test_hash_and_memcached_scale_linearly_with_keys(self):
        m = model()
        one = m.multiget_timing(1, 64)
        eight = m.multiget_timing(8, 64)
        assert eight.hash_s == pytest.approx(8 * one.hash_s)
        assert eight.memcached_s == pytest.approx(8 * one.memcached_s, rel=0.01)

    def test_zero_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            model().multiget_timing(0, 64)

    def test_batching_gain_is_bounded_and_symmetric(self):
        # A 16-key multiget lifts per-key rate ~5x — but the lift applies
        # to Mercury and the commodity baseline alike (it is a client
        # technique, not a server property), so the paper's relative
        # conclusions are unchanged by batching.
        m = model()
        gain = m.multiget_per_key_tps(16, 64) / m.multiget_per_key_tps(1, 64)
        assert 2.0 < gain < 6.5
