"""Tests for CSV/JSON export of tables and figures."""

import csv
import io
import json

import pytest

from repro.analysis import figure4_breakdown, table1_components, table4_comparison
from repro.analysis.export import (
    figure_to_json,
    table_to_csv,
    table_to_json,
    write_artefact,
)
from repro.errors import ConfigurationError


class TestCsv:
    def test_roundtrip_table1(self):
        headers, rows = table1_components()
        text = table_to_csv(headers, rows)
        parsed = list(csv.reader(io.StringIO(text)))
        assert parsed[0] == headers
        assert len(parsed) == len(rows) + 1

    def test_width_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            table_to_csv(["a", "b"], [[1]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ConfigurationError):
            table_to_csv([], [])


class TestJson:
    def test_table4_records(self):
        headers, rows = table4_comparison()
        records = json.loads(table_to_json(headers, rows))
        assert len(records) == len(rows)
        assert records[0]["System"] == "Mercury-8[A7@1GHz]"
        assert "TPS (millions)" in records[0]

    def test_figure_panel(self):
        panel = figure4_breakdown()[0]
        payload = json.loads(figure_to_json(panel))
        assert payload["x"][0] == "64"
        assert set(payload["series"]) == {
            "Memcached", "Network Stack", "Hash Computation",
        }
        assert len(payload["series"]["Memcached"]) == len(payload["x"])


class TestWriteArtefact:
    def test_write_csv_and_json(self, tmp_path):
        headers, rows = table1_components()
        csv_path = write_artefact(tmp_path / "t1.csv", headers, rows)
        json_path = write_artefact(tmp_path / "t1.json", headers, rows)
        assert csv_path.read_text().startswith("Component")
        assert json.loads(json_path.read_text())

    def test_unknown_suffix_rejected(self, tmp_path):
        headers, rows = table1_components()
        with pytest.raises(ConfigurationError, match="suffix"):
            write_artefact(tmp_path / "t1.xlsx", headers, rows)
