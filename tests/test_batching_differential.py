"""Differential harness: the batched path must equal the serial path.

Every test replays one seeded operation stream twice — once through the
serial ``get``/``set``/``delete`` calls, once through the
``submit_*``/``barrier`` pipeline — against two identical clusters, and
then demands bit-identical outcomes: the same per-op results in
submission order, the same GET miss set, and the same per-node store
contents afterwards.  Batching is a *wire* optimisation; any observable
divergence is a bug.

Fault alignment: hedging is off and failover disabled, and the only
injected fault is a node-down window (``FaultyNetwork.delivers`` draws
no RNG when loss is zero), so the serial and batched runs keep their
seeded streams in lockstep and outcomes stay comparable op-for-op.
Crash/restart transitions land on barrier boundaries, where the batched
client has nothing in flight — within a window both runs see the same
cluster state.

The last test repeats the differential inside the full-system DES:
a fault-free batched run must match the serial run's functional
outcomes (hits/misses/puts and per-core store contents) exactly.
"""

import random

import pytest

from repro.faults.resilience import ResiliencePolicy
from repro.kvstore.batching import BatchPolicy
from repro.kvstore.client import FaultyNetwork, ResilientClient
from repro.replication.config import QuorumConfig
from repro.units import MB

NODES = ["n0", "n1", "n2"]
#: No hedging, no failover: the two runs must see identical rings.
POLICY = ResiliencePolicy(
    request_timeout_s=1e-3,
    max_retries=1,
    failover_after=None,
    hedge_after_s=None,
)
#: Barrier cadence for the batched run; fault transitions only land here.
BARRIER_EVERY = 16
QUORUM = QuorumConfig(n=3, r=2, w=2)


def op_stream(seed: int, n: int = 400, keys: int = 40):
    """A seeded mixed stream: 60% GET, 30% SET, 10% DELETE."""
    rng = random.Random(seed)
    ops = []
    for _ in range(n):
        key = f"key-{rng.randrange(keys)}".encode()
        roll = rng.random()
        if roll < 0.6:
            ops.append(("get", key, None))
        elif roll < 0.9:
            value = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 48)))
            ops.append(("set", key, value))
        else:
            ops.append(("delete", key, None))
    return ops


def make_client(protocol="ascii", quorum=None, batching=None):
    return ResilientClient(
        NODES,
        memory_per_node_bytes=MB,
        protocol=protocol,
        policy=POLICY,
        network=FaultyNetwork(seed=3),
        quorum=quorum,
        batching=batching,
        seed=9,
    )


def apply_faults(client, fault_plan, index):
    for at, action, node in fault_plan or ():
        if at == index:
            getattr(client.network, action)(node)


def run_serial(ops, fault_plan=None, **kw):
    client = make_client(**kw)
    results = []
    for i, (verb, key, value) in enumerate(ops):
        if i % BARRIER_EVERY == 0:
            apply_faults(client, fault_plan, i)
        if verb == "get":
            got = client.get(key)
            results.append(("get", key, None if got is None else got.value))
        elif verb == "set":
            results.append(("set", key, client.set(key, value)))
        else:
            results.append(("delete", key, client.delete(key)))
    return client, results


def run_batched(ops, fault_plan=None, batch_max=8, linger_s=1e-3, **kw):
    client = make_client(
        batching=BatchPolicy(batch_max=batch_max, linger_s=linger_s), **kw
    )
    futures = []
    for i, (verb, key, value) in enumerate(ops):
        if i % BARRIER_EVERY == 0:
            client.barrier()
            apply_faults(client, fault_plan, i)
        if verb == "get":
            futures.append((verb, key, client.submit_get(key)))
        elif verb == "set":
            futures.append((verb, key, client.submit_set(key, value)))
        else:
            futures.append((verb, key, client.submit_delete(key)))
    client.barrier()
    results = []
    for verb, key, future in futures:
        value = future.result()
        if verb == "get":
            results.append((verb, key, None if value is None else value.value))
        else:
            results.append((verb, key, bool(value)))
    return client, results


def store_contents(client):
    return {
        name: sorted(
            (item.key, bytes(item.value)) for item in store.items_live()
        )
        for name, store in client._stores.items()
    }


def miss_set(results):
    return {key for verb, key, value in results if verb == "get" and value is None}


def assert_equivalent(serial, batched):
    serial_client, serial_results = serial
    batched_client, batched_results = batched
    assert batched_results == serial_results
    assert miss_set(batched_results) == miss_set(serial_results)
    assert store_contents(batched_client) == store_contents(serial_client)


@pytest.mark.parametrize("protocol", ["ascii", "binary"])
class TestFaultFree:
    def test_batched_equals_serial(self, protocol):
        ops = op_stream(seed=11)
        assert_equivalent(
            run_serial(ops, protocol=protocol),
            run_batched(ops, protocol=protocol),
        )

    def test_deep_batches(self, protocol):
        ops = op_stream(seed=23, n=600, keys=25)
        assert_equivalent(
            run_serial(ops, protocol=protocol),
            run_batched(ops, protocol=protocol, batch_max=64, linger_s=10.0),
        )

    def test_batch_of_one_is_serial(self, protocol):
        """batch_max=2 with an immediate linger degenerates gracefully."""
        ops = op_stream(seed=5, n=120)
        assert_equivalent(
            run_serial(ops, protocol=protocol),
            run_batched(ops, protocol=protocol, batch_max=2, linger_s=0.0),
        )


@pytest.mark.parametrize("protocol", ["ascii", "binary"])
class TestCrashWindow:
    FAULTS = [
        (6 * BARRIER_EVERY, "crash", "n0"),
        (13 * BARRIER_EVERY, "restart", "n0"),
    ]

    def test_batched_equals_serial_through_crash(self, protocol):
        ops = op_stream(seed=31)
        serial = run_serial(ops, fault_plan=self.FAULTS, protocol=protocol)
        batched = run_batched(ops, fault_plan=self.FAULTS, protocol=protocol)
        assert_equivalent(serial, batched)
        # The window actually hurt: some op failed, and the batched
        # client exercised its serial fallback (batches still counted).
        assert any(value in (None, False) for _v, _k, value in serial[1])
        assert batched[0].batches > 0

    def test_quorum_through_crash(self, protocol):
        """N=3 R=2 W=2: a one-replica outage must not change outcomes —
        writes still reach w=2 acks down both paths."""
        ops = op_stream(seed=47)
        serial = run_serial(
            ops, fault_plan=self.FAULTS, protocol=protocol, quorum=QUORUM
        )
        batched = run_batched(
            ops, fault_plan=self.FAULTS, protocol=protocol, quorum=QUORUM
        )
        assert_equivalent(serial, batched)
        # Every SET that reached quorum succeeded despite the crash.
        assert any(
            value is True for verb, _k, value in serial[1] if verb == "set"
        )


@pytest.mark.parametrize("protocol", ["ascii", "binary"])
class TestQuorum:
    def test_batched_equals_serial(self, protocol):
        ops = op_stream(seed=13)
        serial = run_serial(ops, protocol=protocol, quorum=QUORUM)
        batched = run_batched(ops, protocol=protocol, quorum=QUORUM)
        assert_equivalent(serial, batched)
        # Replica fan-out happened through the batch buffers.
        assert batched[0].replica_writes == serial[0].replica_writes


class TestDesDifferential:
    def test_fault_free_des_outcomes_identical(self):
        from repro.core import mercury_stack
        from repro.sim.full_system import FullSystemStack
        from repro.sim.run_options import RunOptions
        from repro.workloads import WorkloadSpec
        from repro.workloads.distributions import fixed_size

        workload = WorkloadSpec(
            name="des-differential",
            get_fraction=0.9,
            key_population=2_000,
            value_sizes=fixed_size(64),
        )

        def run(batching):
            system = FullSystemStack(
                stack=mercury_stack(2), memory_per_core_bytes=4 * MB, seed=7
            )
            results = system.run(
                workload,
                RunOptions(
                    offered_rate_hz=15_000.0,
                    duration_s=0.25,
                    warmup_requests=1_500,
                    batching=batching,
                ),
            )
            return results, system

        serial, serial_system = run(None)
        batched, batched_system = run(BatchPolicy(batch_max=16, linger_s=100e-6))
        assert (batched.get_hits, batched.get_misses, batched.puts) == (
            serial.get_hits, serial.get_misses, serial.puts
        )
        # ``completed`` is horizon-scoped, not functional: a rider whose
        # batch drains just past duration_s drops out of it.  Allow that
        # boundary effect, nothing more.
        assert abs(batched.completed - serial.completed) <= 16
        for a, b in zip(serial_system.servers, batched_system.servers):
            assert sorted(
                (item.key, bytes(item.value)) for item in a.store.items_live()
            ) == sorted(
                (item.key, bytes(item.value)) for item in b.store.items_live()
            )
        assert batched.batches > 0
        # Every completed request rode a batch (late riders resolve
        # past the duration horizon, so batched_ops can exceed
        # completed, never the reverse).
        assert batched.batched_ops >= batched.completed
