"""Tests for the set-associative cache simulator and miss estimator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.cache import (
    Cache,
    FootprintComponent,
    estimate_miss_rate,
    misses_per_request,
)
from repro.errors import ConfigurationError


class TestCacheBasics:
    def test_first_access_misses_second_hits(self):
        cache = Cache(size_bytes=1024, line_size=64, associativity=2)
        assert cache.access(0) is False
        assert cache.access(0) is True
        assert cache.access(63) is True  # same line

    def test_different_lines_are_independent(self):
        cache = Cache(size_bytes=1024, line_size=64, associativity=2)
        cache.access(0)
        assert cache.access(64) is False

    def test_capacity_eviction_is_lru(self):
        # 2 sets x 2 ways; lines mapping to set 0 are multiples of 128.
        cache = Cache(size_bytes=256, line_size=64, associativity=2)
        cache.access(0)
        cache.access(128)
        cache.access(0)  # 0 is now MRU
        cache.access(256)  # evicts 128 (LRU of set 0)
        assert cache.contains(0)
        assert not cache.contains(128)
        assert cache.contains(256)

    def test_writeback_counted_for_dirty_victims(self):
        cache = Cache(size_bytes=256, line_size=64, associativity=2)
        cache.access(0, write=True)
        cache.access(128)
        cache.access(256)  # evicts dirty 0
        assert cache.stats.writebacks == 1

    def test_flush_reports_dirty_lines(self):
        cache = Cache(size_bytes=1024, line_size=64, associativity=2)
        cache.access(0, write=True)
        cache.access(64)
        assert cache.flush() == 1
        assert cache.resident_lines == 0

    def test_stats_rates(self):
        cache = Cache(size_bytes=1024)
        cache.access(0)
        cache.access(0)
        assert cache.stats.accesses == 2
        assert cache.stats.hit_rate == pytest.approx(0.5)
        assert cache.stats.miss_rate == pytest.approx(0.5)

    def test_access_range_counts_line_misses(self):
        cache = Cache(size_bytes=64 * 1024)
        misses = cache.access_range(0, 640)  # 10 lines
        assert misses == 10
        assert cache.access_range(0, 640) == 0  # all resident now

    def test_negative_address_rejected(self):
        cache = Cache(size_bytes=1024)
        with pytest.raises(ConfigurationError):
            cache.access(-1)


class TestCacheValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"size_bytes": 1000},  # not multiple of line*assoc
            {"size_bytes": 0},
            {"size_bytes": 1024, "line_size": 48},  # not power of two
            {"size_bytes": 1024, "associativity": 0},
        ],
    )
    def test_bad_geometry_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            Cache(**kwargs)


class TestCacheProperties:
    @given(
        addresses=st.lists(st.integers(min_value=0, max_value=1 << 20), max_size=300)
    )
    @settings(max_examples=50, deadline=None)
    def test_residency_never_exceeds_capacity(self, addresses):
        cache = Cache(size_bytes=4096, line_size=64, associativity=4)
        for address in addresses:
            cache.access(address)
        assert cache.resident_lines <= 4096 // 64
        assert cache.stats.accesses == len(addresses)

    @given(
        addresses=st.lists(st.integers(min_value=0, max_value=1 << 16), max_size=200)
    )
    @settings(max_examples=50, deadline=None)
    def test_repeat_pass_with_small_footprint_all_hits(self, addresses):
        # If the touched footprint fits entirely, a second pass never misses.
        cache = Cache(size_bytes=1 << 17, line_size=64, associativity=8)
        for address in addresses:
            cache.access(address)
        before = cache.stats.misses
        for address in addresses:
            cache.access(address)
        assert cache.stats.misses == before

    @given(addresses=st.lists(st.integers(min_value=0, max_value=1 << 22), max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_misses_bounded_by_accesses(self, addresses):
        cache = Cache(size_bytes=1024, line_size=64, associativity=2)
        for address in addresses:
            cache.access(address)
        assert cache.stats.misses <= cache.stats.accesses


class TestMissEstimator:
    def test_fitting_footprint_never_misses(self):
        assert estimate_miss_rate(2 << 20, 1 << 20) == 0.0

    def test_oversized_footprint_misses_proportionally(self):
        assert estimate_miss_rate(1 << 20, 2 << 20) == pytest.approx(0.5)

    def test_zero_footprint(self):
        assert estimate_miss_rate(1024, 0) == 0.0

    def test_monotone_in_cache_size(self):
        rates = [estimate_miss_rate(c, 1 << 20) for c in (1 << 18, 1 << 19, 1 << 20)]
        assert rates == sorted(rates, reverse=True)

    def test_misses_per_request_compulsory_traffic(self):
        # A streaming component (reuse 0) always misses.
        stream = FootprintComponent("values", footprint_bytes=1 << 30,
                                    accesses_per_request=10, reuse=0.0)
        assert misses_per_request([stream], cache_size_bytes=1 << 21) == 10

    def test_misses_per_request_resident_component(self):
        code = FootprintComponent("code", footprint_bytes=1 << 19,
                                  accesses_per_request=100, reuse=1.0)
        assert misses_per_request([code], cache_size_bytes=1 << 21) == 0.0

    def test_l2_captures_memcached_instruction_footprint(self):
        # The calibration's premise: a ~1 MB instruction+metadata footprint
        # fits a 2 MB L2 but not a 32 KB L1.
        code = FootprintComponent("code", footprint_bytes=1 << 20,
                                  accesses_per_request=10_000, reuse=1.0)
        assert misses_per_request([code], cache_size_bytes=2 << 20) == 0.0
        l1_misses = misses_per_request([code], cache_size_bytes=32 << 10)
        assert l1_misses > 9_000
