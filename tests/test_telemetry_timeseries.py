"""Unit tests for :mod:`repro.telemetry.timeseries`.

WindowedSeries is pure window arithmetic (fold kinds, ring eviction,
merge, dict-style drop-in views); TimeSeriesRecorder is delta
bookkeeping over a registry plus a recurring DES event.  The DES tests
pin the PR's determinism claim: two identical runs produce bit-identical
JSONL timelines.
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.sim.events import Simulator
from repro.telemetry import MetricsRegistry, TimeSeriesRecorder, WindowedSeries
from repro.telemetry.timeseries import _q_label, write_timeseries_jsonl


class TestWindowedSeries:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WindowedSeries("x", 0.0)
        with pytest.raises(ConfigurationError):
            WindowedSeries("x", 1.0, max_windows=0)
        with pytest.raises(ConfigurationError):
            WindowedSeries("x", 1.0, kind="median")

    def test_sum_fold_and_geometry(self):
        series = WindowedSeries("gets", 0.1)
        series.observe(0.05)
        series.observe(0.09, 2.0)
        series.observe(0.11)
        assert series.index_of(0.05) == 0
        assert series.start_of(1) == pytest.approx(0.1)
        assert series.items() == [(0, 3.0), (1, 1.0)]
        assert series.total == 4.0

    def test_last_and_max_folds(self):
        last = WindowedSeries("gauge", 1.0, kind="last")
        last.observe(0.1, 5.0)
        last.observe(0.9, 2.0)
        assert last[0] == 2.0
        peak = WindowedSeries("peak", 1.0, kind="max")
        peak.observe(0.1, 5.0)
        peak.observe(0.9, 2.0)
        assert peak[0] == 5.0

    def test_dict_style_views(self):
        series = WindowedSeries("w", 1.0)
        series.observe(2.5)
        series.observe(0.5)
        assert list(series) == [0, 2]
        assert len(series) == 2 and bool(series)
        assert 2 in series and 1 not in series
        assert series.get(1, 0) == 0
        assert series[0] == 1.0
        assert not WindowedSeries("empty", 1.0)

    def test_ring_eviction(self):
        series = WindowedSeries("ring", 1.0, max_windows=3)
        for i in range(6):
            series.observe_index(i, 1.0)
        assert list(series) == [3, 4, 5]
        assert series.evicted == 3

    def test_timeline_and_sum_over(self):
        series = WindowedSeries("t", 0.5)
        series.observe(0.2, 1.0)
        series.observe(1.2, 3.0)
        assert series.timeline() == [(0.0, 1.0), (1.0, 3.0)]
        assert series.sum_over(0.0, 1.0) == 1.0
        assert series.sum_over(1.0, float("inf")) == 3.0

    def test_rate_timeline(self):
        gets = WindowedSeries("gets", 1.0)
        hits = WindowedSeries("hits", 1.0)
        for t, hit in ((0.1, True), (0.2, False), (1.5, True)):
            gets.observe(t)
            if hit:
                hits.observe(t)
        assert hits.rate_timeline(gets) == [(0.0, 0.5), (1.0, 1.0)]
        with pytest.raises(ConfigurationError):
            hits.rate_timeline(WindowedSeries("other", 2.0))

    def test_merge(self):
        a = WindowedSeries("a", 1.0)
        b = WindowedSeries("a", 1.0)
        a.observe_index(0, 1.0)
        a.observe_index(1, 2.0)
        b.observe_index(1, 3.0)
        merged = a.merge(b)
        assert merged.items() == [(0, 1.0), (1, 5.0)]
        # Inputs untouched.
        assert a.items() == [(0, 1.0), (1, 2.0)]
        with pytest.raises(ConfigurationError):
            a.merge(WindowedSeries("a", 2.0))
        with pytest.raises(ConfigurationError):
            a.merge(WindowedSeries("a", 1.0, kind="last"))

    def test_dict_round_trip(self):
        series = WindowedSeries("rt", 0.25, kind="max")
        series.observe(0.1, 4.0)
        series.observe(0.6, 2.0)
        restored = WindowedSeries.from_dict(series.to_dict())
        assert restored.items() == series.items()
        assert restored.kind == "max"
        assert restored.interval_s == 0.25


class TestTimeSeriesRecorder:
    def test_counter_deltas_and_gauges(self):
        registry = MetricsRegistry()
        total = registry.counter("requests_total")
        depth = registry.gauge("queue_depth")
        recorder = TimeSeriesRecorder(registry, interval_s=1.0)
        total.inc(3)
        depth.set(2.0)
        row1 = recorder.snapshot(1.0)
        total.inc(1)
        depth.set(5.0)
        row2 = recorder.snapshot(2.0)
        assert row1["requests_total"] == 3 and row2["requests_total"] == 1
        assert row1["queue_depth"] == 2.0 and row2["queue_depth"] == 5.0

    def test_histogram_window_quantiles(self):
        registry = MetricsRegistry()
        hist = registry.histogram("rtt_seconds")
        recorder = TimeSeriesRecorder(registry, interval_s=1.0)
        for _ in range(10):
            hist.record(1e-4)
        recorder.snapshot(1.0)
        # A tail spike inside window 2 only.
        for _ in range(10):
            hist.record(1e-2)
        row = recorder.snapshot(2.0)
        assert row["rtt_seconds_count"] == 10
        assert row["rtt_seconds_sum"] == pytest.approx(0.1)
        # Window quantiles see the spike even though the cumulative p50
        # still straddles both modes.
        assert row["rtt_seconds_p50"] == pytest.approx(1e-2, rel=0.15)
        assert row["rtt_seconds_p99"] == pytest.approx(1e-2, rel=0.15)
        # Empty window: no quantile keys, zero deltas.
        row3 = recorder.snapshot(3.0)
        assert row3["rtt_seconds_count"] == 0
        assert "rtt_seconds_p50" not in row3

    def test_snapshots_must_move_forward(self):
        recorder = TimeSeriesRecorder(MetricsRegistry(), interval_s=1.0)
        recorder.snapshot(1.0)
        with pytest.raises(ConfigurationError):
            recorder.snapshot(1.0)

    def test_flush_idempotent(self):
        recorder = TimeSeriesRecorder(MetricsRegistry(), interval_s=1.0)
        recorder.snapshot(1.0)
        recorder.flush(1.5)
        recorder.flush(1.5)
        assert [row["t_s"] for row in recorder.rows] == [1.0, 1.5]

    def test_ring_bound(self):
        recorder = TimeSeriesRecorder(
            MetricsRegistry(), interval_s=1.0, max_windows=2
        )
        for t in (1.0, 2.0, 3.0):
            recorder.snapshot(t)
        assert [row["t_s"] for row in recorder.rows] == [2.0, 3.0]
        assert recorder.dropped_rows == 1
        assert recorder.ticks == 3

    def test_install_ticks_on_the_simulated_clock(self):
        registry = MetricsRegistry()
        total = registry.counter("ticks_total")
        recorder = TimeSeriesRecorder(registry, interval_s=0.5)
        sim = Simulator()
        recorder.install(sim, horizon_s=2.0)
        sim.schedule_at(0.7, lambda: total.inc())
        sim.run()
        assert [row["t_s"] for row in recorder.rows] == [0.5, 1.0, 1.5, 2.0]
        assert [row["ticks_total"] for row in recorder.rows] == [0, 1, 0, 0]

    def test_des_timeline_bit_identical_across_runs(self):
        def run() -> str:
            registry = MetricsRegistry()
            hist = registry.histogram("latency_seconds")
            count = registry.counter("done_total")
            recorder = TimeSeriesRecorder(registry, interval_s=0.25)
            sim = Simulator()
            recorder.install(sim, horizon_s=2.0)

            def work(i: int) -> None:
                hist.record(1e-5 * (1 + i % 7))
                count.inc()

            for i in range(40):
                sim.schedule_at(0.045 * (i + 1), lambda i=i: work(i))
            sim.run()
            recorder.flush(sim.now)
            return recorder.to_jsonl()

        assert run() == run()

    def test_series_view_and_jsonl(self, tmp_path):
        registry = MetricsRegistry()
        total = registry.counter("n_total")
        recorder = TimeSeriesRecorder(registry, interval_s=1.0)
        total.inc(2)
        recorder.snapshot(1.0)
        total.inc(5)
        recorder.snapshot(2.0)
        series = recorder.series("n_total")
        assert series.total == 7
        path = write_timeseries_jsonl(tmp_path / "ts.jsonl", recorder)
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert [row["t_s"] for row in rows] == [1.0, 2.0]
        assert rows[1]["n_total"] == 5

    def test_merge_recorders(self):
        def make(counts):
            registry = MetricsRegistry()
            total = registry.counter("n_total")
            gauge = registry.gauge("depth")
            recorder = TimeSeriesRecorder(registry, interval_s=1.0)
            for t, n in counts:
                total.inc(n)
                gauge.set(n)
                recorder.snapshot(t)
            return recorder

        a = make([(1.0, 2), (2.0, 3)])
        b = make([(2.0, 10), (3.0, 1)])
        rows = a.merge(b)
        assert [row["t_s"] for row in rows] == [1.0, 2.0, 3.0]
        # Counters add, gauges take the later sample.
        assert rows[1]["n_total"] == 13
        assert rows[1]["depth"] == 10
        with pytest.raises(ConfigurationError):
            a.merge(TimeSeriesRecorder(MetricsRegistry(), interval_s=2.0))


def test_q_label():
    assert _q_label(0.5) == "50"
    assert _q_label(0.99) == "99"
    assert _q_label(0.999) == "999"
