"""What-if tests: non-default enclosures, budgets, and L2 sizes.

The models are parameterised for design-space work beyond the paper's
fixed 1.5U/750W/2MB assumptions; these tests exercise those knobs.
"""

import pytest

from repro.area.floorplan import Floorplan
from repro.core import ServerConstraints, ServerDesign, mercury_stack, iridium_stack
from repro.core.stack import StackConfig
from repro.cpu import CORTEX_A7
from repro.errors import ConfigurationError
from repro.memory import TEZZARON_4GB
from repro.power.model import PowerBudget
from repro.units import KB, MB


class TestCustomPowerBudget:
    def test_bigger_supply_admits_more_stacks(self):
        stock = ServerDesign(stack=mercury_stack(32))
        beefy = ServerDesign(
            stack=mercury_stack(32),
            constraints=ServerConstraints(budget=PowerBudget(supply_w=1_200.0)),
        )
        assert beefy.num_stacks >= stock.num_stacks
        assert beefy.num_stacks == 96  # ports become the binding limit

    def test_small_supply_sheds_stacks(self):
        lean = ServerDesign(
            stack=mercury_stack(32),
            constraints=ServerConstraints(budget=PowerBudget(supply_w=400.0)),
        )
        assert lean.num_stacks < 50
        assert lean.binding_constraint == "power"

    def test_hopeless_supply_raises(self):
        constraints = ServerConstraints(
            budget=PowerBudget(supply_w=165.0, other_components_w=160.0)
        )
        with pytest.raises(ConfigurationError, match="exceeds the power budget"):
            ServerDesign(stack=mercury_stack(32), constraints=constraints).num_stacks


class TestCustomFloorplan:
    def test_fewer_rear_ports_bind(self):
        small = ServerDesign(
            stack=mercury_stack(8),
            constraints=ServerConstraints(
                floorplan=Floorplan(max_ethernet_ports=48)
            ),
        )
        assert small.num_stacks == 48
        assert small.binding_constraint == "ports"

    def test_tiny_board_binds_on_area(self):
        cramped = ServerDesign(
            stack=mercury_stack(8),
            constraints=ServerConstraints(
                floorplan=Floorplan(board_side_mm=150.0, max_ethernet_ports=96)
            ),
        )
        assert cramped.binding_constraint == "area"
        assert cramped.num_stacks < 30

    def test_density_scales_with_admitted_stacks(self):
        half_ports = ServerDesign(
            stack=iridium_stack(8),
            constraints=ServerConstraints(
                floorplan=Floorplan(max_ethernet_ports=48)
            ),
        )
        full = ServerDesign(stack=iridium_stack(8))
        assert half_ports.density_gb == pytest.approx(full.density_gb / 2)


class TestCustomL2:
    def test_small_l2_slows_iridium_dramatically(self):
        stock = iridium_stack(8)
        starved = StackConfig(
            core=CORTEX_A7, cores=8, flash=stock.flash, has_l2=True,
            l2_bytes=256 * KB,
        )
        assert starved.latency_model().tps("GET", 64) < (
            stock.latency_model().tps("GET", 64) / 10
        )

    def test_oversized_l2_changes_nothing_once_footprint_fits(self):
        stock = mercury_stack(8)
        huge = StackConfig(
            core=CORTEX_A7, cores=8, dram=TEZZARON_4GB, has_l2=True,
            l2_bytes=8 * MB,
        )
        assert huge.latency_model().tps("GET", 64) == pytest.approx(
            stock.latency_model().tps("GET", 64)
        )

    def test_bad_l2_size_rejected(self):
        from repro.core import LatencyModel, dram_spec

        with pytest.raises(ConfigurationError):
            LatencyModel(CORTEX_A7, dram_spec(), l2_bytes=0)


class TestCustomMemoryDevices:
    def test_hmc_class_stack(self):
        # A denser future part: 8 GB at the same port structure.
        from dataclasses import replace

        big_dram = replace(TEZZARON_4GB, name="future-8GB",
                           die_capacity_bytes=TEZZARON_4GB.die_capacity_bytes * 2)
        stack = StackConfig(core=CORTEX_A7, cores=8, dram=big_dram)
        design = ServerDesign(stack=stack)
        assert design.density_gb == pytest.approx(
            2 * ServerDesign(stack=mercury_stack(8)).density_gb
        )

    def test_slower_port_bandwidth_reduces_peak(self):
        from dataclasses import replace

        slow = replace(TEZZARON_4GB, name="slow",
                       port_bandwidth_bytes_s=TEZZARON_4GB.port_bandwidth_bytes_s / 4)
        assert slow.peak_bandwidth_bytes_s == pytest.approx(
            TEZZARON_4GB.peak_bandwidth_bytes_s / 4
        )
