"""Documentation consistency: the docs must not drift from the code.

These tests parse DESIGN.md, README.md, and EXPERIMENTS.md for module
and file references and verify they exist, and check that the benchmark
inventory matches the experiment index.
"""

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


def read(name: str) -> str:
    return (REPO / name).read_text()


class TestDesignDoc:
    def test_referenced_modules_exist(self):
        text = read("DESIGN.md")
        for match in re.finditer(r"`(?:src/)?(repro/[\w/]+\.py)`", text):
            path = REPO / "src" / match.group(1)
            assert path.exists(), f"DESIGN.md references missing {match.group(1)}"

    def test_referenced_benchmarks_exist(self):
        text = read("DESIGN.md")
        for match in re.finditer(r"`(benchmarks/[\w]+\.py)`", text):
            assert (REPO / match.group(1)).exists(), match.group(1)

    def test_every_table_and_figure_has_a_bench(self):
        benches = {p.name for p in (REPO / "benchmarks").glob("bench_*.py")}
        for required in (
            "bench_table1_components.py",
            "bench_table2_memtech.py",
            "bench_table3_configs.py",
            "bench_table4_comparison.py",
            "bench_fig4_breakdown.py",
            "bench_fig5_mercury_latency.py",
            "bench_fig6_iridium_latency.py",
            "bench_fig7_density_tps.py",
            "bench_fig8_power_tps.py",
        ):
            assert required in benches

    def test_paper_match_is_confirmed(self):
        assert "matches the target paper" in read("DESIGN.md")


class TestReadme:
    def test_example_table_matches_directory(self):
        text = read("README.md")
        examples = {p.name for p in (REPO / "examples").glob("*.py")}
        referenced = set(re.findall(r"`(\w+\.py)`", text))
        for example in examples:
            assert example in referenced, f"README example table missing {example}"

    def test_cli_commands_exist(self):
        from repro.cli import build_parser

        text = read("README.md")
        parser = build_parser()
        subcommands = set(parser._subparsers._group_actions[0].choices)  # noqa: SLF001
        for command in re.findall(r"python -m repro (\w+)", text):
            assert command in subcommands, f"README shows unknown command {command}"

    def test_quickstart_import_line_valid(self):
        import repro

        for name in ("mercury_stack", "iridium_stack", "ServerDesign",
                     "evaluate_server"):
            assert hasattr(repro, name)


class TestExperimentsDoc:
    def test_references_existing_benchmarks(self):
        text = read("EXPERIMENTS.md")
        for match in re.finditer(r"`(bench_[\w]+\.py)`", text):
            assert (REPO / "benchmarks" / match.group(1)).exists(), match.group(1)

    def test_covers_all_tables_and_figures(self):
        text = read("EXPERIMENTS.md")
        for artefact in ("Table 1", "Table 2", "Table 3", "Table 4",
                         "Figure 4", "Figure 5", "Figure 6", "Figure 7",
                         "Figure 8"):
            assert artefact in text, f"EXPERIMENTS.md missing {artefact}"


class TestModelingDoc:
    def test_exists_and_documents_the_equation(self):
        text = read("docs/MODELING.md")
        assert "RTT(V, S)" in text
        assert "calibration.py" in text

    def test_worked_example_matches_model(self):
        # The doc claims the A7/64B/10ns anchor computes to ~11.9 KTPS.
        from repro.core import mercury_stack

        tps = mercury_stack(1).latency_model().tps("GET", 64)
        assert tps == pytest.approx(11_900, rel=0.02)
