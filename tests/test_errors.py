"""Tests for the exception hierarchy."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in (
        "ConfigurationError",
        "CapacityError",
        "ProtocolError",
        "StorageError",
        "SimulationError",
    ):
        cls = getattr(errors, name)
        assert issubclass(cls, errors.ReproError)


def test_catching_base_catches_all():
    with pytest.raises(errors.ReproError):
        raise errors.CapacityError("full")
