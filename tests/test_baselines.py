"""Tests for the commodity, TSSP, and TILEPro64 baselines."""

import pytest

from repro.baselines import (
    COMMODITY_BASELINES,
    MEMCACHED_14,
    MEMCACHED_16,
    MEMCACHED_BAGS,
    TILEPRO64,
    TSSP,
    CommodityServer,
    TsspAccelerator,
)
from repro.errors import ConfigurationError


class TestCommodityCalibration:
    """The published Wiggins & Langston / Table 4 numbers, computed."""

    def test_memcached_14_tps(self):
        assert MEMCACHED_14.tps == pytest.approx(0.41e6, rel=0.05)

    def test_memcached_16_tps(self):
        assert MEMCACHED_16.tps == pytest.approx(0.52e6, rel=0.05)

    def test_bags_tps(self):
        # "greater than 3.1 MTPS ... over 6x an unmodified implementation".
        assert MEMCACHED_BAGS.tps == pytest.approx(3.15e6, rel=0.05)
        assert MEMCACHED_BAGS.tps > 6 * MEMCACHED_14.tps

    def test_power_column(self):
        assert MEMCACHED_14.power_w == pytest.approx(143, rel=0.03)
        assert MEMCACHED_16.power_w == pytest.approx(159, rel=0.03)
        assert MEMCACHED_BAGS.power_w == pytest.approx(285, rel=0.03)

    def test_efficiency_column(self):
        assert MEMCACHED_14.tps_per_watt / 1e3 == pytest.approx(2.9, rel=0.05)
        assert MEMCACHED_16.tps_per_watt / 1e3 == pytest.approx(3.29, rel=0.05)
        assert MEMCACHED_BAGS.tps_per_watt / 1e3 == pytest.approx(11.1, rel=0.05)

    def test_tps_per_gb_column(self):
        assert MEMCACHED_14.tps_per_gb / 1e3 == pytest.approx(34.2, rel=0.05)
        assert MEMCACHED_BAGS.tps_per_gb / 1e3 == pytest.approx(24.6, rel=0.05)

    def test_bandwidth_column(self):
        assert MEMCACHED_BAGS.bandwidth_bytes_s(64) == pytest.approx(0.2e9, rel=0.05)

    def test_catalog_membership(self):
        assert COMMODITY_BASELINES == (MEMCACHED_14, MEMCACHED_16, MEMCACHED_BAGS)


class TestContentionStructure:
    def test_lock_improvements_reduce_serial_fraction(self):
        # 1.4 global lock > 1.6 striped+LRU lock > Bags.
        assert (
            MEMCACHED_14.serial_fraction
            > MEMCACHED_16.serial_fraction
            > MEMCACHED_BAGS.serial_fraction
        )

    def test_bags_scales_nearly_linearly(self):
        scaling = MEMCACHED_BAGS.tps / (
            MEMCACHED_BAGS.single_thread_tps * MEMCACHED_BAGS.threads
        )
        assert scaling > 0.75

    def test_14_wastes_most_of_its_threads(self):
        scaling = MEMCACHED_14.tps / (
            MEMCACHED_14.single_thread_tps * MEMCACHED_14.threads
        )
        assert scaling < 0.45

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CommodityServer(name="bad", threads=0)
        with pytest.raises(ConfigurationError):
            CommodityServer(name="bad", core_utilization=1.5)
        with pytest.raises(ConfigurationError):
            CommodityServer(name="bad", request_instructions=0)


class TestTssp:
    def test_published_efficiency_point(self):
        # Lim et al.: 17.63 KTPS/W.
        assert TSSP.tps_per_watt / 1e3 == pytest.approx(17.63, rel=0.02)

    def test_published_throughput_and_power(self):
        assert TSSP.tps == pytest.approx(0.28e6, rel=0.02)
        assert TSSP.power_w == pytest.approx(16.0, rel=0.02)

    def test_mixed_workload_bounded_by_host_path(self):
        mixed = TsspAccelerator(get_fraction=0.9)
        assert TSSP.tps > mixed.tps > TsspAccelerator(get_fraction=0.0).tps

    def test_all_put_uses_host_rate(self):
        assert TsspAccelerator(get_fraction=0.0).tps == pytest.approx(40_000.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TsspAccelerator(accelerator_tps=0)
        with pytest.raises(ConfigurationError):
            TsspAccelerator(get_fraction=1.5)
        with pytest.raises(ConfigurationError):
            TSSP.bandwidth_bytes_s(0)


class TestTilePro:
    def test_published_efficiency(self):
        # Berezecki et al.: 5.75 KTPS/W.
        assert TILEPRO64.tps_per_watt / 1e3 == pytest.approx(5.75, rel=0.02)

    def test_beats_commodity_loses_to_tssp(self):
        assert TILEPRO64.tps_per_watt > MEMCACHED_14.tps_per_watt
        assert TILEPRO64.tps_per_watt < TSSP.tps_per_watt
