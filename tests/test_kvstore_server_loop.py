"""Tests for the functional server loop (fragmented input, sessions)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.kvstore import KVStore
from repro.kvstore.server_loop import MemcachedServer, VERSION_STRING
from repro.units import MB


def make_server() -> MemcachedServer:
    return MemcachedServer(KVStore(4 * MB))


class TestBasicSessions:
    def test_set_get_session(self):
        server = make_server()
        conn = server.connect()
        assert conn.feed(b"set k 0 0 5\r\nhello\r\n") == b"STORED\r\n"
        reply = conn.feed(b"get k\r\n")
        assert reply == b"VALUE k 0 5\r\nhello\r\nEND\r\n"

    def test_gets_includes_cas(self):
        server = make_server()
        conn = server.connect()
        conn.feed(b"set k 0 0 1\r\nx\r\n")
        reply = conn.feed(b"gets k\r\n")
        assert reply.startswith(b"VALUE k 0 1 ")

    def test_version(self):
        reply = make_server().handle(b"version\r\n")
        assert reply == b"VERSION %s\r\n" % VERSION_STRING.encode()

    def test_stats(self):
        server = make_server()
        server.handle(b"set k 0 0 1\r\nx\r\nget k\r\n")
        reply = server.handle(b"stats\r\n")
        assert b"STAT cmd_get 1\r\n" in reply
        assert b"STAT curr_items 1\r\n" in reply
        assert reply.endswith(b"END\r\n")

    def test_stats_slabs(self):
        server = make_server()
        server.handle(b"set k 0 0 100\r\n" + b"x" * 100 + b"\r\n")
        reply = server.handle(b"stats slabs\r\n")
        assert b"STAT active_slabs 1\r\n" in reply
        assert b"total_malloced" in reply
        assert reply.endswith(b"END\r\n")

    def test_stats_items(self):
        server = make_server()
        server.handle(b"set a 0 0 10\r\n" + b"x" * 10 + b"\r\n")
        server.handle(b"set b 0 0 10\r\n" + b"y" * 10 + b"\r\n")
        reply = server.handle(b"stats items\r\n")
        assert b":number 2\r\n" in reply
        assert b"evictions_total 0\r\n" in reply

    def test_stats_reset(self):
        server = make_server()
        server.handle(b"set k 0 0 1\r\nx\r\nget k\r\n")
        assert server.handle(b"stats reset\r\n") == b"RESET\r\n"
        reply = server.handle(b"stats\r\n")
        assert b"STAT cmd_get 0\r\n" in reply
        # The data itself survives a stats reset.
        assert server.store.get(b"k") is not None

    def test_stats_connection_counters(self):
        server = make_server()
        conn = server.connect()
        conn.feed(b"set k 0 0 1\r\nx\r\n")
        reply = conn.feed(b"stats\r\n")
        assert b"STAT curr_connections 1\r\n" in reply
        assert b"STAT total_connections 1\r\n" in reply
        assert b"STAT cmd_total 2\r\n" in reply  # the set + this stats
        assert b"STAT conn_bytes_in %d\r\n" % (
            len(b"set k 0 0 1\r\nx\r\n") + len(b"stats\r\n")
        ) in reply
        assert b"STAT protocol_errors 0\r\n" in reply

    def test_stats_reset_clears_connection_counters(self):
        server = make_server()
        conn = server.connect()
        conn.feed(b"set k 0 0 1\r\nx\r\n")
        conn.feed(b"bogus\r\n")  # one protocol error
        assert server.connection_stats().protocol_errors == 1
        conn.feed(b"stats reset\r\n")
        aggregated = server.connection_stats()
        assert aggregated.commands == 0
        assert aggregated.bytes_in == 0
        # The RESET reply itself is post-reset traffic.
        assert aggregated.bytes_out == len(b"RESET\r\n")
        assert aggregated.protocol_errors == 0
        # Lifetime accept count survives, like memcached's.
        assert server.total_connections == 1

    def test_stats_surfaces_attached_queue(self):
        from repro.sim.events import Simulator
        from repro.sim.resources import FifoResource

        server = make_server()
        sim = Simulator()
        queue = FifoResource(sim, name="core0")
        queue.submit(1e-5, lambda wait: None)
        queue.submit(1e-5, lambda wait: None)  # queued behind the first
        server.attach_queue(queue)
        reply = server.handle(b"stats\r\n")
        assert b"STAT queue_depth 1\r\n" in reply
        assert b"STAT queue_depth_hwm 1\r\n" in reply
        assert b"STAT queue_wait_total_usec 0\r\n" in reply
        sim.run()
        reply = server.handle(b"stats\r\n")
        assert b"STAT queue_depth 0\r\n" in reply
        assert b"STAT queue_jobs_served 2\r\n" in reply
        assert b"STAT queue_wait_total_usec 10\r\n" in reply

    def test_verbosity(self):
        server = make_server()
        conn = server.connect()
        assert conn.feed(b"verbosity 2\r\n") == b"OK\r\n"
        assert server.verbosity == 2
        assert conn.feed(b"verbosity 0 noreply\r\n") == b""
        assert server.verbosity == 0
        assert conn.feed(b"verbosity banana\r\n") == b"ERROR\r\n"

    def test_quit_closes_connection(self):
        server = make_server()
        conn = server.connect()
        assert conn.feed(b"quit\r\n") == b""
        assert conn.closed
        with pytest.raises(ProtocolError):
            conn.feed(b"get k\r\n")
        assert server.connection_count == 0

    def test_incr_decr_session(self):
        server = make_server()
        conn = server.connect()
        conn.feed(b"set n 0 0 1\r\n7\r\n")
        assert conn.feed(b"incr n 3\r\n") == b"10\r\n"
        assert conn.feed(b"decr n 20\r\n") == b"0\r\n"
        assert conn.feed(b"incr ghost 1\r\n") == b"NOT_FOUND\r\n"

    def test_incr_non_numeric_is_client_error(self):
        server = make_server()
        conn = server.connect()
        conn.feed(b"set k 0 0 3\r\nabc\r\n")
        assert conn.feed(b"incr k 1\r\n").startswith(b"CLIENT_ERROR")

    def test_noreply_mutations_silent(self):
        server = make_server()
        conn = server.connect()
        assert conn.feed(b"set k 0 0 1 noreply\r\nx\r\n") == b""
        assert conn.feed(b"delete k noreply\r\n") == b""

    def test_flush_all(self):
        server = make_server()
        conn = server.connect()
        conn.feed(b"set k 0 0 1\r\nx\r\n")
        server.store.advance_time(1.0)
        assert conn.feed(b"flush_all\r\n") == b"OK\r\n"
        assert conn.feed(b"get k\r\n") == b"END\r\n"


class TestFragmentation:
    def test_byte_at_a_time_delivery(self):
        server = make_server()
        conn = server.connect()
        wire = b"set key 0 0 4\r\ndata\r\nget key\r\n"
        replies = bytearray()
        for i in range(len(wire)):
            replies += conn.feed(wire[i : i + 1])
        assert bytes(replies) == b"STORED\r\nVALUE key 0 4\r\ndata\r\nEND\r\n"
        assert conn.pending_bytes == 0

    def test_data_block_split_across_feeds(self):
        server = make_server()
        conn = server.connect()
        assert conn.feed(b"set k 0 0 10\r\n01234") == b""
        assert conn.pending_bytes > 0
        assert conn.feed(b"56789\r\n") == b"STORED\r\n"

    def test_value_containing_command_like_bytes(self):
        server = make_server()
        conn = server.connect()
        payload = b"get x\r\nset y"  # looks like commands, is data
        wire = b"set k 0 0 %d\r\n%s\r\n" % (len(payload), payload)
        assert conn.feed(wire) == b"STORED\r\n"
        reply = conn.feed(b"get k\r\n")
        assert payload in reply

    @given(
        chunks=st.lists(st.integers(min_value=1, max_value=7), max_size=30)
    )
    @settings(max_examples=30, deadline=None)
    def test_arbitrary_fragmentation_equivalent_to_whole(self, chunks):
        wire = b"set a 0 0 3\r\nxyz\r\nget a\r\ndelete a\r\nget a\r\n"
        whole = make_server().connect().feed(wire)
        conn = make_server().connect()
        fragments = bytearray()
        position = 0
        for size in chunks:
            fragments += conn.feed(wire[position : position + size])
            position += size
        fragments += conn.feed(wire[position:])
        assert bytes(fragments) == whole


class TestErrors:
    def test_unknown_verb_is_error_line(self):
        server = make_server()
        conn = server.connect()
        assert conn.feed(b"frobnicate now\r\n") == b"ERROR\r\n"
        # The connection recovers for subsequent commands.
        assert conn.feed(b"version\r\n").startswith(b"VERSION")
        assert conn.stats.protocol_errors == 1

    def test_bad_line_between_good_commands(self):
        server = make_server()
        conn = server.connect()
        reply = conn.feed(b"set k 0 0 1\r\nx\r\nnonsense!\r\nget k\r\n")
        assert reply == b"STORED\r\nERROR\r\nVALUE k 0 1\r\nx\r\nEND\r\n"

    def test_connection_stats_track_traffic(self):
        server = make_server()
        conn = server.connect()
        conn.feed(b"set k 0 0 1\r\nx\r\n")
        assert conn.stats.commands == 1
        assert conn.stats.bytes_in == len(b"set k 0 0 1\r\nx\r\n")
        assert conn.stats.bytes_out == len(b"STORED\r\n")

    def test_multiple_connections_share_store(self):
        server = make_server()
        a, b = server.connect(), server.connect()
        a.feed(b"set shared 0 0 2\r\nhi\r\n")
        assert b.feed(b"get shared\r\n") == b"VALUE shared 0 2\r\nhi\r\nEND\r\n"
        assert server.connection_count == 2
