"""Span tracing: schema, aggregation, JSONL export, no-op behaviour."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.telemetry import (
    MetricsRegistry,
    NULL_TELEMETRY,
    NULL_TRACER,
    TelemetrySession,
    Tracer,
    trace_to_jsonl,
)


def make_trace(tracer, arrival=1.0, waits=(2e-5, 3e-5)):
    trace = tracer.begin(arrival, core=2, verb="GET", hit=True)
    start = arrival
    for index, duration in enumerate(waits):
        trace.add_span(f"stage{index}", start, duration)
        start += duration
    trace.finish(start)
    return trace


class TestRequestTrace:
    def test_spans_sum_to_rtt(self):
        tracer = Tracer(MetricsRegistry())
        trace = make_trace(tracer)
        assert trace.span_total_s() == pytest.approx(trace.rtt_s)

    def test_unfinished_trace_has_no_rtt(self):
        tracer = Tracer(MetricsRegistry())
        trace = tracer.begin(0.0)
        with pytest.raises(ConfigurationError):
            _ = trace.rtt_s
        with pytest.raises(ConfigurationError):
            tracer.commit(trace)

    def test_negative_span_rejected(self):
        trace = Tracer(MetricsRegistry()).begin(0.0)
        with pytest.raises(ConfigurationError):
            trace.add_span("bad", 0.0, -1e-6)

    def test_cannot_finish_before_arrival(self):
        trace = Tracer(MetricsRegistry()).begin(5.0)
        with pytest.raises(ConfigurationError):
            trace.finish(4.0)


class TestTracer:
    def test_commit_aggregates_components(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry)
        for _ in range(3):
            tracer.commit(make_trace(tracer))
        assert tracer.committed == 3
        assert tracer.component_seconds["stage0"] == pytest.approx(3 * 2e-5)
        assert tracer.component_seconds["stage1"] == pytest.approx(3 * 3e-5)
        histogram = registry.get(
            "span_duration_seconds", {"component": "stage0"}
        )
        assert histogram.count == 3
        assert registry.get("request_rtt_seconds").count == 3

    def test_breakdown_fractions_sum_to_one(self):
        tracer = Tracer(MetricsRegistry())
        tracer.commit(make_trace(tracer))
        fractions = tracer.breakdown_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert fractions["stage1"] == pytest.approx(0.6)

    def test_trace_retention_is_capped(self):
        tracer = Tracer(MetricsRegistry(), max_traces=2)
        for _ in range(5):
            tracer.commit(make_trace(tracer))
        assert len(tracer.traces) == 2
        assert tracer.dropped_traces == 3
        assert tracer.committed == 5  # aggregates keep counting

    def test_request_ids_are_unique(self):
        tracer = Tracer(MetricsRegistry())
        ids = {tracer.begin(0.0).request_id for _ in range(10)}
        assert len(ids) == 10


class TestJsonlExport:
    def test_one_object_per_line_with_schema(self):
        tracer = Tracer(MetricsRegistry())
        tracer.commit(make_trace(tracer))
        tracer.commit(make_trace(tracer, arrival=2.0))
        lines = trace_to_jsonl(tracer.traces).strip().split("\n")
        assert len(lines) == 2
        record = json.loads(lines[0])
        assert record["request_id"] == 0
        assert record["attrs"]["core"] == 2
        assert record["attrs"]["verb"] == "GET"
        assert record["attrs"]["hit"] is True
        assert [s["name"] for s in record["spans"]] == ["stage0", "stage1"]
        assert sum(s["duration_s"] for s in record["spans"]) == pytest.approx(
            record["rtt_s"]
        )


class TestNullTelemetry:
    def test_null_tracer_records_nothing(self):
        trace = NULL_TRACER.begin(0.0, core=1)
        trace.add_span("x", 0.0, 1.0)
        trace.finish(1.0)
        NULL_TRACER.commit(trace)
        assert NULL_TRACER.traces == []
        assert NULL_TRACER.committed == 0
        assert NULL_TRACER.component_seconds == {}
        assert not NULL_TRACER.enabled

    def test_null_session_disabled_live_session_enabled(self):
        assert not NULL_TELEMETRY.enabled
        session = TelemetrySession()
        assert session.enabled
        assert session.tracer.registry is session.registry
