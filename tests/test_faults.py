"""Unit tests for the fault-injection subsystem (:mod:`repro.faults`).

Schedules are pure data with hard validation; the injector replays them
deterministically (DES-installed or stepped); the resilience policy is
pure arithmetic.  The last class runs the PR's acceptance scenario
against the full-system DES at reduced scale: same (schedule, seed)
twice is bit-identical, and the resilient client's hit rate recovers
after the cold restart.
"""

import math

import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    DEFAULT_RESILIENCE,
    KINDS,
    NO_RESILIENCE,
    PRESETS,
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    ResiliencePolicy,
    acceptance_schedule,
    crash_restart,
    lossy_link,
)
from repro.sim.events import Simulator
from repro.sim.full_system import FullSystemStack
from repro.sim.run_options import RunOptions
from repro.sim.rng import make_rng
from repro.core import mercury_stack
from repro.units import MB
from repro.workloads import WorkloadSpec
from repro.workloads.distributions import fixed_size


class TestFaultEventValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(kind="meteor_strike", at_s=1.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(kind="packet_loss", at_s=-0.1, probability=0.1)

    def test_node_faults_need_a_node(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(kind="node_crash", at_s=1.0)

    def test_window_must_end_after_start(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(kind="packet_loss", at_s=2.0, until_s=2.0, probability=0.1)

    def test_probability_bounds(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(kind="packet_loss", at_s=0.0, probability=1.5)

    def test_degradation_factor_must_not_speed_up(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(kind="dram_degradation", at_s=0.0, until_s=1.0, factor=0.5)

    def test_memory_kind_mapping(self):
        dram = FaultEvent(kind="dram_degradation", at_s=0.0, until_s=1.0, factor=2.0)
        flash = FaultEvent(kind="flash_wearout", at_s=0.0, factor=2.0)
        assert dram.memory_kind == "dram" and flash.memory_kind == "flash"


class TestFaultScheduleValidation:
    def test_events_are_sorted_by_time(self):
        schedule = FaultSchedule(
            name="s",
            events=(
                FaultEvent(kind="node_restart", at_s=3.0, node="a"),
                FaultEvent(kind="node_crash", at_s=1.0, node="a"),
            ),
        )
        assert [e.at_s for e in schedule] == [1.0, 3.0]

    def test_double_crash_without_restart_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSchedule(
                name="s",
                events=(
                    FaultEvent(kind="node_crash", at_s=1.0, node="a"),
                    FaultEvent(kind="node_crash", at_s=2.0, node="a"),
                ),
            )

    def test_restart_without_crash_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSchedule(
                name="s",
                events=(FaultEvent(kind="node_restart", at_s=1.0, node="a"),),
            )

    def test_events_between_is_half_open(self):
        schedule = crash_restart("a", 1.0, 3.0)
        assert [e.kind for e in schedule.events_between(0.0, 1.0)] == ["node_crash"]
        assert schedule.events_between(1.0, 2.9) == ()
        assert [e.kind for e in schedule.events_between(1.0, 3.0)] == ["node_restart"]

    def test_json_roundtrip_is_identity(self):
        schedule = acceptance_schedule()
        assert FaultSchedule.from_json(schedule.to_json()) == schedule

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "schedule.json"
        path.write_text(lossy_link(0.25, 1.0, 2.0).to_json())
        loaded = FaultSchedule.load(path)
        assert loaded.events[0].probability == 0.25
        assert loaded.events[0].until_s == 2.0

    def test_bad_json_raises_configuration_error(self):
        with pytest.raises(ConfigurationError):
            FaultSchedule.from_json("{not json")
        with pytest.raises(ConfigurationError):
            FaultSchedule.from_dict(
                {"name": "s", "events": [{"kind": "packet_loss", "at_s": 0,
                                          "bogus_field": 1}]}
            )

    def test_presets_cover_every_kind(self):
        kinds = {e.kind for schedule in PRESETS.values() for e in schedule}
        assert kinds == set(KINDS)


class TestFaultInjectorStepped:
    def test_apply_until_fires_each_transition_once(self):
        injector = FaultInjector(crash_restart("a", 1.0, 3.0), seed=0)
        crashed, restarted = [], []
        injector.apply_until(0.5, crashed.append, restarted.append)
        assert crashed == [] and not injector.degraded
        injector.apply_until(1.0, crashed.append, restarted.append)
        assert crashed == ["a"] and injector.node_is_down("a")
        injector.apply_until(2.0, crashed.append, restarted.append)
        assert crashed == ["a"]  # not re-fired
        injector.apply_until(5.0, crashed.append, restarted.append)
        assert restarted == ["a"] and not injector.degraded
        assert injector.crashes == 1 and injector.restarts == 1

    def test_loss_windows_compose_independently(self):
        schedule = FaultSchedule(
            name="s",
            events=(
                FaultEvent(kind="packet_loss", at_s=0.0, until_s=10.0,
                           probability=0.1),
                FaultEvent(kind="packet_loss", at_s=1.0, until_s=2.0,
                           probability=0.2),
            ),
        )
        injector = FaultInjector(schedule, seed=0)
        injector.apply_until(0.0)
        assert injector.loss_probability == pytest.approx(0.1)
        injector.apply_until(1.0)
        # 1 - (1-0.1)(1-0.2) = 0.28
        assert injector.loss_probability == pytest.approx(0.28)
        injector.apply_until(2.0)
        assert injector.loss_probability == pytest.approx(0.1)
        injector.apply_until(10.0)
        assert injector.loss_probability == pytest.approx(0.0)
        assert not injector.degraded

    def test_memory_degradation_scales_service_factor(self):
        injector = FaultInjector(PRESETS["degraded-dram"], seed=0)
        assert injector.service_factor("dram") == 1.0
        injector.apply_until(1.0)
        assert injector.service_factor("dram") == 8.0
        assert injector.service_factor("flash") == 1.0
        injector.apply_until(3.0)
        assert injector.service_factor("dram") == 1.0
        with pytest.raises(ConfigurationError):
            injector.service_factor("tape")

    def test_drop_draws_are_seed_deterministic(self):
        def draws(seed: int) -> list[bool]:
            injector = FaultInjector(lossy_link(0.3), seed=seed)
            injector.apply_until(0.0)
            return [injector.should_drop() for _ in range(200)]

        assert draws(7) == draws(7)
        assert draws(7) != draws(8)
        injector = FaultInjector(lossy_link(0.3), seed=7)
        injector.apply_until(0.0)
        [injector.should_drop() for _ in range(200)]
        assert injector.fault_drops == sum(draws(7))

    def test_no_draws_consumed_while_no_window_active(self):
        """A fault-free period must not touch the RNG stream, so adding
        a schedule never perturbs an otherwise identical run."""
        injector = FaultInjector(lossy_link(0.5, start_s=5.0), seed=3)
        before = injector.rng.random()
        injector2 = FaultInjector(lossy_link(0.5, start_s=5.0), seed=3)
        assert not any(injector2.should_drop() for _ in range(50))
        assert injector2.rng.random() == before

    def test_corruption_counted_separately_from_loss(self):
        injector = FaultInjector(PRESETS["corruption-burst"], seed=1)
        injector.apply_until(1.5)
        for _ in range(2000):
            injector.should_corrupt()
        assert injector.fault_corruptions > 0
        assert injector.fault_drops == 0


class TestFaultInjectorInstalled:
    def test_install_flips_state_at_exact_times(self):
        sim = Simulator()
        injector = FaultInjector(crash_restart("a", 1.0, 3.0), seed=0)
        seen: list[tuple[float, str]] = []
        injector.install(
            sim, horizon_s=10.0,
            on_crash=lambda node: seen.append((sim.now, f"crash:{node}")),
            on_restart=lambda node: seen.append((sim.now, f"restart:{node}")),
        )
        sim.run()
        assert seen == [(1.0, "crash:a"), (3.0, "restart:a")]

    def test_install_respects_horizon(self):
        sim = Simulator()
        injector = FaultInjector(crash_restart("a", 1.0, 3.0), seed=0)
        injector.install(sim, horizon_s=2.0)
        sim.run()
        assert injector.crashes == 1 and injector.restarts == 0

    def test_install_after_start_rejected(self):
        sim = Simulator()
        sim.schedule_at(1.0, lambda: None)
        sim.run()
        injector = FaultInjector(crash_restart("a", 2.0, 3.0), seed=0)
        with pytest.raises(ConfigurationError):
            injector.install(sim, horizon_s=10.0)


class TestResiliencePolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ResiliencePolicy(request_timeout_s=0)
        with pytest.raises(ConfigurationError):
            ResiliencePolicy(max_retries=-1)
        with pytest.raises(ConfigurationError):
            ResiliencePolicy(backoff_multiplier=0.5)
        with pytest.raises(ConfigurationError):
            ResiliencePolicy(jitter_fraction=1.5)
        with pytest.raises(ConfigurationError):
            ResiliencePolicy(failover_after=0)
        with pytest.raises(ConfigurationError):
            ResiliencePolicy(hedge_after_s=0.0)

    def test_backoff_grows_exponentially_then_caps(self):
        policy = ResiliencePolicy(jitter_fraction=0.0)
        rng = make_rng("test", 0)
        waits = [policy.backoff_s(k, rng) for k in range(10)]
        assert waits[0] == policy.backoff_base_s
        assert waits[1] == 2 * waits[0] and waits[2] == 2 * waits[1]
        assert waits[-1] == policy.backoff_cap_s
        assert all(b >= a for a, b in zip(waits, waits[1:]))

    def test_jitter_is_bounded_and_seeded(self):
        policy = ResiliencePolicy(jitter_fraction=0.1)
        rng = make_rng("jitter", 9)
        for attempt in range(6):
            base = min(
                policy.backoff_cap_s,
                policy.backoff_base_s * policy.backoff_multiplier**attempt,
            )
            wait = policy.backoff_s(attempt, rng)
            assert base <= wait <= base * 1.1
        a = [policy.backoff_s(0, make_rng("j", 1)) for _ in range(3)]
        assert a[0] == a[1] == a[2]

    def test_failover_threshold(self):
        policy = ResiliencePolicy(failover_after=3)
        assert not policy.should_fail_over(2)
        assert policy.should_fail_over(3)
        assert not NO_RESILIENCE.should_fail_over(10**6)

    def test_canned_policies(self):
        assert NO_RESILIENCE.max_attempts == 1
        assert DEFAULT_RESILIENCE.max_attempts == 4
        assert DEFAULT_RESILIENCE.failover_after == 3


class TestFullSystemAcceptance:
    """The PR acceptance scenario, scaled down for the tier-1 suite."""

    CORES = 4
    CRASH_S, RESTART_S = 0.3, 0.6
    DURATION_S = 1.2
    WINDOW_S = 0.1

    SCHEDULE = FaultSchedule(
        name="acceptance-small",
        events=(
            FaultEvent(kind="node_crash", at_s=CRASH_S, node="core0"),
            FaultEvent(kind="node_restart", at_s=RESTART_S, node="core0"),
            FaultEvent(kind="packet_loss", at_s=0.0, probability=0.01),
        ),
    )

    def _run(self, faults=None, resilience=None):
        system = FullSystemStack(
            stack=mercury_stack(cores=self.CORES),
            memory_per_core_bytes=8 * MB,
            seed=42,
        )
        capacity = self.CORES * system.model.tps("GET", 64)
        workload = WorkloadSpec(
            name="acceptance",
            get_fraction=0.9,
            key_population=20_000,
            value_sizes=fixed_size(64),
        )
        return system.run(
            workload,
            RunOptions(
                offered_rate_hz=0.4 * capacity,
                duration_s=self.DURATION_S,
                warmup_requests=10_000,
                window_s=self.WINDOW_S,
                fill_on_miss=True,
                faults=faults,
                resilience=resilience,
            ),
        )

    @staticmethod
    def _stats(r):
        return (
            r.completed, r.failed, r.retries, r.failovers, r.hedges,
            r.fault_timeouts, r.get_hits, r.get_misses,
            r.sla_violation_rate(1e-3),
            tuple(sorted(r.window_gets.items())),
            tuple(sorted(r.window_hits.items())),
        )

    def test_seeded_fault_run_is_bit_identical(self):
        first = self._run(faults=self.SCHEDULE, resilience=DEFAULT_RESILIENCE)
        second = self._run(faults=self.SCHEDULE, resilience=DEFAULT_RESILIENCE)
        assert self._stats(first) == self._stats(second)
        assert first.mean_rtt == second.mean_rtt

    def test_resilient_client_absorbs_faults_and_recovers(self):
        base = self._run()
        faulted = self._run(faults=self.SCHEDULE, resilience=DEFAULT_RESILIENCE)
        # Retries absorb every fault: nothing fails outright.
        assert faulted.failed == 0
        assert faulted.retries > 0 and faulted.fault_timeouts > 0
        # Post-restart, the hit rate comes back to within 5% of the
        # fault-free run over the same tail windows.
        reference = base.hit_rate_after(self.RESTART_S)
        recovery = faulted.recovery_time_s(reference, after_s=self.RESTART_S)
        assert recovery is not None, (
            f"hit rate never recovered; baseline tail {reference:.3f}, "
            f"timeline {faulted.hit_rate_timeline()}"
        )

    def test_fault_free_run_unperturbed_by_fault_plumbing(self):
        """run() with no faults/resilience must be identical to the
        pre-fault-subsystem behaviour: the fault args are pure opt-in."""
        plain = self._run()
        assert plain.failed == 0 and plain.retries == 0
        assert plain.fault_timeouts == 0 and plain.failovers == 0
        assert plain.completed > 0
        assert not math.isnan(plain.mean_rtt)
