"""Tests for the chained hash table with incremental rehash."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.kvstore import HashTable, Item


def make_item(index: int) -> Item:
    return Item(key=b"key-%d" % index, value=b"v")


class TestBasics:
    def test_insert_find(self):
        table = HashTable()
        item = make_item(1)
        table.insert(item)
        assert table.find(b"key-1") is item
        assert b"key-1" in table
        assert len(table) == 1

    def test_find_missing_returns_none(self):
        assert HashTable().find(b"nope") is None

    def test_duplicate_insert_rejected(self):
        table = HashTable()
        table.insert(make_item(1))
        with pytest.raises(StorageError, match="duplicate"):
            table.insert(make_item(1))

    def test_remove(self):
        table = HashTable()
        item = make_item(1)
        table.insert(item)
        assert table.remove(b"key-1") is item
        assert table.find(b"key-1") is None
        assert len(table) == 0

    def test_remove_missing_returns_none(self):
        assert HashTable().remove(b"nope") is None

    def test_replace_returns_old(self):
        table = HashTable()
        old = make_item(1)
        table.insert(old)
        new = Item(key=b"key-1", value=b"new")
        assert table.replace(new) is old
        assert table.find(b"key-1") is new
        assert len(table) == 1

    def test_replace_missing_inserts(self):
        table = HashTable()
        assert table.replace(make_item(1)) is None
        assert len(table) == 1

    def test_iteration_yields_all(self):
        table = HashTable()
        for i in range(50):
            table.insert(make_item(i))
        assert {item.key for item in table} == {b"key-%d" % i for i in range(50)}

    def test_bad_initial_power_rejected(self):
        with pytest.raises(StorageError):
            HashTable(initial_power=0)


class TestIncrementalRehash:
    def test_growth_doubles_buckets(self):
        table = HashTable(initial_power=4)
        start = table.bucket_count
        for i in range(start * 2):
            table.insert(make_item(i))
        table.finish_rehash()
        assert table.bucket_count > start
        assert table.expansions >= 1

    def test_items_survive_expansion(self):
        table = HashTable(initial_power=2)
        for i in range(200):
            table.insert(make_item(i))
        for i in range(200):
            assert table.find(b"key-%d" % i) is not None

    def test_rehash_is_incremental(self):
        table = HashTable(initial_power=4)
        # Push just past the growth threshold.
        for i in range(int(table.bucket_count * 1.5) + 1):
            table.insert(make_item(i))
        # Growth started but the old table should not be fully drained
        # by a single operation.
        assert table.rehashing

    def test_operations_during_rehash_work(self):
        table = HashTable(initial_power=2)
        for i in range(30):
            table.insert(make_item(i))
        # interleave finds/removes while migration is in flight
        assert table.find(b"key-0") is not None
        assert table.remove(b"key-1") is not None
        table.insert(make_item(1000))
        table.finish_rehash()
        assert table.find(b"key-1000") is not None
        assert len(table) == 30

    def test_load_factor_bounded_after_settling(self):
        table = HashTable(initial_power=2)
        for i in range(5000):
            table.insert(make_item(i))
        table.finish_rehash()
        assert table.load_factor <= 1.5

    def test_chain_lengths_reasonable(self):
        table = HashTable(initial_power=2)
        for i in range(2000):
            table.insert(make_item(i))
        table.finish_rehash()
        assert max(table.chain_lengths()) < 20


class TestHashTableProperties:
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["insert", "remove", "find"]),
                st.integers(min_value=0, max_value=60),
            ),
            max_size=300,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_dict_semantics(self, ops):
        table = HashTable(initial_power=2)
        reference: dict[bytes, Item] = {}
        for op, index in ops:
            key = b"key-%d" % index
            if op == "insert":
                if key in reference:
                    continue
                item = make_item(index)
                table.insert(item)
                reference[key] = item
            elif op == "remove":
                assert table.remove(key) is reference.pop(key, None)
            else:
                assert table.find(key) is reference.get(key)
        assert len(table) == len(reference)
        assert {i.key for i in table} == set(reference)
