"""Smoke tests: every example script must run cleanly end to end.

Examples are a deliverable, not decoration; each is executed as a real
subprocess (the way a user runs it) and must exit 0 with non-trivial
output.  The slowest simulations are capped by a generous timeout.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_is_populated():
    assert len(EXAMPLES) >= 10


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_cleanly(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert len(result.stdout.splitlines()) >= 3, "examples must narrate"
    assert "Traceback" not in result.stderr
