"""The content-addressed result cache: keys, invalidation, atomicity."""

import dataclasses
import json

import pytest

import repro
from repro.errors import ConfigurationError
from repro.exp import (
    ExperimentSpec,
    ResultCache,
    StackSpec,
    cache_key,
    canonical_json,
    constants_fingerprint,
)
from repro.exp import cache as cache_module


def design_spec(**overrides) -> ExperimentSpec:
    fields = dict(kind="design_point", stack=StackSpec(cores=4), seed=3)
    fields.update(overrides)
    return ExperimentSpec(**fields)


class TestCacheKey:
    def test_same_spec_same_key(self):
        assert cache_key(design_spec()) == cache_key(design_spec())

    def test_label_does_not_change_key(self):
        assert cache_key(design_spec(label="a")) == cache_key(
            design_spec(label="b")
        )

    def test_any_config_field_changes_key(self):
        base = cache_key(design_spec())
        assert cache_key(design_spec(seed=4)) != base
        assert cache_key(design_spec(verb="PUT")) != base
        assert cache_key(design_spec(value_bytes=128)) != base
        assert cache_key(design_spec(stack=StackSpec(cores=8))) != base
        assert (
            cache_key(
                design_spec(
                    calibration_scale=(("tcp.per_byte_instructions", 1.5),)
                )
            )
            != base
        )

    def test_constants_fingerprint_change_invalidates(self, monkeypatch):
        base = cache_key(design_spec())
        from repro.core import calibration

        perturbed = dataclasses.replace(
            calibration.DEFAULT_CALIBRATION,
            memcached_get_instructions=(
                calibration.DEFAULT_CALIBRATION.memcached_get_instructions + 1
            ),
        )
        monkeypatch.setattr(calibration, "DEFAULT_CALIBRATION", perturbed)
        assert constants_fingerprint() != ""
        assert cache_key(design_spec()) != base

    def test_repo_version_change_invalidates(self, monkeypatch):
        base = cache_key(design_spec())
        monkeypatch.setattr(repro, "__version__", "999.0.0")
        assert cache_key(design_spec()) != base

    def test_canonical_json_is_order_independent(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json(
            {"a": 2, "b": 1}
        )


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = design_spec()
        key = cache_key(spec)
        assert cache.get(key) is None
        result = spec.execute()
        cache.put(key, spec, result)
        assert cache.get(key) == result
        assert len(cache) == 1

    def test_entries_are_sharded_and_inspectable(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = design_spec()
        key = cache_key(spec)
        path = cache.put(key, spec, spec.execute())
        assert path.parent.name == key[:2]
        envelope = json.loads(path.read_text())
        assert envelope["key"] == key
        assert envelope["spec"]["kind"] == "design_point"
        assert envelope["schema"] == cache_module.CACHE_SCHEMA

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = design_spec()
        key = cache_key(spec)
        path = cache.put(key, spec, spec.execute())
        path.write_text("{not json")
        assert cache.get(key) is None

    def test_stale_schema_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = design_spec()
        key = cache_key(spec)
        path = cache.put(key, spec, spec.execute())
        envelope = json.loads(path.read_text())
        envelope["schema"] = -1
        path.write_text(json.dumps(envelope))
        assert cache.get(key) is None

    def test_clear_removes_everything(self, tmp_path):
        cache = ResultCache(tmp_path)
        for seed in range(3):
            spec = design_spec(seed=seed)
            cache.put(cache_key(spec), spec, spec.execute())
        assert len(cache) == 3
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_no_temp_files_left_behind(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = design_spec()
        cache.put(cache_key(spec), spec, spec.execute())
        leftovers = [
            p for p in tmp_path.rglob("*") if p.name.startswith(".tmp-")
        ]
        assert leftovers == []

    def test_implausible_key_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            ResultCache(tmp_path).get("ab")
