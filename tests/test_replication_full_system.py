"""Full-system acceptance for the replication subsystem (ISSUE PR 3).

The headline claim: with N=3 R=2 W=2 quorum replication, a core crash
that craters a single-copy system's hit rate becomes invisible — every
availability window of the crash run stays within 1% of the fault-free
run — while fault-free writes cost exactly N× the unreplicated
replica-write budget.  Scaled down to tier-1 size from the benchmark
scenario, same shape as :class:`TestFullSystemAcceptance` in
``test_faults.py``.
"""

from __future__ import annotations

import math

import pytest

from repro.core import mercury_stack
from repro.faults.resilience import DEFAULT_RESILIENCE
from repro.faults.schedule import FaultEvent, FaultSchedule
from repro.replication.config import ReplicationConfig
from repro.sim.full_system import FullSystemStack
from repro.sim.run_options import RunOptions
from repro.telemetry.tracing import TelemetrySession
from repro.units import MB
from repro.workloads import WorkloadSpec
from repro.workloads.distributions import fixed_size

CORES = 4
CRASH_S, RESTART_S = 0.3, 0.6
DURATION_S = 1.2
WINDOW_S = 0.1

SCHEDULE = FaultSchedule(
    name="replication-acceptance",
    events=(
        FaultEvent(kind="node_crash", at_s=CRASH_S, node="core0"),
        FaultEvent(kind="node_restart", at_s=RESTART_S, node="core0"),
    ),
)


def run_system(replication=None, faults=None, resilience=None, telemetry=None):
    system = FullSystemStack(
        stack=mercury_stack(cores=CORES),
        memory_per_core_bytes=8 * MB,
        seed=42,
    )
    capacity = CORES * system.model.tps("GET", 64)
    workload = WorkloadSpec(
        name="replication-acceptance",
        get_fraction=0.9,
        key_population=8_000,
        value_sizes=fixed_size(64),
    )
    return system.run(
        workload,
        RunOptions(
            offered_rate_hz=0.3 * capacity,
            duration_s=DURATION_S,
            warmup_requests=24_000,
            window_s=WINDOW_S,
            fill_on_miss=True,
            faults=faults,
            resilience=resilience,
            replication=replication,
            telemetry=telemetry,
        ),
    )


def window_availability(faulted, baseline):
    """Per-window hit rate of the crash run relative to the fault-free
    run; 1.0 means the crash was invisible in that window."""
    ratios = {}
    for window, gets in sorted(faulted.window_gets.items()):
        base_gets = baseline.window_gets.get(window, 0)
        if not gets or not base_gets:
            continue
        faulted_rate = faulted.window_hits.get(window, 0) / gets
        base_rate = baseline.window_hits.get(window, 0) / base_gets
        if base_rate > 0:
            ratios[window] = faulted_rate / base_rate
    return ratios


def stats(r):
    return (
        r.completed, r.failed, r.puts, r.replica_puts, r.redirected_reads,
        r.verify_reads, r.read_repairs, r.hints_queued, r.hints_replayed,
        r.antientropy_sweeps, r.antientropy_repairs, r.get_hits,
        r.get_misses, r.mean_rtt,
        tuple(sorted(r.window_gets.items())),
        tuple(sorted(r.window_hits.items())),
    )


N3 = ReplicationConfig(n=3, r=2, w=2)


class TestFaultFreeReplication:
    def test_write_amplification_is_exactly_n(self):
        result = run_system(replication=N3)
        assert result.puts > 0
        assert result.replica_puts == 3 * result.puts
        assert result.write_amplification == pytest.approx(3.0)

    def test_replication_none_is_pure_opt_in(self):
        plain = run_system()
        assert plain.replica_puts == 0
        assert plain.redirected_reads == 0 and plain.verify_reads == 0
        assert plain.read_repairs == 0
        assert plain.hints_queued == 0 and plain.hints_replayed == 0
        assert plain.antientropy_sweeps == 0
        assert plain.write_amplification == pytest.approx(1.0)

    def test_replication_does_not_change_logical_throughput(self):
        """Replica fan-out costs capacity, not completions: at 0.3 load
        the system absorbs the extra writes without shedding requests."""
        plain = run_system()
        replicated = run_system(replication=N3)
        assert replicated.completed == plain.completed
        assert replicated.failed == 0
        assert not math.isnan(replicated.mean_rtt)

    def test_read_quorum_verify_traffic_accounted(self):
        result = run_system(replication=N3)
        # r=2: every completed GET charges one extra verify read.
        assert result.verify_reads > 0
        assert result.antientropy_sweeps > 0


class TestCrashAvailability:
    """The paper-facing claim: replication turns the §2.3 crash trough
    into flat availability, at ~N× write cost."""

    def test_n3_availability_never_dips_below_99_percent(self):
        baseline = run_system(replication=N3)
        faulted = run_system(
            replication=N3, faults=SCHEDULE, resilience=DEFAULT_RESILIENCE
        )
        ratios = window_availability(faulted, baseline)
        assert ratios, "no comparable windows"
        worst = min(ratios.values())
        assert worst >= 0.99, f"availability trough {worst:.4f}: {ratios}"

    def test_single_copy_shows_the_crash_trough(self):
        baseline = run_system()
        faulted = run_system(faults=SCHEDULE, resilience=DEFAULT_RESILIENCE)
        worst = min(window_availability(faulted, baseline).values())
        assert worst < 0.95, f"expected a visible trough, got {worst:.4f}"

    def test_crash_run_exercises_handoff_and_antientropy(self):
        faulted = run_system(
            replication=N3, faults=SCHEDULE, resilience=DEFAULT_RESILIENCE
        )
        # Writes aimed at the down core park as hints and replay on
        # readmission; the periodic sweep backstops residual divergence.
        assert faulted.hints_queued > 0
        assert faulted.hints_replayed > 0
        assert faulted.antientropy_sweeps > 0
        assert faulted.antientropy_repairs > 0
        assert faulted.failed == 0

    def test_seeded_replicated_crash_run_is_bit_identical(self):
        first = run_system(
            replication=N3, faults=SCHEDULE, resilience=DEFAULT_RESILIENCE
        )
        second = run_system(
            replication=N3, faults=SCHEDULE, resilience=DEFAULT_RESILIENCE
        )
        assert stats(first) == stats(second)


class TestReplicationTelemetry:
    def test_replication_counters_reach_the_registry(self):
        session = TelemetrySession()
        run_system(
            replication=N3,
            faults=SCHEDULE,
            resilience=DEFAULT_RESILIENCE,
            telemetry=session,
        )
        names = {m.name for m in session.registry}
        assert "replication_replica_writes_total" in names
        assert "replication_hints_queued_total" in names
        assert "replication_hints_replayed_total" in names
        assert "replication_redirected_reads_total" in names

    def test_invalid_replication_config_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            run_system(replication=ReplicationConfig(n=8, r=2, w=2))
