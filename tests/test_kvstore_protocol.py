"""Tests for the memcached ASCII protocol parser/renderer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.kvstore import (
    Command,
    Response,
    parse_command,
    parse_response,
    render_command,
    render_response,
)

safe_keys = st.lists(
    st.integers(min_value=33, max_value=126), min_size=1, max_size=64
).map(bytes)


class TestParseCommands:
    def test_get_single_key(self):
        cmd, rest = parse_command(b"get foo\r\n")
        assert cmd.verb == "get"
        assert cmd.keys == (b"foo",)
        assert rest == b""

    def test_get_multi_key(self):
        cmd, _ = parse_command(b"get a b c\r\n")
        assert cmd.keys == (b"a", b"b", b"c")

    def test_set_with_data_block(self):
        cmd, rest = parse_command(b"set foo 7 60 5\r\nhello\r\n")
        assert cmd.verb == "set"
        assert cmd.key == b"foo"
        assert cmd.flags == 7
        assert cmd.exptime == 60
        assert cmd.data == b"hello"
        assert rest == b""

    def test_cas_carries_id(self):
        cmd, _ = parse_command(b"cas foo 0 0 2 99\r\nhi\r\n")
        assert cmd.verb == "cas"
        assert cmd.cas == 99

    def test_noreply_flag(self):
        cmd, _ = parse_command(b"set foo 0 0 1 noreply\r\nx\r\n")
        assert cmd.noreply
        cmd, _ = parse_command(b"delete foo noreply\r\n")
        assert cmd.noreply

    def test_incr_decr_touch(self):
        cmd, _ = parse_command(b"incr counter 5\r\n")
        assert (cmd.verb, cmd.delta) == ("incr", 5)
        cmd, _ = parse_command(b"decr counter 2\r\n")
        assert (cmd.verb, cmd.delta) == ("decr", 2)
        cmd, _ = parse_command(b"touch foo 300\r\n")
        assert (cmd.verb, cmd.exptime) == ("touch", 300.0)

    def test_bare_verbs(self):
        for verb in ("flush_all", "version", "stats", "quit"):
            cmd, _ = parse_command(verb.encode() + b"\r\n")
            assert cmd.verb == verb

    def test_pipelined_commands_leave_remainder(self):
        blob = b"get a\r\nget b\r\n"
        cmd, rest = parse_command(blob)
        assert cmd.keys == (b"a",)
        cmd2, rest2 = parse_command(rest)
        assert cmd2.keys == (b"b",)
        assert rest2 == b""

    def test_data_spanning_value_with_crlf_inside(self):
        payload = b"line1\r\nline2"
        blob = b"set k 0 0 %d\r\n%s\r\n" % (len(payload), payload)
        cmd, rest = parse_command(blob)
        assert cmd.data == payload
        assert rest == b""


class TestParseErrors:
    @pytest.mark.parametrize(
        "blob",
        [
            b"",                             # no CRLF
            b"\r\n",                          # empty line
            b"frobnicate foo\r\n",            # unknown verb
            b"get\r\n",                       # missing key
            b"set foo 0 0\r\n",               # missing length
            b"set foo 0 0 5\r\nhi\r\n",       # short data block
            b"set foo 0 0 2\r\nhixx",         # unterminated data
            b"set foo 0 0 x\r\nhi\r\n",       # non-numeric length
            b"incr foo\r\n",                  # missing delta
            b"incr foo -3\r\n",               # negative delta
            b"get " + b"k" * 251 + b"\r\n",   # key too long
            b"get bad\x07key\r\n",            # unprintable key byte
        ],
    )
    def test_malformed_input_raises(self, blob):
        with pytest.raises(ProtocolError):
            parse_command(blob)

    def test_command_key_accessor_requires_keys(self):
        with pytest.raises(ProtocolError):
            Command(verb="stats").key


class TestRenderRoundtrip:
    @given(
        key=safe_keys,
        flags=st.integers(min_value=0, max_value=65535),
        exptime=st.integers(min_value=0, max_value=10_000),
        data=st.binary(max_size=512),
        noreply=st.booleans(),
    )
    @settings(max_examples=80, deadline=None)
    def test_set_roundtrip(self, key, flags, exptime, data, noreply):
        original = Command(
            verb="set", keys=(key,), flags=flags, exptime=float(exptime),
            data=data, noreply=noreply,
        )
        parsed, rest = parse_command(render_command(original))
        assert rest == b""
        assert parsed == original

    @given(keys=st.lists(safe_keys, min_size=1, max_size=5, unique=True))
    @settings(max_examples=50, deadline=None)
    def test_get_roundtrip(self, keys):
        original = Command(verb="get", keys=tuple(keys))
        parsed, _ = parse_command(render_command(original))
        assert parsed == original

    @given(key=safe_keys, delta=st.integers(min_value=0, max_value=1 << 30))
    @settings(max_examples=50, deadline=None)
    def test_incr_roundtrip(self, key, delta):
        original = Command(verb="incr", keys=(key,), delta=delta)
        parsed, _ = parse_command(render_command(original))
        assert parsed == original

    def test_cas_roundtrip(self):
        original = Command(verb="cas", keys=(b"k",), data=b"v", cas=1234)
        parsed, _ = parse_command(render_command(original))
        assert parsed == original


class TestResponses:
    def test_render_value_response(self):
        response = Response(status="END", values=((b"k", 7, b"data", None),))
        assert render_response(response) == b"VALUE k 7 4\r\ndata\r\nEND\r\n"

    def test_render_with_cas(self):
        response = Response(status="END", values=((b"k", 0, b"d", 42),))
        assert b"VALUE k 0 1 42\r\n" in render_response(response)

    def test_render_status_only(self):
        assert render_response(Response(status="STORED")) == b"STORED\r\n"

    @given(
        values=st.lists(
            st.tuples(
                safe_keys,
                st.integers(min_value=0, max_value=255),
                st.binary(max_size=256),
                st.one_of(st.none(), st.integers(min_value=1, max_value=1 << 30)),
            ),
            max_size=4,
        ),
        status=st.sampled_from(["END", "STORED", "NOT_FOUND", "DELETED"]),
    )
    @settings(max_examples=80, deadline=None)
    def test_response_roundtrip(self, values, status):
        original = Response(status=status, values=tuple(values))
        parsed = parse_response(render_response(original))
        assert parsed == original

    def test_parse_truncated_value_raises(self):
        with pytest.raises(ProtocolError):
            parse_response(b"VALUE k 0 10\r\nshort\r\n")

    def test_parse_empty_raises(self):
        with pytest.raises(ProtocolError):
            parse_response(b"no terminator")
