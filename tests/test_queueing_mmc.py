"""Tests for the M/M/c (Erlang-C) pooling model."""

import pytest

from repro.errors import ConfigurationError
from repro.sim import MM1
from repro.sim.queueing import MMc


class TestErlangC:
    def test_single_server_reduces_to_mm1(self):
        mmc = MMc(arrival_rate=50, service_rate=100, servers=1)
        mm1 = MM1(arrival_rate=50, service_rate=100)
        assert mmc.mean_wait == pytest.approx(mm1.mean_wait)
        assert mmc.mean_response == pytest.approx(mm1.mean_response)
        # For M/M/1, P(wait > 0) = rho.
        assert mmc.erlang_c() == pytest.approx(0.5)

    def test_delay_probability_in_unit_interval(self):
        for servers in (1, 2, 8, 32):
            mmc = MMc(arrival_rate=0.7 * servers * 100, service_rate=100,
                      servers=servers)
            assert 0.0 < mmc.erlang_c() < 1.0

    def test_pooling_beats_split_queues(self):
        # The classic result: one pooled M/M/8 queue waits far less than
        # 8 separate M/M/1 queues at the same per-server load.
        per_server_rate = 100.0
        load = 0.8
        pooled = MMc(
            arrival_rate=load * 8 * per_server_rate,
            service_rate=per_server_rate,
            servers=8,
        )
        split = MM1(arrival_rate=load * per_server_rate, service_rate=per_server_rate)
        assert pooled.mean_wait < split.mean_wait / 3

    def test_wait_grows_with_load(self):
        waits = [
            MMc(arrival_rate=load * 400, service_rate=100, servers=4).mean_wait
            for load in (0.3, 0.6, 0.9)
        ]
        assert waits == sorted(waits)

    def test_fraction_under_is_monotone_cdf(self):
        mmc = MMc(arrival_rate=320, service_rate=100, servers=4)
        fractions = [mmc.fraction_under(t) for t in (0.001, 0.01, 0.05, 0.2)]
        assert fractions == sorted(fractions)
        assert fractions[-1] > 0.99
        assert mmc.fraction_under(-1) == 0.0

    def test_fraction_under_at_zero_is_zero(self):
        mmc = MMc(arrival_rate=100, service_rate=100, servers=2)
        assert mmc.fraction_under(0.0) == pytest.approx(0.0, abs=1e-9)

    def test_saturation_rejected(self):
        with pytest.raises(ConfigurationError):
            MMc(arrival_rate=400, service_rate=100, servers=4)

    def test_bad_servers_rejected(self):
        with pytest.raises(ConfigurationError):
            MMc(arrival_rate=1, service_rate=100, servers=0)

    def test_mac_routing_cost_quantified(self):
        # What the paper's static per-connection routing gives up vs a
        # pooled design, for a Mercury-8 stack at 80% load: the pooled
        # wait is an order of magnitude smaller, but both are far below
        # the 1 ms SLA, so static routing is a sound simplification.
        service_s = 85e-6
        mu = 1.0 / service_s
        load = 0.8
        pooled = MMc(arrival_rate=load * 8 * mu, service_rate=mu, servers=8)
        split = MM1(arrival_rate=load * mu, service_rate=mu)
        assert pooled.mean_wait < split.mean_wait
        assert split.mean_response < 1e-3  # SLA met even without pooling
