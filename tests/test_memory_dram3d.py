"""Tests for the 3D-stacked DRAM model (Fig. 3's geometry)."""

import pytest

from repro.errors import CapacityError, ConfigurationError
from repro.memory import TEZZARON_4GB, StackedDram
from repro.units import GB, MB, NS


class TestGeometry:
    def test_capacity_is_4gb(self):
        assert TEZZARON_4GB.capacity_bytes == 4 * GB

    def test_port_address_space_is_256mb(self):
        # §4.1.1: 16 ports, each accessing an independent 256 MB space.
        assert TEZZARON_4GB.ports == 16
        assert TEZZARON_4GB.port_capacity_bytes == 256 * MB

    def test_bank_is_32mb(self):
        assert TEZZARON_4GB.bank_capacity_bytes == 32 * MB

    def test_subarray_geometry_matches_bank_capacity(self):
        # Fig. 3a: (256x256)b x 64x64 = 256 Mb per bank.
        assert TEZZARON_4GB.bank_bits_from_subarrays == 256 * 1024 * 1024
        assert TEZZARON_4GB.bank_bits_from_subarrays == (
            TEZZARON_4GB.bank_capacity_bytes * 8
        )

    def test_max_open_pages_is_2048(self):
        # §4.1.1: 128 8kb pages/bank x 16 banks per layer.
        assert TEZZARON_4GB.max_open_pages == 2048

    def test_footprint_matches_table1(self):
        assert TEZZARON_4GB.area_mm2 == pytest.approx(279.0)
        assert TEZZARON_4GB.width_mm * TEZZARON_4GB.height_mm == pytest.approx(279.0)


class TestBandwidthLatency:
    def test_peak_bandwidth_100gbs(self):
        assert TEZZARON_4GB.peak_bandwidth_bytes_s == pytest.approx(100 * GB)

    def test_closed_page_latency_11ns(self):
        assert TEZZARON_4GB.access_latency() == pytest.approx(11 * NS)

    def test_transfer_time_scales_with_ports(self):
        one = TEZZARON_4GB.transfer_time(1 * MB, ports_used=1)
        four = TEZZARON_4GB.transfer_time(1 * MB, ports_used=4)
        assert one == pytest.approx(4 * four)

    def test_transfer_bad_ports_rejected(self):
        with pytest.raises(ConfigurationError):
            TEZZARON_4GB.transfer_time(64, ports_used=0)
        with pytest.raises(ConfigurationError):
            TEZZARON_4GB.transfer_time(64, ports_used=17)


class TestAddressing:
    def test_port_partitioning(self):
        # Address 0 is port 0; the next 256 MB boundary is port 1.
        assert TEZZARON_4GB.decompose_address(0) == (0, 0, 0)
        port, _bank, _row = TEZZARON_4GB.decompose_address(256 * MB)
        assert port == 1

    def test_bank_within_port(self):
        _port, bank, _row = TEZZARON_4GB.decompose_address(32 * MB)
        assert bank == 1

    def test_rows_advance_with_page_size(self):
        page_bytes = TEZZARON_4GB.page_bits // 8
        _p, _b, row0 = TEZZARON_4GB.decompose_address(0)
        _p, _b, row1 = TEZZARON_4GB.decompose_address(page_bytes)
        assert row1 == row0 + 1

    def test_every_port_reachable(self):
        ports = {
            TEZZARON_4GB.decompose_address(p * 256 * MB)[0] for p in range(16)
        }
        assert ports == set(range(16))

    def test_out_of_range_raises(self):
        with pytest.raises(CapacityError):
            TEZZARON_4GB.decompose_address(4 * GB)
        with pytest.raises(CapacityError):
            TEZZARON_4GB.decompose_address(-1)


class TestPower:
    def test_power_is_210mw_per_gbs(self):
        assert TEZZARON_4GB.power_w(1 * GB) == pytest.approx(0.210)
        assert TEZZARON_4GB.power_w(100 * GB) == pytest.approx(21.0)

    def test_zero_bandwidth_zero_power(self):
        assert TEZZARON_4GB.power_w(0.0) == 0.0

    def test_beyond_peak_rejected(self):
        with pytest.raises(CapacityError):
            TEZZARON_4GB.power_w(101 * GB)

    def test_negative_bandwidth_rejected(self):
        with pytest.raises(ConfigurationError):
            TEZZARON_4GB.power_w(-1.0)


def test_inconsistent_geometry_rejected():
    with pytest.raises(ConfigurationError):
        StackedDram(memory_dies=0)
