"""Tests for the 1.5U packing solver (Table 3's machinery)."""

import pytest

from repro.core import ServerDesign, iridium_stack, mercury_stack
from repro.cpu import CORTEX_A7, CORTEX_A15_1GHZ, CORTEX_A15_1_5GHZ
from repro.units import GB


class TestPortLimitedConfigs:
    def test_a7_mercury_small_n_is_port_limited_at_96(self):
        for n in (1, 2, 4, 8, 16):
            design = ServerDesign(stack=mercury_stack(n))
            assert design.num_stacks == 96
            assert design.binding_constraint == "ports"

    def test_a7_iridium_all_port_limited(self):
        # Table 3: every A7 Iridium config fits 96 stacks (flash is cheap).
        for n in (1, 2, 4, 8, 16, 32):
            design = ServerDesign(stack=iridium_stack(n))
            assert design.num_stacks == 96

    def test_iridium_96_stacks_density_is_1901_gb(self):
        design = ServerDesign(stack=iridium_stack(32))
        assert design.density_gb == pytest.approx(1901, rel=0.01)


class TestPowerLimitedConfigs:
    def test_a7_mercury_32_sheds_stacks(self):
        # Paper: 93 stacks / 371-372 GB; we land within a couple.
        design = ServerDesign(stack=mercury_stack(32))
        assert design.binding_constraint == "power"
        assert design.num_stacks == pytest.approx(93, abs=3)

    def test_a15_1ghz_mercury_8(self):
        # Paper: 75 stacks / 300 GB.
        design = ServerDesign(stack=mercury_stack(8, core=CORTEX_A15_1GHZ))
        assert design.num_stacks == pytest.approx(75, abs=5)

    def test_a15_15ghz_mercury_8(self):
        # Paper: 50 stacks / 200 GB.
        design = ServerDesign(stack=mercury_stack(8, core=CORTEX_A15_1_5GHZ))
        assert design.num_stacks == pytest.approx(50, abs=3)

    def test_a15_1ghz_iridium_8(self):
        # Paper: 90 stacks / 1,782 GB — reproduced exactly by the budget.
        design = ServerDesign(stack=iridium_stack(8, core=CORTEX_A15_1GHZ))
        assert design.num_stacks == 90
        assert design.density_gb == pytest.approx(1782, rel=0.01)

    def test_power_limited_configs_fill_the_budget(self):
        design = ServerDesign(stack=mercury_stack(32))
        assert 700 <= design.budget_power_w() <= 750

    def test_more_cores_never_increases_stacks(self):
        counts = [
            ServerDesign(stack=mercury_stack(n, core=CORTEX_A15_1GHZ)).num_stacks
            for n in (1, 2, 4, 8, 16, 32)
        ]
        assert counts == sorted(counts, reverse=True)


class TestTable3Columns:
    def test_area_column(self):
        # 96 stacks + 48 dual-PHY chips, all 441 mm^2: 635 cm^2.
        design = ServerDesign(stack=mercury_stack(8))
        assert design.area_cm2 == pytest.approx(635, rel=0.01)

    def test_density_column(self):
        design = ServerDesign(stack=mercury_stack(8))
        assert design.density_gb == pytest.approx(384, rel=0.01)

    def test_max_bw_column_a7_mercury_1(self):
        # Paper: 19 GB/s for the 96-stack single-A7 Mercury server.
        design = ServerDesign(stack=mercury_stack(1))
        assert design.max_bandwidth_bytes_s() / GB == pytest.approx(19, rel=0.2)

    def test_total_cores(self):
        design = ServerDesign(stack=mercury_stack(8))
        assert design.total_cores == 96 * 8

    def test_budget_power_includes_base_and_margin(self):
        design = ServerDesign(stack=mercury_stack(1))
        stacks_power = design.num_stacks * design.stack_max_power_w()
        assert design.budget_power_w() == pytest.approx(160 + stacks_power / 0.8)

    def test_operating_point_power_below_budget_power(self):
        design = ServerDesign(stack=mercury_stack(8))
        at_64b = design.power_at_bandwidth_w(1e6)  # ~nothing
        assert at_64b < design.budget_power_w()
