"""Tests for mixed GET/PUT operating points."""

import pytest

from repro.core import OperatingPoint, ServerDesign, evaluate_server, iridium_stack, mercury_stack
from repro.errors import ConfigurationError


class TestMixedOperatingPoint:
    def test_pure_mix_equals_verb(self):
        design = ServerDesign(stack=mercury_stack(8))
        pure_get = evaluate_server(design, OperatingPoint(verb="GET"))
        mix_get = evaluate_server(design, OperatingPoint(get_fraction=1.0))
        assert mix_get.tps == pytest.approx(pure_get.tps)
        pure_put = evaluate_server(design, OperatingPoint(verb="PUT"))
        mix_put = evaluate_server(design, OperatingPoint(get_fraction=0.0))
        assert mix_put.tps == pytest.approx(pure_put.tps)

    def test_mix_between_endpoints(self):
        design = ServerDesign(stack=iridium_stack(8))
        get = evaluate_server(design, OperatingPoint(get_fraction=1.0)).tps
        put = evaluate_server(design, OperatingPoint(get_fraction=0.0)).tps
        mixed = evaluate_server(design, OperatingPoint(get_fraction=0.5)).tps
        assert put < mixed < get

    def test_etc_like_mix_close_to_get_rate(self):
        # Facebook's ETC pool is ~30 GETs per PUT; on Mercury the blended
        # rate stays within ~10% of the pure-GET rate.
        design = ServerDesign(stack=mercury_stack(8))
        get = evaluate_server(design, OperatingPoint(get_fraction=1.0)).tps
        etc = evaluate_server(design, OperatingPoint(get_fraction=30 / 31)).tps
        assert etc > 0.9 * get

    def test_put_mix_hurts_iridium_much_more(self):
        # Iridium's flash PUT path makes it far more mix-sensitive — the
        # reason the paper targets it at low-write pools.
        mercury = ServerDesign(stack=mercury_stack(8))
        iridium = ServerDesign(stack=iridium_stack(8))

        def degradation(design):
            pure = evaluate_server(design, OperatingPoint(get_fraction=1.0)).tps
            mixed = evaluate_server(design, OperatingPoint(get_fraction=0.9)).tps
            return pure / mixed

        assert degradation(iridium) > 1.5
        assert degradation(mercury) < 1.1

    def test_bad_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            OperatingPoint(get_fraction=1.5)

    def test_mean_request_time_blends(self):
        model = mercury_stack(1).latency_model()
        point = OperatingPoint(get_fraction=0.5, value_bytes=64)
        get_t = model.request_timing("GET", 64).total_s
        put_t = model.request_timing("PUT", 64).total_s
        assert point.mean_request_time(model) == pytest.approx((get_t + put_t) / 2)
