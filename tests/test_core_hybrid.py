"""Tests for the hybrid (DRAM-fronted flash) stack extension."""

import pytest

from repro.core.hybrid import (
    DRAM_LAYER_BYTES,
    FLASH_PER_LAYER_BYTES,
    HybridStack,
    TOTAL_LAYERS,
    hybrid_sweep,
)
from repro.core.stack import iridium_stack, mercury_stack
from repro.errors import ConfigurationError
from repro.units import GB


class TestEndpoints:
    def test_all_dram_is_mercury(self):
        hybrid = HybridStack(cores=32, dram_layers=8)
        mercury = mercury_stack(32)
        assert hybrid.capacity_bytes == mercury.capacity_bytes
        assert hybrid.get_tps(64) == pytest.approx(
            mercury.latency_model().tps("GET", 64)
        )
        assert hybrid.hot_hit_rate() == 1.0

    def test_all_flash_is_iridium(self):
        hybrid = HybridStack(cores=32, dram_layers=0)
        iridium = iridium_stack(32)
        assert hybrid.capacity_bytes == pytest.approx(
            iridium.capacity_bytes, rel=0.01
        )
        assert hybrid.get_tps(64) == pytest.approx(
            iridium.latency_model().tps("GET", 64)
        )
        assert hybrid.hot_hit_rate() == 0.0

    def test_to_stack_config_endpoints(self):
        assert HybridStack(8, 8).to_stack_config().family == "Mercury"
        assert HybridStack(8, 3).to_stack_config().family == "Iridium"


class TestGeometry:
    def test_layer_accounting(self):
        hybrid = HybridStack(cores=16, dram_layers=2)
        assert hybrid.dram_bytes == 2 * DRAM_LAYER_BYTES
        assert hybrid.flash_bytes == 6 * FLASH_PER_LAYER_BYTES

    def test_density_monotone_in_flash_layers(self):
        capacities = [
            HybridStack(cores=16, dram_layers=n).capacity_bytes
            for n in range(TOTAL_LAYERS)  # exclude all-DRAM discontinuity
        ]
        assert capacities == sorted(capacities, reverse=True)

    def test_one_dram_layer_keeps_most_density(self):
        # The design insight: 1 DRAM layer costs only 1/8 of the flash
        # capacity but captures a large hit fraction.
        hybrid = HybridStack(cores=32, dram_layers=1)
        iridium_capacity = HybridStack(cores=32, dram_layers=0).capacity_bytes
        assert hybrid.capacity_bytes > 0.85 * iridium_capacity

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HybridStack(cores=0, dram_layers=2)
        with pytest.raises(ConfigurationError):
            HybridStack(cores=8, dram_layers=9)


class TestTiering:
    def test_hit_rate_grows_with_dram(self):
        rates = [HybridStack(16, n).hot_hit_rate() for n in range(9)]
        assert rates == sorted(rates)
        assert rates[0] == 0.0 and rates[-1] == 1.0

    def test_small_hot_tier_is_disproportionately_effective(self):
        # Zipf heavy head: ~3% of capacity in DRAM catches far more than
        # 3% of traffic.
        hybrid = HybridStack(cores=32, dram_layers=1)
        assert hybrid.hot_tier_fraction < 0.05
        assert hybrid.hot_hit_rate() > 0.5

    def test_get_tps_between_endpoints(self):
        iridium_tps = HybridStack(32, 0).get_tps(64)
        mercury_tps = HybridStack(32, 8).get_tps(64)
        for layers in range(1, 8):
            tps = HybridStack(32, layers).get_tps(64)
            assert iridium_tps < tps <= mercury_tps
        # Strictly between as long as the DRAM tier cannot hold all data.
        for layers in range(1, 7):
            assert HybridStack(32, layers).get_tps(64) < mercury_tps

    def test_put_path_is_flash_bound_when_flash_present(self):
        assert HybridStack(32, 4).put_tps(64) == pytest.approx(
            HybridStack(32, 0).put_tps(64)
        )
        assert HybridStack(32, 8).put_tps(64) > 5 * HybridStack(32, 4).put_tps(64)

    def test_skew_sensitivity(self):
        uniform_ish = HybridStack(32, 1).hot_hit_rate(zipf_skew=0.5)
        heavy = HybridStack(32, 1).hot_hit_rate(zipf_skew=0.99)
        assert heavy > uniform_ish


class TestPowerAndSweep:
    def test_power_blend(self):
        # All-DRAM pays 210 mW/GBps; all-flash pays 6.
        dram_heavy = HybridStack(8, 8).power_w(10 * GB)
        flash_heavy = HybridStack(8, 0).power_w(10 * GB)
        assert dram_heavy - flash_heavy == pytest.approx((0.210 - 0.006) * 10, rel=0.01)

    def test_negative_bandwidth_rejected(self):
        with pytest.raises(ConfigurationError):
            HybridStack(8, 4).power_w(-1)

    def test_sweep_shape(self):
        rows = hybrid_sweep(cores=32)
        assert len(rows) == 9
        assert rows[0]["dram_layers"] == 0
        assert rows[-1]["hot_hit_rate"] == 1.0
        # The sweet spot claim: 1-2 DRAM layers recover >60% of Mercury's
        # per-core GET rate at >5x Mercury's density.
        mercury_tps = rows[8]["get_ktps_per_core"]
        mercury_gb = rows[8]["capacity_gb"]
        one_layer = rows[1]
        assert one_layer["get_ktps_per_core"] > 0.5 * mercury_tps
        assert one_layer["capacity_gb"] > 4 * mercury_gb
