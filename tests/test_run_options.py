"""RunOptions: validation, round-tripping, and the legacy-kwargs shim."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import mercury_stack
from repro.errors import ConfigurationError
from repro.faults import DEFAULT_RESILIENCE, PRESETS
from repro.replication import ReplicationConfig
from repro.sim.full_system import FullSystemStack
from repro.sim.run_options import RunOptions
from repro.telemetry import TelemetrySession
from repro.units import MB
from repro.workloads import WorkloadSpec
from repro.workloads.distributions import fixed_size


def small_workload() -> WorkloadSpec:
    return WorkloadSpec(
        name="ro-test",
        get_fraction=0.9,
        key_population=2_000,
        value_sizes=fixed_size(64),
    )


def make_stack() -> FullSystemStack:
    return FullSystemStack(
        stack=mercury_stack(2), memory_per_core_bytes=4 * MB, seed=1
    )


class TestValidation:
    def test_positive_rate_and_duration_required(self):
        with pytest.raises(ConfigurationError):
            RunOptions(offered_rate_hz=0.0, duration_s=1.0)
        with pytest.raises(ConfigurationError):
            RunOptions(offered_rate_hz=1.0, duration_s=0.0)

    def test_negative_warmup_rejected(self):
        with pytest.raises(ConfigurationError):
            RunOptions(1000.0, 1.0, warmup_requests=-1)

    def test_bad_window_rejected(self):
        with pytest.raises(ConfigurationError):
            RunOptions(1000.0, 1.0, window_s=0.0)

    def test_unknown_dict_field_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown RunOptions"):
            RunOptions.from_dict(
                {"offered_rate_hz": 1.0, "duration_s": 1.0, "rate": 2.0}
            )

    def test_missing_required_dict_field_rejected(self):
        with pytest.raises(ConfigurationError, match="offered_rate_hz"):
            RunOptions.from_dict({"duration_s": 1.0})


class TestRoundTrip:
    @given(
        rate=st.floats(min_value=1.0, max_value=1e7),
        duration=st.floats(min_value=1e-3, max_value=1e3),
        warmup=st.integers(min_value=0, max_value=10**6),
        keep=st.booleans(),
        fill=st.booleans(),
        window=st.one_of(
            st.none(), st.floats(min_value=1e-3, max_value=10.0)
        ),
    )
    @settings(max_examples=50)
    def test_dict_round_trip_exact(self, rate, duration, warmup, keep, fill, window):
        options = RunOptions(
            offered_rate_hz=rate,
            duration_s=duration,
            warmup_requests=warmup,
            keep_samples=keep,
            fill_on_miss=fill,
            window_s=window,
        )
        assert RunOptions.from_dict(options.to_dict()) == options
        # and through actual JSON text (what the cache/worker path does)
        assert (
            RunOptions.from_dict(json.loads(json.dumps(options.to_dict())))
            == options
        )

    def test_round_trip_with_subsystems(self):
        options = RunOptions(
            offered_rate_hz=5e4,
            duration_s=2.0,
            faults=PRESETS["crash-restart"],
            resilience=DEFAULT_RESILIENCE,
            replication=ReplicationConfig(n=3, r=2, w=2),
        )
        rebuilt = RunOptions.from_dict(json.loads(json.dumps(options.to_dict())))
        assert rebuilt == options
        assert rebuilt.faults == PRESETS["crash-restart"]
        assert rebuilt.replication == ReplicationConfig(n=3, r=2, w=2)

    def test_instruments_excluded_from_identity_and_dict(self):
        bare = RunOptions(1000.0, 1.0)
        instrumented = bare.with_instruments(telemetry=TelemetrySession())
        assert instrumented == bare
        assert instrumented.to_dict() == bare.to_dict()
        assert instrumented.has_instruments
        assert not instrumented.without_instruments().has_instruments


class TestDeprecationShim:
    def test_legacy_kwargs_warn_and_still_run(self):
        with pytest.warns(DeprecationWarning, match="RunOptions"):
            results = make_stack().run(
                small_workload(), offered_rate_hz=5_000.0, duration_s=0.05
            )
        assert results.completed > 0

    def test_legacy_positional_rate_and_duration_warn(self):
        with pytest.warns(DeprecationWarning):
            results = make_stack().run(small_workload(), 5_000.0, 0.05)
        assert results.completed > 0

    def test_legacy_path_matches_options_path(self):
        new = make_stack().run(
            small_workload(), RunOptions(offered_rate_hz=5_000.0, duration_s=0.1)
        )
        with pytest.warns(DeprecationWarning):
            old = make_stack().run(
                small_workload(), offered_rate_hz=5_000.0, duration_s=0.1
            )
        assert old.to_dict() == new.to_dict()

    def test_mixing_options_and_kwargs_rejected(self):
        with pytest.raises(ConfigurationError, match="not both"):
            make_stack().run(
                small_workload(),
                RunOptions(5_000.0, 0.05),
                warmup_requests=10,
            )

    def test_unknown_legacy_kwarg_rejected(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ConfigurationError, match="unsupported"):
                make_stack().run(
                    small_workload(),
                    offered_rate_hz=5_000.0,
                    duration_s=0.05,
                    bogus_flag=True,
                )

    def test_options_run_emits_no_warning(self, recwarn):
        make_stack().run(small_workload(), RunOptions(5_000.0, 0.05))
        assert not [
            w for w in recwarn if issubclass(w.category, DeprecationWarning)
        ]
