"""Tests for the UDP transport model and its latency-model hookup."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LatencyModel, dram_spec
from repro.cpu import CORTEX_A7
from repro.errors import ConfigurationError
from repro.network.udp import (
    DEFAULT_UDP_COSTS,
    UdpCostModel,
    datagram_payload,
    datagrams_for_payload,
    udp_get_instructions,
    udp_get_wire,
)


class TestFraming:
    def test_datagram_payload_below_mtu(self):
        payload = datagram_payload()
        assert 1400 < payload < 1500

    def test_small_get_is_two_datagrams_total(self):
        wire = udp_get_wire(64)
        assert wire.request_datagrams == 1
        assert wire.response_datagrams == 1
        assert wire.total_packets == 2  # no ACKs at all

    def test_large_response_splits(self):
        wire = udp_get_wire(1 << 20)
        assert wire.response_datagrams > 700

    def test_zero_payload_still_one_datagram(self):
        assert datagrams_for_payload(0) == 1

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            datagrams_for_payload(-1)
        with pytest.raises(ConfigurationError):
            udp_get_wire(-1)

    @given(payload=st.integers(min_value=1, max_value=2 << 20))
    @settings(max_examples=60, deadline=None)
    def test_datagrams_cover_payload(self, payload):
        per = datagram_payload()
        count = datagrams_for_payload(payload)
        assert (count - 1) * per < payload <= count * per


class TestCosts:
    def test_udp_cheaper_than_tcp_for_small_gets(self):
        from repro.core.calibration import DEFAULT_CALIBRATION
        from repro.network.packets import request_wire_payloads

        tcp = DEFAULT_CALIBRATION.tcp.instructions_for(
            request_wire_payloads("GET", 64)
        )
        udp = udp_get_instructions(64)
        assert udp < tcp / 2

    def test_drop_probability_inflates_cost(self):
        lossless = UdpCostModel(drop_probability=0.0)
        lossy = UdpCostModel(drop_probability=0.01)
        assert udp_get_instructions(64, costs=lossy) > udp_get_instructions(
            64, costs=lossless
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            UdpCostModel(per_transaction_instructions=-1)
        with pytest.raises(ConfigurationError):
            UdpCostModel(drop_probability=1.0)

    def test_default_drop_rate_is_facebook_like(self):
        assert DEFAULT_UDP_COSTS.drop_probability == pytest.approx(0.0025)


class TestLatencyModelTransport:
    def model(self) -> LatencyModel:
        return LatencyModel(core=CORTEX_A7, memory=dram_spec(10e-9))

    def test_udp_gets_are_faster(self):
        model = self.model()
        tcp = model.request_timing("GET", 64, transport="tcp").tps
        udp = model.request_timing("GET", 64, transport="udp").tps
        assert udp > 1.4 * tcp

    def test_udp_advantage_shrinks_with_size(self):
        # Per-byte work dominates at 1 MB; the transport choice fades.
        model = self.model()

        def gain(size):
            tcp = model.request_timing("GET", size, transport="tcp").tps
            udp = model.request_timing("GET", size, transport="udp").tps
            return udp / tcp

        assert gain(64) > gain(1 << 20)
        assert gain(1 << 20) < 1.6

    def test_udp_put_rejected(self):
        with pytest.raises(ConfigurationError):
            self.model().request_timing("PUT", 64, transport="udp")

    def test_unknown_transport_rejected(self):
        with pytest.raises(ConfigurationError):
            self.model().request_timing("GET", 64, transport="rdma")

    def test_udp_does_not_close_the_gap_to_mercury(self):
        # The ablation's conclusion: even with UDP on the Xeon-class
        # path, the network stack is only part of Mercury's win — density
        # and power still require the integration.  Here: UDP on the A7
        # itself still leaves TPS within ~2.5x, so software alone cannot
        # deliver the paper's 10x.
        model = self.model()
        tcp = model.request_timing("GET", 64, transport="tcp").tps
        udp = model.request_timing("GET", 64, transport="udp").tps
        assert udp / tcp < 3.0
