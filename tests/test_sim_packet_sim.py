"""Tests for the packet-level simulation."""

import pytest

from repro.core import mercury_stack
from repro.errors import ConfigurationError
from repro.sim.packet_sim import PacketLevelSimulation
from repro.workloads import REQUEST_SIZE_SWEEP


def make_sim() -> PacketLevelSimulation:
    return PacketLevelSimulation(mercury_stack(1).latency_model())


class TestCosts:
    def test_small_get_is_mostly_fixed_cost(self):
        sim = make_sim()
        costs = sim.costs("GET", 64)
        assert costs.request_segments == 1
        assert costs.response_segments == 1
        assert costs.fixed_request_s > 5 * costs.rx_packet_s

    def test_large_get_is_mostly_per_packet(self):
        sim = make_sim()
        costs = sim.costs("GET", 1 << 20)
        assert costs.response_segments > 700
        per_packet_total = costs.tx_packet_s * costs.response_segments
        assert per_packet_total > costs.fixed_request_s

    def test_cost_decomposition_sums_to_analytic(self):
        sim = make_sim()
        for size in (64, 4096, 1 << 20):
            costs = sim.costs("GET", size)
            total = (
                costs.fixed_request_s
                + costs.rx_packet_s * costs.request_segments
                + costs.tx_packet_s * costs.response_segments
                + costs.wire_packet_s
                * (costs.request_segments + costs.response_segments)
            )
            analytic = sim.model.request_timing("GET", size).total_s
            assert total == pytest.approx(analytic, rel=0.01)

    def test_unknown_verb_rejected(self):
        with pytest.raises(ConfigurationError):
            make_sim().costs("SCAN", 64)


class TestPipelining:
    def test_small_requests_have_no_pipelining_gain(self):
        result = make_sim().simulate_request("GET", 64)
        assert result.pipelining_gain == pytest.approx(1.0, abs=0.02)

    def test_large_requests_pipeline(self):
        # Wire and CPU overlap across ~725 response segments: the serial
        # model over-charges noticeably.
        result = make_sim().simulate_request("GET", 1 << 20)
        assert result.pipelining_gain > 1.05
        assert result.rtt_s < result.analytic_rtt_s

    def test_gain_grows_with_size(self):
        profile = make_sim().pipelining_profile("GET", (64, 65536, 1 << 20))
        gains = [gain for _size, gain in profile]
        assert gains[0] < gains[1] < gains[2]

    def test_rtt_positive_and_bounded(self):
        for size in (64, 8192):
            result = make_sim().simulate_request("PUT", size)
            assert 0 < result.rtt_s <= result.analytic_rtt_s * 1.01

    def test_mac_buffering_bounded_for_small(self):
        result = make_sim().simulate_request("GET", 64)
        assert result.max_mac_buffered_packets <= 1

    def test_large_put_buffers_request_segments(self):
        # A 1 MB PUT's request segments arrive faster than the core
        # drains them (wire at 1.25 GB/s vs per-packet CPU on an A7).
        result = make_sim().simulate_request("PUT", 1 << 20)
        assert result.max_mac_buffered_packets > 1

    def test_empty_sweep_rejected(self):
        with pytest.raises(ConfigurationError):
            make_sim().pipelining_profile("GET", ())

    def test_sweep_runs_on_paper_sizes(self):
        profile = make_sim().pipelining_profile("GET", REQUEST_SIZE_SWEEP[:8])
        assert len(profile) == 8
        assert all(gain >= 0.99 for _s, gain in profile)
