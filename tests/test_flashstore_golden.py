"""Golden regression for tiered-store amplification numbers.

Pins write amplification, read amplification, and index bytes per key
for a three-point PUT-fraction grid over a deterministic op stream on
the tiny test device.  Conversion cadence, merge behaviour, filter
sizing, and page packing all feed these ratios, so any change to the
flashstore package shows up as a diff against a blessed fixture.

To bless an intentional change::

    pytest tests/test_flashstore_golden.py --regen-golden
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import pytest

from repro.flashstore import TieredFlashStore, TieredStoreConfig
from repro.sim.rng import make_rng

GOLDEN_DIR = Path(__file__).parent / "golden"
REL_TOL = 1e-9

PUT_FRACTIONS = (0.1, 0.5, 0.9)
OPS = 6_000
KEYS = 800
ITEM_BYTES = 184

CONFIG = TieredStoreConfig(log_segment_pages=2, max_hash_stores=2)


def _run_cell(put_fraction: float, small_flash) -> dict:
    store = TieredFlashStore(small_flash, CONFIG, seed=9)
    rng = make_rng(f"flashstore-golden-{put_fraction:g}", 9)
    for _ in range(OPS):
        key = b"key-%d" % rng.randrange(KEYS)
        if rng.random() < put_fraction or key not in store:
            store.put(key, ITEM_BYTES)
        else:
            store.get(key)
    stats = store.stats
    return {
        "write_amplification": store.write_amplification,
        "read_amplification": store.read_amplification,
        "index_bytes_per_key": store.index_bytes_per_key,
        "false_positive_reads": stats.false_positive_reads,
        "conversions": stats.conversions,
        "compactions": stats.compactions,
        "pages_programmed": dict(sorted(stats.pages_programmed.items())),
        "hits_by_tier": dict(sorted(stats.hits_by_tier.items())),
    }


def _grid_payload(small_flash) -> dict:
    return {
        f"put-{fraction:g}": _run_cell(fraction, small_flash)
        for fraction in PUT_FRACTIONS
    }


def _assert_close(expected, actual, path: str = "$") -> None:
    if isinstance(expected, (int, float)) and not isinstance(expected, bool):
        assert math.isclose(expected, actual, rel_tol=REL_TOL, abs_tol=1e-12), (
            f"{path}: {actual!r} != golden {expected!r}"
        )
    elif isinstance(expected, dict):
        assert set(actual) == set(expected), f"{path}: key mismatch"
        for key in expected:
            _assert_close(expected[key], actual[key], f"{path}.{key}")
    else:
        assert expected == actual, f"{path}: {actual!r} != {expected!r}"


def test_amplification_grid_matches_golden(regen_golden, small_flash):
    payload = json.loads(json.dumps(_grid_payload(small_flash)))
    path = GOLDEN_DIR / "flashstore_amplification.json"
    if regen_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return
    if not path.exists():
        pytest.fail(f"missing golden fixture {path}; generate with --regen-golden")
    _assert_close(json.loads(path.read_text()), payload, "flashstore")


def test_golden_fixture_tells_the_silt_story():
    """Independent of exact values, the blessed numbers must show the
    design working: near-1 read amplification everywhere, and write
    amplification well under the page-per-item floor (the 4 KB test
    page over 184 B items would be ~22x)."""
    path = GOLDEN_DIR / "flashstore_amplification.json"
    if not path.exists():
        pytest.skip("fixture not generated yet")
    payload = json.loads(path.read_text())
    assert set(payload) == {f"put-{f:g}" for f in PUT_FRACTIONS}
    for cell in payload.values():
        assert 1.0 <= cell["read_amplification"] <= 1.1
        assert 0.0 < cell["write_amplification"] < 10.0
        assert cell["conversions"] > 0
    # More PUT pressure -> more background tier moves.
    assert (
        payload["put-0.9"]["conversions"] > payload["put-0.1"]["conversions"]
    )
