"""Tests for the power budget and the board floorplan."""

import pytest

from repro.area import DEFAULT_FLOORPLAN, Floorplan
from repro.errors import ConfigurationError
from repro.power import DEFAULT_BUDGET, PowerBudget, server_power_w, stack_power_w


class TestPowerBudget:
    def test_stack_budget_is_472w(self):
        # §5.4.1: (750 - 160) x 0.8 = 472 W.
        assert DEFAULT_BUDGET.stack_budget_w == pytest.approx(472.0)

    def test_server_power_inverts_margin(self):
        assert DEFAULT_BUDGET.server_power_w(472.0) == pytest.approx(750.0)
        assert DEFAULT_BUDGET.server_power_w(0.0) == pytest.approx(160.0)

    def test_max_stacks(self):
        assert DEFAULT_BUDGET.max_stacks(4.72) == 100
        assert DEFAULT_BUDGET.max_stacks(5.0) == 94

    def test_bad_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerBudget(supply_w=100, other_components_w=160)
        with pytest.raises(ConfigurationError):
            PowerBudget(delivery_margin=0.0)
        with pytest.raises(ConfigurationError):
            DEFAULT_BUDGET.max_stacks(0.0)
        with pytest.raises(ConfigurationError):
            DEFAULT_BUDGET.server_power_w(-1.0)


class TestStackPower:
    def test_additive(self):
        total = stack_power_w(
            core_power_w=0.1, cores=8, mac_power_w=0.12, phy_power_w=0.3,
            memory_power_w=0.5,
        )
        assert total == pytest.approx(0.8 + 0.12 + 0.3 + 0.5)

    def test_server_power_helper(self):
        assert server_power_w(96, 1.22) == pytest.approx(160 + 96 * 1.22 / 0.8)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            stack_power_w(0.1, 0, 0.1, 0.1, 0.1)
        with pytest.raises(ConfigurationError):
            stack_power_w(-0.1, 1, 0.1, 0.1, 0.1)
        with pytest.raises(ConfigurationError):
            server_power_w(-1, 1.0)


class TestFloorplan:
    def test_board_area(self):
        # 13 in x 13 in = 1089-1090 cm^2 (§5.5's 1,089 cm^2).
        assert DEFAULT_FLOORPLAN.board_area_mm2 / 100 == pytest.approx(1090, rel=0.01)

    def test_usable_fraction(self):
        assert DEFAULT_FLOORPLAN.usable_area_mm2 == pytest.approx(
            DEFAULT_FLOORPLAN.board_area_mm2 * 0.77
        )

    def test_phy_chips_shared_two_ways(self):
        assert DEFAULT_FLOORPLAN.phy_chips_for(96) == 48
        assert DEFAULT_FLOORPLAN.phy_chips_for(95) == 48
        assert DEFAULT_FLOORPLAN.phy_chips_for(1) == 1
        assert DEFAULT_FLOORPLAN.phy_chips_for(0) == 0

    def test_area_for_96_stacks_is_635cm2(self):
        # Table 3's Area column for full configurations.
        assert DEFAULT_FLOORPLAN.area_cm2_for(96) == pytest.approx(635, rel=0.01)

    def test_area_limit_approx_126_stacks(self):
        # §5.5 reports 128; exact floor arithmetic gives 126.
        assert DEFAULT_FLOORPLAN.max_stacks_by_area == pytest.approx(127, abs=2)

    def test_port_limit_binds(self):
        # §5.5: only 96 rear Ethernet ports fit, capping the build.
        assert DEFAULT_FLOORPLAN.max_stacks == 96

    def test_negative_stacks_rejected(self):
        with pytest.raises(ConfigurationError):
            DEFAULT_FLOORPLAN.phy_chips_for(-1)

    def test_bad_floorplan_rejected(self):
        with pytest.raises(ConfigurationError):
            Floorplan(usable_fraction=0.0)
        with pytest.raises(ConfigurationError):
            Floorplan(stack_package_mm2=0)
        with pytest.raises(ConfigurationError):
            Floorplan(max_ethernet_ports=0)
