"""Tests for repro.cpu.core_model."""

import pytest

from repro.cpu import (
    ATOM_CORE,
    CORE_CATALOG,
    CORTEX_A7,
    CORTEX_A15_1GHZ,
    CORTEX_A15_1_5GHZ,
    CoreModel,
    XEON_CORE,
    core_by_name,
)
from repro.errors import ConfigurationError


class TestCatalog:
    def test_table1_power(self):
        # Table 1: A7 100 mW, A15@1GHz 600 mW, A15@1.5GHz 1 W.
        assert CORTEX_A7.power_w == pytest.approx(0.100)
        assert CORTEX_A15_1GHZ.power_w == pytest.approx(0.600)
        assert CORTEX_A15_1_5GHZ.power_w == pytest.approx(1.000)

    def test_table1_area(self):
        assert CORTEX_A7.area_mm2 == pytest.approx(0.58)
        assert CORTEX_A15_1GHZ.area_mm2 == pytest.approx(2.82)

    def test_lookup_by_name(self):
        assert core_by_name("A7@1GHz") is CORTEX_A7
        assert core_by_name("Xeon@2.5GHz") is XEON_CORE

    def test_lookup_unknown_raises(self):
        with pytest.raises(ConfigurationError, match="unknown core"):
            core_by_name("M1@3GHz")

    def test_catalog_keys_match_names(self):
        for name, core in CORE_CATALOG.items():
            assert core.name == name

    def test_a15_15ghz_matches_1ghz_effective_ips(self):
        # §6.2: A15@1.5GHz results "nearly identical" to A15@1GHz — the
        # extra clock hits the memory wall.  Within 5%.
        ratio = CORTEX_A15_1_5GHZ.effective_ips / CORTEX_A15_1GHZ.effective_ips
        assert ratio == pytest.approx(1.0, rel=0.05)

    def test_in_order_cores_have_unit_mlp(self):
        assert CORTEX_A7.memory_level_parallelism == 1.0
        assert ATOM_CORE.memory_level_parallelism == 1.0
        assert not CORTEX_A7.out_of_order

    def test_ooo_cores_overlap_misses(self):
        assert CORTEX_A15_1GHZ.out_of_order
        assert CORTEX_A15_1GHZ.memory_level_parallelism > 1.0


class TestTiming:
    def test_compute_time(self):
        core = CoreModel(
            name="t", frequency_hz=1e9, effective_ipc=1.0, out_of_order=False,
            memory_level_parallelism=1.0, power_w=0.1, area_mm2=1.0,
        )
        assert core.compute_time(1_000_000) == pytest.approx(1e-3)

    def test_stall_time_divided_by_mlp(self):
        core = CoreModel(
            name="t", frequency_hz=1e9, effective_ipc=1.0, out_of_order=True,
            memory_level_parallelism=4.0, power_w=0.1, area_mm2=1.0,
        )
        assert core.stall_time(100, 10e-9) == pytest.approx(250e-9)

    def test_negative_instructions_raise(self):
        with pytest.raises(ConfigurationError):
            CORTEX_A7.compute_time(-1)

    def test_negative_misses_raise(self):
        with pytest.raises(ConfigurationError):
            CORTEX_A7.stall_time(-1, 10e-9)


class TestValidation:
    def test_zero_frequency_rejected(self):
        with pytest.raises(ConfigurationError):
            CoreModel(
                name="bad", frequency_hz=0, effective_ipc=1.0, out_of_order=False,
                memory_level_parallelism=1.0, power_w=0.1, area_mm2=1.0,
            )

    def test_sub_unit_mlp_rejected(self):
        with pytest.raises(ConfigurationError):
            CoreModel(
                name="bad", frequency_hz=1e9, effective_ipc=1.0, out_of_order=False,
                memory_level_parallelism=0.5, power_w=0.1, area_mm2=1.0,
            )
