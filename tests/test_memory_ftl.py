"""Tests for the flash translation layer, including property-based GC
invariant checks (mapping consistency under arbitrary write/trim mixes)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CapacityError, ConfigurationError, StorageError
from repro.memory import FlashTranslationLayer
from repro.memory.flash import FlashDevice
from repro.units import KB, MB


def make_ftl(overprovision=0.15, pages_per_block=8, blocks=32) -> FlashTranslationLayer:
    device = FlashDevice(
        name="tiny",
        capacity_bytes=blocks * pages_per_block * 4 * KB,
        page_bytes=4 * KB,
        pages_per_block=pages_per_block,
        channels=1,
    )
    return FlashTranslationLayer(device, overprovision=overprovision)


class TestBasics:
    def test_logical_capacity_respects_overprovision(self, small_flash):
        ftl = FlashTranslationLayer(small_flash, overprovision=0.25)
        assert ftl.logical_capacity_bytes <= small_flash.capacity_bytes * 0.75 + small_flash.block_bytes

    def test_write_then_read(self):
        ftl = make_ftl()
        assert ftl.write(0) > 0
        assert ftl.read(0) > 0
        assert ftl.physical_location(0) is not None

    def test_read_unwritten_raises(self):
        ftl = make_ftl()
        with pytest.raises(StorageError):
            ftl.read(5)

    def test_out_of_range_page_raises(self):
        ftl = make_ftl()
        with pytest.raises(CapacityError):
            ftl.write(ftl.logical_pages)
        with pytest.raises(CapacityError):
            ftl.read(-1)

    def test_overwrite_moves_physical_location(self):
        ftl = make_ftl()
        ftl.write(0)
        first = ftl.physical_location(0)
        ftl.write(0)
        second = ftl.physical_location(0)
        assert first != second

    def test_trim_unmaps(self):
        ftl = make_ftl()
        ftl.write(3)
        ftl.trim(3)
        assert ftl.physical_location(3) is None
        assert ftl.mapped_pages == 0

    def test_trim_unwritten_is_noop(self):
        ftl = make_ftl()
        ftl.trim(0)  # must not raise

    def test_write_time_at_least_program_time(self):
        ftl = make_ftl()
        assert ftl.write(0) >= ftl.device.program_time()

    def test_bad_overprovision_rejected(self, small_flash):
        with pytest.raises(ConfigurationError):
            FlashTranslationLayer(small_flash, overprovision=0.0)
        with pytest.raises(ConfigurationError):
            FlashTranslationLayer(small_flash, overprovision=0.9)


class TestGarbageCollection:
    def test_sequential_overwrite_triggers_gc(self):
        ftl = make_ftl(overprovision=0.2, pages_per_block=8, blocks=16)
        # Fill logical space twice over: must GC, must not raise.
        for round_ in range(3):
            for page in range(ftl.logical_pages):
                ftl.write(page)
        assert ftl.stats.erases > 0
        ftl.check_invariants()

    def test_write_amplification_at_least_one(self):
        ftl = make_ftl()
        for page in range(ftl.logical_pages):
            ftl.write(page)
        assert ftl.stats.write_amplification >= 1.0

    def test_sequential_workload_has_low_amplification(self):
        # Pure sequential overwrite invalidates whole blocks; greedy GC
        # should find nearly-empty victims.
        ftl = make_ftl(overprovision=0.2, pages_per_block=8, blocks=32)
        for _ in range(4):
            for page in range(ftl.logical_pages):
                ftl.write(page)
        assert ftl.stats.write_amplification < 1.3

    def test_gc_preserves_data_mapping(self):
        ftl = make_ftl(overprovision=0.25, pages_per_block=4, blocks=24)
        live = set()
        for round_ in range(5):
            for page in range(0, ftl.logical_pages, 2):
                ftl.write(page)
                live.add(page)
        for page in live:
            assert ftl.physical_location(page) is not None
        ftl.check_invariants()

    def test_wear_levelling_spreads_erases(self):
        ftl = make_ftl(overprovision=0.3, pages_per_block=4, blocks=32)
        for _ in range(20):
            for page in range(ftl.logical_pages):
                ftl.write(page)
        lo, hi = ftl.wear_spread()
        assert hi >= 1
        # Round-robin free-list (dynamic wear levelling): the erases must
        # be spread over most of the device, not concentrated on a few
        # blocks.  (Static wear levelling — moving cold data — is out of
        # scope, so a minority of blocks may stay unerased.)
        erased_blocks = sum(1 for b in ftl._blocks if b.erase_count > 0)
        assert erased_blocks >= len(ftl._blocks) * 0.6
        cycled = [b.erase_count for b in ftl._blocks if b.erase_count > 0]
        assert hi <= min(cycled) + max(4, hi // 2)

    def test_steady_state_churn_survives_on_a_tight_device(self):
        # A small device at full logical occupancy must keep absorbing
        # overwrites indefinitely thanks to the over-provisioning pool.
        ftl = make_ftl(overprovision=0.15, pages_per_block=4, blocks=8)
        for _ in range(200):
            for page in range(ftl.logical_pages):
                ftl.write(page)
        ftl.check_invariants()
        assert ftl.mapped_pages == ftl.logical_pages


class TestFtlProperties:
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["write", "trim", "read"]),
                st.integers(min_value=0, max_value=47),
            ),
            max_size=400,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_random_op_sequences_keep_invariants(self, ops):
        ftl = make_ftl(overprovision=0.25, pages_per_block=4, blocks=16)
        written = set()
        for op, page in ops:
            page = page % ftl.logical_pages
            if op == "write":
                ftl.write(page)
                written.add(page)
            elif op == "trim":
                ftl.trim(page)
                written.discard(page)
            elif page in written:
                ftl.read(page)
        ftl.check_invariants()
        assert ftl.mapped_pages == len(written)
        for page in written:
            assert ftl.physical_location(page) is not None

    @given(rounds=st.integers(min_value=1, max_value=6))
    @settings(max_examples=10, deadline=None)
    def test_full_overwrites_never_lose_mappings(self, rounds):
        ftl = make_ftl(overprovision=0.3, pages_per_block=4, blocks=16)
        for _ in range(rounds):
            for page in range(ftl.logical_pages):
                ftl.write(page)
        assert ftl.mapped_pages == ftl.logical_pages
        ftl.check_invariants()


class TestPublicWearSurface:
    """The endurance-facing read-only surface: per-block erase counts,
    total erases, and measured WA, plus the optional registry metrics."""

    def test_erase_counts_cover_every_block_and_sum(self):
        ftl = make_ftl(overprovision=0.3, pages_per_block=4, blocks=16)
        assert ftl.erase_counts == (0,) * 16
        for _ in range(8):
            for page in range(ftl.logical_pages):
                ftl.write(page)
        counts = ftl.erase_counts
        assert len(counts) == 16
        assert ftl.erases_total == sum(counts) > 0
        lo, hi = ftl.wear_spread()
        assert (min(counts), max(counts)) == (lo, hi)

    def test_write_amplification_property_tracks_stats(self):
        ftl = make_ftl(overprovision=0.1, pages_per_block=4, blocks=16)
        assert ftl.write_amplification == 1.0  # no GC yet, no division blowup
        # Cold data plus a hot working set: GC victims always hold live
        # cold pages, so relocations (and WA > 1) are guaranteed.
        for page in range(ftl.logical_pages):
            ftl.write(page)
        for _ in range(20):
            for page in range(0, ftl.logical_pages, 4):
                ftl.write(page)
        assert ftl.write_amplification == ftl.stats.write_amplification
        assert ftl.write_amplification > 1.0

    def test_registry_metrics_follow_gc_activity(self):
        from repro.telemetry import MetricsRegistry

        registry = MetricsRegistry()
        device = FlashDevice(
            name="metered",
            capacity_bytes=16 * 4 * 4 * KB,
            page_bytes=4 * KB,
            pages_per_block=4,
            channels=1,
        )
        ftl = FlashTranslationLayer(device, overprovision=0.3, registry=registry)
        for _ in range(8):
            for page in range(ftl.logical_pages):
                ftl.write(page)
        values = {
            metric.name: metric.value
            for metric in registry
            if metric.name.startswith("ftl_")
        }
        assert values["ftl_erases_total"] == ftl.erases_total > 0
        assert values["ftl_gc_page_moves_total"] == ftl.stats.gc_page_moves
        assert values["ftl_write_amplification"] == pytest.approx(
            ftl.write_amplification
        )

    def test_no_registry_means_no_metric_objects(self):
        ftl = make_ftl()
        for page in range(ftl.logical_pages):
            ftl.write(page)  # must not raise without a registry wired
        assert ftl.erases_total >= 0
