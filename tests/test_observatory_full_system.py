"""PR 4 acceptance: the observatory attached to a crash-restart run.

One scaled-down crash-restart scenario (no client resilience, so the
crash is visible as failed requests) with the full observatory on:
windowed time-series snapshots every 0.1 simulated seconds, the paper's
SLO objectives under multi-window burn rules, and the DES profiler.
The timeline must tell the whole story — healthy traffic, the fault
window burning the error budget, the alert firing exactly once inside
it, and the clear after the restart — and must be bit-identical across
two identical-seed runs.
"""

import json

import pytest

from repro.core import mercury_stack
from repro.faults import FaultEvent, FaultSchedule
from repro.sim.full_system import FullSystemStack
from repro.sim.run_options import RunOptions
from repro.telemetry import (
    MetricsRegistry,
    SimProfiler,
    SloMonitor,
    TelemetrySession,
    TimeSeriesRecorder,
    default_burn_rules,
    paper_sla_objectives,
)
from repro.units import MB
from repro.workloads import WorkloadSpec
from repro.workloads.distributions import fixed_size

CORES = 4
DURATION_S = 1.2
CRASH_S, RESTART_S = 0.3, 0.6
INTERVAL_S = 0.1

SCHEDULE = FaultSchedule(
    name="observatory-acceptance",
    events=(
        FaultEvent(kind="node_crash", at_s=CRASH_S, node="core0"),
        FaultEvent(kind="node_restart", at_s=RESTART_S, node="core0"),
    ),
)
WORKLOAD = WorkloadSpec(
    name="observatory-acceptance",
    get_fraction=0.9,
    key_population=20_000,
    value_sizes=fixed_size(64),
)


def _observed_run(profile=False):
    registry = MetricsRegistry()
    objectives = paper_sla_objectives()
    slo = SloMonitor(
        objectives,
        default_burn_rules(
            objectives, short_window_s=0.1, long_window_s=0.3, threshold=5.0
        ),
        resolution_s=0.05,
        registry=registry,
    )
    recorder = TimeSeriesRecorder(registry, interval_s=INTERVAL_S)
    profiler = SimProfiler() if profile else None
    system = FullSystemStack(
        stack=mercury_stack(cores=CORES), memory_per_core_bytes=8 * MB, seed=42
    )
    capacity = CORES * system.model.tps("GET", 64)
    results = system.run(
        WORKLOAD,
        RunOptions(
            offered_rate_hz=0.4 * capacity,
            duration_s=DURATION_S,
            warmup_requests=10_000,
            window_s=INTERVAL_S,
            fill_on_miss=True,
            faults=SCHEDULE,
            telemetry=TelemetrySession(registry=registry, max_traces=0),
            timeseries=recorder,
            slo=slo,
            profiler=profiler,
        ),
    )
    return results, recorder, profiler


@pytest.fixture(scope="module")
def observed():
    return _observed_run(profile=True)


class TestAcceptanceTimeline:
    def test_results_carry_the_observatory(self, observed):
        results, recorder, _ = observed
        assert results.timeseries is recorder
        assert results.failed > 0

    def test_fault_window_visible_in_timeseries(self, observed):
        _, recorder, _ = observed
        rows = [json.loads(line) for line in recorder.to_jsonl().splitlines()]
        assert len(rows) >= int(DURATION_S / INTERVAL_S) - 1
        failures = {row["t_s"]: row.get("requests_failed_total", 0) for row in rows}
        in_fault = sum(
            count for t, count in failures.items() if CRASH_S < t <= RESTART_S + INTERVAL_S
        )
        outside = sum(
            count for t, count in failures.items() if t <= CRASH_S
        )
        # Failures concentrate in the crash window; none before it.
        assert in_fault > 0
        assert outside == 0
        # Healthy traffic is visible on both sides of the fault.
        completed = {
            row["t_s"]: row.get("requests_completed_total", 0) for row in rows
        }
        assert completed[0.1] > 0
        recovered = sum(
            count for t, count in completed.items() if t > RESTART_S + INTERVAL_S
        )
        assert recovered > 0

    def test_burn_alert_fires_once_in_fault_window_and_clears(self, observed):
        results, _, _ = observed
        by_rule = {}
        for alert in results.slo_alerts:
            by_rule.setdefault(alert.rule, []).append(alert)
        assert "availability_burn" in by_rule
        # Exactly one firing per rule: sustained violations do not re-fire.
        for rule, alerts in by_rule.items():
            assert len(alerts) == 1, rule
        alert = by_rule["availability_burn"][0]
        assert CRASH_S <= alert.fired_at_s <= RESTART_S
        assert alert.cleared_at_s is not None
        assert alert.cleared_at_s >= RESTART_S
        assert alert.peak_burn >= 5.0

    def test_profiler_saw_the_run_without_perturbing_it(self, observed):
        results, _, profiler = observed
        assert profiler.total_events > results.completed
        assert "warmup" in profiler.spans
        top = profiler.top_events(3)
        assert top and top[0].calls > 0
        # The profiled run's simulated outcomes match an unprofiled one.
        unprofiled, _, _ = _observed_run(profile=False)
        assert unprofiled.completed == results.completed
        assert unprofiled.failed == results.failed
        assert unprofiled.mean_rtt == results.mean_rtt

    def test_timeline_and_alerts_bit_identical_across_runs(self, observed):
        results, recorder, _ = observed
        repeat, repeat_recorder, _ = _observed_run(profile=False)
        assert recorder.to_jsonl() == repeat_recorder.to_jsonl()
        assert [a.to_dict() for a in results.slo_alerts] == [
            a.to_dict() for a in repeat.slo_alerts
        ]
