"""Tests for the cluster-aware client library, on both protocols."""

import pytest

from repro.errors import ConfigurationError
from repro.kvstore.client import MemcachedClient
from repro.units import MB


def make_client(protocol: str, nodes: int = 4) -> MemcachedClient:
    return MemcachedClient(
        node_names=[f"mc{i}" for i in range(nodes)],
        memory_per_node_bytes=4 * MB,
        protocol=protocol,
    )


@pytest.fixture(params=["ascii", "binary"])
def client(request) -> MemcachedClient:
    return make_client(request.param)


class TestCrudBothProtocols:
    def test_set_get_roundtrip(self, client):
        assert client.set(b"k", b"hello")
        result = client.get(b"k")
        assert result is not None
        assert result.value == b"hello"

    def test_get_missing(self, client):
        assert client.get(b"ghost") is None

    def test_add_replace_semantics(self, client):
        assert client.add(b"k", b"1")
        assert not client.add(b"k", b"2")
        assert client.replace(b"k", b"3")
        assert not client.replace(b"x", b"4")
        assert client.get(b"k").value == b"3"

    def test_delete(self, client):
        client.set(b"k", b"v")
        assert client.delete(b"k")
        assert not client.delete(b"k")
        assert client.get(b"k") is None

    def test_cas_cycle(self, client):
        client.set(b"k", b"old")
        cas = client.get(b"k").cas
        assert cas is not None
        assert client.cas(b"k", b"new", cas)
        assert not client.cas(b"k", b"stale", cas)
        assert client.get(b"k").value == b"new"

    def test_incr_decr(self, client):
        client.set(b"n", b"10")
        assert client.incr(b"n", 5) == 15
        assert client.decr(b"n", 100) == 0
        # ascii: NOT_FOUND; binary without initial: KEY_NOT_FOUND.
        assert client.incr(b"ghost", 1) is None

    def test_expiry_via_logical_time(self, client):
        client.set(b"k", b"v", expire=10)
        client.advance_time(11)
        assert client.get(b"k") is None

    def test_flush_all(self, client):
        for i in range(20):
            client.set(b"key-%d" % i, b"v")
        client.advance_time(0.001)
        client.flush_all()
        assert all(client.get(b"key-%d" % i) is None for i in range(20))

    def test_hit_rate(self, client):
        client.set(b"k", b"v")
        client.get(b"k")
        client.get(b"ghost")
        assert client.hit_rate() == pytest.approx(0.5)


class TestSharding:
    def test_keys_spread_over_nodes(self):
        client = make_client("ascii", nodes=8)
        for i in range(500):
            client.set(b"key-%d" % i, b"v")
        populated = sum(
            1 for name in client.ring.nodes if len(client._stores[name]) > 0
        )
        assert populated == 8

    def test_multi_get_batches_per_node(self):
        client = make_client("ascii", nodes=4)
        keys = [b"key-%d" % i for i in range(50)]
        for key in keys:
            client.set(key, b"v-" + key)
        results = client.get_many(keys + [b"missing-1", b"missing-2"])
        assert set(results) == set(keys)
        assert all(results[k].value == b"v-" + k for k in keys)

    def test_binary_multi_get(self):
        client = make_client("binary", nodes=2)
        client.set(b"a", b"1")
        client.set(b"b", b"2")
        results = client.get_many([b"a", b"b", b"c"])
        assert {k: r.value for k, r in results.items()} == {b"a": b"1", b"b": b"2"}

    def test_ascii_flags_roundtrip(self):
        client = make_client("ascii")
        client.set(b"k", b"v", flags=1234)
        assert client.get(b"k").flags == 1234


class TestValidation:
    def test_empty_nodes_rejected(self):
        with pytest.raises(ConfigurationError):
            MemcachedClient([], 4 * MB)

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigurationError):
            MemcachedClient(["a"], 4 * MB, protocol="grpc")
