"""Unit tests for :mod:`repro.telemetry.profiler`.

The profiler uses an injectable clock, so every wall-clock number here
is deterministic.  The one integration test pins the observe-don't-
perturb contract: a simulated run's outcomes are identical with the
profiler attached or not.
"""

from repro.sim.events import Simulator
from repro.telemetry import SimProfiler
from repro.telemetry.profiler import _label


class FakeClock:
    """Advances a fixed amount per reading."""

    def __init__(self, step=0.001):
        self.now = 0.0
        self.step = step

    def __call__(self):
        self.now += self.step
        return self.now


def test_label_compression():
    def outer():
        def arrive():
            pass

        return arrive

    assert _label(outer()) == "outer.arrive"
    assert _label(test_label_compression) == "test_label_compression"
    assert _label(FakeClock()) == "FakeClock"


def test_attach_times_every_event():
    profiler = SimProfiler(clock=FakeClock())
    sim = Simulator()
    profiler.attach(sim)
    assert sim.profiler is profiler

    def ping():
        pass

    def pong():
        pass

    sim.schedule_at(1.0, ping)
    sim.schedule_at(3.0, pong)
    sim.schedule_at(4.5, ping)
    sim.run()
    assert profiler.total_events == 3
    ping_stats = profiler.events["test_attach_times_every_event.ping"]
    assert ping_stats.calls == 2
    # Each callback costs exactly one clock step; sim-time attribution
    # is the advance the event caused.
    assert ping_stats.wall_s == 0.002
    assert ping_stats.sim_s == 1.0 + 1.5
    assert profiler.events["test_attach_times_every_event.pong"].sim_s == 2.0


def test_span_and_report():
    profiler = SimProfiler(clock=FakeClock(step=0.01))
    with profiler.span("warmup"):
        pass
    assert profiler.spans["warmup"].calls == 1
    assert profiler.spans["warmup"].wall_s == 0.01
    report = profiler.report(top_n=5)
    assert "warmup" in report
    assert "event loop: 0 events" in report


def test_top_events_ordering_and_to_dict():
    profiler = SimProfiler(clock=FakeClock())

    def cheap():
        pass

    def costly():
        pass

    profiler.record_event(cheap, 0.001, 0.0)
    profiler.record_event(costly, 0.1, 0.5)
    top = profiler.top_events(1)
    assert top[0].name.endswith("costly")
    payload = profiler.to_dict()
    assert payload["total_events"] == 2
    assert payload["events"][0]["name"].endswith("costly")
    assert payload["events"][0]["max_wall_s"] == 0.1


def test_profiler_does_not_perturb_the_simulation():
    def run(profiled):
        sim = Simulator()
        if profiled:
            SimProfiler(clock=FakeClock()).attach(sim)
        trace = []

        def tick(i):
            trace.append((round(sim.now, 9), i))
            if i < 20:
                sim.schedule(0.1, lambda: tick(i + 1))

        sim.schedule(0.0, lambda: tick(0))
        sim.run()
        return trace, sim.now, sim.events_processed

    assert run(profiled=False) == run(profiled=True)
