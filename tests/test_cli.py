"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def run(capsys, *argv: str) -> str:
    assert main(list(argv)) == 0
    return capsys.readouterr().out


class TestTablesAndFigures:
    @pytest.mark.parametrize("artefact", ["table1", "table2", "table4"])
    def test_tables_render(self, capsys, artefact):
        out = run(capsys, artefact)
        assert "Table" in out
        assert len(out.splitlines()) > 5

    def test_table3_has_all_rows(self, capsys):
        out = run(capsys, "table3")
        assert out.count("Mercury") == 18
        assert out.count("Iridium") == 18

    @pytest.mark.parametrize("artefact", ["fig4", "fig6"])
    def test_figures_render(self, capsys, artefact):
        out = run(capsys, artefact)
        assert "Figure" in out
        assert "1M" in out  # the sweep reaches 1 MB

    def test_figure_chart_mode(self, capsys):
        out = run(capsys, "fig4", "--chart")
        assert "#" in out
        assert "-- Network Stack" in out

    def test_headlines(self, capsys):
        out = run(capsys, "headlines")
        assert "mercury_tps_x" in out
        assert "paper" in out


class TestAnalysisCommands:
    def test_sensitivity(self, capsys):
        out = run(capsys, "sensitivity", "--factor", "1.2")
        assert "conclusions hold" in out
        assert "NO" not in out.replace("NO_", "")  # every row holds

    def test_thermal(self, capsys):
        out = run(capsys, "thermal", "--cores", "32")
        assert "passive cooling OK" in out

    def test_evaluate_sizes_parse(self, capsys):
        out = run(capsys, "evaluate", "--family", "mercury", "--size", "1M")
        assert "Mercury-32" in out
        assert "MTPS" in out

    def test_evaluate_put(self, capsys):
        get = run(capsys, "evaluate", "--verb", "GET")
        put = run(capsys, "evaluate", "--verb", "PUT")
        assert get != put

    def test_plan(self, capsys):
        out = run(
            capsys, "plan", "--dataset-gb", "50000", "--tps", "1e6"
        )
        assert "Cheapest: Iridium" in out

    def test_plan_hot_tier_prefers_mercury(self, capsys):
        out = run(
            capsys, "plan", "--dataset-gb", "1000", "--tps", "300e6"
        )
        assert "Cheapest: Mercury" in out


class TestExport:
    def test_table_export_csv(self, capsys, tmp_path):
        target = tmp_path / "t4.csv"
        out = run(capsys, "table4", "--export", str(target))
        assert "wrote" in out
        assert target.read_text().startswith("System")

    def test_table_export_json(self, capsys, tmp_path):
        import json

        target = tmp_path / "t1.json"
        run(capsys, "table1", "--export", str(target))
        assert json.loads(target.read_text())[0]["Component"] == "A7@1GHz"

    def test_figure_export_json(self, capsys, tmp_path):
        import json

        target = tmp_path / "fig4.json"
        run(capsys, "fig4", "--export", str(target))
        panels = json.loads(target.read_text())
        assert len(panels) == 2
        assert panels[0]["x"][0] == "64"


class TestPareto:
    def test_default_frontier(self, capsys):
        out = run(capsys, "pareto")
        assert "Pareto frontier" in out
        assert "Mercury-32" in out

    def test_custom_objectives(self, capsys):
        out = run(capsys, "pareto", "--objectives", "tps_per_watt,low_power")
        assert "of 36 designs survive" in out


class TestReport:
    def test_report_writes_directory(self, capsys, tmp_path):
        out = run(capsys, "report", "--out", str(tmp_path / "r"))
        assert "21 artefacts" in out
        assert (tmp_path / "r" / "table4.csv").exists()


class TestTelemetry:
    def test_telemetry_writes_trace_and_metrics(self, capsys, tmp_path):
        import json

        out = run(
            capsys, "telemetry", "--cores", "2", "--duration", "0.05",
            "--memory-mb", "4", "--out", str(tmp_path),
        )
        assert "requests" in out
        assert "p99" in out
        assert "time by component" in out
        metrics = (tmp_path / "metrics.prom").read_text()
        assert 'request_rtt_seconds{quantile="0.99"}' in metrics
        first_trace = json.loads(
            (tmp_path / "trace.jsonl").read_text().splitlines()[0]
        )
        assert {span["name"] for span in first_trace["spans"]} == {
            "queue", "network", "hash", "memcached",
        }
        # The observatory rides along by default: a timeseries timeline
        # and HELP-documented metrics.
        assert (tmp_path / "timeseries.jsonl").exists()
        assert "# HELP request_rtt_seconds" in metrics

    def test_telemetry_profile_and_scenario(self, capsys, tmp_path):
        import json

        out = run(
            capsys, "telemetry", "--cores", "2", "--duration", "0.06",
            "--memory-mb", "4", "--out", str(tmp_path),
            "--profile", "--scenario", "lossy-link", "--interval", "0.01",
        )
        assert "event loop:" in out  # the profiler report
        assert "us/event" in out
        assert "fault scenario: lossy-link" in out
        assert "slo alerts" in out
        rows = [
            json.loads(line)
            for line in (tmp_path / "timeseries.jsonl").read_text().splitlines()
        ]
        assert len(rows) >= 5
        assert any(row.get("requests_completed_total", 0) > 0 for row in rows)


class TestSweep:
    def test_fig7_sweep_lists_every_cell(self, capsys, tmp_path):
        out = run(capsys, "sweep", "--cache-dir", str(tmp_path))
        assert "36 fig7 jobs" in out
        assert "36 executed" in out
        assert out.count("fig7[") == 36

    def test_cached_rerun_executes_nothing(self, capsys, tmp_path):
        run(capsys, "sweep", "--cache-dir", str(tmp_path))
        out = run(capsys, "sweep", "--cache-dir", str(tmp_path))
        assert "36 cache hits, 0 executed" in out

    def test_export_is_deterministic(self, capsys, tmp_path):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        run(capsys, "sweep", "--cache-dir", str(tmp_path / "cache"),
            "--export", str(first))
        run(capsys, "sweep", "--cache-dir", str(tmp_path / "cache"),
            "--export", str(second))
        assert first.read_bytes() == second.read_bytes()

    def test_no_cache_always_executes(self, capsys, tmp_path):
        out = run(capsys, "sweep", "--no-cache")
        assert "cache off" in out
        assert "0 cache hits" in out

    def test_stats_export(self, capsys, tmp_path):
        import json

        stats_path = tmp_path / "stats.json"
        run(capsys, "sweep", "--cache-dir", str(tmp_path / "cache"),
            "--stats-export", str(stats_path))
        stats = json.loads(stats_path.read_text())
        assert stats["jobs"] == 36
        assert stats["cache_entries"] == 36
        assert stats["kind"] == "fig7"

    def test_sensitivity_kind(self, capsys, tmp_path):
        out = run(capsys, "sweep", "--kind", "sensitivity",
                  "--cache-dir", str(tmp_path), "--factor", "1.2")
        assert "sensitivity[" in out
        assert "x1.2]" in out

    def test_full_system_kind_parallel(self, capsys, tmp_path):
        out = run(capsys, "sweep", "--kind", "full-system",
                  "--cache-dir", str(tmp_path), "--parallel", "2",
                  "--cores-list", "1", "--rates", "5000",
                  "--duration", "0.05", "--memory-mb", "4")
        assert "1 full-system jobs" in out
        assert "2 workers" in out
        assert "baseline[cores=1,rate=5000]" in out

    def test_progress_goes_to_stderr(self, capsys, tmp_path):
        assert main(["sweep", "--cache-dir", str(tmp_path), "--progress"]) == 0
        captured = capsys.readouterr()
        assert captured.err.count("executed") == 36


class TestParser:
    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["warp"])

    def test_missing_required_plan_args_exit(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["plan"])


class TestFlashstore:
    ARGS = (
        "flashstore",
        "--put-fractions", "0.5",
        "--rate", "6000",
        "--duration", "0.2",
        "--keys", "2000",
        "--warmup", "1000",
        "--segment-pages", "8",
    )

    def test_table_compares_tiers_against_the_ftl_baseline(self, capsys):
        out = run(capsys, *self.ARGS)
        assert "tiered flash store vs page-per-item FTL" in out
        assert "base WA" in out and "tier WA" in out
        assert "50%" in out

    def test_export_carries_the_sweep(self, capsys, tmp_path):
        import json

        path = tmp_path / "flashstore.json"
        out = run(capsys, *self.ARGS, "--export", str(path))
        assert str(path) in out
        payload = json.loads(path.read_text())
        assert payload["segment_pages"] == 8
        (row,) = payload["sweep"]
        assert row["put_fraction"] == 0.5
        assert (
            row["tiered_write_amplification"]
            < row["baseline_write_amplification"]
        )
        assert row["conversions"] > 0

    def test_parser_defaults(self):
        args = build_parser().parse_args(["flashstore"])
        assert args.put_fractions == "0.1,0.5,0.9"
        assert args.segment_pages == 256
        assert args.cores == 4

    def test_bad_put_fraction_exits(self, capsys):
        with pytest.raises(SystemExit):
            main(["flashstore", "--put-fractions", "1.5"])
