"""Tests for the discrete-event engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.run()
        assert fired == ["a", "b", "c"]
        assert sim.now == pytest.approx(3.0)

    def test_simultaneous_events_fifo(self):
        sim = Simulator()
        fired = []
        for tag in "abc":
            sim.schedule(1.0, lambda t=tag: fired.append(t))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_nested_scheduling(self):
        sim = Simulator()
        fired = []

        def outer():
            fired.append("outer")
            sim.schedule(1.0, lambda: fired.append("inner"))

        sim.schedule(1.0, outer)
        sim.run()
        assert fired == ["outer", "inner"]
        assert sim.now == pytest.approx(2.0)

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(5.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [pytest.approx(5.0)]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)


class TestCancellation:
    def test_cancelled_event_skipped(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append("x"))
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_one_of_many(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("keep"))
        victim = sim.schedule(2.0, lambda: fired.append("drop"))
        sim.schedule(3.0, lambda: fired.append("keep2"))
        victim.cancel()
        sim.run()
        assert fired == ["keep", "keep2"]

    def test_simulator_cancel_is_idempotent(self):
        sim = Simulator()
        fired = []
        victim = sim.schedule(1.0, lambda: fired.append("drop"))
        sim.cancel(victim)
        sim.cancel(victim)  # double-cancel must not corrupt _dead
        sim.schedule(2.0, lambda: fired.append("keep"))
        sim.run()
        assert fired == ["keep"]

    def test_tombstones_do_not_grow_unbounded(self):
        """Cancel-heavy workloads must compact the heap, not hoard
        tombstones: after cancelling many pending events, the queue
        length tracks the live events, not the cancellation history."""
        sim = Simulator()
        live = sim.schedule(1e9, lambda: None)
        for _ in range(50):
            batch = [sim.schedule(1e6, lambda: None) for _ in range(1_000)]
            for event in batch:
                sim.cancel(event)
        assert sim.pending < 2_000  # 50k cancels, ~1 live event
        sim.cancel(live)

    def test_compaction_during_run_keeps_future_events(self):
        """Regression: a cancel-triggered compaction *inside a callback*
        used to rebind the queue list while ``run()`` kept draining a
        stale local alias, silently dropping every event scheduled after
        the compaction point."""
        sim = Simulator()
        fired = [0]
        victims = []

        def chain():
            fired[0] += 1
            if fired[0] < 5_000:
                sim.schedule(0.001, chain)
            # Pile up tombstones until a compaction fires mid-run.
            victims.append(sim.schedule(1e6, lambda: None))
            if len(victims) >= 2:
                sim.cancel(victims.pop(0))

        sim.schedule(0.001, chain)
        sim.run(until=10.0)
        assert fired[0] == 5_000


class TestBoundedRuns:
    def test_run_until_horizon(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == pytest.approx(2.0)
        assert sim.pending == 1
        sim.run()
        assert fired == [1, 5]

    def test_run_until_advances_clock_when_idle(self):
        sim = Simulator()
        sim.run(until=10.0)
        assert sim.now == pytest.approx(10.0)

    def test_max_events_bound(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(float(i + 1), lambda i=i: fired.append(i))
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_processed == 5

    def test_run_until_is_exact_with_boundary_event(self):
        """An event exactly at the horizon fires, and the clock lands on
        the horizon, never past it — the hybrid driver's segment loop
        depends on both."""
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append(sim.now))
        sim.schedule(2.0 + 1e-9, lambda: fired.append(sim.now))
        sim.run_until(2.0)
        assert fired == [pytest.approx(2.0)]
        assert sim.now == 2.0

    def test_run_until_backwards_rejected(self):
        sim = Simulator()
        sim.run(until=5.0)
        with pytest.raises(SimulationError):
            sim.run_until(1.0)


class TestRecurring:
    def test_fires_on_the_grid_with_scheduled_time(self):
        sim = Simulator()
        fired = []
        sim.recurring(0.5, fired.append, horizon_s=2.0)
        sim.run()
        assert fired == [pytest.approx(t) for t in (0.5, 1.0, 1.5, 2.0)]

    def test_stop_halts_future_firings(self):
        sim = Simulator()
        fired = []
        handle = sim.recurring(1.0, fired.append, horizon_s=10.0)
        sim.schedule(2.5, handle.stop)
        sim.run()
        assert fired == [pytest.approx(1.0), pytest.approx(2.0)]

    def test_short_horizon_never_fires(self):
        sim = Simulator()
        fired = []
        handle = sim.recurring(5.0, fired.append, horizon_s=1.0)
        sim.run()
        assert fired == [] and handle.stopped

    def test_interleaves_fifo_with_one_shot_events(self):
        """Ties against a recurring loop follow *reschedule-time* FIFO,
        exactly like the retired idiom of re-scheduling a one-shot from
        inside its own callback: the first tick keeps its install-time
        sequence, every later tick re-draws its sequence when the prior
        tick fires, so pre-scheduled one-shots win the later ties."""
        sim = Simulator()
        fired = []
        sim.recurring(1.0, lambda t: fired.append("tick"), horizon_s=3.0)
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, lambda: fired.append("shot"))
        sim.run()
        assert fired == ["tick", "shot", "shot", "tick", "shot", "tick"]


class TestEngineProperties:
    @given(delays=st.lists(st.floats(min_value=0.0, max_value=100.0), max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_fire_times_are_monotone(self, delays):
        sim = Simulator()
        fire_times = []
        for delay in delays:
            sim.schedule(delay, lambda: fire_times.append(sim.now))
        sim.run()
        assert fire_times == sorted(fire_times)
        assert len(fire_times) == len(delays)

    @given(
        delays=st.lists(
            st.floats(min_value=0.0, max_value=10.0),
            min_size=1,
            max_size=40,
        ),
        cancel_mask=st.lists(st.booleans(), min_size=40, max_size=40),
        tick_s=st.floats(min_value=0.1, max_value=3.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_orderings_are_bit_identical_across_replays(
        self, delays, cancel_mask, tick_s
    ):
        """Same schedule → same firing order, to the last tie-break.

        Two independent simulators given an identical mix of one-shots
        (some cancelled), nested reschedules, and a recurring loop must
        produce byte-for-byte identical ``(time, tag)`` traces — the
        determinism contract everything downstream (result caching, the
        hybrid fidelity equivalence tests) leans on.
        """

        def trace():
            sim = Simulator()
            fired = []
            sim.recurring(
                tick_s, lambda t: fired.append((t, "tick")), horizon_s=10.0
            )
            for i, delay in enumerate(delays):
                event = sim.schedule(
                    delay,
                    lambda i=i: (
                        fired.append((sim.now, i)),
                        # odd events respawn once, exercising nesting
                        sim.schedule(0.25, lambda i=i: fired.append((sim.now, (i, "re"))))
                        if i % 2
                        else None,
                    ),
                )
                if cancel_mask[i]:
                    sim.cancel(event)
            sim.run()
            return fired, sim.events_processed

        first, first_count = trace()
        second, second_count = trace()
        assert first == second
        assert first_count == second_count
        expected_live = sum(
            1 for i in range(len(delays)) if not cancel_mask[i]
        )
        assert sum(1 for _, tag in first if isinstance(tag, int)) == expected_live
