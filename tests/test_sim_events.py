"""Tests for the discrete-event engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.run()
        assert fired == ["a", "b", "c"]
        assert sim.now == pytest.approx(3.0)

    def test_simultaneous_events_fifo(self):
        sim = Simulator()
        fired = []
        for tag in "abc":
            sim.schedule(1.0, lambda t=tag: fired.append(t))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_nested_scheduling(self):
        sim = Simulator()
        fired = []

        def outer():
            fired.append("outer")
            sim.schedule(1.0, lambda: fired.append("inner"))

        sim.schedule(1.0, outer)
        sim.run()
        assert fired == ["outer", "inner"]
        assert sim.now == pytest.approx(2.0)

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(5.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [pytest.approx(5.0)]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)


class TestCancellation:
    def test_cancelled_event_skipped(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append("x"))
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_one_of_many(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("keep"))
        victim = sim.schedule(2.0, lambda: fired.append("drop"))
        sim.schedule(3.0, lambda: fired.append("keep2"))
        victim.cancel()
        sim.run()
        assert fired == ["keep", "keep2"]


class TestBoundedRuns:
    def test_run_until_horizon(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == pytest.approx(2.0)
        assert sim.pending == 1
        sim.run()
        assert fired == [1, 5]

    def test_run_until_advances_clock_when_idle(self):
        sim = Simulator()
        sim.run(until=10.0)
        assert sim.now == pytest.approx(10.0)

    def test_max_events_bound(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(float(i + 1), lambda i=i: fired.append(i))
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_processed == 5


class TestEngineProperties:
    @given(delays=st.lists(st.floats(min_value=0.0, max_value=100.0), max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_fire_times_are_monotone(self, delays):
        sim = Simulator()
        fire_times = []
        for delay in delays:
            sim.schedule(delay, lambda: fire_times.append(sim.now))
        sim.run()
        assert fire_times == sorted(fire_times)
        assert len(fire_times) == len(delays)
