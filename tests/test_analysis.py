"""Tests for table/figure builders, rendering, and headline comparison."""

import pytest

from repro.analysis import (
    PAPER_HEADLINES,
    compare_headlines,
    figure4_breakdown,
    figure5_mercury_latency_sweep,
    figure6_iridium_latency_sweep,
    figure7_density_vs_tps,
    figure8_power_vs_tps,
    headline_ratios,
    render_series,
    render_table,
    table1_components,
    table2_memory_technologies,
    table3_configurations,
    table4_comparison,
)
from repro.errors import ConfigurationError


class TestRenderers:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [[1, 2.5], [10, 0.25]], caption="cap")
        lines = text.splitlines()
        assert lines[0] == "cap"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_render_table_width_mismatch(self):
        with pytest.raises(ConfigurationError):
            render_table(["a"], [[1, 2]])

    def test_render_table_needs_headers(self):
        with pytest.raises(ConfigurationError):
            render_table([], [])

    def test_render_series(self):
        text = render_series("x", [1, 2], {"y": [10.0, 20.0]})
        assert "x" in text and "y" in text and "20" in text

    def test_render_series_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            render_series("x", [1, 2], {"y": [1.0]})

    def test_render_series_needs_series(self):
        with pytest.raises(ConfigurationError):
            render_series("x", [1], {})


class TestTables:
    def test_table1_matches_catalog(self):
        headers, rows = table1_components()
        assert len(rows) == 7
        assert headers[0] == "Component"
        names = [row[0] for row in rows]
        assert "A7@1GHz" in names and "Physical NIC (PHY)" in names

    def test_table2_rows(self):
        _headers, rows = table2_memory_technologies()
        assert len(rows) == 7
        by_name = {row[0]: row for row in rows}
        assert by_name["HMC I (3D-Stack)"][1] == pytest.approx(128.0)

    def test_table3_full_grid(self):
        headers, rows = table3_configurations()
        assert len(rows) == 36
        assert headers[-1] == "Max BW (GB/s)"
        for row in rows:
            stacks = row[3]
            assert 1 <= stacks <= 96

    def test_table3_renders(self):
        headers, rows = table3_configurations()
        text = render_table(headers, rows)
        assert "Mercury" in text and "Iridium" in text

    def test_table4_rows(self):
        _headers, rows = table4_comparison()
        names = [row[0] for row in rows]
        assert names == [
            "Mercury-8[A7@1GHz]",
            "Mercury-16[A7@1GHz]",
            "Mercury-32[A7@1GHz]",
            "Iridium-8[A7@1GHz]",
            "Iridium-16[A7@1GHz]",
            "Iridium-32[A7@1GHz]",
            "Memcached 1.4",
            "Memcached 1.6",
            "Bags",
            "TSSP",
        ]

    def test_table4_mercury_beats_all_baselines_on_tps(self):
        _headers, rows = table4_comparison()
        tps = {row[0]: row[5] for row in rows}
        assert tps["Mercury-32[A7@1GHz]"] > 10 * tps["Bags"]


class TestFigures:
    def test_fig4_panels(self):
        panels = figure4_breakdown()
        assert len(panels) == 2
        for panel in panels:
            for series in panel.series.values():
                assert len(series) == 15
            # Stacked percentages sum to 100 at every size.
            for i in range(15):
                total = sum(series[i] for series in panel.series.values())
                assert total == pytest.approx(100.0)

    def test_fig4_get_network_share_grows(self):
        get_panel = figure4_breakdown()[0]
        network = get_panel.series["Network Stack"]
        assert network[-1] > network[0]
        assert network[-1] > 95.0

    def test_fig5_panels_and_ordering(self):
        panels = figure5_mercury_latency_sweep()
        assert len(panels) == 4
        for panel in panels:
            assert len(panel.series) == 8  # 4 latencies x GET/PUT
            get10 = panel.series["10ns GET"]
            get100 = panel.series["100ns GET"]
            assert all(a >= b for a, b in zip(get10, get100))

    def test_fig6_panels(self):
        panels = figure6_iridium_latency_sweep()
        assert len(panels) == 4
        with_l2_a7 = panels[2]
        assert "A7" in with_l2_a7.title and "2MB L2" in with_l2_a7.title
        # GETs beat PUTs on flash at every size.
        get = with_l2_a7.series["10us GET"]
        put = with_l2_a7.series["10us PUT"]
        assert all(g > p for g, p in zip(get, put))

    def test_fig7_series(self):
        mercury, iridium = figure7_density_vs_tps()
        assert len(mercury.x_values) == 18  # 3 CPUs x 6 core counts
        max_density_mercury = max(mercury.series["Density (thousands of GB)"])
        max_density_iridium = max(iridium.series["Density (thousands of GB)"])
        assert max_density_iridium > 4 * max_density_mercury

    def test_fig8_series(self):
        mercury, _iridium = figure8_power_vs_tps()
        assert max(mercury.series["Power (W)"]) <= 750.0
        assert max(mercury.series["TPS @64B (millions)"]) > 30.0


class TestHeadlines:
    def test_all_headlines_present(self):
        measured = headline_ratios()
        assert set(measured) == set(PAPER_HEADLINES)

    def test_all_headlines_within_tolerance(self):
        # The reproduction's core claim: every abstract ratio within 20%.
        for comparison in compare_headlines():
            assert comparison.relative_error < 0.20, comparison

    def test_iridium_density_nearly_exact(self):
        by_name = {c.name: c for c in compare_headlines()}
        assert by_name["iridium_density_x"].relative_error < 0.02
