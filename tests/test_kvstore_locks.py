"""Tests for the lock-contention scaling model and striped locks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.kvstore import LockContentionModel, StripedLocks
from repro.kvstore.hashing import jenkins_oaat


class TestContentionModel:
    def test_no_serial_fraction_scales_linearly(self):
        model = LockContentionModel(0.0)
        assert model.throughput(16, 100.0) == pytest.approx(1600.0)
        assert model.saturation_rate(100.0) == float("inf")

    def test_full_serialisation_never_scales(self):
        model = LockContentionModel(1.0)
        assert model.throughput(16, 100.0) == pytest.approx(100.0)

    def test_throughput_monotone_in_threads(self):
        model = LockContentionModel(0.3)
        rates = [model.throughput(n, 100.0) for n in range(1, 33)]
        assert rates == sorted(rates)

    def test_throughput_bounded_by_saturation(self):
        model = LockContentionModel(0.3)
        ceiling = model.saturation_rate(100.0)
        assert model.throughput(10_000, 100.0) < ceiling
        assert model.throughput(10_000, 100.0) == pytest.approx(ceiling, rel=0.01)

    def test_single_thread_unaffected(self):
        assert LockContentionModel(0.9).throughput(1, 123.0) == pytest.approx(123.0)

    def test_speedup_relative(self):
        model = LockContentionModel(0.1)
        assert model.speedup(1) == pytest.approx(1.0)
        assert model.speedup(4) == pytest.approx(4 / 1.3)

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            LockContentionModel(-0.1)
        with pytest.raises(ConfigurationError):
            LockContentionModel(1.1)

    def test_invalid_threads_rejected(self):
        with pytest.raises(ConfigurationError):
            LockContentionModel(0.1).throughput(0, 100.0)

    @given(
        fraction=st.floats(min_value=0.0, max_value=1.0),
        threads=st.integers(min_value=1, max_value=512),
    )
    @settings(max_examples=100, deadline=None)
    def test_scaling_between_one_and_n(self, fraction, threads):
        model = LockContentionModel(fraction)
        speedup = model.speedup(threads)
        assert 1.0 <= speedup + 1e-9
        assert speedup <= threads + 1e-9


class TestStripedLocks:
    def test_stripe_selection_is_stable(self):
        locks = StripedLocks(8)
        digest = jenkins_oaat(b"key-1")
        assert locks.stripe_for(digest) == locks.stripe_for(digest)

    def test_acquire_release_cycle(self):
        locks = StripedLocks(4)
        stripe = locks.acquire(13)
        locks.release(stripe)
        assert locks.acquisitions[stripe] == 1
        assert locks.contended == 0

    def test_contention_counted(self):
        locks = StripedLocks(1)
        locks.acquire(0)
        locks.acquire(1)  # same single stripe, still held
        assert locks.contended == 1

    def test_release_unheld_rejected(self):
        locks = StripedLocks(4)
        with pytest.raises(ConfigurationError):
            locks.release(0)

    def test_release_bad_index_rejected(self):
        locks = StripedLocks(4)
        with pytest.raises(ConfigurationError):
            locks.release(9)

    def test_striping_spreads_load(self):
        locks = StripedLocks(16)
        for i in range(4000):
            stripe = locks.acquire(jenkins_oaat(b"key-%d" % i))
            locks.release(stripe)
        assert locks.imbalance() < 1.5
        assert locks.contended == 0

    def test_zero_stripes_rejected(self):
        with pytest.raises(ConfigurationError):
            StripedLocks(0)
