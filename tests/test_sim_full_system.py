"""Tests for the full-system co-simulation (functional + timing)."""

import pytest

from repro.core import mercury_stack
from repro.errors import ConfigurationError
from repro.sim.full_system import FullSystemStack
from repro.sim.run_options import RunOptions
from repro.units import MB
from repro.workloads import WorkloadSpec
from repro.workloads.distributions import fixed_size


def small_workload(get_fraction=0.9, size=64, population=2_000) -> WorkloadSpec:
    return WorkloadSpec(
        name="fs-test",
        get_fraction=get_fraction,
        key_population=population,
        value_sizes=fixed_size(size),
    )


def make_stack(cores=4, memory_mb=4) -> FullSystemStack:
    return FullSystemStack(
        stack=mercury_stack(cores),
        memory_per_core_bytes=memory_mb * MB,
        seed=1,
    )


class TestFunctionalBehaviour:
    def test_warm_cache_hits(self):
        system = make_stack()
        results = system.run(
            small_workload(get_fraction=1.0),
            RunOptions(
                offered_rate_hz=20_000.0,
                duration_s=0.2,
                warmup_requests=4_000,
            ),
        )
        assert results.completed > 1_000
        assert results.hit_rate > 0.6  # zipf head is warm

    def test_cold_cache_misses(self):
        system = make_stack()
        results = system.run(
            small_workload(get_fraction=1.0),
            RunOptions(offered_rate_hz=20_000.0, duration_s=0.1),
        )
        assert results.hit_rate < 0.9  # first touches miss

    def test_mixed_workload_counts(self):
        system = make_stack()
        results = system.run(
            small_workload(get_fraction=0.7),
            RunOptions(offered_rate_hz=20_000.0, duration_s=0.2),
        )
        total = results.get_hits + results.get_misses + results.puts
        assert total == pytest.approx(results.completed, abs=system.stack.cores)
        assert results.puts > 0.2 * total

    def test_keys_shard_consistently(self):
        system = make_stack(cores=8)
        assert all(
            0 <= system.core_for_key(b"key-%d" % i) < 8 for i in range(100)
        )
        assert system.core_for_key(b"key-1") == system.core_for_key(b"key-1")

    def test_load_spreads_across_cores(self):
        system = make_stack(cores=8)
        results = system.run(
            small_workload(population=20_000),
            RunOptions(offered_rate_hz=40_000.0, duration_s=0.2),
        )
        assert len(results.per_core_served) == 8
        assert results.core_load_imbalance() < 2.0


class TestTimingBehaviour:
    def test_throughput_matches_offered_below_saturation(self):
        system = make_stack(cores=4)
        capacity = 4 * system.model.tps("GET", 64)
        results = system.run(
            small_workload(get_fraction=1.0),
            RunOptions(
                offered_rate_hz=0.5 * capacity,
                duration_s=0.5,
                warmup_requests=2_000,
            ),
        )
        assert results.throughput_hz == pytest.approx(0.5 * capacity, rel=0.1)

    def test_breakdown_matches_analytic_fig4(self):
        system = make_stack(cores=2)
        results = system.run(
            small_workload(get_fraction=1.0),
            RunOptions(
                offered_rate_hz=8_000.0,
                duration_s=0.3,
                warmup_requests=2_000,
            ),
        )
        measured = results.breakdown_fractions()
        # Hits dominate after warmup, so the measured split should sit
        # near the analytic 64 B GET split.
        analytic = system.model.request_timing("GET", 100).fractions()
        assert measured["network"] == pytest.approx(analytic["network"], abs=0.06)
        assert measured["hash"] == pytest.approx(analytic["hash"], abs=0.03)

    def test_rtt_reflects_queueing_at_high_load(self):
        system = make_stack(cores=2)
        capacity = 2 * system.model.tps("GET", 64)
        light = system.run(
            small_workload(get_fraction=1.0),
            RunOptions(0.2 * capacity, 0.2, warmup_requests=1_000),
        )
        heavy = make_stack(cores=2).run(
            small_workload(get_fraction=1.0),
            RunOptions(0.9 * capacity, 0.2, warmup_requests=1_000),
        )
        assert heavy.mean_rtt > light.mean_rtt

    def test_sla_fraction_reported(self):
        system = make_stack(cores=4)
        results = system.run(
            small_workload(), RunOptions(offered_rate_hz=10_000.0, duration_s=0.2)
        )
        assert 0.9 < results.sla_fraction(1e-3) <= 1.0


class TestFiniteBuffering:
    def test_overload_drops_instead_of_queueing_forever(self):
        system = FullSystemStack(
            stack=mercury_stack(2),
            memory_per_core_bytes=4 * MB,
            max_queue_per_core=8,
            seed=5,
        )
        capacity = 2 * system.model.tps("GET", 64)
        results = system.run(
            small_workload(get_fraction=1.0),
            RunOptions(offered_rate_hz=3 * capacity, duration_s=0.1),
        )
        assert results.mac_drops > 0
        # Bounded queues bound the RTT: nothing waits more than the
        # buffer depth's worth of service.
        service = system.model.request_timing("GET", 64).total_s
        assert results.max_rtt < 12 * service

    def test_unbounded_queue_never_drops(self):
        system = FullSystemStack(
            stack=mercury_stack(2),
            memory_per_core_bytes=4 * MB,
            max_queue_per_core=None,
            seed=5,
        )
        capacity = 2 * system.model.tps("GET", 64)
        results = system.run(
            small_workload(get_fraction=1.0),
            RunOptions(offered_rate_hz=2 * capacity, duration_s=0.05),
        )
        assert results.mac_drops == 0

    def test_bad_queue_bound_rejected(self):
        with pytest.raises(ConfigurationError):
            FullSystemStack(
                stack=mercury_stack(2),
                memory_per_core_bytes=4 * MB,
                max_queue_per_core=0,
            )


class TestValidation:
    def test_bad_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            make_stack().run(
                small_workload(),
                RunOptions(offered_rate_hz=0.0, duration_s=1.0),
            )

    def test_bad_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            make_stack().run(
                small_workload(),
                RunOptions(offered_rate_hz=1000.0, duration_s=0.0),
            )

    def test_tiny_memory_rejected(self):
        with pytest.raises(ConfigurationError):
            FullSystemStack(stack=mercury_stack(4), memory_per_core_bytes=1024)

    def test_default_memory_is_port_share(self):
        system = FullSystemStack(stack=mercury_stack(16))
        limit = system.servers[0].store.slabs.memory_limit_bytes
        assert limit == mercury_stack(16).capacity_bytes // 16
