"""Failure injection: the system under partial failure and pressure.

Memcached's failure model is brutal and simple — a dead node loses its
data (§2.3: "data will be removed from your cache if a server goes
down") — and the slab allocator's failure mode is class starvation.
These tests inject those failures mid-traffic and assert the system
degrades the way production Memcached does: reduced hit rate, never
corruption, never a crash.
"""

import pytest

from repro.errors import ReproError
from repro.kvstore import KVStore, MemcachedCluster, StoreResult
from repro.sim.rng import make_rng
from repro.units import KB, MB
from repro.workloads import WorkloadGenerator, WorkloadSpec
from repro.workloads.traces import replay


class TestNodeFailureMidTraffic:
    def run_with_failure(self, kill_at: int, nodes: int = 6):
        cluster = MemcachedCluster(
            [f"mc{i}" for i in range(nodes)], memory_per_node_bytes=8 * MB
        )
        generator = WorkloadGenerator(
            WorkloadSpec(name="fail", get_fraction=0.9, key_population=3_000),
            seed=11,
        )
        hits = misses = 0
        for index, request in enumerate(generator.stream(6_000)):
            if index == kill_at:
                victim = sorted(cluster.node_names)[0]
                cluster.kill_node(victim)
            if request.verb == "GET":
                if cluster.get(request.key) is not None:
                    hits += 1
                else:
                    misses += 1
                    cluster.set(request.key, b"x" * request.value_bytes)
            else:
                cluster.set(request.key, b"x" * request.value_bytes)
        return cluster, hits / max(1, hits + misses)

    def test_cluster_survives_node_death(self):
        cluster, hit_rate = self.run_with_failure(kill_at=3_000)
        assert 0.3 < hit_rate < 1.0
        for store in cluster.stores.values():
            store.check_invariants()

    def test_node_death_dents_hit_rate(self):
        _cluster, with_failure = self.run_with_failure(kill_at=3_000)
        _cluster2, without_failure = self.run_with_failure(kill_at=10**9)
        assert with_failure < without_failure

    def test_cache_refills_after_failure(self):
        cluster, _ = self.run_with_failure(kill_at=1_000)
        # After the failure, surviving + refilled nodes hold data again.
        assert cluster.item_count() > 1_000

    def test_cascading_failures_leave_last_node_serving(self):
        cluster = MemcachedCluster(
            [f"mc{i}" for i in range(4)], memory_per_node_bytes=4 * MB
        )
        for i in range(200):
            cluster.set(b"key-%d" % i, b"v")
        for victim in ["mc0", "mc1", "mc2"]:
            cluster.kill_node(victim)
            cluster.set(b"probe-after-" + victim.encode(), b"v")
        assert cluster.node_names == ["mc3"]
        assert cluster.get(b"probe-after-mc2") is not None


class TestMemoryPressureFailure:
    def test_slab_class_starvation_degrades_not_crashes(self):
        # Fill the budget with small items, then demand huge ones: the
        # big class cannot get pages, so sets fail with SERVER_ERROR
        # semantics while small traffic keeps working.
        store = KVStore(2 * MB)
        for i in range(20_000):
            store.set(b"small-%d" % i, b"x" * 40)
        result = store.set(b"huge", b"x" * 900 * KB)
        assert result is StoreResult.OUT_OF_MEMORY
        assert store.set(b"small-again", b"y" * 40) is StoreResult.STORED
        store.check_invariants()

    def test_failed_set_preserves_old_value(self):
        store = KVStore(2 * MB)
        # The victim shares a slab class with the filler items (same
        # total size bucket), so storing it succeeds via LRU eviction.
        store.set(b"victim", b"o" * 45)
        for i in range(20_000):
            store.set(b"small-%d" % i, b"x" * 40)
            store.get(b"victim")  # keep it hot through the churn
        assert store.get(b"victim") is not None
        # An oversize overwrite fails (its class can get no pages) and
        # must leave the old value untouched.
        result = store.set(b"victim", b"x" * 900 * KB)
        assert result is StoreResult.OUT_OF_MEMORY
        assert store.get(b"victim").value == b"o" * 45

    def test_eviction_storm_under_replay(self):
        # A store 100x smaller than its working set must churn violently
        # yet stay consistent.
        from repro.workloads.distributions import fixed_size

        store = KVStore(1 * MB)
        generator = WorkloadGenerator(
            WorkloadSpec(
                name="storm",
                get_fraction=0.5,
                key_population=50_000,
                value_sizes=fixed_size(2048),
            ),
            seed=13,
        )
        stats = replay(generator.stream(4_000), store)
        assert store.stats.evictions > 100
        assert stats.hit_rate < 0.6
        store.check_invariants()


class TestRingChurnConsistency:
    def test_add_remove_storm_keeps_routing_total(self):
        cluster = MemcachedCluster(["a", "b"], memory_per_node_bytes=2 * MB)
        rng = make_rng("churn", 1)
        next_id = 0
        for _round in range(30):
            if rng.random() < 0.5 and len(cluster.node_names) < 10:
                cluster.add_node(f"n{next_id}", 2 * MB)
                next_id += 1
            elif len(cluster.node_names) > 1:
                cluster.kill_node(rng.choice(cluster.node_names))
            # Routing must stay total and consistent after every change.
            for i in range(50):
                key = b"key-%d" % i
                assert cluster.node_for(key) in cluster.stores
                assert cluster.node_for(key) == cluster.node_for(key)

    def test_no_operation_raises_unexpectedly_under_churn(self):
        cluster = MemcachedCluster(["a", "b", "c"], memory_per_node_bytes=2 * MB)
        rng = make_rng("churn-ops", 2)
        for step in range(500):
            key = b"key-%d" % rng.randrange(200)
            try:
                action = rng.random()
                if action < 0.45:
                    cluster.set(key, b"x" * rng.randrange(1, 2000))
                elif action < 0.9:
                    cluster.get(key)
                elif action < 0.95 and len(cluster.node_names) > 1:
                    cluster.kill_node(cluster.node_names[0])
                elif len(cluster.node_names) < 8:
                    cluster.add_node(f"new-{step}", 2 * MB)
            except ReproError as error:  # pragma: no cover
                pytest.fail(f"operation raised under churn: {error}")
