"""Failure injection: the system under scheduled faults and pressure.

Memcached's failure model is brutal and simple — a dead node loses its
data (§2.3: "data will be removed from your cache if a server goes
down") — and the slab allocator's failure mode is class starvation.
These tests replay declarative :mod:`repro.faults` schedules against the
cluster and the resilient client mid-traffic, and assert the system
degrades the way production Memcached does: a hit-rate dip that recovers
after the cold restart, never corruption, never a crash.
"""

import pytest

from repro.errors import ReproError
from repro.faults import FaultInjector, FaultSchedule, crash_restart
from repro.faults.resilience import ResiliencePolicy
from repro.kvstore import KVStore, MemcachedCluster, StoreResult
from repro.kvstore.client import FaultyNetwork, ResilientClient
from repro.sim.rng import make_rng
from repro.units import KB, MB
from repro.workloads import WorkloadGenerator, WorkloadSpec
from repro.workloads.traces import replay


class TestScheduledFaultsEndToEnd:
    """A FaultSchedule replayed against the cluster with a logical clock."""

    DT = 1e-3  # one request per simulated millisecond
    REQUESTS = 6_000
    WINDOWS = 12

    def run_schedule(self, schedule: FaultSchedule | None, nodes: int = 6):
        """Replay traffic under ``schedule``; returns per-window hit rates."""
        cluster = MemcachedCluster(
            [f"mc{i}" for i in range(nodes)], memory_per_node_bytes=8 * MB
        )
        injector = (
            FaultInjector(schedule, seed=11) if schedule is not None else None
        )
        generator = WorkloadGenerator(
            WorkloadSpec(name="fail", get_fraction=0.9, key_population=3_000),
            seed=11,
        )
        per_window = self.REQUESTS // self.WINDOWS
        window_rates: list[float] = []
        hits = misses = 0
        for index, request in enumerate(generator.stream(self.REQUESTS)):
            if injector is not None:
                injector.apply_until(
                    index * self.DT,
                    on_crash=cluster.crash_node,
                    on_restart=cluster.restart_node,
                )
            if request.verb == "GET":
                if cluster.get(request.key) is not None:
                    hits += 1
                else:
                    misses += 1
                    # Cache-aside refill: the app re-fetches from its DB.
                    cluster.set(request.key, b"x" * request.value_bytes)
            else:
                cluster.set(request.key, b"x" * request.value_bytes)
            if (index + 1) % per_window == 0:
                window_rates.append(hits / max(1, hits + misses))
                hits = misses = 0
        return cluster, injector, window_rates

    def schedule_for(self, crash_at: float, restart_at: float) -> FaultSchedule:
        return crash_restart("mc0", crash_at, restart_at)

    def test_crash_mid_warmup_recovers(self):
        """A node dying while the cache is still filling is absorbed:
        the run completes warm and the injector state is clean."""
        horizon = self.REQUESTS * self.DT
        schedule = self.schedule_for(0.3 * horizon, 0.5 * horizon)
        cluster, injector, rates = self.run_schedule(schedule)
        assert injector.crashes == 1 and injector.restarts == 1
        assert not injector.degraded
        assert cluster.node_is_down("mc0") is False
        assert rates[-1] > 0.5  # warm again by the end
        for store in cluster.stores.values():
            store.check_invariants()

    def test_hit_rate_dips_then_recovers_after_restart(self):
        """The §2.3 failure story, end to end: crash dents the hit rate,
        the cold restart refills, and the final windows are back within
        5% of a fault-free run of the same seeded traffic."""
        horizon = self.REQUESTS * self.DT
        schedule = self.schedule_for(0.4 * horizon, 0.6 * horizon)
        _cluster, _injector, faulted = self.run_schedule(schedule)
        _base_cluster, _none, baseline = self.run_schedule(None)
        crash_window = int(0.4 * self.WINDOWS)
        outage_min = min(faulted[crash_window : crash_window + 3])
        assert outage_min < baseline[crash_window] - 0.02, (
            "the crash should visibly dent the hit rate"
        )
        assert faulted[-1] >= baseline[-1] * 0.95, (
            f"post-restart hit rate {faulted[-1]:.3f} never returned to "
            f"within 5% of the fault-free run's {baseline[-1]:.3f}"
        )

    def test_dead_node_takes_no_traffic_while_down(self):
        """With rebalancing, the ring absorbs the dead node's arcs: no
        request fails and the dead store sees zero reads while down."""
        horizon = self.REQUESTS * self.DT
        schedule = self.schedule_for(0.4 * horizon, 0.8 * horizon)
        cluster, injector, _rates = self.run_schedule(schedule)
        assert cluster.failed_gets == 0 and cluster.failed_sets == 0
        # The crash flushed the store; every item it now holds arrived
        # after the restart (its post-crash get counter started at 0).
        assert injector.crashes == 1

    def test_cascading_failures_leave_last_node_serving(self):
        cluster = MemcachedCluster(
            [f"mc{i}" for i in range(4)], memory_per_node_bytes=4 * MB
        )
        for i in range(200):
            cluster.set(b"key-%d" % i, b"v")
        for victim in ["mc0", "mc1", "mc2"]:
            cluster.kill_node(victim)
            cluster.set(b"probe-after-" + victim.encode(), b"v")
        assert cluster.node_names == ["mc3"]
        assert cluster.get(b"probe-after-mc2") is not None

    def test_two_runs_are_bit_identical(self):
        """Same schedule + seed -> identical window rates and counters."""
        horizon = self.REQUESTS * self.DT
        schedule = self.schedule_for(0.4 * horizon, 0.6 * horizon)
        first = self.run_schedule(schedule)
        second = self.run_schedule(schedule)
        assert first[2] == second[2]
        assert first[0].hit_rate() == second[0].hit_rate()
        assert first[0].item_count() == second[0].item_count()


class TestResilientClientUnderFaults:
    """The client-side story: retries, failover, readmission, recovery."""

    def build(self, policy: ResiliencePolicy, seed: int = 5):
        network = FaultyNetwork(seed=seed)
        client = ResilientClient(
            [f"mc{i}" for i in range(4)],
            memory_per_node_bytes=4 * MB,
            policy=policy,
            network=network,
            seed=seed,
        )
        return client, network

    def test_client_survives_crash_and_recovers_hit_rate(self):
        policy = ResiliencePolicy(
            failover_after=2, health_check_interval_s=0.05
        )
        client, network = self.build(policy)
        keys = [b"key-%d" % i for i in range(300)]
        for key in keys:
            assert client.set(key, b"v")
        victim = client.node_for(keys[0])
        # Crash: the node stops answering and (§2.3) loses its data.
        network.crash(victim)
        client._stores[victim].flush_all()
        for key in keys:
            if client.get(key) is None:
                client.set(key, b"v")  # cache-aside refill
        assert client.failovers >= 1 and victim not in client.ring.nodes
        # Restart; the next health check readmits the node cold.
        network.restart(victim)
        client.clock_s += policy.health_check_interval_s
        refilled = 0
        for key in keys:
            if client.get(key) is None:
                client.set(key, b"v")
            else:
                refilled += 1
        assert client.readmissions == 1 and victim in client.ring.nodes
        # One more pass is fully warm: every key hits.
        assert all(client.get(key) is not None for key in keys)
        assert client.giveups == 0

    def test_loss_window_is_absorbed_by_retries(self):
        policy = ResiliencePolicy(max_retries=9, failover_after=None)
        client, network = self.build(policy)
        keys = [b"key-%d" % i for i in range(200)]
        for key in keys:
            assert client.set(key, b"v")
        network.set_loss(0.2)
        hits = sum(1 for key in keys if client.get(key) is not None)
        network.set_loss(0.0)
        # 20% loss with 9 retries: losing all 10 attempts needs a run of
        # 10 consecutive drops; this seed's longest run is 7.
        assert hits == len(keys)
        assert client.retries > 0 and client.giveups == 0

    def test_no_resilience_turns_faults_into_misses(self):
        from repro.faults.resilience import NO_RESILIENCE

        client, network = self.build(NO_RESILIENCE)
        keys = [b"key-%d" % i for i in range(200)]
        for key in keys:
            client.set(key, b"v")
        network.set_loss(0.3)
        hits = sum(1 for key in keys if client.get(key) is not None)
        assert hits < len(keys)
        assert client.giveups > 0 and client.retries == 0


class TestMemoryPressureFailure:
    def test_slab_class_starvation_degrades_not_crashes(self):
        # Fill the budget with small items, then demand huge ones: the
        # big class cannot get pages, so sets fail with SERVER_ERROR
        # semantics while small traffic keeps working.
        store = KVStore(2 * MB)
        for i in range(20_000):
            store.set(b"small-%d" % i, b"x" * 40)
        result = store.set(b"huge", b"x" * 900 * KB)
        assert result is StoreResult.OUT_OF_MEMORY
        assert store.set(b"small-again", b"y" * 40) is StoreResult.STORED
        store.check_invariants()

    def test_failed_set_preserves_old_value(self):
        store = KVStore(2 * MB)
        # The victim shares a slab class with the filler items (same
        # total size bucket), so storing it succeeds via LRU eviction.
        store.set(b"victim", b"o" * 45)
        for i in range(20_000):
            store.set(b"small-%d" % i, b"x" * 40)
            store.get(b"victim")  # keep it hot through the churn
        assert store.get(b"victim") is not None
        # An oversize overwrite fails (its class can get no pages) and
        # must leave the old value untouched.
        result = store.set(b"victim", b"x" * 900 * KB)
        assert result is StoreResult.OUT_OF_MEMORY
        assert store.get(b"victim").value == b"o" * 45

    def test_eviction_storm_under_replay(self):
        # A store 100x smaller than its working set must churn violently
        # yet stay consistent.
        from repro.workloads.distributions import fixed_size

        store = KVStore(1 * MB)
        generator = WorkloadGenerator(
            WorkloadSpec(
                name="storm",
                get_fraction=0.5,
                key_population=50_000,
                value_sizes=fixed_size(2048),
            ),
            seed=13,
        )
        stats = replay(generator.stream(4_000), store)
        assert store.stats.evictions > 100
        assert stats.hit_rate < 0.6
        store.check_invariants()


class TestRingChurnConsistency:
    def test_add_remove_storm_keeps_routing_total(self):
        cluster = MemcachedCluster(["a", "b"], memory_per_node_bytes=2 * MB)
        rng = make_rng("churn", 1)
        next_id = 0
        for _round in range(30):
            if rng.random() < 0.5 and len(cluster.node_names) < 10:
                cluster.add_node(f"n{next_id}", 2 * MB)
                next_id += 1
            elif len(cluster.node_names) > 1:
                cluster.kill_node(rng.choice(cluster.node_names))
            # Routing must stay total and consistent after every change.
            for i in range(50):
                key = b"key-%d" % i
                assert cluster.node_for(key) in cluster.stores
                assert cluster.node_for(key) == cluster.node_for(key)

    def test_no_operation_raises_unexpectedly_under_churn(self):
        cluster = MemcachedCluster(["a", "b", "c"], memory_per_node_bytes=2 * MB)
        rng = make_rng("churn-ops", 2)
        for step in range(500):
            key = b"key-%d" % rng.randrange(200)
            try:
                action = rng.random()
                if action < 0.45:
                    cluster.set(key, b"x" * rng.randrange(1, 2000))
                elif action < 0.9:
                    cluster.get(key)
                elif action < 0.95 and len(cluster.node_names) > 1:
                    cluster.kill_node(cluster.node_names[0])
                elif len(cluster.node_names) < 8:
                    cluster.add_node(f"new-{step}", 2 * MB)
            except ReproError as error:  # pragma: no cover
                pytest.fail(f"operation raised under churn: {error}")
