"""Causal span forest: propagation, tail sampling, determinism, invariants.

The full-system fixture runs the acceptance configuration once per
module: N=3 R=2 W=2 quorum replication under a crash-restart window with
hedged GETs enabled, causal tracing on.  The tests then check the
structural guarantees the tracing tentpole promises — every child span
nests inside its parent, every critical path sums to its trace's RTT,
fan-out/hedge/handoff are distinguishable from the pipeline stages, and
same-seed runs export bit-identical Perfetto files.
"""

from dataclasses import replace

import pytest

from repro.core import mercury_stack
from repro.faults import DEFAULT_RESILIENCE, FaultEvent, FaultSchedule
from repro.faults.resilience import ResiliencePolicy
from repro.kvstore.client import FaultyNetwork, ResilientClient
from repro.kvstore.server_loop import MemcachedServer
from repro.kvstore.store import KVStore
from repro.network.nic import NicMac
from repro.replication.config import QuorumConfig, ReplicationConfig
from repro.replication.coordinator import ReplicationCoordinator
from repro.sim.full_system import FullSystemStack
from repro.sim.run_options import RunOptions
from repro.telemetry import (
    MetricsRegistry,
    TelemetrySession,
    Tracer,
    critical_path,
    prometheus_text,
    tail_attribution,
    trace_events_json,
)
from repro.telemetry.tracing import RESERVED_TRACE_KEYS
from repro.units import MB
from repro.workloads import WorkloadSpec
from repro.workloads.distributions import fixed_size

SCHEDULE = FaultSchedule(
    name="causal-crash-restart",
    events=(
        FaultEvent(kind="node_crash", at_s=0.1, node="core0"),
        FaultEvent(kind="node_restart", at_s=0.25, node="core0"),
    ),
)
WORKLOAD = WorkloadSpec(
    name="causal-demo",
    get_fraction=0.9,
    key_population=4_000,
    value_sizes=fixed_size(64),
)


def quorum_crash_run(seed=42, max_traces=100_000):
    telemetry = TelemetrySession(
        max_traces=max_traces, slo_deadline_s=1.1e-3, sampling_seed=seed
    )
    system = FullSystemStack(
        stack=mercury_stack(cores=4), memory_per_core_bytes=8 * MB, seed=seed
    )
    capacity = 4 * system.model.tps("GET", 64)
    results = system.run(
        WORKLOAD,
        RunOptions(
            offered_rate_hz=0.35 * capacity,
            duration_s=0.4,
            warmup_requests=4_000,
            fill_on_miss=True,
            faults=SCHEDULE,
            resilience=replace(DEFAULT_RESILIENCE, hedge_after_s=1e-4),
            replication=ReplicationConfig(n=3, r=2, w=2),
            telemetry=telemetry,
        ),
    )
    return results, telemetry


@pytest.fixture(scope="module")
def crash_run():
    return quorum_crash_run()


class TestReservedKeys:
    def test_attrs_cannot_shadow_schema_keys(self):
        tracer = Tracer(MetricsRegistry())
        trace = tracer.begin(0.0, verb="GET", spans="sneaky", rtt_s="bogus")
        trace.add_span("queue", 0.0, 1e-5)
        trace.finish(1e-5)
        record = trace.to_dict()
        # The reserved keys keep their schema meaning...
        assert RESERVED_TRACE_KEYS <= set(record)
        assert isinstance(record["spans"], list)
        assert record["rtt_s"] == pytest.approx(1e-5)
        # ...while the user attrs survive, namespaced.
        assert record["attrs"]["spans"] == "sneaky"
        assert record["attrs"]["rtt_s"] == "bogus"
        assert record["attrs"]["verb"] == "GET"


class TestTracerCounters:
    def test_counters_and_help_lines(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry, max_traces=2)
        for i in range(5):
            trace = tracer.begin(float(i))
            trace.add_span("queue", float(i), 1e-5)
            trace.finish(i + 1e-5)
            tracer.commit(trace)
        assert registry.counter("tracer_committed_total").value == 5
        assert registry.counter("tracer_dropped_traces_total").value == 3
        assert registry.counter("tracer_sampled_total").value >= 2
        text = prometheus_text(registry)
        assert "# HELP tracer_committed_total" in text
        assert "# HELP tracer_dropped_traces_total" in text
        assert "# HELP tracer_sampled_total" in text


class TestTailSampling:
    def commit_one(self, tracer, index, rtt, error=False):
        trace = tracer.begin(float(index))
        trace.add_span("queue", float(index), rtt)
        if error:
            trace.annotate(error="gave_up")
        trace.finish(index + rtt)
        tracer.commit(trace)
        return trace

    def test_every_slo_violator_is_retained_within_the_cap(self):
        tracer = Tracer(
            MetricsRegistry(), max_traces=40, slo_deadline_s=1e-3, sampling_seed=7
        )
        violators = set()
        for i in range(200):
            slow = i % 7 == 0
            trace = self.commit_one(tracer, i, rtt=2e-3 if slow else 1e-4)
            if slow:
                violators.add(trace.request_id)
        retained = {trace.request_id for trace in tracer.traces}
        assert violators <= retained  # 100% of violators kept
        assert len(tracer.traces) == 40  # cap honored (keepers < cap)
        assert tracer.slo_violations == len(violators)
        assert tracer.dropped_traces == 200 - 40

    def test_error_traces_are_keepers(self):
        tracer = Tracer(MetricsRegistry(), max_traces=2, sampling_seed=0)
        errored = self.commit_one(tracer, 0, rtt=1e-5, error=True)
        for i in range(1, 50):
            self.commit_one(tracer, i, rtt=1e-5)
        assert errored in tracer.traces

    def test_cap_yields_when_violators_exceed_it(self):
        tracer = Tracer(
            MetricsRegistry(), max_traces=10, slo_deadline_s=1e-3, sampling_seed=0
        )
        for i in range(30):
            self.commit_one(tracer, i, rtt=2e-3)
        assert len(tracer.traces) == 30  # evidence beats the cap

    def test_same_seed_same_sample(self):
        def retained_ids(seed):
            tracer = Tracer(MetricsRegistry(), max_traces=20, sampling_seed=seed)
            for i in range(100):
                self.commit_one(tracer, i, rtt=1e-4)
            return [trace.request_id for trace in tracer.traces]

        assert retained_ids(5) == retained_ids(5)
        assert retained_ids(5) != retained_ids(6)


class TestFullSystemDeterminism:
    def test_same_seed_runs_export_identical_bytes(self):
        _, first = quorum_crash_run(max_traces=300)
        _, second = quorum_crash_run(max_traces=300)
        assert trace_events_json(first.tracer) == trace_events_json(second.tracer)
        assert [t.request_id for t in first.tracer.traces] == [
            t.request_id for t in second.tracer.traces
        ]


class TestStructuralInvariants:
    EPS = 1e-9

    def test_children_nest_within_parents(self, crash_run):
        _, telemetry = crash_run
        for trace in telemetry.tracer.traces:
            by_id = {span.span_id: span for span in trace.spans}
            for span in trace.spans:
                if span.parent_id is None:
                    continue
                parent = by_id[span.parent_id]
                assert span.start_s >= parent.start_s - self.EPS
                assert span.end_s <= parent.end_s + self.EPS

    def test_critical_path_sums_to_rtt_for_every_trace(self, crash_run):
        _, telemetry = crash_run
        checked = 0
        for trace in telemetry.tracer.traces:
            if trace.end_s is None:
                continue
            total = sum(seg.duration_s for seg in critical_path(trace))
            assert total == pytest.approx(trace.rtt_s, rel=1e-9, abs=1e-12)
            checked += 1
        assert checked > 1_000

    def test_tail_attribution_distinguishes_fanout_from_pipeline(self, crash_run):
        results, telemetry = crash_run
        tracer = telemetry.tracer
        assert results.hedges > 0 and results.hints_replayed > 0
        # Run-wide aggregates see every causal flavor...
        for component in ("hedge", "hedge_wait", "replica_put",
                          "handoff_replay", "queue", "memcached"):
            assert component in tracer.component_seconds, component
        # ...and the p99.9 cohort attributes tail RTT to branch-qualified
        # replica fan-out, not just the PR 1 pipeline stages.
        table = tail_attribution(tracer.traces)
        tail = table.shares[0.999]
        assert any(
            name.startswith("replica_put.") and share > 0
            for name, share in tail.items()
        )
        assert sum(tail.values()) == pytest.approx(1.0)

    def test_background_work_is_follow_from_not_nested(self, crash_run):
        _, telemetry = crash_run
        follow_names = {span.name for span in telemetry.tracer.follow_spans}
        assert "handoff_replay" in follow_names
        assert "antientropy" in follow_names
        linked = [
            span
            for span in telemetry.tracer.follow_spans
            if span.name == "handoff_replay"
        ]
        # Hint replay carries the originating write's trace id.
        assert linked and all(span.follows_from is not None for span in linked)


class TestClientPropagation:
    def make_client(self, policy=None, telemetry=None, nodes=("a", "b", "c")):
        return ResilientClient(
            list(nodes),
            memory_per_node_bytes=1 * MB,
            policy=policy or ResiliencePolicy(),
            network=FaultyNetwork(seed=1),
            telemetry=telemetry or TelemetrySession(),
        )

    def key_owned_by(self, client, node):
        for i in range(10_000):
            key = b"key-%d" % i
            if client.node_for(key) == node:
                return key
        raise AssertionError(f"no key maps to {node}")

    def test_get_and_set_commit_causal_traces(self):
        telemetry = TelemetrySession()
        client = self.make_client(telemetry=telemetry)
        key = b"hello"
        assert client.set(key, b"world")
        assert client.get(key).value == b"world"
        traces = telemetry.tracer.traces
        assert [t.attrs["verb"] for t in traces] == ["SET", "GET"]
        get_trace = traces[1]
        assert get_trace.attrs["hit"] is True
        spans = get_trace.spans
        assert [s.name for s in spans] == ["rpc"]
        assert spans[0].node == client.node_for(key)
        assert spans[0].duration_s == pytest.approx(client.network.latency_s)

    def test_hedge_attempt_spans_are_distinguishable_siblings(self):
        telemetry = TelemetrySession()
        client = self.make_client(
            policy=ResiliencePolicy(hedge_after_s=1e-4), telemetry=telemetry
        )
        key = self.key_owned_by(client, "a")
        client.set(key, b"v")  # stored while the primary is healthy
        client.network.crash("a")
        client.get(key)  # first attempt times out, the hedge races a sibling
        get_trace = telemetry.tracer.traces[-1]
        names = [s.name for s in get_trace.spans]
        assert "rpc_timeout" in names  # the primary attempt
        assert "hedge_rpc" in names  # the hedge, a sibling span
        hedge_span = next(s for s in get_trace.spans if s.name == "hedge_rpc")
        assert hedge_span.node != "a"
        assert hedge_span.parent_id is None  # sibling of the primary rpc

    def test_giveup_annotates_error_so_sampling_keeps_it(self):
        telemetry = TelemetrySession()
        client = self.make_client(telemetry=telemetry, nodes=("solo",))
        client.network.crash("solo")
        assert client.get(b"k") is None
        trace = telemetry.tracer.traces[-1]
        assert trace.attrs["error"] == "gave_up"
        assert telemetry.tracer.is_keeper(trace)


class TestCoordinatorPropagation:
    def test_put_and_get_emit_per_replica_spans(self):
        coordinator = ReplicationCoordinator(
            ["a", "b", "c"], memory_per_node_bytes=1 * MB,
            quorum=QuorumConfig(n=3, r=2, w=2),
        )
        tracer = Tracer(MetricsRegistry())
        put_trace = tracer.begin(0.0, verb="PUT")
        outcome = coordinator.put(b"k", b"v", trace=put_trace, now_s=0.0)
        assert outcome.ok
        put_nodes = [s.node for s in put_trace.spans if s.name == "replica_put"]
        assert sorted(put_nodes) == sorted(outcome.replicas)
        get_trace = tracer.begin(1.0, verb="GET")
        assert coordinator.get(b"k", trace=get_trace, now_s=1.0) is not None
        reads = [s for s in get_trace.spans if s.name == "replica_read"]
        assert len(reads) == 2  # R=2 fan-out
        assert all(s.kind == "server" for s in reads)

    def test_down_replica_put_emits_hint_span_with_trace_link(self):
        coordinator = ReplicationCoordinator(
            ["a", "b", "c"], memory_per_node_bytes=1 * MB,
            quorum=QuorumConfig(n=3, r=2, w=2),
        )
        tracer = Tracer(MetricsRegistry())
        trace = tracer.begin(0.0, verb="PUT")
        down = coordinator.replicas_for(b"k")[0]
        coordinator.crash_node(down)
        coordinator.put(b"k", b"v", trace=trace, now_s=0.0)
        hints = [s for s in trace.spans if s.name == "replica_hint"]
        assert [s.node for s in hints] == [down]
        parked = coordinator.hints.drain(down)
        assert parked[0].trace_id == trace.request_id


class TestEdgeHooks:
    def test_nic_annotates_drop_reason(self):
        mac = NicMac(buffer_bytes=100)
        mac.bind(11211, core_id=0)
        tracer = Tracer(MetricsRegistry())
        trace = tracer.begin(0.0)
        assert mac.enqueue(11211, 90, trace=trace)
        assert not mac.enqueue(11211, 90, trace=trace)
        assert trace.attrs["nic_drop"] == "buffer_full"

    def test_server_loop_emits_execute_span(self):
        server = MemcachedServer(KVStore(1 * MB))
        connection = server.connect()
        tracer = Tracer(MetricsRegistry())
        trace = tracer.begin(0.0)
        reply = connection.feed(b"set k 0 0 1\r\nv\r\n", trace=trace)
        assert reply == b"STORED\r\n"
        assert [s.name for s in trace.spans] == ["server_execute"]
        assert trace.spans[0].kind == "server"
