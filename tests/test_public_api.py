"""The README's public API surface must keep working as documented."""

import pytest

import repro
from repro import (
    MEMCACHED_BAGS,
    OperatingPoint,
    ServerDesign,
    evaluate_server,
    iridium_stack,
    mercury_stack,
)


class TestTopLevelExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_quickstart_snippet(self):
        # The exact flow documented in the package docstring / README.
        server = ServerDesign(stack=mercury_stack(cores=32))
        metrics = evaluate_server(server)
        assert metrics.tps / 1e6 > 30
        assert metrics.ktps_per_watt > 50

    def test_headline_comparison_flow(self):
        mercury = evaluate_server(ServerDesign(stack=mercury_stack(32)))
        iridium = evaluate_server(ServerDesign(stack=iridium_stack(32)))
        bags = MEMCACHED_BAGS
        assert mercury.tps / bags.tps == pytest.approx(10, rel=0.35)
        assert iridium.density_gb / bags.memory_gb == pytest.approx(14.8, rel=0.1)

    def test_operating_point_customisation(self):
        server = ServerDesign(stack=mercury_stack(cores=8))
        photo_point = OperatingPoint(verb="GET", value_bytes=64 * 1024)
        metrics = evaluate_server(server, photo_point)
        assert metrics.tps > 0
        assert metrics.bandwidth_bytes_s == pytest.approx(metrics.tps * 64 * 1024)
