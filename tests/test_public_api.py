"""The README's public API surface must keep working as documented."""

import pytest

import repro
from repro import (
    MEMCACHED_BAGS,
    OperatingPoint,
    ServerDesign,
    evaluate_server,
    iridium_stack,
    mercury_stack,
)


class TestTopLevelExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_quickstart_snippet(self):
        # The exact flow documented in the package docstring / README.
        server = ServerDesign(stack=mercury_stack(cores=32))
        metrics = evaluate_server(server)
        assert metrics.tps / 1e6 > 30
        assert metrics.ktps_per_watt > 50

    def test_headline_comparison_flow(self):
        mercury = evaluate_server(ServerDesign(stack=mercury_stack(32)))
        iridium = evaluate_server(ServerDesign(stack=iridium_stack(32)))
        bags = MEMCACHED_BAGS
        assert mercury.tps / bags.tps == pytest.approx(10, rel=0.35)
        assert iridium.density_gb / bags.memory_gb == pytest.approx(14.8, rel=0.1)

    def test_operating_point_customisation(self):
        server = ServerDesign(stack=mercury_stack(cores=8))
        photo_point = OperatingPoint(verb="GET", value_bytes=64 * 1024)
        metrics = evaluate_server(server, photo_point)
        assert metrics.tps > 0
        assert metrics.bandwidth_bytes_s == pytest.approx(metrics.tps * 64 * 1024)


class TestReplicationExports:
    """PR 3's lazy (PEP 562) replication exports and cycle freedom."""

    LAZY_NAMES = [
        "QuorumConfig",
        "ReplicationConfig",
        "ReplicationCoordinator",
        "ReplicaPlacement",
        "HintQueue",
        "AntiEntropySweeper",
    ]

    def test_lazy_exports_resolve_and_are_listed(self):
        for name in self.LAZY_NAMES:
            assert name in repro.__all__, name
            assert getattr(repro, name) is not None, name

    def test_sim_reexports_replication_config(self):
        import repro.sim

        assert repro.sim.ReplicationConfig is repro.ReplicationConfig
        assert "ReplicationConfig" in repro.sim.__all__

    def test_unknown_attribute_still_raises(self):
        import repro.sim

        with pytest.raises(AttributeError):
            repro.no_such_symbol  # noqa: B018
        with pytest.raises(AttributeError):
            repro.sim.no_such_symbol  # noqa: B018

    def test_fresh_import_is_cycle_free(self):
        """Regression for the kvstore.client <-> replication cycle: a
        fresh interpreter must import every entry point in any order."""
        import subprocess
        import sys

        scripts = [
            "import repro; import repro.kvstore.client; import repro.replication",
            "import repro.replication; import repro.kvstore.client; import repro",
            "import repro.kvstore.client; from repro import ReplicationCoordinator",
            "from repro.sim import FullSystemStack, ReplicationConfig",
        ]
        for script in scripts:
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
            )
            assert proc.returncode == 0, f"{script!r} failed:\n{proc.stderr}"
