"""The experiment runner: spec-order merging, bit-identity, caching."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.exp import (
    ExperimentSpec,
    GridSpec,
    ResultCache,
    StackSpec,
    design_point_grid,
    get_scenario,
    run_experiments,
)
from repro.telemetry import MetricsRegistry
from repro.units import MB


def small_fig7_grid() -> list[ExperimentSpec]:
    return design_point_grid(
        cores_per_stack=(2, 4, 8), core_models=("A7@1GHz", "A15@1GHz")
    ).expand()


def _dumps(report):
    return [json.dumps(result, sort_keys=True) for result in report.results]


class TestSerialRunner:
    def test_results_arrive_in_spec_order(self):
        specs = small_fig7_grid()
        report = run_experiments(specs)
        assert report.jobs == 12
        for spec, result in zip(report.specs, report.results):
            assert result["cores"] == spec.stack.cores * 94 or result["cores"] > 0
            assert result["name"].lower().startswith(spec.stack.family)

    def test_progress_callback_sees_every_job(self):
        specs = small_fig7_grid()
        seen = []
        run_experiments(
            specs,
            progress=lambda index, total, spec, status: seen.append(
                (index, total, status)
            ),
        )
        assert sorted(index for index, _t, _s in seen) == list(range(12))
        assert all(status == "executed" for _i, _t, status in seen)

    def test_negative_parallel_rejected(self):
        with pytest.raises(ConfigurationError):
            run_experiments(small_fig7_grid(), parallel=-1)


class TestParallelBitIdentity:
    def test_parallel_matches_serial_on_fig7_grid(self):
        specs = small_fig7_grid()
        serial = run_experiments(specs)
        fanned = run_experiments(specs, parallel=3)
        assert _dumps(fanned) == _dumps(serial)

    @pytest.mark.slow
    def test_parallel_matches_serial_on_full_system_grid(self):
        base = get_scenario("baseline").to_spec(
            StackSpec(cores=2, memory_per_core_bytes=4 * MB),
            offered_rate_hz=5e3,
            duration_s=0.1,
            seed=5,
            warmup_requests=500,
        )
        grid = GridSpec(
            name="fs",
            base=base,
            axes=(("options.offered_rate_hz", (4e3, 8e3)),),
        )
        specs = grid.expand()
        serial = run_experiments(specs)
        fanned = run_experiments(specs, parallel=2)
        assert _dumps(fanned) == _dumps(serial)
        assert all(r["completed"] > 0 for r in serial.results)


class TestCachedRuns:
    def test_rerun_executes_nothing(self, tmp_path):
        specs = small_fig7_grid()
        cache = ResultCache(tmp_path)
        first = run_experiments(specs, cache=cache)
        assert first.cache_hits == 0
        assert first.executed == len(specs)
        second = run_experiments(specs, cache=cache)
        assert second.executed == 0
        assert second.cache_hits == len(specs)
        assert second.hit_rate == 1.0
        assert _dumps(second) == _dumps(first)

    def test_partial_hits_execute_only_the_new_cells(self, tmp_path):
        cache = ResultCache(tmp_path)
        narrow = design_point_grid(
            cores_per_stack=(2, 4), core_models=("A7@1GHz",)
        ).expand()
        run_experiments(narrow, cache=cache)
        wide = design_point_grid(
            cores_per_stack=(2, 4, 8), core_models=("A7@1GHz",)
        ).expand()
        report = run_experiments(wide, cache=cache)
        assert report.cache_hits == 4  # two families x two cached counts
        assert report.executed == 2

    def test_field_change_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = ExperimentSpec(kind="design_point", stack=StackSpec(cores=4))
        run_experiments([spec], cache=cache)
        changed = ExperimentSpec(
            kind="design_point", stack=StackSpec(cores=4), verb="PUT"
        )
        report = run_experiments([changed], cache=cache)
        assert report.cache_hits == 0
        assert report.executed == 1

    def test_telemetry_counters_flow(self, tmp_path):
        registry = MetricsRegistry()
        cache = ResultCache(tmp_path)
        specs = small_fig7_grid()
        run_experiments(specs, cache=cache, registry=registry)
        run_experiments(specs, cache=cache, registry=registry)
        assert registry.counter("exp_jobs_total").value == 24
        assert registry.counter("exp_cache_misses_total").value == 12
        assert registry.counter("exp_cache_hits_total").value == 12
        assert registry.counter("exp_jobs_executed_total").value == 12
        assert registry.histogram("exp_job_wall_seconds").count == 12

    def test_report_stats_and_labels(self, tmp_path):
        specs = small_fig7_grid()
        report = run_experiments(specs, cache=ResultCache(tmp_path))
        stats = report.stats()
        assert stats["jobs"] == 12
        assert stats["cache_misses"] == 12
        rows = report.labelled_results()
        assert all(row["label"].startswith("fig7[") for row in rows)
