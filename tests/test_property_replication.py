"""Property-based tests for replica placement and the quorum coordinator.

Replication correctness rests on placement invariants that must hold for
*every* membership, not just the example clusters in the unit tests:
the preferred list always has N distinct physical nodes, membership
churn elsewhere on the ring never disturbs an unrelated key's replica
set beyond consistent hashing's monotonicity guarantee, and the
stack-skip rule keeps replicas in distinct failure domains whenever
enough stacks exist.  A final test pins the coordinator's determinism:
the same operation script against the same membership produces
bit-identical state, which the full-system acceptance test relies on.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kvstore.consistent_hash import ConsistentHashRing
from repro.replication.config import QuorumConfig
from repro.replication.coordinator import ReplicationCoordinator
from repro.replication.placement import ReplicaPlacement
from repro.units import MB

#: ``stack<i>:core<j>`` node names — the stack prefix is the failure
#: domain the placement skip rule operates on.
stacked_nodes = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=0, max_value=3),
    ),
    min_size=3,
    max_size=16,
    unique=True,
).map(lambda pairs: [f"stack{s}:core{c}" for s, c in pairs])

replica_keys = st.lists(
    st.lists(st.integers(min_value=33, max_value=126), min_size=1, max_size=24).map(
        bytes
    ),
    min_size=1,
    max_size=50,
    unique=True,
)

replica_counts = st.integers(min_value=1, max_value=3)


class TestPlacementProperties:
    @given(nodes=stacked_nodes, key_list=replica_keys, n=replica_counts)
    @settings(max_examples=100, deadline=None)
    def test_preferred_list_always_has_n_distinct_nodes(self, nodes, key_list, n):
        placement = ReplicaPlacement(ConsistentHashRing(nodes, vnodes=32), n=n)
        for key in key_list:
            replicas = placement.replicas_for(key)
            assert len(replicas) == min(n, len(nodes))
            assert len(set(replicas)) == len(replicas)
            assert set(replicas) <= set(nodes)

    @given(nodes=stacked_nodes, key_list=replica_keys, n=replica_counts)
    @settings(max_examples=100, deadline=None)
    def test_removing_an_unselected_node_leaves_the_set_unchanged(
        self, nodes, key_list, n
    ):
        """Stability: membership churn outside a key's replica set must
        not reshuffle that key's replicas."""
        ring = ConsistentHashRing(nodes, vnodes=32)
        placement = ReplicaPlacement(ring, n=n)
        before = {key: placement.replicas_for(key) for key in key_list}
        unselected = set(nodes) - {r for reps in before.values() for r in reps}
        if not unselected or len(nodes) - 1 < n:
            return  # every node is someone's replica; nothing to remove
        victim = sorted(unselected)[0]
        ring.remove_node(victim)
        for key in key_list:
            assert placement.replicas_for(key) == before[key]

    @given(nodes=stacked_nodes, key_list=replica_keys, n=replica_counts)
    @settings(max_examples=100, deadline=None)
    def test_adding_a_node_only_introduces_the_newcomer(self, nodes, key_list, n):
        """Monotonicity lifts to replica sets: after an add, a key's new
        preferred list draws only from the old list plus the newcomer."""
        ring = ConsistentHashRing(nodes, vnodes=32)
        placement = ReplicaPlacement(ring, n=n)
        before = {key: placement.replicas_for(key) for key in key_list}
        newcomer = "stack9:core9"
        ring.add_node(newcomer)
        for key in key_list:
            after = placement.replicas_for(key)
            assert set(after) <= set(before[key]) | {newcomer}

    @given(nodes=stacked_nodes, key_list=replica_keys, n=replica_counts)
    @settings(max_examples=100, deadline=None)
    def test_no_shared_stack_when_stacks_suffice(self, nodes, key_list, n):
        """The skip rule: replicas sit on distinct stacks whenever the
        cluster has at least N stacks."""
        stacks = {name.split(":", 1)[0] for name in nodes}
        if len(stacks) < n:
            return
        placement = ReplicaPlacement(ConsistentHashRing(nodes, vnodes=32), n=n)
        for key in key_list:
            chosen = placement.stacks_for(key)
            assert len(set(chosen)) == len(chosen)

    @given(nodes=stacked_nodes, key_list=replica_keys)
    @settings(max_examples=100, deadline=None)
    def test_exclusion_is_deterministic_and_avoids_excluded(self, nodes, key_list):
        placement = ReplicaPlacement(ConsistentHashRing(nodes, vnodes=32), n=2)
        excluded = {sorted(nodes)[0]}
        for key in key_list:
            first = placement.replicas_for(key, exclude=excluded)
            second = placement.replicas_for(key, exclude=excluded)
            assert first == second
            assert not set(first) & excluded


class TestCoordinatorDeterminism:
    #: (op, args) script exercising puts, a crash, writes-while-down
    #: (parked as hints), reads with repair, restart-with-replay, and a
    #: delete — every state transition the coordinator has.
    SCRIPT = [
        ("put", b"alpha", b"v1"),
        ("put", b"beta", b"v1"),
        ("crash", 0),
        ("put", b"alpha", b"v2"),
        ("put", b"gamma", b"v1"),
        ("get", b"alpha"),
        ("restart", 0),
        ("get", b"beta"),
        ("put", b"beta", b"v2"),
        ("delete", b"gamma"),
        ("get", b"alpha"),
    ]

    @staticmethod
    def _run_script(nodes):
        c = ReplicationCoordinator(
            list(nodes), memory_per_node_bytes=4 * MB, quorum=QuorumConfig(3, 2, 2)
        )
        trace = []
        for op, *args in TestCoordinatorDeterminism.SCRIPT:
            if op == "put":
                outcome = c.put(args[0], args[1])
                trace.append(("put", outcome.ok, outcome.acks, outcome.version))
            elif op == "get":
                item = c.get(args[0])
                trace.append(
                    ("get", None if item is None else (item.value, item.flags))
                )
            elif op == "crash":
                c.crash_node(sorted(c.node_names)[args[0]])
                trace.append(("crash", tuple(sorted(c.live_nodes))))
            elif op == "restart":
                replayed = c.restart_node(sorted(c.node_names)[args[0]])
                trace.append(("restart", replayed))
            elif op == "delete":
                trace.append(("delete", c.delete(args[0])))
        state = {
            name: [
                (item.key, item.value, item.flags)
                for item in store.items_live()
            ]
            for name, store in sorted(c.stores.items())
        }
        counters = (
            c.replica_writes,
            c.read_repairs,
            c.hints.queued,
            c.hints.replayed,
        )
        return trace, state, counters

    def test_double_run_is_bit_identical(self):
        nodes = [f"stack{i}:core0" for i in range(5)]
        first = self._run_script(nodes)
        second = self._run_script(nodes)
        assert first == second

    @given(nodes=stacked_nodes)
    @settings(max_examples=25, deadline=None)
    def test_determinism_holds_for_any_membership(self, nodes):
        assert self._run_script(nodes) == self._run_script(nodes)
