"""Activity-based energy metering: integrator, alerts, attribution."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ServerDesign, iridium_stack, mercury_stack
from repro.core.thermal import PASSIVE_COOLING_LIMIT_W, ThermalReport
from repro.errors import ConfigurationError, SimulationError
from repro.exp.scenarios import get_scenario
from repro.power import DEFAULT_BUDGET, CORE_IDLE_FRACTION, DynamicPowerModel
from repro.sim.full_system import FullSystemStack
from repro.sim.run_options import RunOptions
from repro.telemetry import (
    EnergyMeter,
    MetricsRegistry,
    Tracer,
    energy_tail_attribution,
    prometheus_text,
    segment_power_w,
    trace_energy_j,
)
from repro.units import MB
from repro.workloads import WorkloadSpec
from repro.workloads.distributions import fixed_size
from repro.workloads.diurnal import DiurnalSchedule


def model(cores: int = 2) -> DynamicPowerModel:
    return DynamicPowerModel.for_stack(mercury_stack(cores))


def small_workload() -> WorkloadSpec:
    return WorkloadSpec(
        name="energy-test",
        get_fraction=0.9,
        key_population=2_000,
        value_sizes=fixed_size(64),
    )


def make_stack(cores: int = 2) -> FullSystemStack:
    return FullSystemStack(
        stack=mercury_stack(cores), memory_per_core_bytes=4 * MB, seed=1
    )


class TestDynamicPowerModel:
    def test_prices_derive_from_stack_constants(self):
        stack = mercury_stack(4)
        m = DynamicPowerModel.for_stack(stack)
        assert m.cores == 4
        assert m.core_active_w == stack.core.power_w
        assert m.core_idle_w == pytest.approx(
            CORE_IDLE_FRACTION * stack.core.power_w
        )
        assert m.memory_j_per_byte == stack.dram.energy_j_per_byte
        assert m.flash_read_j_per_page == 0.0
        assert m.nic_idle_w == stack.mac.power_w + stack.phy.power_w
        assert m.delivery_loss_fraction == pytest.approx(
            1.0 / DEFAULT_BUDGET.delivery_margin - 1.0
        )

    def test_flash_stack_prices_array_energies(self):
        stack = iridium_stack(4)
        m = DynamicPowerModel.for_stack(stack)
        assert m.flash_read_j_per_page == stack.flash.read_energy_j_per_page
        assert m.flash_program_j_per_page == stack.flash.program_energy_j_per_page
        assert m.flash_erase_j_per_block == stack.flash.erase_energy_j_per_block
        assert m.memory_j_per_byte == stack.flash.bus_energy_j_per_byte

    def test_server_power_matches_static_budget_arithmetic(self):
        m = model()
        for stack_w in (0.0, 1.0, 4.7):
            assert m.server_power_w(stack_w, num_stacks=3) == pytest.approx(
                DEFAULT_BUDGET.server_power_w(stack_w * 3)
            )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DynamicPowerModel.for_stack(mercury_stack(2), idle_fraction=1.5)
        m = model()
        with pytest.raises(ConfigurationError):
            m.stack_power_w(1.5)
        with pytest.raises(ConfigurationError):
            m.server_power_w(1.0, num_stacks=0)

    def test_stack_power_interpolates_idle_to_active(self):
        m = model(4)
        assert m.stack_power_w(0.0) == pytest.approx(m.idle_floor_w)
        assert m.stack_power_w(1.0) == pytest.approx(m.active_ceiling_w)
        mid = m.stack_power_w(0.5)
        assert m.idle_floor_w < mid < m.active_ceiling_w


class TestIntegrator:
    def test_meter_validation(self):
        with pytest.raises(ConfigurationError):
            EnergyMeter(model(), window_s=0.0)
        with pytest.raises(ConfigurationError):
            EnergyMeter(model(), num_stacks=0)
        with pytest.raises(ConfigurationError):
            EnergyMeter(model(), throttle_derate=0.0)
        meter = EnergyMeter(model())
        with pytest.raises(SimulationError):
            meter.charge_core_busy(0.0, -1.0)
        with pytest.raises(SimulationError):
            meter.charge_memory_bytes(0.0, -10)

    def test_core_busy_splits_windows_exactly(self):
        meter = EnergyMeter(model(), window_s=0.01)
        # A busy interval spanning three windows: [0.005, 0.025].
        meter.charge_core_busy(0.005, 0.020)
        watts = meter.model.core_active_w - meter.model.core_idle_w
        total = watts * 0.020
        assert meter.components["cores_active"] == total
        window_sum = sum(meter.activity.get(i, 0.0) for i in range(3))
        assert window_sum == total  # bit-exact, remainder in the last window
        assert meter.activity.get(0, 0.0) == pytest.approx(watts * 0.005)
        assert meter.activity.get(1, 0.0) == pytest.approx(watts * 0.010)

    @given(
        charges=st.lists(
            st.tuples(
                st.sampled_from(("busy", "memory", "nic", "read", "program", "erase")),
                st.floats(min_value=0.0, max_value=0.05),
                st.floats(min_value=0.0, max_value=1e4),
            ),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_conservation_and_window_tiling(self, charges):
        """Random charge streams: components sum to the total exactly and
        window sums equal the charged activity bit-for-bit."""
        meter = EnergyMeter(
            DynamicPowerModel.for_stack(iridium_stack(2)), window_s=0.01
        )
        for kind, t, magnitude in charges:
            if kind == "busy":
                meter.charge_core_busy(t, magnitude * 1e-6)
            elif kind == "memory":
                meter.charge_memory_bytes(t, magnitude)
            elif kind == "nic":
                meter.charge_nic_bytes(t, magnitude)
            elif kind == "read":
                meter.charge_flash_reads(t, magnitude * 1e-2)
            elif kind == "program":
                meter.charge_flash_programs(t, magnitude * 1e-2)
            else:
                meter.charge_flash_erases(t, magnitude * 1e-4)
        summary = meter.finalize(0.1, completed=len(charges))
        assert summary["total_j"] == sum(summary["components_j"].values())
        activity_components = (
            summary["components_j"]["cores_active"]
            + summary["components_j"]["memory"]
            + summary["components_j"]["flash_array"]
            + summary["components_j"]["flash_erase"]
            + summary["components_j"]["nic_wire"]
        )
        window_sum = sum(
            meter.activity.get(i, 0.0) for i in sorted(meter.activity._values)
        )
        assert window_sum == pytest.approx(activity_components, rel=1e-12)

    def test_floors_accrue_with_time(self):
        m = model(2)
        meter = EnergyMeter(m, window_s=0.01)
        summary = meter.finalize(1.0, completed=0)
        assert summary["components_j"]["cores_idle"] == pytest.approx(
            m.cores * m.core_idle_w
        )
        assert summary["components_j"]["nic"] == pytest.approx(m.nic_idle_w)
        assert summary["components_j"]["chassis"] == pytest.approx(m.chassis_w)
        assert summary["components_j"]["delivery_loss"] == pytest.approx(
            m.delivery_loss_fraction * meter.stack_side_j
        )
        # An idle second draws exactly the floor power.
        assert summary["stack_mean_power_w"] == pytest.approx(m.idle_floor_w)

    def test_finalize_is_idempotent(self):
        meter = EnergyMeter(model(), window_s=0.01)
        meter.charge_memory_bytes(0.005, 1024)
        first = meter.finalize(0.1, completed=7)
        assert meter.finalize(99.0, completed=999) is first
        assert first["completed"] == 7
        assert first["joules_per_op"] == first["total_j"] / 7

    def test_timeline_includes_idle_windows(self):
        meter = EnergyMeter(model(), window_s=0.01)
        meter.charge_memory_bytes(0.035, 4096)  # only window 3 has activity
        meter.finalize(0.05, completed=1)
        rows = meter.timeline()
        assert len(rows) == 5
        floor = meter.model.idle_floor_w
        assert rows[0][1] == pytest.approx(floor)
        assert rows[3][1] > floor

    def test_registry_metrics_exported(self):
        registry = MetricsRegistry()
        meter = EnergyMeter(model(), window_s=0.01, registry=registry)
        meter.charge_memory_bytes(0.002, 4096)
        meter.tick(0.01)
        text = prometheus_text(registry)
        assert 'energy_joules_total{component="memory"}' in text
        assert "power_stack_watts" in text
        assert "power_server_watts" in text
        assert "power_throttle_derate 1" in text


class TestAlerts:
    def hot_meter(self, **kwargs) -> EnergyMeter:
        """A meter whose passive limit sits below the idle floor is
        violated by any busy window at all."""
        m = model(2)
        return EnergyMeter(
            m,
            window_s=0.01,
            passive_limit_w=m.idle_floor_w + 0.01,
            **kwargs,
        )

    def burn(self, meter: EnergyMeter, window: int) -> None:
        meter.charge_core_busy(meter.window_s * window, meter.window_s)

    def test_throttle_fires_once_per_sustained_violation(self):
        events = []
        meter = self.hot_meter(
            throttle_derate=0.5,
            sinks=[lambda event, alert, t: events.append((event, alert.rule, t))],
        )
        # Three hot windows, two cool ones, one hot again.
        for window in (0, 1, 2):
            self.burn(meter, window)
        for window in range(6):
            meter.tick((window + 1) * meter.window_s)
        self.burn(meter, 6)
        meter.tick(0.07)

        throttles = [a for a in meter.alerts if a.rule == "thermal_throttle"]
        assert len(throttles) == 2  # one per sustained violation, not per window
        assert throttles[0].cleared_at_s == pytest.approx(0.04)
        assert meter.throttle_windows == 4
        assert [e[0] for e in events] == ["fire", "clear", "fire"]

    def test_derate_factor_tracks_throttle_lifecycle(self):
        meter = self.hot_meter(throttle_derate=0.5)
        assert meter.derate_factor == 1.0
        self.burn(meter, 0)
        meter.tick(0.01)
        assert meter.throttled
        assert meter.derate_factor == 0.5
        meter.tick(0.02)  # cool window clears it
        assert not meter.throttled
        assert meter.derate_factor == 1.0

    def test_finalize_force_clears_active_alerts(self):
        meter = self.hot_meter()
        self.burn(meter, 0)
        meter.tick(0.01)
        assert meter.throttled
        summary = meter.finalize(0.015, completed=1)
        assert not meter.throttled
        assert summary["alerts"][0]["cleared_at_s"] == pytest.approx(0.015)

    def test_budget_burn_alert_extrapolates_stacks(self):
        m = model(2)
        meter = EnergyMeter(
            m,
            window_s=0.01,
            num_stacks=100,
            budget_w=100 * m.idle_floor_w + 1.0,
        )
        meter.tick(0.01)  # idle window: under budget
        assert not [a for a in meter.alerts if a.rule == "power_budget_burn"]
        meter.charge_core_busy(0.01, 0.01)
        meter.tick(0.02)
        burns = [a for a in meter.alerts if a.rule == "power_budget_burn"]
        assert len(burns) == 1
        assert burns[0].peak_burn > 1.0
        assert "100x" in burns[0].objective


class TestSpanAttribution:
    def flat_trace(self, tracer, arrival=0.0):
        trace = tracer.begin(arrival, verb="GET")
        trace.add_span("queue", arrival, 3e-5, kind="server", node="core0")
        trace.add_span("memcached", arrival + 3e-5, 1e-5, kind="server", node="core0")
        trace.finish(arrival + 4e-5)
        return trace

    def test_wait_segments_price_at_idle(self):
        m = model()
        assert segment_power_w("queue", m) == m.core_idle_w
        assert segment_power_w("replica_put.queue", m) == m.core_idle_w
        assert segment_power_w("batch_wait", m) == m.core_idle_w
        assert segment_power_w("memcached", m) == m.core_active_w
        assert segment_power_w("replica_put.memcached", m) == m.core_active_w

    def test_trace_energy_tiles_the_rtt(self):
        m = model()
        tracer = Tracer(MetricsRegistry())
        trace = self.flat_trace(tracer)
        joules = trace_energy_j(trace, m)
        assert joules == pytest.approx(
            3e-5 * m.core_idle_w + 1e-5 * m.core_active_w
        )
        # Bounded by the all-idle and all-active envelopes.
        assert trace.rtt_s * m.core_idle_w < joules < trace.rtt_s * m.core_active_w

    def test_tail_attribution_shares_and_cohorts(self):
        m = model()
        tracer = Tracer(MetricsRegistry())
        traces = [self.flat_trace(tracer, arrival=i * 1e-3) for i in range(20)]
        # One slow outlier dominated by queueing.
        slow = tracer.begin(0.5, verb="GET")
        slow.add_span("queue", 0.5, 9e-4, kind="server", node="core0")
        slow.add_span("memcached", 0.5 + 9e-4, 1e-5, kind="server", node="core0")
        slow.finish(0.5 + 9.1e-4)
        traces.append(slow)

        table, cohort_j = energy_tail_attribution(
            traces, m, quantiles=(0.0, 0.95)
        )
        for q in (0.0, 0.95):
            assert sum(table.shares[q].values()) == pytest.approx(1.0)
        # The tail cohort burns more joules per op than the population...
        assert cohort_j[0.95] > cohort_j[0.0]
        # ...and its energy is queue-dominated (idle-priced wait time).
        assert table.shares[0.95]["queue"] > table.shares[0.0]["queue"]

    def test_attribution_needs_finished_traces(self):
        with pytest.raises(ConfigurationError):
            energy_tail_attribution([], model())


class TestDiurnalSchedule:
    def test_factor_peaks_at_start_and_troughs_midday(self):
        schedule = DiurnalSchedule(day_length_s=1.0, trough_fraction=0.3)
        assert schedule.factor(0.0) == pytest.approx(1.0)
        assert schedule.factor(0.5) == pytest.approx(0.3)
        assert schedule.factor(1.0) == pytest.approx(1.0)
        assert schedule.mean_factor() == pytest.approx(0.65)

    def test_round_trip_and_validation(self):
        schedule = DiurnalSchedule(day_length_s=2.0, trough_fraction=0.25)
        assert DiurnalSchedule.from_dict(schedule.to_dict()) == schedule
        with pytest.raises(ConfigurationError):
            DiurnalSchedule(day_length_s=0.0)
        with pytest.raises(ConfigurationError):
            DiurnalSchedule(day_length_s=1.0, trough_fraction=1.5)


class TestThermalReportMeasured:
    def test_from_measured_carries_server_extrapolation(self):
        report = ThermalReport.from_measured("mercury-8", 96, 4.0)
        assert report.per_stack_tdp_w == 4.0
        assert report.server_tdp_w == pytest.approx(
            DEFAULT_BUDGET.server_power_w(4.0 * 96)
        )
        assert report.passively_coolable
        assert report.headroom_w == pytest.approx(PASSIVE_COOLING_LIMIT_W - 4.0)

    def test_gauges_exported(self):
        registry = MetricsRegistry()
        ThermalReport.from_measured("mercury-8", 96, 12.0).export_gauges(registry)
        text = prometheus_text(registry)
        assert "thermal_per_stack_watts 12" in text
        assert "thermal_passively_coolable 0" in text

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ThermalReport.from_measured("x", 0, 1.0)
        with pytest.raises(ConfigurationError):
            ThermalReport.from_measured("x", 1, -1.0)


class TestRunOptionsEnergy:
    def test_energy_summary_round_trips(self):
        options = RunOptions(
            5_000.0,
            0.05,
            energy_summary=True,
            diurnal=DiurnalSchedule(day_length_s=0.05),
        )
        rebuilt = RunOptions.from_dict(json.loads(json.dumps(options.to_dict())))
        assert rebuilt == options
        assert rebuilt.diurnal == DiurnalSchedule(day_length_s=0.05)

    def test_defaults_leave_dict_unchanged(self):
        """Off-by-default energy keys stay out of to_dict so pre-existing
        experiment-cache entries keep their byte-identical keys."""
        payload = RunOptions(5_000.0, 0.05).to_dict()
        assert "energy_summary" not in payload
        assert "diurnal" not in payload

    def test_meter_instrument_excluded_from_identity(self):
        bare = RunOptions(5_000.0, 0.05)
        instrumented = bare.with_instruments(
            energy=EnergyMeter(model(), window_s=0.01)
        )
        assert instrumented == bare
        assert instrumented.to_dict() == bare.to_dict()
        assert instrumented.without_instruments().energy is None

    def test_energy_diurnal_scenario_registered(self):
        scenario = get_scenario("energy-diurnal")
        options = scenario.run_options(
            offered_rate_hz=5_000.0, duration_s=0.05
        )
        assert options.energy_summary
        assert options.diurnal is not None
        assert options.diurnal.day_length_s == 1.0


class TestFullSystemMetering:
    def run_metered(self, seed=1, meter=None, diurnal=None, duration=0.08):
        system = FullSystemStack(
            stack=mercury_stack(2), memory_per_core_bytes=4 * MB, seed=seed
        )
        options = RunOptions(
            offered_rate_hz=20_000.0,
            duration_s=duration,
            warmup_requests=500,
            energy_summary=meter is None,
            diurnal=diurnal,
        )
        if meter is not None:
            options = options.with_instruments(energy=meter)
        return system.run(small_workload(), options)

    def test_conservation_and_results_surface(self):
        results = self.run_metered()
        energy = results.energy
        assert energy is not None
        assert energy["total_j"] == sum(energy["components_j"].values())
        assert results.joules_per_op == pytest.approx(
            energy["total_j"] / results.completed
        )
        assert results.measured_tps_per_watt > 0
        assert results.peak_window_power_w >= energy["trough_window_power_w"]
        assert "energy" in results.to_dict()

    def test_unmetered_run_omits_energy(self):
        results = make_stack().run(
            small_workload(), RunOptions(20_000.0, 0.05, warmup_requests=500)
        )
        assert results.energy is None
        assert results.joules_per_op == 0.0
        assert "energy" not in results.to_dict()

    def test_metering_does_not_perturb_the_run(self):
        metered = self.run_metered(seed=3)
        meter = EnergyMeter(model(2), window_s=0.01)  # non-derating
        unmetered = FullSystemStack(
            stack=mercury_stack(2), memory_per_core_bytes=4 * MB, seed=3
        ).run(
            small_workload(),
            RunOptions(offered_rate_hz=20_000.0, duration_s=0.08, warmup_requests=500),
        )
        assert metered.completed == unmetered.completed
        assert metered.mean_rtt == unmetered.mean_rtt
        assert metered.get_hits == unmetered.get_hits
        assert metered.puts == unmetered.puts

    def test_identical_seeds_are_bit_identical(self):
        first = self.run_metered(seed=11)
        second = self.run_metered(seed=11)
        assert first.energy["total_j"] == second.energy["total_j"]
        assert first.energy["components_j"] == second.energy["components_j"]

    def test_diurnal_trough_draws_less_than_peak(self):
        results = self.run_metered(
            diurnal=DiurnalSchedule(day_length_s=0.08), duration=0.08
        )
        energy = results.energy
        assert energy["trough_window_power_w"] < energy["peak_window_power_w"]

    def test_throttle_derates_throughput(self):
        m = model(2)

        def run(derate):
            meter = EnergyMeter(
                m,
                window_s=0.01,
                passive_limit_w=m.idle_floor_w + 1e-3,
                throttle_derate=derate,
            )
            return self.run_metered(seed=5, meter=meter), meter

        free, free_meter = run(1.0)
        throttled, hot_meter = run(0.5)
        # The same offered load runs hot the whole way through: exactly
        # one sustained violation, one alert, visible TPS cost.
        throttle_alerts = [
            a for a in hot_meter.alerts if a.rule == "thermal_throttle"
        ]
        assert len(throttle_alerts) == 1
        assert hot_meter.throttle_windows > 1
        assert throttled.completed < free.completed
        assert throttled.energy["throttle_windows"] == hot_meter.throttle_windows
        # The measure-only meter saw the same hot windows but left the
        # run untouched.
        assert free_meter.throttle_windows > 1
        assert free.energy["throttle_derate"] == 1.0
