"""Tests for the day-in-the-life diurnal analysis."""

import pytest

from repro.analysis.diurnal import DayReport, day_in_the_life, fleet_for_peak
from repro.core import ServerDesign, mercury_stack
from repro.errors import ConfigurationError
from repro.workloads.diurnal import DiurnalTraffic


def make_traffic(peak=30e6) -> DiurnalTraffic:
    return DiurnalTraffic(peak_rate_hz=peak, trough_fraction=0.3)


class TestFleetSizing:
    def test_fleet_covers_peak_at_target(self):
        design = ServerDesign(stack=mercury_stack(32))
        traffic = make_traffic()
        servers = fleet_for_peak(design, traffic, utilization_target=0.75)
        report = day_in_the_life(design, servers, traffic)
        assert report.peak_utilization <= 0.76
        assert report.peak_utilization > 0.3

    def test_tighter_target_means_more_servers(self):
        design = ServerDesign(stack=mercury_stack(32))
        traffic = make_traffic()
        relaxed = fleet_for_peak(design, traffic, utilization_target=0.9)
        tight = fleet_for_peak(design, traffic, utilization_target=0.5)
        assert tight >= relaxed

    def test_bad_target_rejected(self):
        with pytest.raises(ConfigurationError):
            fleet_for_peak(
                ServerDesign(stack=mercury_stack(32)), make_traffic(),
                utilization_target=0.0,
            )


class TestDayReport:
    def run_day(self) -> DayReport:
        design = ServerDesign(stack=mercury_stack(32))
        traffic = make_traffic()
        servers = fleet_for_peak(design, traffic)
        return day_in_the_life(design, servers, traffic)

    def test_24_hours(self):
        report = self.run_day()
        assert len(report.hours) == 24
        assert [state.hour for state in report.hours] == list(range(24))

    def test_utilization_follows_traffic(self):
        report = self.run_day()
        by_hour = {state.hour: state.utilization for state in report.hours}
        assert by_hour[13] == report.peak_utilization  # midday peak
        assert by_hour[1] < by_hour[13]

    def test_stranded_capacity_matches_curve(self):
        # trough 0.3 -> mean/peak = 0.65 -> ~35% stranded.
        report = self.run_day()
        assert report.stranded_fraction == pytest.approx(0.35, abs=0.02)

    def test_sla_holds_all_day(self):
        report = self.run_day()
        assert report.worst_sla > 0.99

    def test_energy_is_flat_power_times_day(self):
        # The §2.2 point: the tier burns peak-provisioned power all day.
        report = self.run_day()
        first = report.hours[0].power_w
        assert all(state.power_w == first for state in report.hours)
        assert report.energy_kwh == pytest.approx(first * 24 / 1000)

    def test_undersized_fleet_raises(self):
        design = ServerDesign(stack=mercury_stack(32))
        with pytest.raises(ConfigurationError, match="saturated"):
            day_in_the_life(design, 1, make_traffic(peak=60e6))

    def test_zero_servers_rejected(self):
        with pytest.raises(ConfigurationError):
            day_in_the_life(
                ServerDesign(stack=mercury_stack(32)), 0, make_traffic()
            )
