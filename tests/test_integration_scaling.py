"""Integration: the paper's linear-scaling methodology (§5.3), validated.

The paper computes server TPS as single-core TPS x core count.  Here the
discrete-event simulator runs multi-core stacks with the latency model's
service times and confirms that assumption holds below saturation — and
quantifies where it stops holding (the part the analytic model can't see).
"""

import pytest

from repro.core import iridium_stack, mercury_stack
from repro.sim import StackSimulation, sla_fraction_met


class TestLinearScalingAssumption:
    def test_mercury_stack_scales_linearly_at_70pct_load(self):
        stack = mercury_stack(1)
        service = stack.latency_model().request_timing("GET", 64).total_s

        def measured_tps(cores: int) -> float:
            sim = StackSimulation(cores=cores, service_time=lambda: service, seed=11)
            return sim.run(
                offered_rate_hz=0.7 * cores / service,
                duration_s=400 * service,
                warmup_s=50 * service,
            ).throughput_hz

        t1 = measured_tps(1)
        t8 = measured_tps(8)
        assert t8 == pytest.approx(8 * t1, rel=0.1)

    def test_latency_flat_until_high_load(self):
        stack = mercury_stack(8)
        service = stack.latency_model().request_timing("GET", 64).total_s
        sim = StackSimulation(cores=8, service_time=lambda: service, seed=13)

        def mean_rtt(load: float) -> float:
            return sim.run(
                offered_rate_hz=load * 8 / service,
                duration_s=600 * service,
                warmup_s=100 * service,
            ).mean_rtt

        # Random core assignment makes each core an M/D/1 queue: the mean
        # RTT at rho=0.5 is 1.5x the service time, and it blows up near 1.
        assert mean_rtt(0.5) < 1.7 * service
        assert mean_rtt(0.95) > 2.5 * service

    def test_des_sla_agrees_with_analytic_mg1(self):
        stack = iridium_stack(4)
        service = stack.latency_model().request_timing("GET", 64).total_s
        load = 0.8
        rate = load * 4 / service
        sim = StackSimulation(cores=4, service_time=lambda: service, seed=17)
        measured = sim.run(
            offered_rate_hz=rate, duration_s=3000 * service, warmup_s=300 * service
        ).sla_fraction(1e-3)
        analytic = sla_fraction_met(rate / 4, service, 1e-3)
        assert measured == pytest.approx(analytic, abs=0.05)

    def test_paper_sla_claim_iridium_majority_submillisecond(self):
        # §6: Iridium services "a majority of requests within the
        # sub-millisecond range" — true even at 90% load.
        stack = iridium_stack(8)
        service = stack.latency_model().request_timing("GET", 64).total_s
        sim = StackSimulation(cores=8, service_time=lambda: service, seed=19)
        results = sim.run(
            offered_rate_hz=0.9 * 8 / service,
            duration_s=2000 * service,
            warmup_s=200 * service,
        )
        assert results.sla_fraction(1e-3) > 0.5

    def test_mercury_sla_comfortably_met(self):
        stack = mercury_stack(8)
        service = stack.latency_model().request_timing("GET", 64).total_s
        sim = StackSimulation(cores=8, service_time=lambda: service, seed=23)
        results = sim.run(
            offered_rate_hz=0.8 * 8 / service,
            duration_s=2000 * service,
            warmup_s=200 * service,
        )
        assert results.sla_fraction(1e-3) > 0.95
