"""Tests for the slab allocator, including conservation properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CapacityError, ConfigurationError
from repro.kvstore import SlabAllocator
from repro.units import MB


class TestClassGeometry:
    def test_chunk_sizes_grow_geometrically(self):
        slabs = SlabAllocator(16 * MB)
        sizes = [c.chunk_size for c in slabs.classes]
        assert sizes == sorted(sizes)
        for small, large in zip(sizes, sizes[1:-1]):
            assert large <= small * 1.5  # 1.25 growth + 8B alignment slack

    def test_chunks_are_aligned(self):
        slabs = SlabAllocator(16 * MB)
        for slab_class in slabs.classes:
            assert slab_class.chunk_size % 8 == 0

    def test_terminal_class_is_full_page(self):
        slabs = SlabAllocator(16 * MB)
        assert slabs.classes[-1].chunk_size == slabs.page_bytes
        assert slabs.classes[-1].chunks_per_page == 1

    def test_class_for_picks_smallest_fit(self):
        slabs = SlabAllocator(16 * MB)
        chosen = slabs.class_for(100)
        assert chosen.chunk_size >= 100
        index = slabs.classes.index(chosen)
        if index > 0:
            assert slabs.classes[index - 1].chunk_size < 100

    def test_oversized_item_rejected(self):
        slabs = SlabAllocator(16 * MB)
        with pytest.raises(CapacityError, match="exceeds max storable"):
            slabs.class_for(slabs.page_bytes + 1)

    def test_nonpositive_item_rejected(self):
        with pytest.raises(ConfigurationError):
            SlabAllocator(16 * MB).class_for(0)

    def test_too_small_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            SlabAllocator(100)

    def test_bad_growth_factor_rejected(self):
        with pytest.raises(ConfigurationError):
            SlabAllocator(16 * MB, growth_factor=1.0)


class TestAllocation:
    def test_allocate_consumes_budget_page_at_a_time(self):
        slabs = SlabAllocator(4 * MB)
        slabs.allocate(100)
        assert slabs.pages_allocated == 1
        assert slabs.bytes_committed == slabs.page_bytes

    def test_allocations_within_page_reuse_it(self):
        slabs = SlabAllocator(4 * MB)
        slab_class = slabs.allocate(100)
        for _ in range(slab_class.chunks_per_page - 1):
            slabs.allocate(100)
        assert slabs.pages_allocated == 1
        slabs.allocate(100)
        assert slabs.pages_allocated == 2

    def test_free_recycles_chunks(self):
        slabs = SlabAllocator(4 * MB)
        slabs.allocate(100)
        slabs.free(100)
        slabs.allocate(100)
        assert slabs.pages_allocated == 1

    def test_exhaustion_raises(self):
        slabs = SlabAllocator(1 * MB)  # exactly one page
        big = slabs.page_bytes
        slabs.allocate(big)
        with pytest.raises(CapacityError, match="out of memory"):
            slabs.allocate(big)

    def test_classes_do_not_share_pages(self):
        # memcached 1.4 semantics: a page assigned to a class stays there.
        slabs = SlabAllocator(1 * MB)
        slabs.allocate(100)  # takes the only page for the small class
        with pytest.raises(CapacityError):
            slabs.allocate(slabs.page_bytes)

    def test_double_free_rejected(self):
        slabs = SlabAllocator(4 * MB)
        slabs.allocate(100)
        slabs.free(100)
        with pytest.raises(CapacityError, match="double free"):
            slabs.free(100)

    def test_stats_only_report_active_classes(self):
        slabs = SlabAllocator(4 * MB)
        slabs.allocate(100)
        stats = slabs.stats()
        assert len(stats) == 1
        (_, entry), = stats.items()
        assert entry["used_chunks"] == 1

    def test_overhead_ratio_reflects_fragmentation(self):
        slabs = SlabAllocator(4 * MB)
        assert slabs.overhead_ratio() == 1.0
        slabs.allocate(100)  # one chunk used out of a whole page
        assert slabs.overhead_ratio() > 100


class TestSlabProperties:
    @given(
        ops=st.lists(
            st.tuples(st.booleans(), st.integers(min_value=1, max_value=900_000)),
            max_size=200,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_conservation_under_random_alloc_free(self, ops):
        slabs = SlabAllocator(8 * MB)
        live: list[int] = []
        for is_alloc, size in ops:
            if is_alloc:
                try:
                    slabs.allocate(size)
                except CapacityError:
                    continue
                live.append(size)
            elif live:
                slabs.free(live.pop())
        slabs.check_invariants()
        assert sum(c.used_chunks for c in slabs.classes) == len(live)

    @given(sizes=st.lists(st.integers(min_value=1, max_value=1_000_000), max_size=100))
    @settings(max_examples=40, deadline=None)
    def test_commitment_never_exceeds_budget(self, sizes):
        slabs = SlabAllocator(4 * MB)
        for size in sizes:
            try:
                slabs.allocate(size)
            except CapacityError:
                pass
        assert slabs.bytes_committed <= slabs.memory_limit_bytes
        slabs.check_invariants()
