"""Tests for trace record/load/replay."""

import pytest

from repro.errors import ConfigurationError
from repro.kvstore import KVStore, MemcachedCluster
from repro.units import MB
from repro.workloads import WorkloadSpec
from repro.workloads.generator import Request, WorkloadGenerator
from repro.workloads.traces import (
    read_trace,
    record_workload,
    replay,
    write_trace,
)


class TestTraceFiles:
    def test_write_read_roundtrip(self, tmp_path):
        path = tmp_path / "trace.txt"
        requests = [
            Request(verb="GET", key=b"key-1", value_bytes=64),
            Request(verb="PUT", key=b"key-2", value_bytes=1024),
        ]
        assert write_trace(path, requests) == 2
        assert list(read_trace(path)) == requests

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# header\n\nGET k 64\n# mid\nPUT p 10\n")
        assert len(list(read_trace(path))) == 2

    def test_malformed_line_reports_position(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("GET k 64\nGARBAGE\n")
        with pytest.raises(ConfigurationError, match=":2:"):
            list(read_trace(path))

    def test_bad_size_rejected(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("GET k banana\n")
        with pytest.raises(ConfigurationError, match="bad size"):
            list(read_trace(path))

    def test_record_workload_is_deterministic(self, tmp_path):
        spec = WorkloadSpec(name="t", key_population=100)
        a, b = tmp_path / "a.txt", tmp_path / "b.txt"
        record_workload(a, spec, count=200, seed=7)
        record_workload(b, spec, count=200, seed=7)
        assert a.read_text() == b.read_text()
        assert len(list(read_trace(a))) == 200

    def test_negative_count_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            record_workload(tmp_path / "x.txt", WorkloadSpec(name="t"), count=-1)


class TestReplay:
    def test_read_through_fill(self):
        store = KVStore(4 * MB)
        requests = [Request(verb="GET", key=b"k", value_bytes=64)] * 3
        stats = replay(requests, store)
        assert stats.gets == 3
        assert stats.hits == 2  # first miss fills, next two hit

    def test_no_fill_never_hits(self):
        store = KVStore(4 * MB)
        requests = [Request(verb="GET", key=b"k", value_bytes=64)] * 3
        stats = replay(requests, store, fill_on_miss=False)
        assert stats.hits == 0

    def test_put_then_get_hits(self):
        store = KVStore(4 * MB)
        stats = replay(
            [
                Request(verb="PUT", key=b"k", value_bytes=10),
                Request(verb="GET", key=b"k", value_bytes=10),
            ],
            store,
        )
        assert stats.puts == 1
        assert stats.hit_rate == 1.0

    def test_replay_against_cluster(self):
        cluster = MemcachedCluster(["a", "b"], memory_per_node_bytes=4 * MB)
        generator = WorkloadGenerator(
            WorkloadSpec(name="r", get_fraction=0.8, key_population=500), seed=3
        )
        stats = replay(generator.stream(2_000), cluster)
        assert stats.requests == 2_000
        assert 0.0 < stats.hit_rate < 1.0

    def test_trace_file_to_store_pipeline(self, tmp_path):
        path = tmp_path / "trace.txt"
        spec = WorkloadSpec(name="p", get_fraction=0.9, key_population=200)
        record_workload(path, spec, count=1_000, seed=1)
        store = KVStore(8 * MB)
        stats = replay(read_trace(path), store)
        assert stats.requests == 1_000
        # zipf reuse means a healthy hit rate once warm.
        assert stats.hit_rate > 0.4
