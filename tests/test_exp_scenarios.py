"""The scenario registry: names, fault wiring, spec construction."""

import pytest

from repro.errors import ConfigurationError
from repro.exp import SCENARIOS, Scenario, get_scenario, scenario_names
from repro.exp.cache import cache_key
from repro.exp.spec import StackSpec
from repro.faults import PRESETS


class TestRegistry:
    def test_baseline_batched_tiered_plus_every_fault_preset(self):
        assert set(scenario_names()) == (
            {
                "baseline",
                "batched",
                "batched-64",
                "iridium-tiered",
                "iridium-tiered-writeheavy",
                "energy-diurnal",
            }
            | set(PRESETS)
        )

    def test_names_are_self_consistent(self):
        for name, scenario in SCENARIOS.items():
            assert scenario.name == name
            assert scenario.description

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown scenario"):
            get_scenario("chaos-monkey")

    def test_unknown_fault_preset_rejected(self):
        with pytest.raises(ConfigurationError, match="fault preset"):
            Scenario(name="x", description="d", faults="volcano")


class TestBehaviour:
    def test_baseline_has_no_faults(self):
        baseline = get_scenario("baseline")
        assert baseline.fault_schedule() is None
        options = baseline.run_options(offered_rate_hz=1e4, duration_s=1.0)
        assert options.faults is None
        assert options.resilience is None

    def test_fault_scenarios_resolve_their_preset(self):
        for name in PRESETS:
            scenario = get_scenario(name)
            assert scenario.fault_schedule() == PRESETS[name]
            options = scenario.run_options(offered_rate_hz=1e4, duration_s=1.0)
            assert options.faults == PRESETS[name]
            assert options.fill_on_miss

    def test_workload_carries_scenario_name(self):
        workload = get_scenario("lossy-link").workload(value_bytes=128)
        assert workload.name == "lossy-link-demo"
        assert workload.value_sizes.mean == 128.0

    def test_to_spec_is_cacheable_and_labelled(self):
        scenario = get_scenario("crash-restart")
        spec = scenario.to_spec(
            StackSpec(cores=2, memory_per_core_bytes=1 << 22),
            offered_rate_hz=2e4,
            duration_s=0.5,
        )
        assert spec.kind == "full_system"
        assert spec.label == "crash-restart@20000Hz"
        assert spec.options.faults == PRESETS["crash-restart"]
        assert len(cache_key(spec)) == 64

    def test_to_spec_round_trips(self):
        import json

        from repro.exp import ExperimentSpec

        spec = get_scenario("degraded-dram").to_spec(
            StackSpec(cores=1, memory_per_core_bytes=1 << 22),
            offered_rate_hz=5e3,
            duration_s=0.2,
            seed=9,
        )
        rebuilt = ExperimentSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt == spec


class TestTieredScenarios:
    def test_registry_entries_route_through_the_flash_store(self):
        tiered = get_scenario("iridium-tiered")
        writeheavy = get_scenario("iridium-tiered-writeheavy")
        assert tiered.flashstore and writeheavy.flashstore
        assert tiered.get_fraction == 0.9
        assert writeheavy.get_fraction == 0.5
        for scenario in (tiered, writeheavy):
            options = scenario.run_options(offered_rate_hz=1e4, duration_s=1.0)
            config = options.flashstore
            assert config is not None
            assert config.log_segment_pages == scenario.flashstore_segment_pages

    def test_plain_scenarios_leave_flashstore_off(self):
        options = get_scenario("baseline").run_options(
            offered_rate_hz=1e4, duration_s=1.0
        )
        assert options.flashstore is None
        assert get_scenario("baseline").flashstore_config() is None

    def test_flashstore_and_batching_refuse_to_combine(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ConfigurationError, match="batching"):
                Scenario(
                    name="x", description="d", flashstore=True, batch_max=16
                )

    def test_flashstore_and_batching_refuse_to_combine_via_overrides(self):
        with pytest.raises(ConfigurationError, match="batching"):
            Scenario(
                name="x",
                description="d",
                overrides={
                    "flashstore": {"log_segment_pages": 256},
                    "batching": {"batch_max": 16},
                },
            )

    def test_segment_pages_validated_eagerly(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ConfigurationError):
                Scenario(
                    name="x",
                    description="d",
                    flashstore=True,
                    flashstore_segment_pages=0,
                )

    def test_tiered_spec_gets_its_own_cache_key(self):
        stack = StackSpec(cores=2, memory_per_core_bytes=1 << 22)
        plain = get_scenario("baseline").to_spec(
            stack, offered_rate_hz=1e4, duration_s=0.5
        )
        tiered = get_scenario("iridium-tiered").to_spec(
            stack, offered_rate_hz=1e4, duration_s=0.5
        )
        assert cache_key(plain) != cache_key(tiered)


class TestEnergyScenario:
    def test_registry_entry_turns_on_meter_and_diurnal(self):
        scenario = get_scenario("energy-diurnal")
        assert scenario.energy
        assert scenario.diurnal_day_s == 1.0
        options = scenario.run_options(offered_rate_hz=1e4, duration_s=1.0)
        assert options.energy_summary
        assert options.diurnal == scenario.diurnal_schedule()

    def test_energy_spec_gets_its_own_cache_key(self):
        stack = StackSpec(cores=2, memory_per_core_bytes=1 << 22)
        plain = get_scenario("baseline").to_spec(
            stack, offered_rate_hz=1e4, duration_s=0.5
        )
        metered = get_scenario("energy-diurnal").to_spec(
            stack, offered_rate_hz=1e4, duration_s=0.5
        )
        assert cache_key(plain) != cache_key(metered)

    def test_negative_diurnal_day_rejected(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ConfigurationError, match="diurnal"):
                Scenario(name="x", description="d", diurnal_day_s=-1.0)


class TestOverrides:
    """The overrides mapping: validation, shims, and cache-key coverage."""

    STACK = StackSpec(cores=2, memory_per_core_bytes=1 << 22)

    def test_unknown_override_key_rejected_eagerly(self):
        with pytest.raises(ConfigurationError, match="unknown RunOptions"):
            Scenario(name="x", description="d", overrides={"turbo": True})

    def test_malformed_sub_config_rejected_eagerly(self):
        with pytest.raises(ConfigurationError, match="BatchPolicy"):
            Scenario(
                name="x",
                description="d",
                overrides={"batching": {"batch_maximum": 16}},
            )

    def test_design_point_keys_refused(self):
        for key in ("offered_rate_hz", "duration_s"):
            with pytest.raises(ConfigurationError, match="design"):
                Scenario(name="x", description="d", overrides={key: 1.0})

    def test_overrides_land_on_run_options(self):
        scenario = Scenario(
            name="x",
            description="d",
            overrides={
                "batching": {"batch_max": 8, "linger_s": 50e-6},
                "energy_summary": True,
                "trace_digest": True,
            },
        )
        options = scenario.run_options(offered_rate_hz=1e4, duration_s=1.0)
        assert options.batching is not None
        assert options.batching.batch_max == 8
        assert options.energy_summary
        assert options.trace_digest

    def test_legacy_kwargs_warn_and_map_to_overrides(self):
        with pytest.warns(DeprecationWarning, match="overrides"):
            legacy = Scenario(
                name="x", description="d", batch_max=16, batch_linger_s=1e-4
            )
        assert legacy.overrides["batching"]["batch_max"] == 16
        assert legacy.batch_max == 16  # derived view still readable
        assert legacy.batch_policy() is not None
        modern = Scenario(
            name="x",
            description="d",
            overrides={
                "batching": {"batch_max": 16, "linger_s": 1e-4,
                             "dedup_gets": True}
            },
        )
        assert legacy == modern

    def test_every_override_changes_the_cache_key(self):
        """No override can hide from the experiment cache: each example
        must produce a different cache key than the un-overridden base."""
        examples = [
            {"batching": {"batch_max": 16, "linger_s": 1e-4}},
            {"flashstore": {"log_segment_pages": 128}},
            {"energy_summary": True},
            {"diurnal": {"day_length_s": 1.0, "trough_fraction": 0.4}},
            {"trace_digest": True},
            {"fidelity": {"mode": "hybrid"}},
            {"keep_samples": True},
            {"fill_on_miss": True},
            {"warmup_requests": 99},
        ]
        base = Scenario(name="x", description="d")
        base_key = cache_key(
            base.to_spec(self.STACK, offered_rate_hz=1e4, duration_s=0.5)
        )
        keys = {base_key}
        for overrides in examples:
            spec = Scenario(
                name="x", description="d", overrides=overrides
            ).to_spec(self.STACK, offered_rate_hz=1e4, duration_s=0.5)
            keys.add(cache_key(spec))
        assert len(keys) == len(examples) + 1
