"""Full-system telemetry: zero-overhead guarantee and trace consistency.

These are the PR's acceptance gates: telemetry must observe the
simulation without perturbing it (identical outcomes on vs off), traced
span durations must sum to each request's measured RTT, and the
Prometheus snapshot's percentiles must agree with exact sample-based
percentiles to within one histogram bucket width.
"""

import json

import pytest

from repro.core import mercury_stack
from repro.sim.full_system import FullSystemStack
from repro.sim.run_options import RunOptions
from repro.telemetry import TelemetrySession, prometheus_text, trace_to_jsonl
from repro.units import MB
from repro.workloads import WorkloadSpec
from repro.workloads.distributions import fixed_size


def run_system(telemetry=None, keep_samples=False, seed=3):
    system = FullSystemStack(
        stack=mercury_stack(4), memory_per_core_bytes=8 * MB, seed=seed
    )
    workload = WorkloadSpec(
        name="telemetry-test",
        get_fraction=0.9,
        key_population=5_000,
        value_sizes=fixed_size(64),
    )
    return system.run(
        workload,
        RunOptions(
            offered_rate_hz=30_000.0,
            duration_s=0.2,
            warmup_requests=5_000,
            telemetry=telemetry,
            keep_samples=keep_samples,
        ),
    )


class TestZeroOverheadGuarantee:
    def test_enabled_vs_disabled_outcomes_identical(self):
        plain = run_system()
        traced = run_system(telemetry=TelemetrySession())
        assert traced.completed == plain.completed
        assert traced.mean_rtt == plain.mean_rtt
        assert traced.get_hits == plain.get_hits
        assert traced.get_misses == plain.get_misses
        assert traced.mac_drops == plain.mac_drops
        assert traced.per_core_served == plain.per_core_served
        assert traced.rtt_histogram.counts == plain.rtt_histogram.counts

    def test_keep_samples_does_not_change_aggregates(self):
        lean = run_system()
        sampled = run_system(keep_samples=True)
        assert sampled.completed == lean.completed
        assert len(sampled.rtts) == sampled.completed
        assert lean.rtts == []
        assert sampled.mean_rtt == lean.mean_rtt


class TestTraceConsistency:
    def test_span_durations_sum_to_rtt(self):
        telemetry = TelemetrySession()
        results = run_system(telemetry=telemetry)
        traces = telemetry.tracer.traces
        assert len(traces) == results.completed
        for trace in traces:
            assert trace.span_total_s() == pytest.approx(
                trace.rtt_s, rel=1e-9, abs=1e-15
            )

    def test_jsonl_dump_preserves_rtt_identity(self):
        telemetry = TelemetrySession()
        run_system(telemetry=telemetry)
        for line in trace_to_jsonl(telemetry.tracer.traces).strip().split("\n"):
            record = json.loads(line)
            total = sum(span["duration_s"] for span in record["spans"])
            assert total == pytest.approx(record["rtt_s"], rel=1e-9, abs=1e-15)
            assert {s["name"] for s in record["spans"]} == {
                "queue", "network", "hash", "memcached",
            }

    def test_component_totals_match_results_breakdown(self):
        telemetry = TelemetrySession()
        results = run_system(telemetry=telemetry)
        components = telemetry.tracer.component_seconds
        for name in ("hash", "memcached", "network"):
            assert components[name] == pytest.approx(results.component_seconds[name])
        # queue time is traced too, beyond the Fig. 4 service split
        assert components["queue"] >= 0.0


class TestMetricsSnapshot:
    def test_percentiles_match_samples_within_bucket_width(self):
        telemetry = TelemetrySession()
        results = run_system(telemetry=telemetry, keep_samples=True)
        histogram = telemetry.registry.get("request_rtt_seconds")
        assert histogram.count == results.completed
        for p in (0.5, 0.95, 0.99):
            exact = results.rtt_percentile(p)  # exact: samples were kept
            estimate = histogram.percentile(p)
            assert exact / histogram.bucket_ratio <= estimate
            assert estimate <= exact * histogram.bucket_ratio

    def test_prometheus_snapshot_contents(self):
        telemetry = TelemetrySession()
        results = run_system(telemetry=telemetry)
        text = prometheus_text(telemetry.registry)
        assert 'request_rtt_seconds{quantile="0.5"}' in text
        assert 'request_rtt_seconds{quantile="0.95"}' in text
        assert 'request_rtt_seconds{quantile="0.99"}' in text
        assert f"requests_completed_total {results.completed}" in text
        assert f"get_hits_total {results.get_hits}" in text
        assert 'queue_wait_seconds{resource="core0",quantile="0.5"}' in text

    def test_histogram_percentiles_without_samples(self):
        results = run_system()
        p50 = results.rtt_percentile(0.5)
        p99 = results.rtt_percentile(0.99)
        assert 0.0 < p50 <= p99 <= results.max_rtt
        assert 0.0 < results.sla_fraction(1e-3) <= 1.0
