"""Tests for the calibration sensitivity sweep."""

import pytest

from repro.analysis.sensitivity import (
    PERTURBABLE_FIELDS,
    headline_under,
    perturb,
    sensitivity_sweep,
)
from repro.core.calibration import DEFAULT_CALIBRATION
from repro.errors import ConfigurationError


class TestPerturb:
    def test_scales_plain_field(self):
        doubled = perturb(DEFAULT_CALIBRATION, "memcached_get_instructions", 2.0)
        assert doubled.memcached_get_instructions == pytest.approx(
            2 * DEFAULT_CALIBRATION.memcached_get_instructions
        )

    def test_scales_nested_tcp_field(self):
        halved = perturb(DEFAULT_CALIBRATION, "tcp.per_packet_instructions", 0.5)
        assert halved.tcp.per_packet_instructions == pytest.approx(
            DEFAULT_CALIBRATION.tcp.per_packet_instructions / 2
        )
        # the rest of the TCP model is untouched
        assert halved.tcp.per_byte_instructions == (
            DEFAULT_CALIBRATION.tcp.per_byte_instructions
        )

    def test_write_amplification_floored_at_one(self):
        floored = perturb(DEFAULT_CALIBRATION, "flash_write_amplification", 0.01)
        assert floored.flash_write_amplification == 1.0

    def test_original_untouched(self):
        before = DEFAULT_CALIBRATION.memcached_get_instructions
        perturb(DEFAULT_CALIBRATION, "memcached_get_instructions", 3.0)
        assert DEFAULT_CALIBRATION.memcached_get_instructions == before

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError):
            perturb(DEFAULT_CALIBRATION, "warp_factor", 2.0)
        with pytest.raises(ConfigurationError):
            perturb(DEFAULT_CALIBRATION, "tcp.warp_factor", 2.0)

    def test_bad_factor_rejected(self):
        with pytest.raises(ConfigurationError):
            perturb(DEFAULT_CALIBRATION, "data_accesses_get", 0.0)


class TestSweep:
    def test_baseline_headlines(self):
        baseline = headline_under(DEFAULT_CALIBRATION)
        assert baseline["mercury_tps_x"] > 10
        assert baseline["iridium_density_x"] == pytest.approx(14.85, rel=0.02)

    def test_densities_immune_to_timing_constants(self):
        # Density is power/area arithmetic; timing perturbations must not
        # move it beyond the packing solver's stack granularity.
        baseline = headline_under(DEFAULT_CALIBRATION)
        for field in ("memcached_get_instructions", "tcp.per_transaction_instructions"):
            for factor in (0.5, 2.0):
                variant = headline_under(perturb(DEFAULT_CALIBRATION, field, factor))
                assert variant["iridium_density_x"] == pytest.approx(
                    baseline["iridium_density_x"], rel=0.01
                )
                assert variant["mercury_density_x"] == pytest.approx(
                    baseline["mercury_density_x"], rel=0.1
                )

    def test_conclusions_survive_50pct_perturbations(self):
        # The reproduction's robustness claim: every ordering-level
        # conclusion holds when any single constant is off by 1.5x.
        baseline = headline_under(DEFAULT_CALIBRATION)
        for row in sensitivity_sweep(factor=1.5):
            assert row.conclusions_hold(baseline), row.field

    def test_tcp_transaction_cost_is_the_dominant_knob(self):
        # 87% of a request is network stack, so its fixed cost should
        # move headlines more than the memcached path length does.
        baseline = headline_under(DEFAULT_CALIBRATION)
        rows = {row.field: row for row in sensitivity_sweep(factor=1.5)}
        tcp_swing = rows["tcp.per_transaction_instructions"].max_relative_swing(baseline)
        mc_swing = rows["memcached_get_instructions"].max_relative_swing(baseline)
        assert tcp_swing > mc_swing

    def test_sweep_covers_declared_fields(self):
        rows = sensitivity_sweep(factor=1.2, fields=PERTURBABLE_FIELDS[:3])
        assert [row.field for row in rows] == list(PERTURBABLE_FIELDS[:3])

    def test_bad_factor_rejected(self):
        with pytest.raises(ConfigurationError):
            sensitivity_sweep(factor=1.0)
