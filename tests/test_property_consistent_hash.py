"""Property-based tests for the consistent-hash ring and cluster routing.

The §3.8 contention argument rests on consistent hashing behaving like
the literature says it does: node arrival/departure moves only the keys
it must (monotonicity), the moved fraction is bounded by roughly the
departing/arriving node's arc share, and a dead node is never routed to.
Hypothesis explores node sets and key populations far beyond what the
example-based tests cover.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kvstore.cluster import MemcachedCluster
from repro.kvstore.consistent_hash import ConsistentHashRing
from repro.units import MB

node_names = st.lists(
    st.text(
        alphabet=st.characters(min_codepoint=97, max_codepoint=122),
        min_size=1,
        max_size=8,
    ),
    min_size=2,
    max_size=8,
    unique=True,
)

keys = st.lists(st.binary(min_size=1, max_size=24), min_size=1, max_size=200)

#: Keys acceptable to the store (memcached forbids whitespace/CR/LF).
store_keys = st.lists(
    st.lists(
        st.integers(min_value=33, max_value=126), min_size=1, max_size=24
    ).map(bytes),
    min_size=1,
    max_size=100,
    unique=True,
)


def _owners(ring: ConsistentHashRing, key_list) -> dict[bytes, str]:
    return {key: ring.node_for(key) for key in key_list}


class TestRingMonotonicity:
    @given(nodes=node_names, key_list=keys, new_node=st.just("zz-new"))
    @settings(max_examples=100, deadline=None)
    def test_adding_a_node_only_moves_keys_onto_it(
        self, nodes, key_list, new_node
    ):
        """Monotonicity: a key either keeps its owner or moves to the
        newcomer — never from one old node to another old node."""
        ring = ConsistentHashRing(nodes, vnodes=64)
        before = _owners(ring, key_list)
        ring.add_node(new_node)
        after = _owners(ring, key_list)
        for key in key_list:
            if after[key] != before[key]:
                assert after[key] == new_node

    @given(nodes=node_names, key_list=keys)
    @settings(max_examples=100, deadline=None)
    def test_removing_a_node_only_moves_its_own_keys(self, nodes, key_list):
        """Keys on surviving nodes stay put when another node leaves."""
        ring = ConsistentHashRing(nodes, vnodes=64)
        victim = sorted(nodes)[0]
        before = _owners(ring, key_list)
        ring.remove_node(victim)
        after = _owners(ring, key_list)
        for key in key_list:
            if before[key] != victim:
                assert after[key] == before[key]
            else:
                assert after[key] != victim

    @given(nodes=node_names, key_list=keys)
    @settings(max_examples=60, deadline=None)
    def test_remove_then_readd_is_identity(self, nodes, key_list):
        """A crash/restart cycle restores the exact original mapping."""
        ring = ConsistentHashRing(nodes, vnodes=64)
        victim = sorted(nodes)[-1]
        before = _owners(ring, key_list)
        ring.remove_node(victim)
        ring.add_node(victim)
        assert _owners(ring, key_list) == before


class TestBoundedKeyMovement:
    @given(nodes=node_names)
    @settings(max_examples=60, deadline=None)
    def test_moved_fraction_is_bounded(self, nodes):
        """Adding one node to n moves ~1/(n+1) of keys; with 128 vnodes
        the arc-size variance keeps it well under 4x the ideal."""
        key_list = [b"key-%d" % i for i in range(500)]
        ring = ConsistentHashRing(nodes, vnodes=128)
        before = _owners(ring, key_list)
        ring.add_node("zz-new")
        after = _owners(ring, key_list)
        moved = sum(1 for key in key_list if after[key] != before[key])
        ideal = 1.0 / (len(nodes) + 1)
        assert moved / len(key_list) <= min(1.0, 4.0 * ideal)

    @given(nodes=node_names)
    @settings(max_examples=60, deadline=None)
    def test_arc_fractions_sum_to_one(self, nodes):
        ring = ConsistentHashRing(nodes, vnodes=64)
        fractions = ring.arc_fractions()
        assert abs(sum(fractions.values()) - 1.0) < 1e-9
        assert set(fractions) == set(nodes)


class TestClusterNeverRoutesToDeadNodes:
    @given(nodes=node_names, key_list=store_keys, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_kill_node_never_routes_to_dead_node(self, nodes, key_list, data):
        cluster = MemcachedCluster(list(nodes), 1 * MB)
        victim = data.draw(st.sampled_from(sorted(nodes)))
        cluster.kill_node(victim)
        for key in key_list:
            assert cluster.node_for(key) != victim
        # And every op lands on a live store.
        for key in key_list:
            cluster.set(key, b"v")
            assert cluster.get(key) is not None

    @given(nodes=node_names, key_list=keys, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_crashed_node_never_routed_while_down(self, nodes, key_list, data):
        """With rebalancing on, a crashed (not killed) node takes no
        traffic until its restart, after which the mapping is restored."""
        cluster = MemcachedCluster(list(nodes), 1 * MB)
        before = {key: cluster.node_for(key) for key in key_list}
        victim = data.draw(st.sampled_from(sorted(nodes)))
        cluster.crash_node(victim)
        for key in key_list:
            assert cluster.node_for(key) != victim
        assert cluster.failed_gets == 0 and cluster.failed_sets == 0
        cluster.restart_node(victim)
        assert {key: cluster.node_for(key) for key in key_list} == before

    @given(nodes=node_names, data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_sequential_kills_always_route_live(self, nodes, data):
        """Killing nodes one by one, routing always targets a survivor."""
        cluster = MemcachedCluster(list(nodes), 1 * MB)
        order = data.draw(st.permutations(sorted(nodes)))
        probes = [b"probe-%d" % i for i in range(50)]
        for victim in order[:-1]:  # keep one node alive
            cluster.kill_node(victim)
            live = set(cluster.node_names)
            for key in probes:
                assert cluster.node_for(key) in live
