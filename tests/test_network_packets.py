"""Tests for Ethernet framing and segmentation arithmetic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.network import (
    ETHERNET_10GBE,
    request_wire_payloads,
    segments_for_payload,
    wire_bytes_for_payload,
    wire_time,
)


class TestFraming:
    def test_line_rate_is_10gbe(self):
        # 10 Gb/s decimal = 1.25e9 bytes/second.
        assert ETHERNET_10GBE.line_rate_bytes_s == pytest.approx(1.25e9)

    def test_mss_is_1448(self):
        # 1500 MTU - 20 IP - 20 TCP - 12 options.
        assert ETHERNET_10GBE.mss == 1448

    def test_per_packet_overhead(self):
        assert ETHERNET_10GBE.per_packet_overhead == 14 + 4 + 20 + 20 + 20 + 12


class TestSegmentation:
    @pytest.mark.parametrize(
        "payload,expected",
        [(0, 1), (1, 1), (1448, 1), (1449, 2), (64 * 1024, 46), (1 << 20, 725)],
    )
    def test_segments(self, payload, expected):
        assert segments_for_payload(payload) == expected

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            segments_for_payload(-1)

    def test_paper_claim_64kb_needs_multiple_packets(self):
        # §5.2: "requests that are 64KB or larger have to be split up".
        assert segments_for_payload(64 * 1024) > 1

    @given(payload=st.integers(min_value=1, max_value=2 << 20))
    @settings(max_examples=100, deadline=None)
    def test_segments_cover_payload_exactly(self, payload):
        segments = segments_for_payload(payload)
        assert (segments - 1) * ETHERNET_10GBE.mss < payload
        assert payload <= segments * ETHERNET_10GBE.mss


class TestWireAccounting:
    def test_wire_bytes_include_framing(self):
        assert wire_bytes_for_payload(100) == 100 + ETHERNET_10GBE.per_packet_overhead

    def test_wire_time_at_line_rate(self):
        assert wire_time(1 << 20) == pytest.approx(
            wire_bytes_for_payload(1 << 20) / 1.25e9
        )

    @given(payload=st.integers(min_value=0, max_value=1 << 20))
    @settings(max_examples=50, deadline=None)
    def test_wire_bytes_monotone(self, payload):
        assert wire_bytes_for_payload(payload + 1) >= wire_bytes_for_payload(payload)


class TestRequestWire:
    def test_small_get_is_three_packets(self):
        wire = request_wire_payloads("GET", 64)
        assert wire.request_segments == 1
        assert wire.response_segments == 1
        assert wire.ack_packets == 1
        assert wire.total_packets == 3

    def test_get_response_carries_value(self):
        small = request_wire_payloads("GET", 64)
        large = request_wire_payloads("GET", 1 << 20)
        assert large.response_payload - small.response_payload == (1 << 20) - 64
        assert large.response_segments > 700

    def test_put_request_carries_value(self):
        wire = request_wire_payloads("PUT", 4096)
        assert wire.request_payload > 4096
        assert wire.response_segments == 1  # "STORED\r\n"

    def test_set_is_alias_for_put(self):
        assert request_wire_payloads("SET", 64) == request_wire_payloads("PUT", 64)

    def test_unknown_verb_rejected(self):
        with pytest.raises(ConfigurationError):
            request_wire_payloads("FROB", 64)

    def test_delayed_acks_scale_with_bulk_direction(self):
        wire = request_wire_payloads("GET", 1 << 20)
        assert wire.ack_packets == pytest.approx(wire.response_segments // 2, abs=1)

    @given(
        verb=st.sampled_from(["GET", "PUT"]),
        value=st.integers(min_value=0, max_value=1 << 20),
    )
    @settings(max_examples=60, deadline=None)
    def test_packet_counts_positive_and_consistent(self, verb, value):
        wire = request_wire_payloads(verb, value)
        assert wire.total_packets >= 3
        assert wire.total_payload == wire.request_payload + wire.response_payload
