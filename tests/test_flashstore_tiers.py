"""Unit tests for the three store tiers and their manager.

Each tier has one job in the SILT hierarchy: the log packs appends into
buffered pages, the hash store serves one-page GETs from a sealed
segment, the sorted run holds bulk data behind a sparse index.  These
tests pin the page-accounting and index-memory contracts per tier, then
the manager-level lifecycle (seal → convert → compact) and the derived
amplification numbers.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, StorageError
from repro.flashstore import (
    HashStore,
    LogStore,
    SortedStore,
    TieredFlashStore,
    TieredStoreConfig,
)
from repro.flashstore.compaction import baseline_ftl_replay


class TestLogStore:
    def test_buffered_page_accounting(self, small_flash):
        """Items share the open page: programs land only when the write
        pointer crosses a page end."""
        log = LogStore(small_flash, segment_pages=4)
        page = small_flash.page_bytes
        assert log.append(b"a", page // 2) == 0  # open page buffers it
        assert log.append(b"b", page // 2) == 1  # crosses the page end
        assert log.append(b"c", 2 * page) == 2  # spans two whole pages
        assert log.pages_programmed == 3
        assert log.host_bytes == 3 * page

    def test_get_reads_only_candidate_pages(self, small_flash):
        log = LogStore(small_flash, segment_pages=4)
        log.append(b"k1", 100)
        log.append(b"k2", 100)
        found, pages, fps = log.get(b"k1")
        assert found and pages >= 1
        found, pages, fps = log.get(b"nope-definitely-absent")
        # Zero candidates is a free miss; a fingerprint collision costs
        # the page reads it caused, all booked as false positives.
        assert not found
        assert pages == fps

    def test_overwrite_keeps_latest_and_tracks_dead_bytes(self, small_flash):
        log = LogStore(small_flash, segment_pages=4)
        log.append(b"k", 100)
        log.append(b"k", 200)
        assert log.live_entries() == {b"k": 200}
        assert log.dead_bytes == 100
        assert len(log) == 1
        assert log.live_bytes == 200
        found, _, _ = log.get(b"k")
        assert found

    def test_seals_when_full_and_rejects_appends(self, small_flash):
        log = LogStore(small_flash, segment_pages=1)
        log.append(b"fill", small_flash.page_bytes)
        assert log.is_full
        with pytest.raises(StorageError):
            log.append(b"more", 1)

    def test_index_memory_is_modelled(self, small_flash):
        log = LogStore(small_flash, segment_pages=4)
        assert log.index_bytes > 0
        with pytest.raises(ConfigurationError):
            LogStore(small_flash, segment_pages=0)
        with pytest.raises(ConfigurationError):
            log.append(b"zero", 0)


class TestHashStore:
    def test_every_entry_is_a_one_page_hit(self, small_flash):
        entries = {b"h-%d" % i: 100 + i for i in range(200)}
        store = HashStore(entries, small_flash, seed=1)
        for key in entries:
            found, pages, fps = store.get(key)
            assert found
            assert pages - fps == 1  # the hit itself is one page
        assert store.entries() == entries
        assert store.live_bytes == sum(entries.values())
        assert store.pages >= 1
        assert store.index_bytes > 0

    def test_items_pack_whole_into_pages(self, small_flash):
        half = small_flash.page_bytes // 2 + 1  # two can't share a page
        store = HashStore({b"a": half, b"b": half}, small_flash)
        assert store.pages == 2

    def test_rejects_empty_and_oversized(self, small_flash):
        with pytest.raises(ConfigurationError):
            HashStore({}, small_flash)
        with pytest.raises(ConfigurationError):
            HashStore({b"big": small_flash.page_bytes + 1}, small_flash)


class TestSortedStore:
    def test_hits_cost_exactly_one_read(self, small_flash):
        entries = {b"s-%03d" % i: 150 for i in range(300)}
        store = SortedStore(entries, small_flash, seed=2)
        for key in entries:
            assert store.get(key) == (True, 1, 0)

    def test_filtered_misses_are_free(self, small_flash):
        entries = {b"s-%03d" % i: 150 for i in range(300)}
        store = SortedStore(entries, small_flash, seed=2)
        reads = fps = 0
        for i in range(2_000):
            found, pages, false_reads = store.get(b"absent-%d" % i)
            assert not found
            reads += pages
            fps += false_reads
        # Every read an absent key causes is a filter false positive,
        # and the 8-bit filter keeps those rare.
        assert reads == fps
        assert fps / 2_000 < 0.2

    def test_sparse_index_is_cheapest_per_key(self, small_flash):
        entries = {b"s-%03d" % i: 150 for i in range(300)}
        store = SortedStore(entries, small_flash, seed=2)
        hashed = HashStore(entries, small_flash, seed=2)
        assert store.index_bytes / len(store) < hashed.index_bytes / len(
            hashed
        )


class TestTieredFlashStore:
    CONFIG = TieredStoreConfig(log_segment_pages=2, max_hash_stores=2)

    def _fill(self, small_flash, puts=600, keys=150):
        store = TieredFlashStore(small_flash, self.CONFIG, seed=0)
        for i in range(puts):
            store.put(b"key-%d" % (i % keys), 180)
        return store

    def test_lifecycle_reaches_all_three_tiers(self, small_flash):
        store = self._fill(small_flash)
        assert store.stats.conversions > 0
        assert store.stats.compactions > 0
        assert store.sorted_store is not None
        for i in range(150):
            cost = store.get(b"key-%d" % i)
            assert cost.found, i
        assert sum(store.stats.hits_by_tier.values()) == 150
        assert store.stats.hits_by_tier["sorted"] > 0

    def test_conversion_drops_dead_versions(self, small_flash):
        """In-segment overwrites die at conversion: hammering one key
        through a whole segment yields a single-entry hash store."""
        store = TieredFlashStore(small_flash, self.CONFIG, seed=0)
        while store.stats.conversions == 0:
            store.put(b"hot-key", 180)
        assert len(store.hash_stores[0]) == 1
        # Across tiers, stale shadowed versions linger until the next
        # merge folds them out, so the entry count may exceed the
        # distinct-key count but each tier never exceeds it.
        full = self._fill(small_flash)
        assert len(full.sorted_store) <= 150

    def test_amplifications_and_index_hierarchy(self, small_flash):
        store = self._fill(small_flash)
        for i in range(150):
            store.get(b"key-%d" % i)
        assert 0.0 < store.write_amplification < 20.0
        assert 1.0 <= store.read_amplification <= 1.5
        assert store.index_bytes_per_key > 0.0
        summary = store.tier_summary()
        # SILT's memory hierarchy: the write tier pays the most index
        # bytes per key, the sorted bulk tier the least.
        assert (
            summary["log"]["index_bytes_per_key"]
            > summary["sorted"]["index_bytes_per_key"]
        )

    def test_background_work_is_reported(self, small_flash):
        store = TieredFlashStore(small_flash, self.CONFIG, seed=0)
        works = []
        for i in range(600):
            cost = store.put(b"key-%d" % i, 180)
            works.extend(cost.background)
        kinds = {work.kind for work in works}
        assert kinds == {"conversion", "compaction"}
        for work in works:
            assert work.service_s > 0.0
            assert work.pages_written > 0

    def test_put_charges_amortised_page_share(self, small_flash):
        store = TieredFlashStore(small_flash, TieredStoreConfig(), seed=0)
        cost = store.put(b"k", 180)
        expected = (180 / small_flash.page_bytes) * small_flash.program_time()
        assert cost.service_s == pytest.approx(expected)
        assert cost.probes == (("log", cost.service_s),)

    def test_flush_models_a_crash(self, small_flash):
        store = self._fill(small_flash)
        store.flush()
        assert store.live_entries == 0
        assert not store.get(b"key-0").found

    def test_metered_gates_registry_counters(self, small_flash):
        from repro.telemetry import MetricsRegistry

        registry = MetricsRegistry()
        store = TieredFlashStore(
            small_flash, self.CONFIG, seed=0, registry=registry
        )
        store.put(b"warm", 180)  # metered=False: nothing counted
        assert all(metric.value == 0 for metric in registry
                   if metric.name == "flashstore_appends_total")
        store.metered = True
        store.put(b"hot", 180)
        appended = [metric.value for metric in registry
                    if metric.name == "flashstore_appends_total"]
        assert appended == [1]


class TestBaselineReplay:
    def test_page_per_item_wa_dwarfs_packing(self, small_flash):
        keys = [b"base-%d" % (i % 400) for i in range(2_000)]
        replay = baseline_ftl_replay(keys, 184, small_flash)
        assert replay["puts"] == 2_000
        # Every item programs at least a whole page: byte-level WA is at
        # least page_bytes / item_bytes even before GC adds traffic.
        assert replay["write_amplification"] >= small_flash.page_bytes / 184
        assert replay["pages_programmed"] >= 2_000

    def test_rejects_nonpositive_item_bytes(self, small_flash):
        with pytest.raises(ConfigurationError):
            baseline_ftl_replay([b"k"], 0, small_flash)
