"""The fault injector: turns a schedule into simulator state and draws.

One :class:`FaultInjector` owns the mutable fault state of a run: which
nodes are currently down, the active packet-loss/corruption probability,
and the current service-time degradation factor per memory kind.  It is
deterministic by construction — state flips happen at exact simulated
times via :meth:`install`, and per-request loss/corruption draws come
from a dedicated :func:`~repro.sim.rng.make_rng` stream, so two runs of
the same schedule with the same seed make identical decisions request
for request.

The injector also carries the telemetry for the fault plane: counters
for injected events, fault-dropped and fault-corrupted packets, and a
``degraded_mode`` gauge (number of fault windows currently active, plus
nodes down) that dashboards can alert on.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.faults.schedule import FaultEvent, FaultSchedule
from repro.sim.events import Simulator
from repro.sim.rng import make_rng
from repro.telemetry.metrics import MetricsRegistry, NULL_REGISTRY

from typing import Callable


class FaultInjector:
    """Replays a :class:`FaultSchedule` against live components."""

    def __init__(
        self,
        schedule: FaultSchedule,
        seed: int = 0,
        registry: MetricsRegistry = NULL_REGISTRY,
    ):
        self.schedule = schedule
        self.seed = seed
        self.rng = make_rng(f"faults:{schedule.name}", seed)
        self._down: set[str] = set()
        self._loss_probability = 0.0
        self._corrupt_probability = 0.0
        self._memory_factor = {"dram": 1.0, "flash": 1.0}
        self._active_windows = 0
        self.fault_drops = 0
        self.fault_corruptions = 0
        self.crashes = 0
        self.restarts = 0
        self._registry = registry
        self._events_total = {
            kind: registry.counter("fault_events_total", {"kind": kind})
            for kind in ("node_crash", "node_restart", "window_open", "window_close")
        }
        self._drops_total = registry.counter("fault_packets_dropped_total")
        self._corruptions_total = registry.counter("fault_packets_corrupted_total")
        self._degraded_gauge = registry.gauge("degraded_mode")
        self._nodes_down_gauge = registry.gauge("nodes_down")

    # --- state queries (the per-request API) -----------------------------------

    @property
    def nodes_down(self) -> frozenset[str]:
        return frozenset(self._down)

    def node_is_down(self, node: str) -> bool:
        return node in self._down

    @property
    def loss_probability(self) -> float:
        return self._loss_probability

    @property
    def corrupt_probability(self) -> float:
        return self._corrupt_probability

    def should_drop(self) -> bool:
        """Draw: is this packet lost to the active loss window?"""
        if self._loss_probability <= 0.0:
            return False
        if self.rng.random() < self._loss_probability:
            self.fault_drops += 1
            self._drops_total.inc()
            return True
        return False

    def should_corrupt(self) -> bool:
        """Draw: is this packet corrupted in flight?  (A corrupted frame
        fails its checksum, so callers treat it as a loss that the
        client can distinguish in its counters.)"""
        if self._corrupt_probability <= 0.0:
            return False
        if self.rng.random() < self._corrupt_probability:
            self.fault_corruptions += 1
            self._corruptions_total.inc()
            return True
        return False

    def service_factor(self, memory_kind: str) -> float:
        """Current service-time multiplier for ``memory_kind`` accesses."""
        if memory_kind not in self._memory_factor:
            raise ConfigurationError(f"unknown memory kind {memory_kind!r}")
        return self._memory_factor[memory_kind]

    @property
    def degraded(self) -> bool:
        """True while any fault is active (the degraded-mode signal)."""
        return bool(self._down) or self._active_windows > 0

    # --- state transitions --------------------------------------------------------

    def _gauges(self) -> None:
        self._degraded_gauge.set(self._active_windows + len(self._down))
        self._nodes_down_gauge.set(len(self._down))

    def crash(self, event: FaultEvent) -> None:
        self._down.add(event.node)
        self.crashes += 1
        self._events_total["node_crash"].inc()
        self._gauges()

    def restart(self, event: FaultEvent) -> None:
        self._down.discard(event.node)
        self.restarts += 1
        self._events_total["node_restart"].inc()
        self._gauges()

    def open_window(self, event: FaultEvent) -> None:
        if event.kind == "packet_loss":
            self._loss_probability = _combine(
                self._loss_probability, event.probability
            )
        elif event.kind == "packet_corruption":
            self._corrupt_probability = _combine(
                self._corrupt_probability, event.probability
            )
        else:
            self._memory_factor[event.memory_kind] *= event.factor
        self._active_windows += 1
        self._events_total["window_open"].inc()
        self._gauges()

    def close_window(self, event: FaultEvent) -> None:
        if event.kind == "packet_loss":
            self._loss_probability = _uncombine(
                self._loss_probability, event.probability
            )
        elif event.kind == "packet_corruption":
            self._corrupt_probability = _uncombine(
                self._corrupt_probability, event.probability
            )
        else:
            self._memory_factor[event.memory_kind] /= event.factor
        self._active_windows -= 1
        self._events_total["window_close"].inc()
        self._gauges()

    # --- wiring into a simulator ---------------------------------------------------

    def install(
        self,
        sim: Simulator,
        horizon_s: float,
        on_crash: Callable[[str], None] | None = None,
        on_restart: Callable[[str], None] | None = None,
    ) -> None:
        """Schedule every fault transition on ``sim``.

        ``on_crash(node)`` / ``on_restart(node)`` let the host system add
        its own semantics (the DES flushes the dead core's store — §2.3's
        "data will be removed from your cache if a server goes down" —
        and a resilient client rebalances its ring).  Transitions beyond
        ``horizon_s`` are not scheduled, so the run still quiesces.
        """
        if sim.now > 0:
            raise ConfigurationError("install the injector before the run starts")

        def at(time_s: float, action: Callable[[], None]) -> None:
            if time_s <= horizon_s:
                sim.schedule_at(time_s, action)

        for event in self.schedule:
            if event.kind == "node_crash":
                def crash(e: FaultEvent = event) -> None:
                    self.crash(e)
                    if on_crash is not None:
                        on_crash(e.node)

                at(event.at_s, crash)
            elif event.kind == "node_restart":
                def restart(e: FaultEvent = event) -> None:
                    self.restart(e)
                    if on_restart is not None:
                        on_restart(e.node)

                at(event.at_s, restart)
            else:
                at(event.at_s, lambda e=event: self.open_window(e))
                if event.until_s != float("inf"):
                    at(event.until_s, lambda e=event: self.close_window(e))

    # --- stepped (non-DES) drivers -----------------------------------------------

    def apply_until(
        self,
        now_s: float,
        on_crash: Callable[[str], None] | None = None,
        on_restart: Callable[[str], None] | None = None,
    ) -> None:
        """Advance fault state to logical time ``now_s`` without a DES.

        For hosts that step time themselves (the cluster tests replay a
        request stream and advance a logical clock): applies, in order,
        every not-yet-applied transition at or before ``now_s``.
        """
        applied = getattr(self, "_applied", 0)
        transitions: list[tuple[float, int, str, FaultEvent]] = []
        for index, event in enumerate(self.schedule):
            if event.kind in ("node_crash", "node_restart"):
                transitions.append((event.at_s, index, event.kind, event))
            else:
                transitions.append((event.at_s, index, "open", event))
                if event.until_s != float("inf"):
                    transitions.append((event.until_s, index, "close", event))
        transitions.sort(key=lambda t: (t[0], t[1]))
        for time_s, _index, action, event in transitions[applied:]:
            if time_s > now_s:
                break
            applied += 1
            if action == "node_crash":
                self.crash(event)
                if on_crash is not None:
                    on_crash(event.node)
            elif action == "node_restart":
                self.restart(event)
                if on_restart is not None:
                    on_restart(event.node)
            elif action == "open":
                self.open_window(event)
            else:
                self.close_window(event)
        self._applied = applied


def _combine(current: float, extra: float) -> float:
    """Combine independent loss probabilities: 1-(1-a)(1-b)."""
    return 1.0 - (1.0 - current) * (1.0 - extra)


def _uncombine(current: float, extra: float) -> float:
    """Inverse of :func:`_combine` when one window closes."""
    if extra >= 1.0:
        return 0.0
    remaining = 1.0 - (1.0 - current) / (1.0 - extra)
    return max(0.0, remaining)
