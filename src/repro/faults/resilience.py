"""Client-side resilience policy: timeouts, backoff, hedging, failover.

Production Memcached clients survive exactly the faults this package
injects, with four standard mechanisms:

* **request timeouts** — a lost packet or dead node costs one timeout,
  not a hung client;
* **retries with exponential backoff and jitter** — retransmit a few
  times, spacing attempts out so a recovering node is not stampeded;
* **hedged requests** — when a reply is slow, race a duplicate to
  another node and take the first answer (tail-latency insurance);
* **failover rebalancing** — after repeated timeouts, declare the node
  dead, remove it from the consistent-hash ring so its arcs fall to the
  survivors, and re-add it when health checks see it again.

The policy is pure data + arithmetic; the jitter draw takes an explicit
``random.Random`` so retry timing is deterministic under a seeded run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ResiliencePolicy:
    """Knobs for a resilient Memcached client.

    ``request_timeout_s`` bounds one attempt; up to ``max_retries``
    further attempts follow, the k-th after an extra
    ``backoff_base_s * backoff_multiplier**k`` (capped at
    ``backoff_cap_s``) plus up to ``jitter_fraction`` of itself in
    deterministic jitter.  ``failover_after`` consecutive timeouts mark
    a node dead and rebalance the ring (``None`` disables failover);
    ``health_check_interval_s`` is how long a dead node waits before a
    health check can readmit it.  ``hedge_after_s`` arms hedged GETs
    (``None`` = off).
    """

    request_timeout_s: float = 2e-3
    max_retries: int = 3
    backoff_base_s: float = 1e-3
    backoff_multiplier: float = 2.0
    backoff_cap_s: float = 50e-3
    jitter_fraction: float = 0.1
    failover_after: int | None = 3
    health_check_interval_s: float = 0.5
    hedge_after_s: float | None = None

    def __post_init__(self) -> None:
        if self.request_timeout_s <= 0:
            raise ConfigurationError("request timeout must be positive")
        if self.max_retries < 0:
            raise ConfigurationError("max_retries cannot be negative")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ConfigurationError("backoff times cannot be negative")
        if self.backoff_multiplier < 1.0:
            raise ConfigurationError("backoff must not shrink")
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ConfigurationError("jitter fraction must be in [0, 1]")
        if self.failover_after is not None and self.failover_after < 1:
            raise ConfigurationError("failover_after must be >= 1 (or None)")
        if self.health_check_interval_s <= 0:
            raise ConfigurationError("health check interval must be positive")
        if self.hedge_after_s is not None and self.hedge_after_s <= 0:
            raise ConfigurationError("hedge delay must be positive (or None)")

    @property
    def max_attempts(self) -> int:
        return 1 + self.max_retries

    def backoff_s(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry ``attempt`` (0-based), jitter included."""
        if attempt < 0:
            raise ConfigurationError("attempt index cannot be negative")
        base = min(
            self.backoff_cap_s,
            self.backoff_base_s * self.backoff_multiplier**attempt,
        )
        return base * (1.0 + self.jitter_fraction * rng.random())

    def should_fail_over(self, consecutive_timeouts: int) -> bool:
        return (
            self.failover_after is not None
            and consecutive_timeouts >= self.failover_after
        )


#: A policy that retries nothing — the seed library's implicit behaviour.
NO_RESILIENCE = ResiliencePolicy(
    max_retries=0, failover_after=None, hedge_after_s=None
)

#: The default production-shaped policy used by the CLI and benchmarks.
DEFAULT_RESILIENCE = ResiliencePolicy()
