"""Fault injection and resilience for the multi-stack cluster.

Three layers:

* :mod:`repro.faults.schedule` — declarative, serialisable descriptions
  of what goes wrong and when (crashes, restarts, loss/corruption
  bursts, DRAM degradation, flash wear-out);
* :mod:`repro.faults.injector` — the deterministic runtime that replays
  a schedule against the DES or a stepped driver, with telemetry;
* :mod:`repro.faults.resilience` — the client-side policy (timeouts,
  backoff with jitter, hedging, failover rebalancing) that decides how
  much of a fault the application actually feels.

Run a scenario from the shell with ``python -m repro faults`` or from
code via ``FullSystemStack.run(..., faults=schedule, resilience=policy)``.
"""

from repro.faults.injector import FaultInjector
from repro.faults.resilience import (
    DEFAULT_RESILIENCE,
    NO_RESILIENCE,
    ResiliencePolicy,
)
from repro.faults.schedule import (
    KINDS,
    PRESETS,
    FaultEvent,
    FaultSchedule,
    acceptance_schedule,
    crash_restart,
    lossy_link,
)

__all__ = [
    "DEFAULT_RESILIENCE",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "KINDS",
    "NO_RESILIENCE",
    "PRESETS",
    "ResiliencePolicy",
    "acceptance_schedule",
    "crash_restart",
    "lossy_link",
]
