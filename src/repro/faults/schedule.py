"""Declarative, seed-reproducible fault schedules.

The density argument of the paper (§4: 96 Mercury stacks in 1.5U) only
holds operationally if a rack of wimpy stacks *degrades gracefully*: one
dead stack among hundreds must cost its share of the cache and nothing
more.  A :class:`FaultSchedule` describes what goes wrong and when —
node crashes and restarts, NIC packet-loss or corruption bursts, DRAM
port degradation, flash-channel wear-out — as plain data, so the same
scenario can be replayed bit-identically against the full-system DES
(:mod:`repro.sim.full_system`), the cluster (:mod:`repro.kvstore.cluster`),
or the client (:class:`repro.kvstore.client.ResilientClient`).

Schedules are pure descriptions: nothing here draws random numbers or
touches a simulator.  The :class:`~repro.faults.injector.FaultInjector`
turns a schedule into simulator events and per-request decisions.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.errors import ConfigurationError

#: Fault kinds understood by the injector.  ``node`` faults target one
#: named node (a cluster node name, or ``core<i>`` in the full-system
#: DES); ``link`` faults apply to every request on the wire; ``memory``
#: faults scale the service time of the named memory kind.
KINDS = (
    "node_crash",
    "node_restart",
    "packet_loss",
    "packet_corruption",
    "dram_degradation",
    "flash_wearout",
)

_NODE_KINDS = frozenset({"node_crash", "node_restart"})
_WINDOW_KINDS = frozenset(
    {"packet_loss", "packet_corruption", "dram_degradation", "flash_wearout"}
)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``at_s`` is when the fault takes effect.  Window faults (loss,
    corruption, degradation, wear-out) additionally carry ``until_s``
    (``inf`` = for the rest of the run) and an intensity: a probability
    for link faults, a service-time multiplier for memory faults.
    """

    kind: str
    at_s: float
    node: str = ""
    until_s: float = float("inf")
    probability: float = 0.0
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ConfigurationError(f"unknown fault kind {self.kind!r}")
        if self.at_s < 0:
            raise ConfigurationError("faults cannot be scheduled before t=0")
        if self.kind in _NODE_KINDS and not self.node:
            raise ConfigurationError(f"{self.kind} needs a target node")
        if self.kind in _WINDOW_KINDS and self.until_s <= self.at_s:
            raise ConfigurationError("fault window must end after it starts")
        if self.kind in ("packet_loss", "packet_corruption"):
            if not 0.0 <= self.probability <= 1.0:
                raise ConfigurationError("probability must be in [0, 1]")
        if self.kind in ("dram_degradation", "flash_wearout") and self.factor < 1.0:
            raise ConfigurationError("degradation factor must be >= 1")

    @property
    def memory_kind(self) -> str:
        """Which memory technology a degradation fault applies to."""
        return "flash" if self.kind == "flash_wearout" else "dram"

    def to_dict(self) -> dict:
        d = asdict(self)
        if d["until_s"] == float("inf"):
            d["until_s"] = None
        return d

    @classmethod
    def from_dict(cls, data: dict) -> "FaultEvent":
        payload = dict(data)
        if payload.get("until_s") is None:
            payload["until_s"] = float("inf")
        unknown = set(payload) - {
            "kind", "at_s", "node", "until_s", "probability", "factor"
        }
        if unknown:
            raise ConfigurationError(f"unknown fault fields {sorted(unknown)}")
        return cls(**payload)


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered collection of fault events for one run."""

    name: str
    events: tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("a schedule needs a name")
        object.__setattr__(
            self, "events", tuple(sorted(self.events, key=lambda e: e.at_s))
        )
        self._check_crash_restart_pairing()

    def _check_crash_restart_pairing(self) -> None:
        """A restart must follow a crash of the same node."""
        down: set[str] = set()
        for event in self.events:
            if event.kind == "node_crash":
                if event.node in down:
                    raise ConfigurationError(
                        f"node {event.node!r} crashed twice without a restart"
                    )
                down.add(event.node)
            elif event.kind == "node_restart":
                if event.node not in down:
                    raise ConfigurationError(
                        f"restart of {event.node!r} without a preceding crash"
                    )
                down.discard(event.node)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    @property
    def nodes(self) -> frozenset[str]:
        """Every node named by a node fault."""
        return frozenset(e.node for e in self.events if e.node)

    def events_between(self, t0_s: float, t1_s: float) -> tuple[FaultEvent, ...]:
        """Events taking effect in ``(t0_s, t1_s]`` (for stepped drivers
        like the cluster tests, which advance logical time in chunks)."""
        return tuple(e for e in self.events if t0_s < e.at_s <= t1_s)

    # --- (de)serialisation ------------------------------------------------------

    def to_dict(self) -> dict:
        return {"name": self.name, "events": [e.to_dict() for e in self.events]}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSchedule":
        return cls(
            name=data.get("name", ""),
            events=tuple(FaultEvent.from_dict(e) for e in data.get("events", ())),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigurationError(f"bad schedule JSON: {error}") from None
        return cls.from_dict(data)

    @classmethod
    def load(cls, path: str | Path) -> "FaultSchedule":
        return cls.from_json(Path(path).read_text())


# --- convenience builders -------------------------------------------------------------


def crash_restart(
    node: str, crash_at_s: float, restart_at_s: float, name: str = "crash-restart"
) -> FaultSchedule:
    """A node dies at ``crash_at_s`` and comes back cold at ``restart_at_s``."""
    return FaultSchedule(
        name=name,
        events=(
            FaultEvent(kind="node_crash", at_s=crash_at_s, node=node),
            FaultEvent(kind="node_restart", at_s=restart_at_s, node=node),
        ),
    )


def lossy_link(
    probability: float,
    start_s: float = 0.0,
    until_s: float = float("inf"),
    name: str = "lossy-link",
) -> FaultSchedule:
    """Uniform packet loss at ``probability`` over a window."""
    return FaultSchedule(
        name=name,
        events=(
            FaultEvent(
                kind="packet_loss",
                at_s=start_s,
                until_s=until_s,
                probability=probability,
            ),
        ),
    )


def acceptance_schedule(node: str = "core0") -> FaultSchedule:
    """The PR's acceptance scenario: crash at t=1s, restart at t=3s,
    1 % packet loss throughout."""
    return FaultSchedule(
        name="crash-restart-lossy",
        events=(
            FaultEvent(kind="node_crash", at_s=1.0, node=node),
            FaultEvent(kind="node_restart", at_s=3.0, node=node),
            FaultEvent(kind="packet_loss", at_s=0.0, probability=0.01),
        ),
    )


def _preset_degraded_dram() -> FaultSchedule:
    return FaultSchedule(
        name="degraded-dram",
        events=(
            FaultEvent(
                kind="dram_degradation", at_s=1.0, until_s=3.0, factor=8.0
            ),
        ),
    )


def _preset_flash_wearout() -> FaultSchedule:
    return FaultSchedule(
        name="flash-wearout",
        events=(
            FaultEvent(kind="flash_wearout", at_s=1.0, factor=4.0),
        ),
    )


def _preset_corruption_burst() -> FaultSchedule:
    return FaultSchedule(
        name="corruption-burst",
        events=(
            FaultEvent(
                kind="packet_corruption", at_s=1.0, until_s=2.0, probability=0.05
            ),
        ),
    )


#: Named schedules the CLI and benchmarks can run by name.
PRESETS: dict[str, FaultSchedule] = {
    "crash-restart": crash_restart("core0", 1.0, 3.0),
    "crash-restart-lossy": acceptance_schedule(),
    "lossy-link": lossy_link(0.01),
    "corruption-burst": _preset_corruption_burst(),
    "degraded-dram": _preset_degraded_dram(),
    "flash-wearout": _preset_flash_wearout(),
}
