"""Server power budget and aggregation (§5.4 of the paper).

The 1.5U box has a 750 W HP supply.  160 W is reserved for everything
that is not a stack (disk, motherboard, fans), and a conservative 20 %
margin covers delivery losses, leaving (750 - 160) x 0.8 = 472 W for
Mercury/Iridium stacks and their PHYs.

Two power numbers matter per configuration:

* the *budget* power (at each stack's maximum sustainable bandwidth),
  which decides how many stacks fit — Table 3's Power column;
* the *operating-point* power (at the bandwidth of the measured request
  size), used for TPS/Watt — Table 4's Power column (§5.4.2).

Reported server power inverts the margin: 160 W + stack power / 0.8.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PowerBudget:
    """The 1.5U power envelope."""

    supply_w: float = 750.0
    other_components_w: float = 160.0
    delivery_margin: float = 0.8

    def __post_init__(self) -> None:
        if self.supply_w <= self.other_components_w:
            raise ConfigurationError("supply must exceed the non-stack reservation")
        if not 0.0 < self.delivery_margin <= 1.0:
            raise ConfigurationError("delivery margin must be in (0, 1]")

    @property
    def stack_budget_w(self) -> float:
        """Power available to stacks + PHYs after reservation and margin."""
        return (self.supply_w - self.other_components_w) * self.delivery_margin

    def server_power_w(self, stack_power_w: float) -> float:
        """Wall power implied by a given aggregate stack power."""
        if stack_power_w < 0:
            raise ConfigurationError("stack power cannot be negative")
        return self.other_components_w + stack_power_w / self.delivery_margin

    def max_stacks(self, per_stack_w: float) -> int:
        """How many identical stacks the budget can host."""
        if per_stack_w <= 0:
            raise ConfigurationError("per-stack power must be positive")
        return int(self.stack_budget_w / per_stack_w)


DEFAULT_BUDGET = PowerBudget()


def stack_power_w(
    core_power_w: float,
    cores: int,
    mac_power_w: float,
    phy_power_w: float,
    memory_power_w: float,
) -> float:
    """Power of one stack + its PHY share at an operating point."""
    if cores <= 0:
        raise ConfigurationError("a stack needs at least one core")
    if min(core_power_w, mac_power_w, phy_power_w, memory_power_w) < 0:
        raise ConfigurationError("component powers cannot be negative")
    return cores * core_power_w + mac_power_w + phy_power_w + memory_power_w


def server_power_w(
    num_stacks: int, per_stack_w: float, budget: PowerBudget = DEFAULT_BUDGET
) -> float:
    """Wall power of a server holding ``num_stacks`` identical stacks."""
    if num_stacks < 0:
        raise ConfigurationError("stack count cannot be negative")
    return budget.server_power_w(num_stacks * per_stack_w)
