"""Activity-based dynamic power: the constants behind the energy meter.

The static model (:mod:`repro.power.model`) prices a stack at one
operating point — every core always busy, the memory system always
moving the request-size bandwidth.  That is the right number for
packing and for Table 3/4, but it cannot express what the DES actually
shows: diurnal troughs where cores idle, fault windows where load
shifts, flashstore compaction running in the background.

:class:`DynamicPowerModel` derives *per-event* energy prices from the
same device constants the static model uses, so that when every core is
busy and every request moves its full bandwidth the integrated energy
converges on the static prediction:

* cores — active watts (``core.power_w``) while serving, an idle floor
  (:data:`CORE_IDLE_FRACTION` of active) otherwise;
* DRAM / flash bus — the linear ``power_w(bandwidth)`` curves integrate
  to a bandwidth-independent joules-per-byte price;
* flash array — per-page read/program and per-block erase energy from
  the Grupp et al. numbers already on :class:`~repro.memory.flash.FlashDevice`;
* NIC — MAC + PHY idle at their rated watts (they are always powered,
  which is exactly how the static model prices them) plus a per-wire-byte
  serialisation increment;
* chassis — ``PowerBudget.other_components_w`` as a constant floor, and
  delivery losses as ``(1/margin - 1)`` of the stack-side energy, so the
  sum of components reproduces ``PowerBudget.server_power_w`` exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.power.model import DEFAULT_BUDGET, PowerBudget

if TYPE_CHECKING:  # pragma: no cover - typing only
    # Imported lazily: repro.core pulls in telemetry (whose package
    # re-exports the energy meter, which needs this module), so a
    # module-level import here would close an import cycle.
    from repro.core.stack import StackConfig

#: Fraction of a core's active power burned while idle (clock trees,
#: leakage, the OS tick).  Published embedded-core numbers put idle in
#: the 20-40 % range of typical active power; 0.3 keeps the steady-state
#: busy-server prediction within a few percent of the static model while
#: leaving an unmistakable diurnal-trough signature.
CORE_IDLE_FRACTION = 0.3


@dataclass(frozen=True)
class DynamicPowerModel:
    """Per-event energy prices for one stack design, in joules.

    Build one with :meth:`for_stack`; all fields are plain floats so the
    model serialises trivially and the integrator never touches device
    objects on the hot path.
    """

    stack_name: str
    cores: int
    #: Watts of one core while serving a request.
    core_active_w: float
    #: Watts of one core while idle (the floor under the troughs).
    core_idle_w: float
    #: Joules per byte moved through the stack's memory (DRAM ports or
    #: the flash channel interface).
    memory_j_per_byte: float
    #: NAND array energies; zero on DRAM stacks.
    flash_read_j_per_page: float
    flash_program_j_per_page: float
    flash_erase_j_per_block: float
    #: Always-on NIC floor (MAC + PHY rated watts).
    nic_idle_w: float
    #: Incremental serialisation energy per wire byte.
    nic_j_per_byte: float
    #: Chassis floor shared by the whole server (disk, motherboard, fans).
    chassis_w: float
    #: Stack-side joules are grossed up by this factor for delivery
    #: losses: ``(1 / delivery_margin) - 1``.
    delivery_loss_fraction: float

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ConfigurationError("a stack needs at least one core")
        if self.core_idle_w > self.core_active_w:
            raise ConfigurationError("idle core power cannot exceed active")
        numeric = (
            self.core_active_w,
            self.core_idle_w,
            self.memory_j_per_byte,
            self.flash_read_j_per_page,
            self.flash_program_j_per_page,
            self.flash_erase_j_per_block,
            self.nic_idle_w,
            self.nic_j_per_byte,
            self.chassis_w,
            self.delivery_loss_fraction,
        )
        if min(numeric) < 0:
            raise ConfigurationError("energy prices cannot be negative")

    @classmethod
    def for_stack(
        cls,
        stack: StackConfig,
        budget: PowerBudget = DEFAULT_BUDGET,
        idle_fraction: float = CORE_IDLE_FRACTION,
    ) -> "DynamicPowerModel":
        """Derive the price list from a stack's device constants."""
        if not 0.0 <= idle_fraction <= 1.0:
            raise ConfigurationError("idle_fraction must be in [0, 1]")
        if stack.dram is not None:
            memory_j_per_byte = stack.dram.energy_j_per_byte
            flash_read = flash_program = flash_erase = 0.0
        else:
            assert stack.flash is not None
            memory_j_per_byte = stack.flash.bus_energy_j_per_byte
            flash_read = stack.flash.read_energy_j_per_page
            flash_program = stack.flash.program_energy_j_per_page
            flash_erase = stack.flash.erase_energy_j_per_block
        return cls(
            stack_name=stack.name,
            cores=stack.cores,
            core_active_w=stack.core.power_w,
            core_idle_w=idle_fraction * stack.core.power_w,
            memory_j_per_byte=memory_j_per_byte,
            flash_read_j_per_page=flash_read,
            flash_program_j_per_page=flash_program,
            flash_erase_j_per_block=flash_erase,
            nic_idle_w=stack.mac.power_w + stack.phy.power_w,
            nic_j_per_byte=stack.phy.energy_j_per_byte,
            chassis_w=budget.other_components_w,
            delivery_loss_fraction=1.0 / budget.delivery_margin - 1.0,
        )

    # --- floors --------------------------------------------------------------

    @property
    def idle_floor_w(self) -> float:
        """Stack-side watts burned with zero offered load."""
        return self.cores * self.core_idle_w + self.nic_idle_w

    @property
    def active_ceiling_w(self) -> float:
        """Stack-side core+NIC watts with every core pinned busy
        (memory/flash energy is activity-priced on top of this)."""
        return self.cores * self.core_active_w + self.nic_idle_w

    def stack_power_w(self, busy_fraction: float, activity_w: float = 0.0) -> float:
        """Stack watts at a core duty cycle plus measured activity watts."""
        if not 0.0 <= busy_fraction <= 1.0 + 1e-9:
            raise ConfigurationError("busy_fraction must be in [0, 1]")
        core_w = self.cores * (
            self.core_idle_w
            + busy_fraction * (self.core_active_w - self.core_idle_w)
        )
        return core_w + self.nic_idle_w + activity_w

    def server_power_w(self, stack_side_w: float, num_stacks: int = 1) -> float:
        """Wall watts for an aggregate stack-side draw: chassis floor
        plus delivery-grossed stack power (``num_stacks`` scales the
        single-stack draw when the DES models one of many)."""
        if num_stacks < 1:
            raise ConfigurationError("num_stacks must be at least 1")
        total = stack_side_w * num_stacks
        return self.chassis_w + total * (1.0 + self.delivery_loss_fraction)
