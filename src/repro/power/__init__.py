"""Power modelling: component, stack, and server budget arithmetic,
plus the dynamic (activity-priced) model behind the energy meter."""

from repro.power.model import PowerBudget, DEFAULT_BUDGET, stack_power_w, server_power_w
from repro.power.dynamic import CORE_IDLE_FRACTION, DynamicPowerModel
from repro.power.tco import CostModel, DEFAULT_COSTS, FleetCost

__all__ = [
    "PowerBudget",
    "DEFAULT_BUDGET",
    "stack_power_w",
    "server_power_w",
    "CORE_IDLE_FRACTION",
    "DynamicPowerModel",
    "CostModel",
    "DEFAULT_COSTS",
    "FleetCost",
]
