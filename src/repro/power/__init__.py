"""Power modelling: component, stack, and server budget arithmetic."""

from repro.power.model import PowerBudget, DEFAULT_BUDGET, stack_power_w, server_power_w
from repro.power.tco import CostModel, DEFAULT_COSTS, FleetCost

__all__ = [
    "PowerBudget",
    "DEFAULT_BUDGET",
    "stack_power_w",
    "server_power_w",
    "CostModel",
    "DEFAULT_COSTS",
    "FleetCost",
]
