"""Total-cost-of-ownership model for the data-center economics of §2.2.

The paper's motivation is monetary: data-center real estate is expensive
(Google spending $390M on an expansion, Facebook $1.5B on a new site),
and ~25 % of the fleet is key-value stores.  This module prices a server
fleet the way capacity planners do — capex amortised over a depreciation
window, energy at PUE-inflated wall power, and rack space at a monthly
per-U rate — so density improvements can be expressed in dollars.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

HOURS_PER_MONTH = 730.5


@dataclass(frozen=True)
class CostModel:
    """Unit prices for fleet TCO."""

    energy_usd_per_kwh: float = 0.07
    pue: float = 1.5
    rack_unit_usd_per_month: float = 18.0
    depreciation_years: float = 3.0

    def __post_init__(self) -> None:
        if self.energy_usd_per_kwh < 0 or self.rack_unit_usd_per_month < 0:
            raise ConfigurationError("unit prices cannot be negative")
        if self.pue < 1.0:
            raise ConfigurationError("PUE cannot be below 1")
        if self.depreciation_years <= 0:
            raise ConfigurationError("depreciation window must be positive")

    # --- per-server components (over the depreciation window) -----------------

    def energy_cost_usd(self, wall_power_w: float) -> float:
        """Energy cost of one server over the window, PUE-inflated."""
        if wall_power_w < 0:
            raise ConfigurationError("power cannot be negative")
        kwh = (
            wall_power_w
            * self.pue
            / 1000.0
            * self.depreciation_years
            * 12
            * HOURS_PER_MONTH
        )
        return kwh * self.energy_usd_per_kwh

    def space_cost_usd(self, rack_units: float) -> float:
        """Rack-space cost of one server over the window."""
        if rack_units <= 0:
            raise ConfigurationError("rack units must be positive")
        return rack_units * self.rack_unit_usd_per_month * self.depreciation_years * 12

    def server_tco_usd(
        self, capex_usd: float, wall_power_w: float, rack_units: float = 1.5
    ) -> float:
        """Capex + energy + space for one server over the window."""
        if capex_usd < 0:
            raise ConfigurationError("capex cannot be negative")
        return (
            capex_usd
            + self.energy_cost_usd(wall_power_w)
            + self.space_cost_usd(rack_units)
        )


DEFAULT_COSTS = CostModel()


@dataclass(frozen=True)
class FleetCost:
    """TCO summary of a homogeneous fleet serving a workload."""

    server_name: str
    servers: int
    tco_usd: float
    tps: float
    capacity_gb: float
    rack_units: float

    @property
    def usd_per_mtps(self) -> float:
        return self.tco_usd / (self.tps / 1e6) if self.tps else float("inf")

    @property
    def usd_per_gb(self) -> float:
        return self.tco_usd / self.capacity_gb if self.capacity_gb else float("inf")
