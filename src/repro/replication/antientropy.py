"""Anti-entropy: background digest sweeps that reconverge replicas.

Hinted handoff repairs the failures the coordinator *saw*; anti-entropy
repairs the ones it didn't (dropped hints, a coordinator restart, a
replica that lost data silently).  Replicas periodically compare
compact digests of their key ranges and copy the newest version of any
key where they disagree.

The model is Merkle-less but keeps the property that makes Merkle trees
cheap: synchronized buckets are skipped without looking at their items.
Each node's live keys are folded into ``buckets`` FNV-hashed buckets per
replica group; only buckets whose (key, version) digests differ across
the group are expanded into per-key comparison and repair.  Repairs per
sweep are capped so a cold restarted node warms over several sweeps
instead of one giant stall — the cap is the sweep's "instruction
budget" in the cost model (docs/MODELING.md).

:meth:`AntiEntropySweeper.install` schedules sweeps as recurring events
on a :class:`~repro.sim.events.Simulator`, which is how the full-system
DES runs it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.kvstore.hashing import fnv1a_32
from repro.kvstore.items import Item
from repro.telemetry.metrics import MetricsRegistry, NULL_REGISTRY


@dataclass(frozen=True)
class SweepReport:
    """What one anti-entropy sweep found and fixed.

    ``repairs_by_node``/``bytes_by_node`` break the repair writes down
    per receiving node, which is what lets a timing layer (the
    full-system DES) charge each core the service time its repairs
    cost.
    """

    buckets_scanned: int
    buckets_dirty: int
    keys_compared: int
    repairs: int
    truncated: bool
    repairs_by_node: dict[str, int] = field(default_factory=dict)
    bytes_by_node: dict[str, int] = field(default_factory=dict)


class AntiEntropySweeper:
    """Periodic digest comparison + repair across a replica group.

    ``coordinator`` is duck-typed: anything with ``stores`` (name ->
    KVStore), ``live_nodes``, ``node_is_down``, and
    ``placement.replicas_for`` works — both the client-side
    :class:`~repro.replication.coordinator.ReplicationCoordinator` and
    the full-system DES's store fabric qualify.
    """

    def __init__(
        self,
        coordinator,
        buckets: int = 64,
        max_repairs_per_sweep: int = 10_000,
        registry: MetricsRegistry = NULL_REGISTRY,
    ):
        if buckets < 1:
            raise ConfigurationError("anti-entropy needs at least one bucket")
        if max_repairs_per_sweep < 1:
            raise ConfigurationError("max_repairs_per_sweep must be positive")
        self.coordinator = coordinator
        self.buckets = buckets
        self.max_repairs_per_sweep = max_repairs_per_sweep
        self.sweeps = 0
        self.total_repairs = 0
        self._sweeps_total = registry.counter("replication_antientropy_sweeps_total")
        self._repairs_total = registry.counter(
            "replication_antientropy_repairs_total"
        )
        self._dirty_total = registry.counter(
            "replication_antientropy_dirty_buckets_total"
        )

    def _bucket_of(self, key: bytes) -> int:
        return fnv1a_32(key) % self.buckets

    def sweep(self) -> SweepReport:
        """One full pass: compare digests group-wise, repair to newest.

        The comparison unit is *(replica group, bucket)*: keys sharing a
        preferred list must be identical across that list's live
        members, and a bucket whose order-independent (key, version)
        digest matches on every live member is skipped without touching
        its items — the Merkle-tree property, flattened to one level.
        A live member holding nothing in a bucket digests to zero, so
        "restarted cold" reads as every bucket dirty, as it should.
        """
        live = list(self.coordinator.live_nodes)
        repairs = 0
        compared = 0
        truncated = False
        repairs_by_node: dict[str, int] = {}
        bytes_by_node: dict[str, int] = {}
        group_of: dict[bytes, tuple[str, ...]] = {}
        # (group, bucket) -> node -> digest / items held there.
        digests: dict[tuple, dict[str, int]] = {}
        contents: dict[tuple, dict[str, list[Item]]] = {}
        for node in live:
            for item in self.coordinator.stores[node].items_live():
                group = group_of.get(item.key)
                if group is None:
                    group = self.coordinator.placement.replicas_for(item.key)
                    group_of[item.key] = group
                if node not in group:
                    continue  # a leftover copy placement no longer maps here
                cell = (group, self._bucket_of(item.key))
                fold = (
                    fnv1a_32(item.key) * 2_654_435_761 + item.flags
                ) & 0xFFFFFFFFFFFFFFFF
                per = digests.setdefault(cell, {})
                per[node] = (per.get(node, 0) + fold) & 0xFFFFFFFFFFFFFFFF
                contents.setdefault(cell, {}).setdefault(node, []).append(item)
        scanned = len(digests)
        dirty = 0
        for cell in sorted(digests, key=lambda c: (c[0], c[1])):
            group, _bucket = cell
            members = [n for n in group if not self.coordinator.node_is_down(n)]
            if len(members) < 2:
                continue  # nobody to reconverge with
            if len({digests[cell].get(n, 0) for n in members}) <= 1:
                continue  # all live members agree on this bucket
            dirty += 1
            self._dirty_total.inc()
            # Newest version of every key any live member holds here.
            newest: dict[bytes, Item] = {}
            holders: dict[bytes, dict[str, int]] = {}
            for node in members:
                for item in contents[cell].get(node, ()):
                    compared += 1
                    holders.setdefault(item.key, {})[node] = item.flags
                    best = newest.get(item.key)
                    if best is None or item.flags > best.flags:
                        newest[item.key] = item
            for key in sorted(newest):
                winner = newest[key]
                for node in members:
                    have = holders.get(key, {}).get(node)
                    if have is not None and have >= winner.flags:
                        continue
                    if repairs >= self.max_repairs_per_sweep:
                        truncated = True
                        break
                    store = self.coordinator.stores[node]
                    ttl = (
                        max(winner.expire_at - store.now, 0.0)
                        if winner.expire_at
                        else 0.0
                    )
                    store.set(key, winner.value, flags=winner.flags, expire=ttl)
                    repairs += 1
                    repairs_by_node[node] = repairs_by_node.get(node, 0) + 1
                    bytes_by_node[node] = bytes_by_node.get(node, 0) + len(
                        winner.value
                    )
                if truncated:
                    break
            if truncated:
                break
        self.sweeps += 1
        self.total_repairs += repairs
        self._sweeps_total.inc()
        self._repairs_total.inc(repairs)
        return SweepReport(
            buckets_scanned=scanned,
            buckets_dirty=dirty,
            keys_compared=compared,
            repairs=repairs,
            truncated=truncated,
            repairs_by_node=repairs_by_node,
            bytes_by_node=bytes_by_node,
        )

    def install(self, sim, interval_s: float, horizon_s: float) -> None:
        """Schedule recurring sweeps on a DES until the horizon.

        ``sim`` is duck-typed to :class:`repro.sim.events.Simulator`
        (needs ``recurring``).  The first sweep fires at
        ``interval_s``, not at zero — an empty cluster has nothing to
        reconverge.
        """
        if interval_s <= 0:
            raise ConfigurationError("anti-entropy interval must be positive")
        sim.recurring(interval_s, lambda _t: self.sweep(), horizon_s)
