"""The client-side quorum coordinator: N/R/W over per-node stores.

Memcached servers never talk to each other, so replication — like
sharding — lives in the client.  The coordinator owns the ring, the
stack-aware placement, one :class:`~repro.kvstore.store.KVStore` per
node, and a monotone version epoch:

* **writes** fan to every member of the key's preferred list, stamped
  with a fresh version (carried in the item's ``flags`` field, where a
  production store would carry a vector clock); a write succeeds once
  ``w`` live replicas acknowledge.  Copies destined for a down replica
  are parked as hints (:mod:`repro.replication.handoff`) and replayed
  at readmission.
* **reads** consult the first ``r`` live replicas (the preferred list
  with down members excluded, which deterministically extends the
  successor walk).  The newest version wins; any consulted replica that
  is stale or missing the key is **read-repaired** with the winning
  copy on the spot.
* **crash/restart** follow §2.3 cache semantics: a crashed node loses
  its contents, and recovery is hint replay plus anti-entropy, not a
  state restore.

Everything is a pure function of (operations, membership history), so a
seeded driver replays bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigurationError
from repro.kvstore.consistent_hash import ConsistentHashRing
from repro.kvstore.items import Item
from repro.kvstore.store import KVStore, StoreResult
from repro.replication.config import QuorumConfig
from repro.replication.handoff import HintQueue
from repro.replication.placement import ReplicaPlacement, default_stack_of
from repro.telemetry.metrics import MetricsRegistry, NULL_REGISTRY
from repro.telemetry.tracing import RequestTrace


@dataclass(frozen=True)
class WriteOutcome:
    """What one quorum write achieved."""

    ok: bool
    version: int
    acks: int
    hinted: int
    replicas: tuple[str, ...]


class ReplicationCoordinator:
    """A replicated, quorum-consistent view of a Memcached fleet."""

    def __init__(
        self,
        node_names: list[str],
        memory_per_node_bytes: int,
        quorum: QuorumConfig = QuorumConfig(),
        vnodes: int = 100,
        stack_of: Callable[[str], str] = default_stack_of,
        hinted_handoff: bool = True,
        max_hints_per_node: int = 100_000,
        registry: MetricsRegistry = NULL_REGISTRY,
        policy: str = "lru",
    ):
        if not node_names:
            raise ConfigurationError("a replica group needs at least one node")
        if len(set(node_names)) != len(node_names):
            raise ConfigurationError("node names must be unique")
        if quorum.n > len(node_names):
            raise ConfigurationError(
                f"replication factor {quorum.n} exceeds the "
                f"{len(node_names)}-node cluster"
            )
        self.quorum = quorum
        self.ring = ConsistentHashRing(node_names, vnodes=vnodes)
        self.placement = ReplicaPlacement(self.ring, quorum.n, stack_of)
        self.stores: dict[str, KVStore] = {
            name: KVStore(memory_per_node_bytes, policy=policy)
            for name in node_names
        }
        self.hinted_handoff = hinted_handoff
        self.hints = HintQueue(
            max_hints_per_node=max_hints_per_node, registry=registry
        )
        self._down: set[str] = set()
        self._version = 0
        # Outcome counters (mirrored into the registry's replication_*).
        self.replica_writes = 0
        self.quorum_write_failures = 0
        self.read_repairs = 0
        self.divergence_detected = 0
        self.divergence_healed = 0
        self.unavailable_reads = 0
        self._replica_writes_total = registry.counter(
            "replication_replica_writes_total"
        )
        self._write_failures_total = registry.counter(
            "replication_quorum_write_failures_total"
        )
        self._read_repairs_total = registry.counter("replication_read_repairs_total")
        self._divergence_total = registry.counter(
            "replication_divergence_detected_total"
        )
        self._healed_total = registry.counter("replication_divergence_healed_total")
        self._unavailable_total = registry.counter(
            "replication_unavailable_reads_total"
        )
        self._nodes_down_gauge = registry.gauge("replication_nodes_down")

    # --- membership -------------------------------------------------------------

    @property
    def node_names(self) -> list[str]:
        return sorted(self.stores)

    @property
    def live_nodes(self) -> list[str]:
        return sorted(set(self.stores) - self._down)

    def node_is_down(self, name: str) -> bool:
        return name in self._down

    def crash_node(self, name: str) -> None:
        """Transient failure: contents lost now (§2.3), node back later.

        The node stays on the ring — preferred lists are stable — but
        reads and quorum counting exclude it, and writes it should have
        taken are parked as hints.
        """
        if name not in self.stores:
            raise ConfigurationError(f"node {name!r} not in the cluster")
        if name in self._down:
            raise ConfigurationError(f"node {name!r} is already down")
        self._down.add(name)
        self.stores[name].flush_all()
        self._nodes_down_gauge.set(len(self._down))

    def restart_node(self, name: str) -> int:
        """Readmit a crashed node cold and replay its parked hints.

        Returns the number of hints replayed into it.
        """
        if name not in self._down:
            raise ConfigurationError(f"node {name!r} is not down")
        self._down.discard(name)
        self._nodes_down_gauge.set(len(self._down))
        replayed = 0
        store = self.stores[name]
        for hint in self.hints.drain(name):
            value, flags_version, expire = hint.payload
            existing = store.peek(hint.key)
            if existing is not None and existing.flags >= flags_version:
                continue
            if store.set(hint.key, value, flags=flags_version, expire=expire) is (
                StoreResult.STORED
            ):
                replayed += 1
        return replayed

    # --- versions ---------------------------------------------------------------

    def _next_version(self) -> int:
        self._version += 1
        return self._version

    @property
    def current_version(self) -> int:
        """The newest version the coordinator has issued."""
        return self._version

    # --- data plane --------------------------------------------------------------

    def replicas_for(self, key: bytes) -> tuple[str, ...]:
        """The key's preferred list (full membership, down included)."""
        return self.placement.replicas_for(key)

    def read_targets(self, key: bytes) -> tuple[str, ...]:
        """The first R live replicas (successor walk past down nodes)."""
        live = self.placement.replicas_for(key, exclude=self._down)
        return live[: self.quorum.r]

    def put(
        self,
        key: bytes,
        value: bytes,
        expire: float = 0.0,
        trace: RequestTrace | None = None,
        now_s: float = 0.0,
    ) -> WriteOutcome:
        """Quorum write: fan to the preferred list, succeed at W acks.

        With a ``trace``, each replica interaction becomes a
        zero-duration child span at ``now_s`` (the coordinator is
        instantaneous in this functional model — durations belong to the
        DES): ``replica_put`` per acknowledging replica, ``replica_hint``
        per copy parked for a down one.
        """
        version = self._next_version()
        replicas = self.replicas_for(key)
        acks = 0
        hinted = 0
        for node in replicas:
            if node in self._down:
                if self.hinted_handoff:
                    if self.hints.park(
                        node,
                        key,
                        version,
                        (value, version, expire),
                        trace_id=trace.request_id if trace is not None else None,
                    ):
                        hinted += 1
                        if trace is not None:
                            trace.add_span(
                                "replica_hint", now_s, 0.0,
                                kind="producer", node=node,
                            )
                continue
            if self.stores[node].set(key, value, flags=version, expire=expire) is (
                StoreResult.STORED
            ):
                acks += 1
                self.replica_writes += 1
                self._replica_writes_total.inc()
                if trace is not None:
                    trace.add_span(
                        "replica_put", now_s, 0.0, kind="server", node=node
                    )
        ok = acks >= min(self.quorum.w, len(replicas))
        if not ok:
            self.quorum_write_failures += 1
            self._write_failures_total.inc()
        return WriteOutcome(
            ok=ok, version=version, acks=acks, hinted=hinted, replicas=replicas
        )

    def get(
        self,
        key: bytes,
        trace: RequestTrace | None = None,
        now_s: float = 0.0,
    ) -> Item | None:
        """Quorum read: newest of R live replicas, repairing the stale.

        Returns the winning :class:`Item` (its ``flags`` field is the
        version), or None when every consulted replica misses.  Stats
        (``cmd_get``/hits/misses) accrue on the consulted stores exactly
        as R independent GETs would.  With a ``trace``, each consulted
        replica emits a zero-duration ``replica_read`` span and each
        repaired one a ``read_repair`` span at ``now_s``.
        """
        targets = self.read_targets(key)
        if not targets:
            self.unavailable_reads += 1
            self._unavailable_total.inc()
            return None
        reads = [(node, self.stores[node].get(key)) for node in targets]
        if trace is not None:
            for node in targets:
                trace.add_span("replica_read", now_s, 0.0, kind="server", node=node)
        winner: Item | None = None
        for _node, item in reads:
            if item is not None and (winner is None or item.flags > winner.flags):
                winner = item
        if winner is None:
            return None
        stale = [
            node
            for node, item in reads
            if item is None or item.flags < winner.flags
        ]
        if stale:
            self.divergence_detected += 1
            self._divergence_total.inc()
            healed_all = True
            for node in stale:
                store = self.stores[node]
                # Item.expire_at is absolute; set() wants a TTL.  Clocks
                # advance in lockstep, so the remaining life transfers.
                ttl = max(winner.expire_at - store.now, 0.0) if winner.expire_at else 0.0
                result = store.set(
                    key, winner.value, flags=winner.flags, expire=ttl
                )
                if result is StoreResult.STORED:
                    self.read_repairs += 1
                    self._read_repairs_total.inc()
                    if trace is not None:
                        trace.add_span(
                            "read_repair", now_s, 0.0, kind="server", node=node
                        )
                else:
                    healed_all = False
            if healed_all:
                self.divergence_healed += 1
                self._healed_total.inc()
        return winner

    def delete(self, key: bytes) -> bool:
        """Delete from every live preferred replica.

        Down replicas are *not* hinted: without tombstones, a parked
        delete replayed after newer writes would be wrong, and a missed
        delete can resurface via anti-entropy — the documented Dynamo
        caveat, which this model keeps rather than hides.
        """
        deleted = False
        for node in self.replicas_for(key):
            if node in self._down:
                continue
            if self.stores[node].delete(key) is StoreResult.DELETED:
                deleted = True
        return deleted

    def advance_time(self, delta: float) -> None:
        for store in self.stores.values():
            store.advance_time(delta)

    # --- accounting ----------------------------------------------------------------

    def item_count(self) -> int:
        """Total stored copies across replicas (≈ N x distinct keys)."""
        return sum(len(store) for store in self.stores.values())

    def hit_rate(self) -> float:
        gets = sum(s.stats.cmd_get for s in self.stores.values())
        hits = sum(s.stats.get_hits for s in self.stores.values())
        return hits / gets if gets else 0.0
