"""Quorum replication over the DHT: placement, coordination, repair.

The subsystem splits along Dynamo's seams:

* :mod:`~repro.replication.config` — the N/R/W knobs.
* :mod:`~repro.replication.placement` — preferred lists: N distinct
  physical successors on the ring, stack-aware.
* :mod:`~repro.replication.coordinator` — the client-side quorum
  coordinator (fan-out writes, version-resolved reads, read-repair).
* :mod:`~repro.replication.handoff` — hinted handoff for down replicas.
* :mod:`~repro.replication.antientropy` — background digest sweeps.
"""

# kvstore.client imports placement/config from this package while
# ``repro.kvstore`` is itself mid-import; eager re-exports here would
# close that cycle.  PEP 562 lazy attributes (the same pattern as
# ``repro.sim``) keep ``from repro.replication import X`` working
# without it.
_LAZY = {
    "QuorumConfig": "repro.replication.config",
    "ReplicationConfig": "repro.replication.config",
    "SINGLE_COPY": "repro.replication.config",
    "DEFAULT_REPLICATION": "repro.replication.config",
    "ReplicaPlacement": "repro.replication.placement",
    "default_stack_of": "repro.replication.placement",
    "ReplicationCoordinator": "repro.replication.coordinator",
    "WriteOutcome": "repro.replication.coordinator",
    "Hint": "repro.replication.handoff",
    "HintQueue": "repro.replication.handoff",
    "AntiEntropySweeper": "repro.replication.antientropy",
    "SweepReport": "repro.replication.antientropy",
}

__all__ = sorted(_LAZY)


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
