"""Replica placement: N distinct physical successors, stack-aware.

A key's *preferred list* is the first N distinct physical nodes on the
consistent-hash ring walking clockwise from the key's point (the FAWN-KV
chain).  The paper's density argument packs many stacks into one
enclosure, so a stack is the natural failure domain: the skip rule
refuses to put two replicas on nodes of the same stack while distinct
stacks remain, falling back to distinct nodes only when the topology is
too small (fewer stacks than replicas).

Placement is a pure function of ring membership and the ``exclude`` set,
so re-placement when nodes crash or restart is deterministic: excluding
a down node simply extends the successor walk past it, and readmitting
it restores the exact original preferred list.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.errors import ConfigurationError
from repro.kvstore.consistent_hash import ConsistentHashRing
from repro.replication.config import QuorumConfig


def default_stack_of(node: str) -> str:
    """A node's failure domain: the ``stack:`` prefix if the name has
    one (``stack0:core2`` -> ``stack0``), else the node itself."""
    stack, sep, _rest = node.partition(":")
    return stack if sep else node


class ReplicaPlacement:
    """Maps keys to replica sets over a :class:`ConsistentHashRing`."""

    def __init__(
        self,
        ring: ConsistentHashRing,
        n: int,
        stack_of: Callable[[str], str] = default_stack_of,
    ):
        if n < 1:
            raise ConfigurationError("replication factor n must be >= 1")
        self.ring = ring
        self.n = n
        self.stack_of = stack_of

    @classmethod
    def for_quorum(
        cls,
        ring: ConsistentHashRing,
        quorum: QuorumConfig,
        stack_of: Callable[[str], str] = default_stack_of,
    ) -> "ReplicaPlacement":
        return cls(ring, quorum.n, stack_of)

    def replicas_for(
        self, key: bytes, exclude: Iterable[str] = ()
    ) -> tuple[str, ...]:
        """The key's preferred list: up to N nodes in ring order.

        Nodes in ``exclude`` (e.g. currently-down members) are skipped,
        which extends the walk to the next successors — the
        deterministic re-placement crash handling relies on.  The
        stack-skip rule keeps replica stacks distinct while possible;
        when fewer distinct stacks than replicas exist, the remainder is
        filled with distinct nodes in walk order (never the same node
        twice).
        """
        excluded = set(exclude)
        chosen: list[str] = []
        used_stacks: set[str] = set()
        stack_conflicts: list[str] = []
        for node in self.ring.successors(key):
            if node in excluded:
                continue
            stack = self.stack_of(node)
            if stack in used_stacks:
                stack_conflicts.append(node)
                continue
            chosen.append(node)
            used_stacks.add(stack)
            if len(chosen) == self.n:
                return tuple(chosen)
        for node in stack_conflicts:
            chosen.append(node)
            if len(chosen) == self.n:
                break
        return tuple(chosen)

    def primary_for(self, key: bytes, exclude: Iterable[str] = ()) -> str:
        """The first live preferred replica.

        Raises:
            ConfigurationError: when every node is excluded or the ring
                is empty.
        """
        replicas = self.replicas_for(key, exclude)
        if not replicas:
            raise ConfigurationError("no replica available for key")
        return replicas[0]

    def stacks_for(self, key: bytes, exclude: Iterable[str] = ()) -> tuple[str, ...]:
        """The failure domains the key's replicas land on."""
        return tuple(self.stack_of(node) for node in self.replicas_for(key, exclude))
