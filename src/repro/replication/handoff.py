"""Hinted handoff: writes for a down replica, parked for replay.

When a write's preferred list contains a down node, the coordinator
cannot deliver that copy — but it can remember it.  A :class:`Hint` is
the parked copy (key, version, and a transport-specific payload); the
:class:`HintQueue` holds them per destination node, newest version wins
per key, and :meth:`HintQueue.drain` hands them back in deterministic
(version, key) order when the node is readmitted.

The queue is transport-agnostic: the client-side coordinator parks the
actual ``(value, flags, expire)`` tuple, while the full-system DES parks
just the value size it needs to regenerate the functional write.  A
bounded queue models a real coordinator's hint buffer: beyond
``max_hints_per_node`` distinct keys, new hints for unseen keys are
dropped (and counted) rather than growing without bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.telemetry.metrics import MetricsRegistry, NULL_REGISTRY


@dataclass(frozen=True)
class Hint:
    """One parked write for a down replica.

    ``trace_id`` is the request id of the originating write's causal
    trace (``None`` when tracing is off): replaying the hint emits a
    follow-from span linked back to that trace.
    """

    node: str
    key: bytes
    version: int
    payload: object = None
    trace_id: int | None = None


class HintQueue:
    """Per-node parking lot for writes a down replica missed."""

    def __init__(
        self,
        max_hints_per_node: int = 100_000,
        registry: MetricsRegistry = NULL_REGISTRY,
    ):
        if max_hints_per_node < 1:
            raise ConfigurationError("hint queue bound must be positive")
        self.max_hints_per_node = max_hints_per_node
        self._hints: dict[str, dict[bytes, Hint]] = {}
        self.queued = 0
        self.replayed = 0
        self.dropped = 0
        self._queued_total = registry.counter("replication_hints_queued_total")
        self._replayed_total = registry.counter("replication_hints_replayed_total")
        self._dropped_total = registry.counter("replication_hints_dropped_total")
        self._depth_gauge = registry.gauge("replication_hint_queue_depth")

    def park(
        self,
        node: str,
        key: bytes,
        version: int,
        payload: object = None,
        trace_id: int | None = None,
    ) -> bool:
        """Park one missed write; returns False if it was dropped.

        Per key only the newest version is kept (replaying an old hint
        over a newer one would un-write it), so the queue depth is
        bounded by distinct keys, not write volume.
        """
        per_node = self._hints.setdefault(node, {})
        existing = per_node.get(key)
        if existing is None and len(per_node) >= self.max_hints_per_node:
            self.dropped += 1
            self._dropped_total.inc()
            return False
        if existing is not None and existing.version >= version:
            return False
        per_node[key] = Hint(
            node=node, key=key, version=version, payload=payload, trace_id=trace_id
        )
        self.queued += 1
        self._queued_total.inc()
        self._depth_gauge.set(len(self))
        return True

    def depth(self, node: str | None = None) -> int:
        """Hints currently parked (for one node, or in total)."""
        if node is not None:
            return len(self._hints.get(node, {}))
        return len(self)

    def __len__(self) -> int:
        return sum(len(per_node) for per_node in self._hints.values())

    @property
    def nodes(self) -> frozenset[str]:
        """Nodes with at least one parked hint."""
        return frozenset(n for n, h in self._hints.items() if h)

    def drain(self, node: str) -> tuple[Hint, ...]:
        """Remove and return the node's hints in (version, key) order —
        the deterministic replay sequence readmission applies."""
        per_node = self._hints.pop(node, {})
        hints = tuple(
            sorted(per_node.values(), key=lambda hint: (hint.version, hint.key))
        )
        self.replayed += len(hints)
        self._replayed_total.inc(len(hints))
        self._depth_gauge.set(len(self))
        return hints
