"""Quorum replication parameters (the N/R/W knobs).

Replication in this library is Dynamo/FAWN-KV shaped: each key has N
preferred replicas placed along the consistent-hash ring, writes fan to
all N and succeed once W replicas acknowledge, reads consult R replicas
and resolve divergence by per-item version.  ``R + W > N`` makes read
and write quorums overlap, which is what guarantees a read sees the
newest acknowledged write; smaller quorums trade that guarantee for
latency/availability, exactly as production stores let operators do.

:class:`QuorumConfig` is the pure N/R/W triple shared by the client-side
coordinator and the replica-aware :class:`~repro.kvstore.client.ResilientClient`.
:class:`ReplicationConfig` adds the knobs the full-system DES needs on
top: hinted handoff on/off and the anti-entropy sweep cadence.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class QuorumConfig:
    """Replica count and read/write quorum sizes.

    ``n`` replicas per key, a write needs ``w`` acknowledgements, a read
    consults ``r`` replicas.  The default 3/2/2 is the classic
    overlapping quorum.
    """

    n: int = 3
    r: int = 2
    w: int = 2

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ConfigurationError("replication factor n must be >= 1")
        if not 1 <= self.r <= self.n:
            raise ConfigurationError("read quorum r must be in [1, n]")
        if not 1 <= self.w <= self.n:
            raise ConfigurationError("write quorum w must be in [1, n]")

    @property
    def overlapping(self) -> bool:
        """Whether read and write quorums are guaranteed to intersect."""
        return self.r + self.w > self.n


@dataclass(frozen=True)
class ReplicationConfig:
    """Everything the full-system DES needs to run replicated.

    ``n``/``r``/``w`` are the quorum triple.  ``hinted_handoff`` parks
    writes destined for a down replica on the coordinator and replays
    them at readmission.  ``anti_entropy_interval_s`` schedules the
    background reconvergence sweep as DES events (``None`` disables it);
    each sweep repairs at most ``max_repairs_per_sweep`` keys so a cold
    restarted node warms over several sweeps instead of one giant stall.
    """

    n: int = 3
    r: int = 2
    w: int = 2
    hinted_handoff: bool = True
    anti_entropy_interval_s: float | None = 0.25
    anti_entropy_buckets: int = 64
    max_repairs_per_sweep: int = 10_000

    def __post_init__(self) -> None:
        # Reuse the quorum validation (raises ConfigurationError).
        QuorumConfig(self.n, self.r, self.w)
        if (
            self.anti_entropy_interval_s is not None
            and self.anti_entropy_interval_s <= 0
        ):
            raise ConfigurationError(
                "anti-entropy interval must be positive (or None)"
            )
        if self.anti_entropy_buckets < 1:
            raise ConfigurationError("anti-entropy needs at least one bucket")
        if self.max_repairs_per_sweep < 1:
            raise ConfigurationError("max_repairs_per_sweep must be positive")

    @property
    def quorum(self) -> QuorumConfig:
        return QuorumConfig(self.n, self.r, self.w)


#: Single-copy operation: the pre-replication behaviour, spelled out.
SINGLE_COPY = ReplicationConfig(n=1, r=1, w=1)

#: The classic overlapping quorum the benchmarks and CLI default to.
DEFAULT_REPLICATION = ReplicationConfig(n=3, r=2, w=2)
