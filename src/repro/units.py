"""Unit constants and conversion helpers used throughout the library.

All internal computation uses SI base units: seconds, bytes, watts,
square millimetres (area is the one deliberate exception — the paper's
component catalogue is given in mm^2, so we keep it).  These helpers exist
so that calling code can say ``40 * units.US`` instead of ``40e-6`` and a
reviewer can audit magnitudes at a glance.
"""

from __future__ import annotations

# --- time ------------------------------------------------------------------
NS = 1e-9
US = 1e-6
MS = 1e-3
SECOND = 1.0

# --- data sizes (bytes; powers of two, matching the paper's usage) ----------
KB = 1024
MB = 1024 * KB
GB = 1024 * MB
TB = 1024 * GB

# --- rates -------------------------------------------------------------------
KTPS = 1e3
MTPS = 1e6

# --- power -------------------------------------------------------------------
MW = 1e-3  # milliwatt expressed in watts
WATT = 1.0

# --- area --------------------------------------------------------------------
MM2 = 1.0
CM2 = 100.0  # mm^2 per cm^2
INCH = 25.4  # mm per inch


def to_kilo(value: float) -> float:
    """Express ``value`` in thousands (e.g. TPS -> KTPS)."""
    return value / 1e3


def to_million(value: float) -> float:
    """Express ``value`` in millions (e.g. TPS -> MTPS)."""
    return value / 1e6


def gb(value_bytes: float) -> float:
    """Express a byte count in GB (binary)."""
    return value_bytes / GB


def gbps(bytes_per_second: float) -> float:
    """Express a byte rate in GB/s (binary)."""
    return bytes_per_second / GB


def mm2_to_cm2(area_mm2: float) -> float:
    """Convert mm^2 to cm^2."""
    return area_mm2 / CM2


def parse_size(text: str) -> int:
    """Parse a human request-size label such as ``"64"``, ``"4K"`` or ``"1M"``.

    These labels are how the paper's x-axes are written; benchmarks and
    examples accept them directly.

    >>> parse_size("64")
    64
    >>> parse_size("4K")
    4096
    >>> parse_size("1M")
    1048576
    """
    text = text.strip().upper()
    multipliers = {"K": KB, "M": MB, "G": GB}
    if text and text[-1] in multipliers:
        return int(float(text[:-1]) * multipliers[text[-1]])
    return int(text)


def format_size(num_bytes: int) -> str:
    """Inverse of :func:`parse_size` for axis labels.

    >>> format_size(65536)
    '64K'
    """
    for suffix, mult in (("G", GB), ("M", MB), ("K", KB)):
        if num_bytes >= mult and num_bytes % mult == 0:
            return f"{num_bytes // mult}{suffix}"
    return str(num_bytes)
