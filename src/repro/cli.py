"""Command-line interface: regenerate any paper artefact from a shell.

Usage::

    python -m repro table1|table2|table3|table4
    python -m repro fig4|fig5|fig6|fig7|fig8
    python -m repro headlines
    python -m repro sensitivity [--factor 1.5]
    python -m repro thermal [--cores 32] [--family mercury]
    python -m repro plan --dataset-gb 28672 --tps 50e6 [--value-bytes 64]
    python -m repro evaluate [--family mercury] [--cores 32] [--verb GET]
                             [--size 64]
    python -m repro telemetry [--family mercury] [--cores 8] [--load 0.6]
                              [--duration 0.2] [--out telemetry-out]
                              [--profile] [--interval 0.05]
                              [--scenario crash-restart]
    python -m repro trace [--scenario crash-restart] [--replicas 3]
                          [--cores 4] [--load 0.5] [--duration 0.5]
                          [--out trace-out]
    python -m repro replication [--replicas 1,2,3] [--scenario crash-restart]
                                [--cores 4] [--load 0.3] [--duration 4.0]
    python -m repro sweep [--kind fig7|sensitivity|full-system]
                          [--parallel 4] [--no-cache] [--export out.json]
    python -m repro flashstore [--put-fractions 0.1,0.5,0.9] [--cores 4]
                               [--rate 20000] [--duration 2.0]
                               [--export out.json]
"""

from __future__ import annotations

import argparse
from typing import Callable, Sequence

from repro.analysis import (
    compare_headlines,
    figure4_breakdown,
    figure5_mercury_latency_sweep,
    figure6_iridium_latency_sweep,
    figure7_density_vs_tps,
    figure8_power_vs_tps,
    render_series,
    render_table,
    table1_components,
    table2_memory_technologies,
    table3_configurations,
    table4_comparison,
)
from repro.analysis.sensitivity import headline_under, sensitivity_sweep
from repro.baselines import MEMCACHED_BAGS
from repro.core import (
    OperatingPoint,
    ServerDesign,
    evaluate_server,
    iridium_stack,
    mercury_stack,
    thermal_report,
)
from repro.core.calibration import DEFAULT_CALIBRATION
from repro.faults.schedule import PRESETS as _FAULT_PRESETS
from repro.core.provisioning import (
    Demand,
    candidate_from_baseline,
    candidate_from_design,
    cheapest_plan,
    plan_fleet,
)
from repro.units import parse_size

_TABLES: dict[str, tuple[Callable, str]] = {
    "table1": (table1_components, "Table 1: 3D-stack component power/area"),
    "table2": (table2_memory_technologies, "Table 2: memory technologies"),
    "table3": (table3_configurations, "Table 3: 1.5U maximum configurations"),
    "table4": (table4_comparison, "Table 4: comparison to prior art @64B"),
}

_FIGURES: dict[str, Callable] = {
    "fig4": figure4_breakdown,
    "fig5": figure5_mercury_latency_sweep,
    "fig6": figure6_iridium_latency_sweep,
    "fig7": figure7_density_vs_tps,
    "fig8": figure8_power_vs_tps,
}


def _stack_for(family: str, cores: int):
    build = mercury_stack if family.lower() == "mercury" else iridium_stack
    return build(cores=cores)


def _cmd_table(args: argparse.Namespace) -> str:
    builder, caption = _TABLES[args.artefact]
    headers, rows = builder()
    if args.export:
        from repro.analysis.export import write_artefact

        path = write_artefact(args.export, headers, rows)
        return f"wrote {path}"
    return render_table(headers, rows, caption=caption)


def _cmd_figure(args: argparse.Namespace) -> str:
    panels = _FIGURES[args.artefact]()
    if getattr(args, "chart", False):
        from repro.analysis.ascii_chart import series_chart

        return "\n\n".join(
            series_chart(panel.x_values, panel.series, title=panel.title)
            for panel in panels
        )
    if args.export:
        import json

        from repro.analysis.export import figure_to_json

        payload = [json.loads(figure_to_json(panel)) for panel in panels]
        from pathlib import Path

        path = Path(args.export)
        path.write_text(json.dumps(payload, indent=2))
        return f"wrote {path}"
    return "\n\n".join(
        render_series(panel.x_label, panel.x_values, panel.series, caption=panel.title)
        for panel in panels
    )


def _cmd_headlines(_args: argparse.Namespace) -> str:
    lines = [
        "Abstract headline ratios (vs Bags unless noted):",
        f"{'metric':40s}  {'paper':>7s}  {'ours':>7s}  {'error':>6s}",
    ]
    for c in compare_headlines():
        lines.append(
            f"{c.name:40s}  {c.paper:7.2f}  {c.measured:7.2f}  {c.relative_error:6.0%}"
        )
    return "\n".join(lines)


def _cmd_sensitivity(args: argparse.Namespace) -> str:
    baseline = headline_under(DEFAULT_CALIBRATION)
    rows = []
    for row in sensitivity_sweep(factor=args.factor):
        rows.append(
            [row.field, row.low["mercury_tps_x"], row.high["mercury_tps_x"],
             f"{row.max_relative_swing(baseline):.0%}",
             "yes" if row.conclusions_hold(baseline) else "NO"]
        )
    return render_table(
        [f"constant (x{args.factor} both ways)", "Mercury TPSx lo", "hi",
         "max swing", "conclusions hold"],
        rows,
        caption="Calibration sensitivity",
    )


def _cmd_thermal(args: argparse.Namespace) -> str:
    report = thermal_report(ServerDesign(stack=_stack_for(args.family, args.cores)))
    return (
        f"{report.name}: {report.stacks} stacks, server TDP "
        f"{report.server_tdp_w:.0f} W, {report.per_stack_tdp_w:.2f} W/stack "
        f"({report.power_density_w_per_cm2:.2f} W/cm^2), passive cooling "
        f"{'OK' if report.passively_coolable else 'INSUFFICIENT'} "
        f"(limit {report.passive_limit_w:.0f} W)"
    )


def _cmd_evaluate(args: argparse.Namespace) -> str:
    design = ServerDesign(stack=_stack_for(args.family, args.cores))
    point = OperatingPoint(verb=args.verb.upper(), value_bytes=parse_size(args.size))
    metrics = evaluate_server(design, point)
    return (
        f"{metrics.name} @ {args.verb.upper()} {args.size}B: "
        f"{metrics.stacks} stacks ({design.binding_constraint}-limited), "
        f"{metrics.cores} cores, {metrics.density_gb:.0f} GB, "
        f"{metrics.power_w:.0f} W, {metrics.tps / 1e6:.2f} MTPS, "
        f"{metrics.ktps_per_watt:.1f} KTPS/W, {metrics.ktps_per_gb:.2f} KTPS/GB"
    )


def _cmd_plan(args: argparse.Namespace) -> str:
    demand = Demand(
        dataset_gb=args.dataset_gb,
        peak_tps=args.tps,
        value_bytes=parse_size(args.value_bytes),
    )
    point = OperatingPoint(value_bytes=demand.value_bytes)
    candidates = [
        candidate_from_design(
            ServerDesign(stack=mercury_stack(32)), capex_usd=args.capex_3d, point=point
        ),
        candidate_from_design(
            ServerDesign(stack=iridium_stack(32)), capex_usd=args.capex_3d, point=point
        ),
        candidate_from_baseline(MEMCACHED_BAGS, capex_usd=args.capex_commodity),
    ]
    rows = []
    for candidate in candidates:
        plan = plan_fleet(candidate, demand)
        rows.append(
            [candidate.name, plan.servers, plan.binding,
             plan.cost.tco_usd / 1e3, plan.tier_rack_units,
             plan.cost.usd_per_gb]
        )
    best = cheapest_plan(candidates, demand)
    table = render_table(
        ["Server", "Count", "Bound by", "TCO (k$)", "Rack units", "$/GB"],
        rows,
        caption=(
            f"Fleet plan: {demand.dataset_gb:.0f} GB dataset, "
            f"{demand.peak_tps / 1e6:.1f} MTPS peak, {demand.value_bytes}B values"
        ),
    )
    return table + f"\n\nCheapest: {best.candidate.name} ({best.servers} servers)"


def _cmd_pareto(args: argparse.Namespace) -> str:
    from repro.analysis.pareto import pareto_frontier
    from repro.units import GB

    objectives = tuple(args.objectives.split(","))
    frontier = pareto_frontier(objectives)
    rows = []
    for point in frontier:
        metrics = point.metrics
        rows.append(
            [metrics.name, metrics.stacks, metrics.density_gb,
             round(metrics.power_w), metrics.tps / 1e6,
             metrics.ktps_per_watt]
        )
    return render_table(
        ["Design", "Stacks", "GB", "W", "MTPS", "KTPS/W"],
        rows,
        caption=f"Pareto frontier on ({args.objectives}) — "
                f"{len(frontier)} of 36 designs survive",
    )


def _cmd_telemetry(args: argparse.Namespace) -> str:
    from pathlib import Path

    from repro.exp.scenarios import get_scenario
    from repro.sim.full_system import FullSystemStack
    from repro.telemetry import (
        SimProfiler,
        SloMonitor,
        TelemetrySession,
        TimeSeriesRecorder,
        default_burn_rules,
        paper_sla_objectives,
        summary_table,
        write_prometheus,
        write_timeseries_jsonl,
        write_trace_jsonl,
    )
    from repro.units import MB

    scenario = get_scenario(args.scenario or "baseline")
    stack = _stack_for(args.family, args.cores)
    system = FullSystemStack(
        stack=stack, memory_per_core_bytes=args.memory_mb * MB, seed=args.seed
    )
    workload = scenario.workload(parse_size(args.size))
    capacity = stack.cores * system.model.tps("GET", parse_size(args.size))
    telemetry = TelemetrySession(max_traces=args.trace_limit)

    objectives = paper_sla_objectives(
        deadline_s=args.slo_deadline_us * 1e-6, target=args.slo_target
    )
    slo = SloMonitor(
        objectives,
        default_burn_rules(
            objectives,
            short_window_s=args.duration / 12,
            long_window_s=args.duration / 4,
            threshold=args.burn_threshold,
        ),
        resolution_s=args.duration / 24,
        registry=telemetry.registry,
    )
    interval = args.interval if args.interval else args.duration / 20
    recorder = TimeSeriesRecorder(telemetry.registry, interval_s=interval)
    profiler = SimProfiler() if args.profile else None

    options = scenario.run_options(
        offered_rate_hz=args.load * capacity, duration_s=args.duration
    ).with_instruments(
        telemetry=telemetry, timeseries=recorder, slo=slo, profiler=profiler
    )
    if args.batch_max > 1:
        import dataclasses

        from repro.kvstore.batching import BatchPolicy

        options = dataclasses.replace(
            options,
            batching=BatchPolicy(
                batch_max=args.batch_max,
                linger_s=args.batch_linger_us * 1e-6,
            ),
        )
    results = system.run(workload, options)
    out = Path(args.out)
    trace_path = write_trace_jsonl(out / "trace.jsonl", telemetry.tracer)
    metrics_path = write_prometheus(out / "metrics.prom", telemetry.registry)
    series_path = write_timeseries_jsonl(out / "timeseries.jsonl", recorder)
    header = (
        f"{stack.name} @ {args.load:.0%} load for {args.duration}s simulated: "
        f"{results.completed} requests, {results.throughput_hz / 1e3:.1f} KTPS, "
        f"mean RTT {results.mean_rtt * 1e6:.0f} us, "
        f"p99 {results.rtt_percentile(0.99) * 1e6:.0f} us, "
        f"hit rate {results.hit_rate:.1%}, {results.mac_drops} MAC drops"
    )
    if args.scenario:
        header += f"\nfault scenario: {args.scenario} (no client resilience)"
    if results.batches:
        header += (
            f"\nbatched path: {results.batches} batches, "
            f"mean size {results.mean_batch_size:.1f}, "
            f"flushes {dict(sorted(results.batch_flush_reasons.items()))}"
        )
    sections = [header, summary_table(telemetry.registry, telemetry.tracer)]
    if results.slo_alerts:
        alert_lines = ["slo alerts (fired once, cleared on recovery):"]
        for alert in results.slo_alerts:
            cleared = (
                f"{alert.cleared_at_s:.3f}s"
                if alert.cleared_at_s is not None
                else "still firing"
            )
            alert_lines.append(
                f"  {alert.rule:20s} fired={alert.fired_at_s:.3f}s "
                f"cleared={cleared} peak_burn={alert.peak_burn:.1f}x"
            )
        sections.append("\n".join(alert_lines))
    else:
        sections.append("slo alerts: none fired")
    if profiler is not None:
        sections.append(profiler.report(top_n=10))
    sections.append(
        f"wrote {trace_path} ({len(telemetry.tracer.traces)} traces), "
        f"{metrics_path}, and {series_path} "
        f"({len(recorder.to_jsonl().splitlines())} snapshots)"
    )
    return "\n\n".join(sections)


def _cmd_power(args: argparse.Namespace) -> str:
    from pathlib import Path

    from repro.analysis.ascii_chart import bar_chart
    from repro.exp.scenarios import get_scenario
    from repro.power import DEFAULT_BUDGET, DEFAULT_COSTS, DynamicPowerModel
    from repro.sim.full_system import FullSystemStack
    from repro.telemetry import (
        EnergyMeter,
        TelemetrySession,
        TimeSeriesRecorder,
        write_prometheus,
        write_timeseries_jsonl,
    )
    from repro.units import MB

    scenario = get_scenario(args.scenario)
    stack = _stack_for(args.family, args.cores)
    design = ServerDesign(stack=stack)
    num_stacks = args.stacks if args.stacks else design.num_stacks
    system = FullSystemStack(
        stack=stack, memory_per_core_bytes=args.memory_mb * MB, seed=args.seed
    )
    workload = scenario.workload(parse_size(args.size))
    capacity = stack.cores * system.model.tps("GET", parse_size(args.size))
    telemetry = TelemetrySession()
    interval = args.interval if args.interval else args.duration / 20
    recorder = TimeSeriesRecorder(telemetry.registry, interval_s=interval)
    meter = EnergyMeter(
        DynamicPowerModel.for_stack(stack),
        window_s=interval,
        registry=telemetry.registry,
        num_stacks=num_stacks,
        budget_w=DEFAULT_BUDGET.stack_budget_w,
        throttle_derate=args.throttle_derate,
    )
    options = scenario.run_options(
        offered_rate_hz=args.load * capacity, duration_s=args.duration
    ).with_instruments(telemetry=telemetry, timeseries=recorder, energy=meter)
    results = system.run(workload, options)
    summary = results.energy

    static_stack_w = design.stack_max_power_w()
    static_server_w = DEFAULT_BUDGET.server_power_w(static_stack_w * num_stacks)
    measured_stack_w = summary["stack_mean_power_w"]
    measured_server_w = summary["server_mean_power_w"]
    header = (
        f"{stack.name} x{num_stacks} @ {args.load:.0%} load for "
        f"{args.duration}s simulated ({scenario.name}): "
        f"{results.completed} requests, {results.throughput_hz / 1e3:.1f} KTPS/stack\n"
        f"measured power: {measured_stack_w:.2f} W/stack "
        f"(static model {static_stack_w:.2f} W, "
        f"{measured_stack_w / static_stack_w - 1.0:+.1%}), "
        f"{measured_server_w:.1f} W wall "
        f"(static {static_server_w:.1f} W)\n"
        f"joules/op {summary['joules_per_op'] * 1e3:.3f} mJ, "
        f"measured TPS/W {summary['measured_tps_per_watt']:.0f}, "
        f"window peak {summary['peak_window_power_w']:.1f} W / "
        f"trough {summary['trough_window_power_w']:.1f} W"
    )

    timeline = meter.timeline()
    timeline_chart = bar_chart(
        [f"{start * 1e3:.0f}ms" for start, _, _ in timeline],
        [server_w for _, _, server_w in timeline],
        title="windowed server power (W)",
    )
    components = {
        name: joules
        for name, joules in summary["components_j"].items()
        if joules > 0
    }
    breakdown_chart = bar_chart(
        list(components),
        list(components.values()),
        title="energy by component (J)",
    )

    tco_measured = DEFAULT_COSTS.energy_cost_usd(measured_server_w)
    tco_static = DEFAULT_COSTS.energy_cost_usd(static_server_w)
    tco = (
        f"energy TCO over {DEFAULT_COSTS.depreciation_years:.0f}y "
        f"(PUE {DEFAULT_COSTS.pue}): ${tco_measured:,.0f} at measured wall "
        f"power vs ${tco_static:,.0f} at the static budget"
    )

    if summary["alerts"]:
        alert_lines = ["power alerts (fired once per sustained violation):"]
        for alert in summary["alerts"]:
            alert_lines.append(
                f"  {alert['rule']:20s} fired={alert['fired_at_s']:.3f}s "
                f"cleared={alert['cleared_at_s']:.3f}s "
                f"peak_burn={alert['peak_burn']:.2f}x"
            )
        if summary["throttle_windows"]:
            alert_lines.append(
                f"  throttled windows: {summary['throttle_windows']} "
                f"(derate {summary['throttle_derate']:.2f})"
            )
        alerts = "\n".join(alert_lines)
    else:
        alerts = (
            f"power alerts: none fired (passive limit "
            f"{meter.passive_limit_w:.0f} W/stack, budget "
            f"{DEFAULT_BUDGET.stack_budget_w:.0f} W)"
        )

    out = Path(args.out)
    metrics_path = write_prometheus(out / "metrics.prom", telemetry.registry)
    series_path = write_timeseries_jsonl(out / "timeseries.jsonl", recorder)
    footer = f"wrote {metrics_path} and {series_path}"
    return "\n\n".join(
        [header, timeline_chart, breakdown_chart, tco, alerts, footer]
    )


def _cmd_trace(args: argparse.Namespace) -> str:
    import json

    from dataclasses import replace
    from pathlib import Path

    from repro.exp.scenarios import get_scenario
    from repro.faults import DEFAULT_RESILIENCE, NO_RESILIENCE
    from repro.replication.config import ReplicationConfig
    from repro.sim.full_system import FullSystemStack
    from repro.telemetry import (
        TelemetrySession,
        compute_trace_digest,
        tail_attribution,
        validate_trace_events,
        waterfall,
        write_trace_events,
        write_trace_jsonl,
    )
    from repro.units import MB

    scenario = get_scenario(args.scenario or "baseline")
    stack = _stack_for(args.family, args.cores)
    system = FullSystemStack(
        stack=stack, memory_per_core_bytes=args.memory_mb * MB, seed=args.seed
    )
    workload = scenario.workload(parse_size(args.size))
    capacity = stack.cores * system.model.tps("GET", parse_size(args.size))
    telemetry = TelemetrySession(
        max_traces=args.trace_limit,
        slo_deadline_s=args.slo_deadline_us * 1e-6,
        sampling_seed=args.seed,
    )
    options = scenario.run_options(
        offered_rate_hz=args.load * capacity, duration_s=args.duration
    ).with_instruments(telemetry=telemetry)
    if args.replicas > 1:
        options = replace(
            options,
            replication=ReplicationConfig(
                n=args.replicas,
                r=min(args.read_quorum, args.replicas),
                w=min(args.write_quorum, args.replicas),
            ),
        )
    if args.no_resilience:
        options = replace(options, resilience=NO_RESILIENCE)
    elif options.resilience is None and options.faults is not None:
        options = replace(options, resilience=DEFAULT_RESILIENCE)
    results = system.run(workload, options)
    tracer = telemetry.tracer
    out = Path(args.out)
    events_path = write_trace_events(out / "trace_events.json", tracer)
    jsonl_path = write_trace_jsonl(out / "trace.jsonl", tracer)
    # Self-check the artefact we just wrote — the same gate CI runs.
    event_count = validate_trace_events(json.loads(events_path.read_text()))
    digest = compute_trace_digest(tracer)
    (out / "digest.json").write_text(
        json.dumps(digest, indent=2, sort_keys=True) + "\n"
    )
    header = (
        f"{stack.name} @ {args.load:.0%} load for {args.duration}s simulated "
        f"(scenario {scenario.name!r}): {results.completed} requests, "
        f"{results.failed} failed, p99 RTT "
        f"{results.rtt_percentile(0.99) * 1e6:.0f} us; "
        f"{tracer.committed} traces committed, {len(tracer.traces)} retained "
        f"({tracer.slo_violations} SLO violators, all kept)"
    )
    sections = [header]
    finished = [t for t in tracer.traces if t.end_s is not None]
    if finished:
        sections.append(tail_attribution(tracer.traces).render())
        slowest = max(finished, key=lambda t: (t.rtt_s, t.request_id))
        sections.append(
            "slowest retained trace (# = on the critical path):\n"
            + waterfall(slowest)
        )
    sections.append(
        f"wrote {events_path} ({event_count} events, schema OK), "
        f"{jsonl_path}, and {out / 'digest.json'}"
    )
    return "\n\n".join(sections)


def _cmd_faults(args: argparse.Namespace) -> str:
    import json

    from dataclasses import replace

    from repro.exp.scenarios import get_scenario
    from repro.faults import DEFAULT_RESILIENCE, NO_RESILIENCE, PRESETS, FaultSchedule
    from repro.sim.full_system import FullSystemStack
    from repro.units import MB

    if args.list:
        lines = ["available fault scenarios (--scenario NAME):"]
        for name, schedule in PRESETS.items():
            kinds = ", ".join(sorted({e.kind for e in schedule.events}))
            lines.append(f"  {name:22s} {len(schedule.events)} events ({kinds})")
        return "\n".join(lines)

    scenario = get_scenario(args.scenario)
    if args.schedule:
        schedule = FaultSchedule.load(args.schedule)
    else:
        schedule = scenario.fault_schedule()
    policy = NO_RESILIENCE if args.no_resilience else DEFAULT_RESILIENCE
    workload = scenario.workload(parse_size(args.size))
    deadline_s = args.deadline_us * 1e-6

    def build() -> FullSystemStack:
        return FullSystemStack(
            stack=_stack_for(args.family, args.cores),
            memory_per_core_bytes=args.memory_mb * MB,
            seed=args.seed,
        )

    base_system = build()
    capacity = args.cores * base_system.model.tps("GET", parse_size(args.size))
    base_options = scenario.run_options(
        offered_rate_hz=args.load * capacity,
        duration_s=args.duration,
        window_s=args.window,
    )
    base_options = replace(base_options, faults=None)
    base = base_system.run(workload, base_options)
    faulty = build().run(
        workload, replace(base_options, faults=schedule, resilience=policy)
    )

    restarts = [e.at_s for e in schedule.events if e.kind == "node_restart"]
    recovery = None
    if restarts:
        recovery = faulty.recovery_time_s(
            base.hit_rate_after(restarts[-1]), after_s=restarts[-1]
        )
    stats = {
        "scenario": schedule.name,
        "resilience": "off" if args.no_resilience else "on",
        "baseline": {
            "completed": base.completed,
            "hit_rate": round(base.hit_rate, 4),
            "sla_violation_rate": round(base.sla_violation_rate(deadline_s), 6),
        },
        "faulted": {
            "completed": faulty.completed,
            "failed": faulty.failed,
            "hit_rate": round(faulty.hit_rate, 4),
            "sla_violation_rate": round(faulty.sla_violation_rate(deadline_s), 6),
            "retries": faulty.retries,
            "timeouts": faulty.fault_timeouts,
            "failovers": faulty.failovers,
            "hedges": faulty.hedges,
        },
        "recovery_time_s": recovery,
    }
    if args.export:
        from pathlib import Path

        path = Path(args.export)
        path.write_text(json.dumps(stats, indent=2))
        return f"wrote {path}"
    lines = [
        f"fault scenario {schedule.name!r} on {base_system.stack.name} "
        f"({args.cores} cores, {args.load:.0%} load, {args.duration}s simulated, "
        f"resilience {stats['resilience']}):",
        "",
        f"{'':24s}{'no faults':>12s}{'faulted':>12s}",
        f"{'completed':24s}{base.completed:>12d}{faulty.completed:>12d}",
        f"{'failed':24s}{0:>12d}{faulty.failed:>12d}",
        f"{'hit rate':24s}{base.hit_rate:>12.1%}{faulty.hit_rate:>12.1%}",
        (
            f"{'SLA violations':24s}"
            f"{base.sla_violation_rate(deadline_s):>12.2%}"
            f"{faulty.sla_violation_rate(deadline_s):>12.2%}"
            f"   (deadline {args.deadline_us:.0f} us)"
        ),
        "",
        f"client: {faulty.retries} retries, {faulty.fault_timeouts} timeouts, "
        f"{faulty.failovers} failovers, {faulty.hedges} hedged GETs",
    ]
    if recovery is not None:
        lines.append(
            f"recovered to within 5% of baseline hit rate "
            f"{recovery:.2f}s after the restart"
        )
    elif restarts:
        lines.append("hit rate did NOT recover to within 5% of baseline")
    return "\n".join(lines)


def _cmd_replication(args: argparse.Namespace) -> str:
    import json

    from dataclasses import replace

    from repro.exp.scenarios import get_scenario
    from repro.faults import DEFAULT_RESILIENCE, FaultSchedule
    from repro.replication.config import ReplicationConfig
    from repro.sim.full_system import FullSystemStack
    from repro.units import MB

    scenario = get_scenario(args.scenario)
    if args.schedule:
        schedule = FaultSchedule.load(args.schedule)
    else:
        schedule = scenario.fault_schedule()
    workload = scenario.workload(parse_size(args.size))

    def build() -> FullSystemStack:
        return FullSystemStack(
            stack=_stack_for(args.family, args.cores),
            memory_per_core_bytes=args.memory_mb * MB,
            seed=args.seed,
        )

    capacity = args.cores * build().model.tps("GET", parse_size(args.size))
    base_options = replace(
        scenario.run_options(
            offered_rate_hz=args.load * capacity,
            duration_s=args.duration,
            window_s=args.window,
        ),
        faults=None,
        resilience=DEFAULT_RESILIENCE,
    )
    replica_counts = sorted(set(int(n) for n in args.replicas.split(",")))
    sweep = []
    for n in replica_counts:
        config = ReplicationConfig(
            n=n, r=min(args.read_quorum, n), w=min(args.write_quorum, n)
        )
        base = build().run(workload, replace(base_options, replication=config))
        faulted = build().run(
            workload,
            replace(base_options, replication=config, faults=schedule),
        )
        base_windows = dict(base.hit_rate_timeline())
        availability = min(
            (rate / base_windows[start] if base_windows.get(start) else 1.0)
            for start, rate in faulted.hit_rate_timeline()
        )
        sweep.append(
            {
                "n": n, "r": config.r, "w": config.w,
                "completed": faulted.completed,
                "failed": faulted.failed,
                "puts": faulted.puts,
                "replica_puts": faulted.replica_puts,
                "write_amplification": round(faulted.write_amplification, 3),
                "min_availability": round(availability, 4),
                "hit_rate": round(faulted.hit_rate, 4),
                "redirected_reads": faulted.redirected_reads,
                "read_repairs": faulted.read_repairs,
                "hints_queued": faulted.hints_queued,
                "hints_replayed": faulted.hints_replayed,
                "antientropy_sweeps": faulted.antientropy_sweeps,
                "antientropy_repairs": faulted.antientropy_repairs,
            }
        )
    if args.export:
        from pathlib import Path

        path = Path(args.export)
        path.write_text(json.dumps(
            {"scenario": schedule.name, "sweep": sweep}, indent=2
        ))
        return f"wrote {path}"
    lines = [
        f"replication sweep under {schedule.name!r} "
        f"({args.cores} cores, {args.load:.0%} load, {args.duration}s simulated; "
        f"min availability = worst windowed hit rate vs the fault-free run):",
        "",
        f"{'N/R/W':>6s}{'amp':>7s}{'min avail':>11s}{'hit rate':>10s}"
        f"{'failed':>8s}{'redirect':>10s}{'repairs':>9s}{'hints':>7s}"
        f"{'ae-fixes':>9s}",
    ]
    for row in sweep:
        nrw = f"{row['n']}/{row['r']}/{row['w']}"
        lines.append(
            f"{nrw:>6s}"
            f"{row['write_amplification']:>7.2f}"
            f"{row['min_availability']:>11.1%}{row['hit_rate']:>10.1%}"
            f"{row['failed']:>8d}{row['redirected_reads']:>10d}"
            f"{row['read_repairs']:>9d}{row['hints_replayed']:>7d}"
            f"{row['antientropy_repairs']:>9d}"
        )
    lines.append("")
    lines.append(
        "replication buys availability through the crash at ~N x write cost."
    )
    return "\n".join(lines)


def _cmd_sweep(args: argparse.Namespace) -> str:
    import json
    import sys
    from pathlib import Path

    from repro.exp import (
        DEFAULT_CACHE_DIR,
        ExperimentSpec,
        ResultCache,
        StackSpec,
        design_point_grid,
        get_scenario,
        run_experiments,
    )
    from repro.telemetry.metrics import MetricsRegistry
    from repro.units import MB

    if args.kind == "fig7":
        specs = design_point_grid(
            name="fig7", verb=args.verb, value_bytes=parse_size(args.size)
        ).expand()
    elif args.kind == "sensitivity":
        from repro.analysis.sensitivity import PERTURBABLE_FIELDS

        specs = [
            ExperimentSpec(
                kind="headline",
                verb=args.verb,
                value_bytes=parse_size(args.size),
                calibration_scale=((name, scale),),
                label=f"sensitivity[{name} x{scale:g}]",
            )
            for name in PERTURBABLE_FIELDS
            for scale in (1.0 / args.factor, args.factor)
        ]
    else:  # full-system
        scenario = get_scenario(args.scenario)
        specs = [
            scenario.to_spec(
                StackSpec(
                    family=args.family,
                    cores=cores,
                    memory_per_core_bytes=args.memory_mb * MB,
                ),
                offered_rate_hz=rate,
                duration_s=args.duration,
                seed=args.seed,
                value_bytes=parse_size(args.size),
                label=f"{scenario.name}[cores={cores},rate={rate:g}]",
            )
            for cores in (int(c) for c in args.cores_list.split(","))
            for rate in (float(r) for r in args.rates.split(","))
        ]
        if args.trace_digest:
            from dataclasses import replace

            # Opting in changes the spec (and so the cache key): digest
            # cells and plain cells never collide.
            specs = [
                replace(spec, options=replace(spec.options, trace_digest=True))
                for spec in specs
            ]
        if args.fidelity:
            from dataclasses import replace

            from repro.sim.fidelity import FidelityPolicy

            # Same cache-key story as --trace-digest: fidelity rides on
            # the options, so hybrid cells never collide with full-DES
            # cells.
            policy = FidelityPolicy(mode=args.fidelity)
            specs = [
                replace(spec, options=replace(spec.options, fidelity=policy))
                for spec in specs
            ]

    cache = None if args.no_cache else ResultCache(
        args.cache_dir if args.cache_dir else DEFAULT_CACHE_DIR
    )
    registry = MetricsRegistry()
    progress = None
    if args.progress:

        def progress(index, total, spec, status):
            print(
                f"[{index + 1:>{len(str(total))}}/{total}] {status:9s}"
                f"{spec.label}",
                file=sys.stderr,
            )

    report = run_experiments(
        specs,
        parallel=args.parallel,
        cache=cache,
        registry=registry,
        progress=progress,
    )

    stats = report.stats()
    stats["kind"] = args.kind
    stats["parallel"] = args.parallel
    stats["cache_dir"] = str(cache.root) if cache is not None else None
    stats["cache_entries"] = len(cache) if cache is not None else 0

    lines = []
    if args.export:
        path = Path(args.export)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(report.labelled_results(), indent=1, sort_keys=True)
            + "\n"
        )
        lines.append(f"wrote {path}")
    if args.stats_export:
        path = Path(args.stats_export)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(stats, indent=1, sort_keys=True) + "\n")
        lines.append(f"wrote {path}")
    workers = (
        "serial"
        if not args.parallel or args.parallel <= 1
        else f"{args.parallel} workers"
    )
    lines.insert(
        0,
        f"{report.jobs} {args.kind} jobs in {report.wall_s:.2f}s ({workers}): "
        f"{report.cache_hits} cache hits, {report.executed} executed, "
        f"cache {'off' if cache is None else 'at ' + str(cache.root)}",
    )
    if not args.export:
        for spec in report.specs:
            lines.append(f"  {spec.label}")
    return "\n".join(lines)


def _cmd_flashstore(args: argparse.Namespace) -> str:
    import json
    from dataclasses import replace

    from repro.flashstore.compaction import (
        TieredStoreConfig,
        baseline_ftl_replay,
    )
    from repro.kvstore.items import ITEM_OVERHEAD_BYTES
    from repro.memory.endurance import endurance_report
    from repro.sim.full_system import FullSystemStack
    from repro.sim.run_options import RunOptions
    from repro.units import MB
    from repro.workloads.distributions import fixed_size
    from repro.workloads.generator import WorkloadGenerator, WorkloadSpec

    value_bytes = parse_size(args.size)
    put_fractions = sorted(float(f) for f in args.put_fractions.split(","))
    if any(not 0.0 <= f <= 1.0 for f in put_fractions):
        raise SystemExit("--put-fractions values must be in [0, 1]")
    config = TieredStoreConfig(log_segment_pages=args.segment_pages)

    def build() -> FullSystemStack:
        return FullSystemStack(
            stack=iridium_stack(cores=args.cores),
            memory_per_core_bytes=args.memory_mb * MB,
            seed=args.seed,
        )

    device = build().stack.flash
    item_bytes = ITEM_OVERHEAD_BYTES + 64 + value_bytes
    rows = []
    for fraction in put_fractions:
        workload = WorkloadSpec(
            name=f"flashstore-{fraction:g}put",
            get_fraction=1.0 - fraction,
            key_population=args.keys,
            value_sizes=fixed_size(value_bytes),
        )
        options = RunOptions(
            offered_rate_hz=args.rate,
            duration_s=args.duration,
            warmup_requests=args.warmup,
        )
        base = build().run(workload, options)
        tiered = build().run(
            workload, replace(options, flashstore=config)
        )
        summary = tiered.flashstore
        # Baseline WA: replay a same-distribution PUT stream through the
        # page-per-item FTL the latency model is calibrated against, in
        # the same bytes-programmed-per-host-byte units the tiered store
        # reports.
        generator = WorkloadGenerator(workload, seed=args.seed)
        put_keys = []
        while len(put_keys) < summary["host_puts"]:
            request = generator.next_request()
            if request.verb == "PUT":
                put_keys.append(request.key)
        replay = baseline_ftl_replay(put_keys, item_bytes, device)
        put_rate = summary["host_puts"] / args.duration
        base_life = endurance_report(
            device,
            put_rate,
            value_bytes,
            write_amplification=max(1.0, replay["write_amplification"]),
        )
        tiered_life = endurance_report(
            device,
            put_rate,
            value_bytes,
            write_amplification=max(1.0, summary["write_amplification"]),
        )
        rows.append(
            {
                "put_fraction": fraction,
                "baseline_tps": round(base.throughput_hz, 1),
                "tiered_tps": round(tiered.throughput_hz, 1),
                "speedup": round(
                    tiered.throughput_hz / base.throughput_hz, 2
                )
                if base.throughput_hz
                else float("inf"),
                "baseline_write_amplification": round(
                    replay["write_amplification"], 3
                ),
                "tiered_write_amplification": round(
                    summary["write_amplification"], 3
                ),
                "read_amplification": round(
                    summary["read_amplification"], 3
                ),
                "index_bytes_per_key": round(
                    summary["index_bytes_per_key"], 2
                ),
                "baseline_lifetime_years": round(
                    base_life.lifetime_years, 2
                ),
                "tiered_lifetime_years": round(
                    tiered_life.lifetime_years, 2
                ),
                "conversions": summary["conversions"],
                "compactions": summary["compactions"],
            }
        )
    if args.export:
        from pathlib import Path

        path = Path(args.export)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(
            {
                "cores": args.cores,
                "rate_hz": args.rate,
                "duration_s": args.duration,
                "value_bytes": value_bytes,
                "segment_pages": args.segment_pages,
                "sweep": rows,
            },
            indent=2,
        ))
        return f"wrote {path}"
    lines = [
        f"tiered flash store vs page-per-item FTL on iridium "
        f"({args.cores} cores, {args.rate:g} Hz offered, "
        f"{args.duration}s simulated, {value_bytes}B values; WA in "
        f"flash bytes programmed per host byte written):",
        "",
        f"{'PUT%':>6s}{'base TPS':>10s}{'tier TPS':>10s}{'speedup':>9s}"
        f"{'base WA':>9s}{'tier WA':>9s}{'RA':>7s}{'B/key':>8s}"
        f"{'base yrs':>10s}{'tier yrs':>10s}",
    ]
    for row in rows:
        lines.append(
            f"{row['put_fraction']:>6.0%}"
            f"{row['baseline_tps']:>10.0f}{row['tiered_tps']:>10.0f}"
            f"{row['speedup']:>8.1f}x"
            f"{row['baseline_write_amplification']:>9.2f}"
            f"{row['tiered_write_amplification']:>9.2f}"
            f"{row['read_amplification']:>7.2f}"
            f"{row['index_bytes_per_key']:>8.1f}"
            f"{row['baseline_lifetime_years']:>10.1f}"
            f"{row['tiered_lifetime_years']:>10.1f}"
        )
    lines.append("")
    lines.append(
        "log packing amortises page programs the baseline pays per item; "
        "the lifetime columns feed the wear projection."
    )
    return "\n".join(lines)


def _cmd_report(args: argparse.Namespace) -> str:
    from repro.analysis.report_builder import build_report

    written = build_report(args.out)
    return f"wrote {len(written)} artefacts under {args.out}/"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate artefacts from the Mercury/Iridium paper reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name in _TABLES:
        p = sub.add_parser(name, help=_TABLES[name][1])
        p.add_argument("--export", help="write .csv or .json instead of text")
        p.set_defaults(func=_cmd_table, artefact=name)
    for name in _FIGURES:
        p = sub.add_parser(name, help=f"Figure data series for {name}")
        p.add_argument("--export", help="write a .json series file instead of text")
        p.add_argument("--chart", action="store_true",
                       help="render ASCII bar charts instead of a table")
        p.set_defaults(func=_cmd_figure, artefact=name)

    p = sub.add_parser("headlines", help="abstract headline ratios, paper vs measured")
    p.set_defaults(func=_cmd_headlines)

    p = sub.add_parser("sensitivity", help="calibration sensitivity sweep")
    p.add_argument("--factor", type=float, default=1.5)
    p.set_defaults(func=_cmd_sensitivity)

    p = sub.add_parser("thermal", help="per-stack thermal report")
    p.add_argument("--family", choices=["mercury", "iridium"], default="mercury")
    p.add_argument("--cores", type=int, default=32)
    p.set_defaults(func=_cmd_thermal)

    p = sub.add_parser("evaluate", help="evaluate one server design")
    p.add_argument("--family", choices=["mercury", "iridium"], default="mercury")
    p.add_argument("--cores", type=int, default=32)
    p.add_argument("--verb", choices=["GET", "PUT", "get", "put"], default="GET")
    p.add_argument("--size", default="64", help="value size (64, 4K, 1M, ...)")
    p.set_defaults(func=_cmd_evaluate)

    p = sub.add_parser(
        "telemetry",
        help="full-system run with tracing on: JSONL trace + metrics snapshot",
    )
    p.add_argument("--family", choices=["mercury", "iridium"], default="mercury")
    p.add_argument("--cores", type=int, default=8)
    p.add_argument("--load", type=float, default=0.6,
                   help="offered load as a fraction of linear-scaling capacity")
    p.add_argument("--duration", type=float, default=0.2,
                   help="simulated seconds to run")
    p.add_argument("--size", default="64", help="value size (64, 4K, ...)")
    p.add_argument("--memory-mb", type=int, default=16,
                   help="per-core store budget in MB")
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--trace-limit", type=int, default=100_000,
                   help="max traces retained for the JSONL dump")
    p.add_argument("--out", default="telemetry-out",
                   help="directory for trace.jsonl, metrics.prom, "
                        "timeseries.jsonl")
    p.add_argument("--profile", action="store_true",
                   help="attach the DES hot-path profiler and print its report")
    p.add_argument("--interval", type=float, default=None,
                   help="time-series snapshot cadence in simulated seconds "
                        "(default duration/20)")
    p.add_argument("--scenario", choices=sorted(_FAULT_PRESETS), default=None,
                   help="inject a fault preset (no client resilience) so the "
                        "SLO burn timeline shows the fault")
    p.add_argument("--slo-deadline-us", type=float, default=1100.0,
                   help="latency SLO deadline in microseconds "
                        "(paper SLA: 1100)")
    p.add_argument("--slo-target", type=float, default=0.999,
                   help="good fraction promised by both SLOs")
    p.add_argument("--burn-threshold", type=float, default=10.0,
                   help="error-budget burn multiple that fires an alert")
    p.add_argument("--batch-max", type=int, default=1,
                   help="coalesce up to this many requests per core into "
                        "one batched frame (1 = serial path)")
    p.add_argument("--batch-linger-us", type=float, default=100.0,
                   help="max microseconds the first rider waits for the "
                        "batch to fill (only with --batch-max > 1)")
    p.set_defaults(func=_cmd_telemetry)

    p = sub.add_parser(
        "power",
        help="energy-metered full-system run: power timeline, per-component "
             "energy, measured-vs-static watts, TCO at measured energy",
    )
    p.add_argument("--family", choices=["mercury", "iridium"], default="mercury")
    p.add_argument("--cores", type=int, default=8)
    p.add_argument("--load", type=float, default=0.9,
                   help="offered load as a fraction of linear-scaling capacity")
    p.add_argument("--duration", type=float, default=0.2,
                   help="simulated seconds to run")
    p.add_argument("--size", default="64", help="value size (64, 4K, ...)")
    p.add_argument("--memory-mb", type=int, default=16,
                   help="per-core store budget in MB")
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--scenario", default="energy-diurnal",
                   help="named scenario to run (default energy-diurnal; "
                        "'baseline' measures flat load)")
    p.add_argument("--stacks", type=int, default=None,
                   help="stacks to extrapolate the enclosure to "
                        "(default: the 1.5U packing for this design)")
    p.add_argument("--interval", type=float, default=None,
                   help="power window in simulated seconds "
                        "(default duration/20)")
    p.add_argument("--throttle-derate", type=float, default=1.0,
                   help="frequency factor applied while thermally "
                        "throttled (1.0 = measure only, never perturb)")
    p.add_argument("--out", default="power-out",
                   help="directory for metrics.prom and timeseries.jsonl")
    p.set_defaults(func=_cmd_power)

    p = sub.add_parser(
        "trace",
        help="full-system run with causal tracing: Perfetto trace-event "
        "JSON, tail-based sampling, critical-path attribution table, "
        "ASCII waterfall of the slowest trace",
    )
    p.add_argument("--family", choices=["mercury", "iridium"], default="mercury")
    p.add_argument("--cores", type=int, default=4)
    p.add_argument("--load", type=float, default=0.5,
                   help="offered load as a fraction of linear-scaling capacity")
    p.add_argument("--duration", type=float, default=0.5,
                   help="simulated seconds to run")
    p.add_argument("--size", default="64", help="value size (64, 4K, ...)")
    p.add_argument("--memory-mb", type=int, default=8,
                   help="per-core store budget in MB")
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--scenario", choices=sorted(_FAULT_PRESETS), default=None,
                   help="inject a fault preset (client resilience on)")
    p.add_argument("--replicas", type=int, default=1,
                   help="replication factor N (>1 turns on quorum writes)")
    p.add_argument("--read-quorum", type=int, default=2,
                   help="read quorum R (capped at N)")
    p.add_argument("--write-quorum", type=int, default=2,
                   help="write quorum W (capped at N)")
    p.add_argument("--no-resilience", action="store_true",
                   help="disable client retries/failover under faults")
    p.add_argument("--trace-limit", type=int, default=5_000,
                   help="tail-sampling retention cap (SLO violators always kept)")
    p.add_argument("--slo-deadline-us", type=float, default=1100.0,
                   help="RTT deadline marking a trace as an SLO violator "
                        "(paper SLA: 1100)")
    p.add_argument("--out", default="trace-out",
                   help="directory for trace_events.json, trace.jsonl, "
                        "digest.json")
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser(
        "faults",
        help="replay a fault schedule against the full-system DES, "
        "with and without client resilience",
    )
    p.add_argument("--scenario", choices=sorted(_FAULT_PRESETS), default="crash-restart-lossy",
                   help="named fault schedule to replay")
    p.add_argument("--schedule", help="path to a fault-schedule JSON file "
                   "(overrides --scenario)")
    p.add_argument("--list", action="store_true", help="list named scenarios")
    p.add_argument("--family", choices=["mercury", "iridium"], default="mercury")
    p.add_argument("--cores", type=int, default=4)
    p.add_argument("--load", type=float, default=0.5,
                   help="offered load as a fraction of linear-scaling capacity")
    p.add_argument("--duration", type=float, default=4.0,
                   help="simulated seconds to run")
    p.add_argument("--size", default="64", help="value size (64, 4K, ...)")
    p.add_argument("--memory-mb", type=int, default=8,
                   help="per-core store budget in MB")
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--window", type=float, default=0.25,
                   help="hit-rate timeline bucket width in seconds")
    p.add_argument("--deadline-us", type=float, default=1000.0,
                   help="SLA deadline in microseconds")
    p.add_argument("--no-resilience", action="store_true",
                   help="disable client retries/failover (faults become failures)")
    p.add_argument("--export", help="write the comparison as JSON instead of text")
    p.set_defaults(func=_cmd_faults)

    p = sub.add_parser(
        "replication",
        help="quorum-replication sweep: availability vs write amplification "
        "across N under a crash schedule",
    )
    p.add_argument("--replicas", default="1,2,3",
                   help="comma-separated replication factors to sweep")
    p.add_argument("--read-quorum", type=int, default=2,
                   help="read quorum R (capped at N per run)")
    p.add_argument("--write-quorum", type=int, default=2,
                   help="write quorum W (capped at N per run)")
    p.add_argument("--scenario", choices=sorted(_FAULT_PRESETS),
                   default="crash-restart",
                   help="named fault schedule to replay")
    p.add_argument("--schedule", help="path to a fault-schedule JSON file "
                   "(overrides --scenario)")
    p.add_argument("--family", choices=["mercury", "iridium"], default="mercury")
    p.add_argument("--cores", type=int, default=4)
    p.add_argument("--load", type=float, default=0.3,
                   help="offered load as a fraction of linear-scaling capacity")
    p.add_argument("--duration", type=float, default=4.0,
                   help="simulated seconds to run")
    p.add_argument("--size", default="64", help="value size (64, 4K, ...)")
    p.add_argument("--memory-mb", type=int, default=8,
                   help="per-core store budget in MB")
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--window", type=float, default=0.25,
                   help="hit-rate timeline bucket width in seconds")
    p.add_argument("--export", help="write the sweep as JSON instead of text")
    p.set_defaults(func=_cmd_replication)

    p = sub.add_parser(
        "sweep",
        help="run an experiment grid through the parallel engine "
        "(content-addressed result caching; serial and parallel runs "
        "are bit-identical)",
    )
    p.add_argument("--kind", choices=["fig7", "sensitivity", "full-system"],
                   default="fig7",
                   help="grid to run: the Fig. 7/8 design-point sweep, the "
                        "calibration sensitivity ablation, or a full-system "
                        "DES grid over cores x offered rate")
    p.add_argument("--parallel", type=int, default=None,
                   help="worker processes (default: run in-process)")
    p.add_argument("--no-cache", action="store_true",
                   help="skip the result cache entirely")
    p.add_argument("--cache-dir", default=None,
                   help="result-cache directory "
                        "(default benchmarks/out/expcache)")
    p.add_argument("--export", help="write results as deterministic JSON")
    p.add_argument("--stats-export",
                   help="write run stats (hits/misses/wall time) as JSON")
    p.add_argument("--progress", action="store_true",
                   help="print one line per job to stderr as it finishes")
    p.add_argument("--verb", choices=["GET", "PUT"], default="GET")
    p.add_argument("--size", default="64", help="value size (64, 4K, ...)")
    p.add_argument("--factor", type=float, default=1.5,
                   help="sensitivity perturbation factor")
    p.add_argument("--scenario", default="baseline",
                   help="full-system scenario name (see repro faults --list; "
                        "plus 'baseline')")
    p.add_argument("--trace-digest", action="store_true",
                   help="full-system jobs run with causal tracing on and "
                        "store a critical-path digest in each grid cell")
    p.add_argument("--fidelity", choices=["full", "fluid", "hybrid"],
                   default=None,
                   help="full-system simulation fidelity: 'hybrid' "
                        "fast-forwards quiescent stretches through the "
                        "fluid model (DES around faults), 'fluid' skips "
                        "the runtime tripwires, 'full' pins pure DES "
                        "(default: plain runs without a fidelity policy)")
    p.add_argument("--family", choices=["mercury", "iridium"],
                   default="mercury")
    p.add_argument("--cores-list", default="2,4",
                   help="comma-separated cores-per-stack values "
                        "(full-system grids)")
    p.add_argument("--rates", default="20000,40000",
                   help="comma-separated offered rates in Hz "
                        "(full-system grids)")
    p.add_argument("--duration", type=float, default=0.5,
                   help="simulated seconds per full-system job")
    p.add_argument("--memory-mb", type=int, default=8,
                   help="per-core store budget in MB (full-system grids)")
    p.add_argument("--seed", type=int, default=42)
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser(
        "flashstore",
        help="PUT-fraction sweep of the SILT-style tiered flash store vs "
        "the page-per-item FTL baseline: TPS, write/read amplification, "
        "index memory, and endurance lifetime projections",
    )
    p.add_argument("--put-fractions", default="0.1,0.5,0.9",
                   help="comma-separated PUT fractions to sweep")
    p.add_argument("--cores", type=int, default=4)
    p.add_argument("--rate", type=float, default=20_000.0,
                   help="offered rate in Hz (pick above baseline PUT "
                        "capacity to expose the throughput gap)")
    p.add_argument("--duration", type=float, default=2.0,
                   help="simulated seconds per run")
    p.add_argument("--size", default="64", help="value size (64, 4K, ...)")
    p.add_argument("--keys", type=int, default=20_000,
                   help="distinct-key population")
    p.add_argument("--memory-mb", type=int, default=8,
                   help="per-core store budget in MB")
    p.add_argument("--warmup", type=int, default=10_000,
                   help="warmup PUTs outside simulated time")
    p.add_argument("--segment-pages", type=int, default=256,
                   help="write-tier log segment size in flash pages")
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--export", help="write the sweep as JSON instead of text")
    p.set_defaults(func=_cmd_flashstore)

    p = sub.add_parser("pareto", help="Pareto frontier over the design space")
    p.add_argument(
        "--objectives",
        default="tps,density_gb",
        help="comma-separated: tps, tps_per_watt, tps_per_gb, density_gb, low_power",
    )
    p.set_defaults(func=_cmd_pareto)

    p = sub.add_parser("report", help="regenerate every artefact into a directory")
    p.add_argument("--out", default="report", help="output directory")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("plan", help="capacity-plan a key-value tier")
    p.add_argument("--dataset-gb", type=float, required=True)
    p.add_argument("--tps", type=float, required=True)
    p.add_argument("--value-bytes", default="64")
    p.add_argument("--capex-3d", type=float, default=8_000.0)
    p.add_argument("--capex-commodity", type=float, default=6_000.0)
    p.set_defaults(func=_cmd_plan)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    print(args.func(args))
    return 0
