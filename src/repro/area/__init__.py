"""Area and floorplan modelling for the 1.5U enclosure."""

from repro.area.floorplan import Floorplan, DEFAULT_FLOORPLAN

__all__ = ["Floorplan", "DEFAULT_FLOORPLAN"]
