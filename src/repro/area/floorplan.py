"""Board-level floorplan arithmetic (§5.5 of the paper).

Each stack ships in a 400-pin, 21 mm x 21 mm BGA (441 mm^2); PHY chips
are the same size and carry two 10GbE PHYs.  77 % of a 13 in x 13 in 1.5U
motherboard is available for stacks and PHYs, and at most 96 Ethernet
ports fit on the rear of a 1.5U chassis — the constraint that ends up
binding for the low-power (A7) designs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import CM2, INCH


@dataclass(frozen=True)
class Floorplan:
    """1.5U board geometry and port limits."""

    board_side_mm: float = 13 * INCH
    usable_fraction: float = 0.77
    stack_package_mm2: float = 441.0
    phy_chip_mm2: float = 441.0
    phy_ports_per_chip: int = 2
    max_ethernet_ports: int = 96

    def __post_init__(self) -> None:
        if not 0.0 < self.usable_fraction <= 1.0:
            raise ConfigurationError("usable fraction must be in (0, 1]")
        if self.stack_package_mm2 <= 0 or self.phy_chip_mm2 <= 0:
            raise ConfigurationError("package areas must be positive")
        if self.phy_ports_per_chip <= 0 or self.max_ethernet_ports <= 0:
            raise ConfigurationError("port counts must be positive")

    @property
    def board_area_mm2(self) -> float:
        return self.board_side_mm**2

    @property
    def usable_area_mm2(self) -> float:
        return self.board_area_mm2 * self.usable_fraction

    def phy_chips_for(self, stacks: int) -> int:
        """PHY chips needed for ``stacks`` (one port per stack)."""
        if stacks < 0:
            raise ConfigurationError("stack count cannot be negative")
        return math.ceil(stacks / self.phy_ports_per_chip)

    def area_for(self, stacks: int) -> float:
        """Board area (mm^2) consumed by ``stacks`` and their PHY chips."""
        return (
            stacks * self.stack_package_mm2
            + self.phy_chips_for(stacks) * self.phy_chip_mm2
        )

    def area_cm2_for(self, stacks: int) -> float:
        """Table 3's Area column (cm^2)."""
        return self.area_for(stacks) / CM2

    @property
    def max_stacks_by_area(self) -> int:
        """How many stacks (plus PHYs) fit in the usable board area."""
        per_stack = self.stack_package_mm2 + self.phy_chip_mm2 / self.phy_ports_per_chip
        return int(self.usable_area_mm2 / per_stack)

    @property
    def max_stacks(self) -> int:
        """Binding stack limit: board area or rear-panel ports."""
        return min(self.max_stacks_by_area, self.max_ethernet_ports)


DEFAULT_FLOORPLAN = Floorplan()
