"""Regeneration of the paper's tables and figures, plus comparisons."""

from repro.analysis.tables import (
    table1_components,
    table2_memory_technologies,
    table3_configurations,
    table4_comparison,
)
from repro.analysis.figures import (
    figure4_breakdown,
    figure5_mercury_latency_sweep,
    figure6_iridium_latency_sweep,
    figure7_density_vs_tps,
    figure8_power_vs_tps,
)
from repro.analysis.report import render_table, render_series
from repro.analysis.compare import PAPER_HEADLINES, headline_ratios, compare_headlines
from repro.analysis.sensitivity import sensitivity_sweep, headline_under, perturb
from repro.analysis.validation import validate_stack, validation_table
from repro.analysis.export import (
    figure_to_json,
    table_to_csv,
    table_to_json,
    write_artefact,
)
from repro.analysis.report_builder import build_report
from repro.analysis.diurnal import DayReport, day_in_the_life, fleet_for_peak
from repro.analysis.pareto import ParetoPoint, pareto_frontier
from repro.analysis.crossover import (
    find_crossover,
    iridium_put_fraction_crossover,
    mercury_efficiency_factor_crossover,
    mercury_iridium_tco_crossover,
)
from repro.analysis.ascii_chart import bar_chart, series_chart

# bench_track is also an executable module (python -m
# repro.analysis.bench_track); importing it eagerly here would make
# runpy warn about the module already being in sys.modules.
_BENCH_TRACK_EXPORTS = frozenset(
    {"append_run", "load_history", "regression_report", "render_report"}
)


def __getattr__(name):
    if name in _BENCH_TRACK_EXPORTS:
        from repro.analysis import bench_track

        return getattr(bench_track, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "table1_components",
    "table2_memory_technologies",
    "table3_configurations",
    "table4_comparison",
    "figure4_breakdown",
    "figure5_mercury_latency_sweep",
    "figure6_iridium_latency_sweep",
    "figure7_density_vs_tps",
    "figure8_power_vs_tps",
    "render_table",
    "render_series",
    "PAPER_HEADLINES",
    "headline_ratios",
    "compare_headlines",
    "sensitivity_sweep",
    "headline_under",
    "perturb",
    "validate_stack",
    "validation_table",
    "figure_to_json",
    "table_to_csv",
    "table_to_json",
    "write_artefact",
    "build_report",
    "DayReport",
    "day_in_the_life",
    "fleet_for_peak",
    "ParetoPoint",
    "pareto_frontier",
    "find_crossover",
    "iridium_put_fraction_crossover",
    "mercury_efficiency_factor_crossover",
    "mercury_iridium_tco_crossover",
    "bar_chart",
    "series_chart",
    "append_run",
    "load_history",
    "regression_report",
    "render_report",
]
