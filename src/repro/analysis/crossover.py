"""Crossover finding: where one design stops winning and another starts.

Reproducing a paper's *shape* means knowing where the crossovers fall.
This module provides a generic bisection crossover finder plus the
paper-relevant crossovers:

* the **PUT fraction** at which Iridium's throughput falls below the
  Bags commodity baseline (flash writes are Iridium's Achilles heel);
* the **dataset size** at which Iridium's fleet TCO undercuts Mercury's
  for a fixed request rate (the Mercury/McDipper boundary);
* the **request size** at which Mercury's TPS/W advantage over Bags
  drops below a chosen factor.
"""

from __future__ import annotations

from typing import Callable

from repro.baselines.commodity import MEMCACHED_BAGS
from repro.core.metrics import OperatingPoint, evaluate_server
from repro.core.server import ServerDesign
from repro.core.stack import iridium_stack, mercury_stack
from repro.errors import ConfigurationError


def find_crossover(
    advantage: Callable[[float], float],
    low: float,
    high: float,
    iterations: int = 60,
) -> float | None:
    """The parameter where ``advantage`` changes sign, by bisection.

    ``advantage(x) > 0`` means the first design wins at x.  Returns None
    when there is no sign change on [low, high] (one side always wins).
    """
    if low >= high:
        raise ConfigurationError("need low < high")
    a_low, a_high = advantage(low), advantage(high)
    if a_low == 0.0:
        return low
    if a_high == 0.0:
        return high
    if (a_low > 0) == (a_high > 0):
        return None
    for _ in range(iterations):
        mid = (low + high) / 2.0
        if (advantage(mid) > 0) == (a_low > 0):
            low = mid
        else:
            high = mid
    return (low + high) / 2.0


def iridium_put_fraction_crossover() -> float | None:
    """PUT fraction where Iridium-32's TPS falls to the Bags baseline.

    At all-GET traffic Iridium beats Bags ~5x; every PUT costs ~1 ms of
    flash programs.  Somewhere in between the advantage evaporates —
    the quantitative version of "moderate to low request rates" (§4.2).
    """
    design = ServerDesign(stack=iridium_stack(32))

    def advantage(put_fraction: float) -> float:
        point = OperatingPoint(get_fraction=1.0 - put_fraction)
        return evaluate_server(design, point).tps - MEMCACHED_BAGS.tps

    return find_crossover(advantage, 0.0, 1.0)


def mercury_iridium_tco_crossover(
    peak_tps: float = 20e6,
    capex_usd: float = 8_000.0,
    low_gb: float = 100.0,
    high_gb: float = 1_000_000.0,
) -> float | None:
    """Dataset size (GB) where Iridium's fleet TCO undercuts Mercury's.

    Small datasets are throughput-bound (Mercury's turf); huge ones are
    capacity-bound (Iridium's).  The crossover is the Mercury/McDipper
    deployment boundary for the given request rate.
    """
    from repro.core.provisioning import Demand, candidate_from_design, plan_fleet

    mercury = candidate_from_design(ServerDesign(stack=mercury_stack(32)), capex_usd)
    iridium = candidate_from_design(ServerDesign(stack=iridium_stack(32)), capex_usd)

    def advantage(dataset_gb: float) -> float:
        demand = Demand(dataset_gb=dataset_gb, peak_tps=peak_tps)
        mercury_cost = plan_fleet(mercury, demand).cost.tco_usd
        iridium_cost = plan_fleet(iridium, demand).cost.tco_usd
        return iridium_cost - mercury_cost  # >0: Mercury cheaper

    return find_crossover(advantage, low_gb, high_gb)


def mercury_efficiency_factor_crossover(
    factor: float = 2.0,
    low_bytes: int = 64,
    high_bytes: int = 1 << 20,
) -> float | None:
    """Request size where Mercury's TPS/W lead over Bags drops below
    ``factor``.

    Table 4's 4.9x is a 64 B number; large values are per-byte bound
    everywhere and compress the lead.  (The Bags baseline's per-request
    cost is scaled with the same wire model so the comparison stays
    apples-to-apples across sizes.)
    """
    if factor <= 0:
        raise ConfigurationError("factor must be positive")
    design = ServerDesign(stack=mercury_stack(32))
    bags_tps_64 = MEMCACHED_BAGS.tps
    from repro.network.packets import request_wire_payloads

    base_wire = request_wire_payloads("GET", 64)

    def bags_tps(value_bytes: int) -> float:
        # Scale the baseline's 64 B rate by the relative wire/packet work.
        wire = request_wire_payloads("GET", value_bytes)
        scale = (
            base_wire.total_packets + base_wire.total_payload / 1448
        ) / (wire.total_packets + wire.total_payload / 1448)
        return bags_tps_64 * scale

    def advantage(value_bytes: float) -> float:
        size = int(value_bytes)
        metrics = evaluate_server(design, OperatingPoint(value_bytes=size))
        lead = metrics.tps_per_watt / (bags_tps(size) / MEMCACHED_BAGS.power_w)
        return lead - factor

    return find_crossover(advantage, float(low_bytes), float(high_bytes))
