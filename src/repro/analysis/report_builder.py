"""One-shot report generation: every paper artefact into a directory.

``build_report(path)`` regenerates Tables 1-4 and Figures 4-8 (text +
machine-readable), the headline comparison, and the thermal summary, and
writes an ``INDEX.md`` tying them together.  This is what the CLI's
``report`` subcommand and release tooling call.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.compare import compare_headlines
from repro.analysis.export import figure_to_json, table_to_csv
from repro.analysis.figures import (
    figure4_breakdown,
    figure5_mercury_latency_sweep,
    figure6_iridium_latency_sweep,
    figure7_density_vs_tps,
    figure8_power_vs_tps,
)
from repro.analysis.report import render_series, render_table
from repro.analysis.tables import (
    table1_components,
    table2_memory_technologies,
    table3_configurations,
    table4_comparison,
)
from repro.core.server import ServerDesign
from repro.core.stack import mercury_stack
from repro.core.thermal import thermal_report
from repro.errors import ConfigurationError

_TABLE_BUILDERS = {
    "table1": (table1_components, "Table 1: 3D-stack component power/area"),
    "table2": (table2_memory_technologies, "Table 2: memory technologies"),
    "table3": (table3_configurations, "Table 3: 1.5U maximum configurations"),
    "table4": (table4_comparison, "Table 4: comparison to prior art @64B"),
}

_FIGURE_BUILDERS = {
    "fig4": figure4_breakdown,
    "fig5": figure5_mercury_latency_sweep,
    "fig6": figure6_iridium_latency_sweep,
    "fig7": figure7_density_vs_tps,
    "fig8": figure8_power_vs_tps,
}


def build_report(directory: str | Path) -> list[Path]:
    """Write every artefact under ``directory``; returns written paths."""
    directory = Path(directory)
    if directory.exists() and not directory.is_dir():
        raise ConfigurationError(f"{directory} exists and is not a directory")
    directory.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []

    index_lines = [
        "# Reproduction report",
        "",
        "Regenerated artefacts for *Integrated 3D-Stacked Server Designs "
        "for Increasing Physical Density of Key-Value Stores* (ASPLOS 2014).",
        "",
    ]

    for name, (builder, caption) in _TABLE_BUILDERS.items():
        headers, rows = builder()
        text_path = directory / f"{name}.txt"
        text_path.write_text(render_table(headers, rows, caption=caption) + "\n")
        csv_path = directory / f"{name}.csv"
        csv_path.write_text(table_to_csv(headers, rows))
        written += [text_path, csv_path]
        index_lines.append(f"- **{caption}** — [{name}.txt]({name}.txt), "
                           f"[{name}.csv]({name}.csv)")

    for name, builder in _FIGURE_BUILDERS.items():
        panels = builder()
        text_path = directory / f"{name}.txt"
        text_path.write_text(
            "\n\n".join(
                render_series(p.x_label, p.x_values, p.series, caption=p.title)
                for p in panels
            )
            + "\n"
        )
        json_path = directory / f"{name}.json"
        json_path.write_text(
            json.dumps([json.loads(figure_to_json(p)) for p in panels], indent=2)
        )
        written += [text_path, json_path]
        index_lines.append(f"- **{panels[0].title.split(':')[0]}** — "
                           f"[{name}.txt]({name}.txt), [{name}.json]({name}.json)")

    headline_path = directory / "headlines.txt"
    lines = ["Abstract headline ratios (vs Bags unless noted):",
             f"{'metric':40s}  {'paper':>7s}  {'ours':>7s}  {'error':>6s}"]
    worst = 0.0
    for comparison in compare_headlines():
        worst = max(worst, comparison.relative_error)
        lines.append(
            f"{comparison.name:40s}  {comparison.paper:7.2f}  "
            f"{comparison.measured:7.2f}  {comparison.relative_error:6.0%}"
        )
    lines.append(f"\nworst-case error: {worst:.0%}")
    headline_path.write_text("\n".join(lines) + "\n")
    written.append(headline_path)
    index_lines.append("- **Headline ratios** — [headlines.txt](headlines.txt)")

    thermal = thermal_report(ServerDesign(stack=mercury_stack(32)))
    thermal_path = directory / "thermal.txt"
    thermal_path.write_text(
        f"{thermal.name}: {thermal.stacks} stacks, server TDP "
        f"{thermal.server_tdp_w:.0f} W, {thermal.per_stack_tdp_w:.2f} W/stack, "
        f"passively coolable: {thermal.passively_coolable}\n"
    )
    written.append(thermal_path)
    index_lines.append("- **Thermal check (S6.5)** — [thermal.txt](thermal.txt)")

    index_path = directory / "INDEX.md"
    index_path.write_text("\n".join(index_lines) + "\n")
    written.append(index_path)
    return written
