"""Builders for the paper's figures (data series, not plots).

Each function returns the series a plotting tool (or the benchmark's text
renderer) needs to reproduce the figure: x values plus named y series.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.design_space import CORES_PER_STACK_SWEEP, EVALUATED_CORES
from repro.core.latency_model import LatencyModel, dram_spec, flash_spec
from repro.core.metrics import OperatingPoint, evaluate_server
from repro.core.server import ServerDesign
from repro.core.stack import iridium_stack, mercury_stack
from repro.cpu.core_model import CORTEX_A7, CORTEX_A15_1GHZ, CoreModel
from repro.units import GB, NS, US
from repro.workloads.sweep import REQUEST_SIZE_SWEEP, sweep_labels

#: DRAM access latencies swept in Fig. 5.
FIG5_DRAM_LATENCIES_S: tuple[float, ...] = (10 * NS, 30 * NS, 50 * NS, 100 * NS)

#: Flash read latencies swept in Fig. 6 (write latency fixed at 200 us).
FIG6_FLASH_READ_LATENCIES_S: tuple[float, ...] = (10 * US, 20 * US)


@dataclass(frozen=True)
class FigureSeries:
    """One figure panel: x values, labels, and named y series."""

    title: str
    x_label: str
    x_values: tuple
    series: dict[str, tuple[float, ...]]


def figure4_breakdown(core: CoreModel = CORTEX_A15_1GHZ) -> list[FigureSeries]:
    """Fig. 4: GET/PUT time breakdown vs request size.

    The paper's setup: A15@1GHz with a 2 MB L2 and 10 ns DRAM; the
    breakdown is reported as percent of total request time.
    """
    stack = mercury_stack(1, core=core)
    model = stack.latency_model(memory=dram_spec(10 * NS))
    panels = []
    for verb in ("GET", "PUT"):
        components: dict[str, list[float]] = {
            "Memcached": [],
            "Network Stack": [],
            "Hash Computation": [],
        }
        for size in REQUEST_SIZE_SWEEP:
            fractions = model.request_timing(verb, size).fractions()
            components["Memcached"].append(100.0 * fractions["memcached"])
            components["Network Stack"].append(100.0 * fractions["network"])
            components["Hash Computation"].append(100.0 * fractions["hash"])
        panels.append(
            FigureSeries(
                title=f"Figure 4: {verb} execution-time breakdown (%)",
                x_label=f"{verb} request size",
                x_values=tuple(sweep_labels()),
                series={k: tuple(v) for k, v in components.items()},
            )
        )
    return panels


def _tps_sweep(model: LatencyModel, verb: str) -> tuple[float, ...]:
    return tuple(model.tps(verb, size) / 1e3 for size in REQUEST_SIZE_SWEEP)


def figure5_mercury_latency_sweep() -> list[FigureSeries]:
    """Fig. 5: Mercury-1 TPS vs request size across DRAM latencies.

    Four panels: {A15@1GHz, A7} x {2MB L2, no L2}, each with GET and PUT
    series at 10/30/50/100 ns.
    """
    panels = []
    for core in (CORTEX_A15_1GHZ, CORTEX_A7):
        for has_l2 in (True, False):
            stack = mercury_stack(1, core=core, has_l2=has_l2)
            series: dict[str, tuple[float, ...]] = {}
            for latency in FIG5_DRAM_LATENCIES_S:
                model = stack.latency_model(memory=dram_spec(latency))
                label = f"{latency / NS:.0f}ns"
                series[f"{label} GET"] = _tps_sweep(model, "GET")
                series[f"{label} PUT"] = _tps_sweep(model, "PUT")
            cache = "2MB L2" if has_l2 else "no L2"
            panels.append(
                FigureSeries(
                    title=f"Figure 5: Mercury-1 KTPS, {core.name}, {cache}",
                    x_label="request size",
                    x_values=tuple(sweep_labels()),
                    series=series,
                )
            )
    return panels


def figure6_iridium_latency_sweep() -> list[FigureSeries]:
    """Fig. 6: Iridium-1 TPS vs request size across flash read latencies.

    Same four panels as Fig. 5 (write latency fixed at 200 us).
    """
    panels = []
    for core in (CORTEX_A15_1GHZ, CORTEX_A7):
        for has_l2 in (True, False):
            stack = iridium_stack(1, core=core, has_l2=has_l2)
            series: dict[str, tuple[float, ...]] = {}
            for latency in FIG6_FLASH_READ_LATENCIES_S:
                model = stack.latency_model(
                    memory=flash_spec(read_latency_s=latency)
                )
                label = f"{latency / US:.0f}us"
                series[f"{label} GET"] = _tps_sweep(model, "GET")
                series[f"{label} PUT"] = _tps_sweep(model, "PUT")
            cache = "2MB L2" if has_l2 else "no L2"
            panels.append(
                FigureSeries(
                    title=f"Figure 6: Iridium-1 KTPS, {core.name}, {cache}",
                    x_label="request size",
                    x_values=tuple(sweep_labels()),
                    series=series,
                )
            )
    return panels


def _config_rows(
    family: str,
    point: OperatingPoint,
    *,
    parallel: int | None = None,
    cache=None,
    registry=None,
) -> list[dict]:
    """Every (core, cores-per-stack) cell of a family as result dicts.

    Plain operating points route through the experiment engine
    (:mod:`repro.exp`), which makes the sweep parallelisable and
    cacheable; points with a memory override or a GET/PUT mix fall back
    to direct evaluation, since specs only address verb + size.  Both
    paths produce identical numbers — engine results are float-exact
    through their JSON round trip.
    """
    if point.memory is None and point.get_fraction is None:
        from repro.exp import ExperimentSpec, StackSpec, run_experiments
        from repro.telemetry.metrics import NULL_REGISTRY

        specs = [
            ExperimentSpec(
                kind="design_point",
                stack=StackSpec(
                    family=family.lower(), cores=n, core=core.name
                ),
                verb=point.verb,
                value_bytes=point.value_bytes,
                label=f"{family}-{n} {core.name}",
            )
            for core in EVALUATED_CORES
            for n in CORES_PER_STACK_SWEEP
        ]
        report = run_experiments(
            specs,
            parallel=parallel,
            cache=cache,
            registry=registry if registry is not None else NULL_REGISTRY,
        )
        return report.labelled_results()
    build = mercury_stack if family == "Mercury" else iridium_stack
    rows = []
    for core in EVALUATED_CORES:
        for n in CORES_PER_STACK_SWEEP:
            metrics = evaluate_server(
                ServerDesign(stack=build(cores=n, core=core)), point
            )
            rows.append(
                {
                    "label": f"{family}-{n} {core.name}",
                    "density_gb": metrics.density_gb,
                    "power_w": metrics.power_w,
                    "tps": metrics.tps,
                }
            )
    return rows


def _config_sweep(
    family: str,
    metric_tps: bool,
    point: OperatingPoint,
    *,
    parallel: int | None = None,
    cache=None,
    registry=None,
) -> FigureSeries:
    rows = _config_rows(
        family, point, parallel=parallel, cache=cache, registry=registry
    )
    labels = [row["label"] for row in rows]
    density = [row["density_gb"] / 1e3 for row in rows]  # thousands of GB
    power = [row["power_w"] for row in rows]
    tps = [row["tps"] / 1e6 for row in rows]
    if metric_tps:
        series = {"Density (thousands of GB)": tuple(density), "TPS @64B (millions)": tuple(tps)}
        title = f"Figure 7: {family} density vs TPS"
    else:
        series = {"Power (W)": tuple(power), "TPS @64B (millions)": tuple(tps)}
        title = f"Figure 8: {family} power vs TPS"
    return FigureSeries(
        title=title,
        x_label="configuration",
        x_values=tuple(labels),
        series=series,
    )


def figure7_density_vs_tps(
    point: OperatingPoint = OperatingPoint(),
    *,
    parallel: int | None = None,
    cache=None,
    registry=None,
) -> list[FigureSeries]:
    """Fig. 7: density and TPS@64B for every Mercury/Iridium config.

    ``parallel``/``cache``/``registry`` pass through to the experiment
    engine (:func:`repro.exp.run_experiments`).
    """
    return [
        _config_sweep("Mercury", metric_tps=True, point=point,
                      parallel=parallel, cache=cache, registry=registry),
        _config_sweep("Iridium", metric_tps=True, point=point,
                      parallel=parallel, cache=cache, registry=registry),
    ]


def figure8_power_vs_tps(
    point: OperatingPoint = OperatingPoint(),
    *,
    parallel: int | None = None,
    cache=None,
    registry=None,
) -> list[FigureSeries]:
    """Fig. 8: power and TPS@64B for every Mercury/Iridium config.

    Takes the same engine pass-throughs as :func:`figure7_density_vs_tps`.
    """
    return [
        _config_sweep("Mercury", metric_tps=False, point=point,
                      parallel=parallel, cache=cache, registry=registry),
        _config_sweep("Iridium", metric_tps=False, point=point,
                      parallel=parallel, cache=cache, registry=registry),
    ]
