"""Validation harness: the analytic pipeline vs the discrete-event sim.

The paper *assumes* linear scaling (§5.3: TPS = cores / RTT) and asserts
the SLA is met "for a majority of requests".  This harness checks both
with the event simulator: for each configuration it drives an n-core
stack at a target load with the latency model's service times, then
compares measured throughput, mean RTT, and sub-millisecond fraction
against the analytic predictions (linear scaling + M/G/1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.stack import StackConfig
from repro.errors import ConfigurationError
from repro.sim.queueing import sla_fraction_met
from repro.sim.request_sim import StackSimulation


@dataclass(frozen=True)
class ValidationRow:
    """One configuration's analytic-vs-measured comparison."""

    name: str
    cores: int
    load: float
    analytic_tps: float
    measured_tps: float
    analytic_sla: float
    measured_sla: float
    mean_rtt_s: float

    @property
    def tps_error(self) -> float:
        return abs(self.measured_tps - self.analytic_tps) / self.analytic_tps

    @property
    def sla_error(self) -> float:
        return abs(self.measured_sla - self.analytic_sla)


def validate_stack(
    stack: StackConfig,
    load: float = 0.7,
    verb: str = "GET",
    value_bytes: int = 64,
    sla_deadline_s: float = 1e-3,
    sim_requests: int = 3_000,
    seed: int = 0,
) -> ValidationRow:
    """Run one stack through the DES and compare with the analytic model.

    ``load`` is the offered fraction of the stack's linear-scaling
    capacity; below 1.0 the analytic throughput is simply the offered
    rate (every request is eventually served), and the analytic SLA comes
    from the per-core M/G/1.
    """
    if not 0.0 < load < 1.0:
        raise ConfigurationError("load must be in (0, 1) for a stable check")
    model = stack.latency_model()
    service = model.request_timing(verb, value_bytes).total_s
    capacity = stack.cores / service
    offered = load * capacity

    duration = sim_requests / offered
    sim = StackSimulation(
        cores=stack.cores, service_time=lambda: service, seed=seed
    )
    results = sim.run(
        offered_rate_hz=offered, duration_s=duration, warmup_s=duration * 0.15
    )
    analytic_sla = sla_fraction_met(offered / stack.cores, service, sla_deadline_s)
    return ValidationRow(
        name=stack.name,
        cores=stack.cores,
        load=load,
        analytic_tps=offered,
        measured_tps=results.throughput_hz,
        analytic_sla=analytic_sla,
        measured_sla=results.sla_fraction(sla_deadline_s),
        mean_rtt_s=results.mean_rtt,
    )


def validation_table(
    stacks: list[StackConfig],
    loads: tuple[float, ...] = (0.5, 0.9),
    **kwargs,
) -> list[ValidationRow]:
    """Validate a list of stacks at several loads."""
    if not stacks:
        raise ConfigurationError("nothing to validate")
    rows = []
    for stack in stacks:
        for load in loads:
            rows.append(validate_stack(stack, load=load, **kwargs))
    return rows
