"""Machine-readable export of regenerated artefacts (CSV / JSON).

The text renderer serves humans; downstream analysis (plotting notebooks,
regression dashboards) wants structured data.  These helpers serialise
any ``(headers, rows)`` table or :class:`FigureSeries` panel without
pulling in pandas.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Sequence

from repro.analysis.figures import FigureSeries
from repro.errors import ConfigurationError


def table_to_csv(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Serialise a table to CSV text."""
    if not headers:
        raise ConfigurationError("a table needs headers")
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(headers)
    for row in rows:
        if len(row) != len(headers):
            raise ConfigurationError("row width does not match headers")
        writer.writerow(row)
    return buffer.getvalue()


def table_to_json(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Serialise a table to a JSON list of objects."""
    if not headers:
        raise ConfigurationError("a table needs headers")
    records = []
    for row in rows:
        if len(row) != len(headers):
            raise ConfigurationError("row width does not match headers")
        records.append(dict(zip(headers, row)))
    return json.dumps(records, indent=2)


def figure_to_json(panel: FigureSeries) -> str:
    """Serialise one figure panel (x values + named series)."""
    payload = {
        "title": panel.title,
        "x_label": panel.x_label,
        "x": list(panel.x_values),
        "series": {name: list(values) for name, values in panel.series.items()},
    }
    return json.dumps(payload, indent=2)


def write_artefact(
    path: str | Path,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> Path:
    """Write a table to ``path``; format chosen by suffix (.csv / .json).

    Raises:
        ConfigurationError: for an unsupported suffix.
    """
    path = Path(path)
    if path.suffix == ".csv":
        text = table_to_csv(headers, rows)
    elif path.suffix == ".json":
        text = table_to_json(headers, rows)
    else:
        raise ConfigurationError(
            f"unsupported export suffix {path.suffix!r}; use .csv or .json"
        )
    path.write_text(text)
    return path
