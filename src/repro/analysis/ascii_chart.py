"""Terminal bar charts for the regenerated figures.

The figure builders produce data series; sometimes a reviewer just wants
to *see* the shape without leaving the terminal.  These renderers draw
horizontal bar charts with pure ASCII (no dependencies), used by the CLI
``figN --chart`` flag and handy in notebooks.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import ConfigurationError

_FULL = "#"


def _format_value(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    if abs(value) >= 10:
        return f"{value:.1f}"
    return f"{value:.3g}"


def bar_chart(
    labels: Sequence[object],
    values: Sequence[float],
    width: int = 50,
    title: str = "",
) -> str:
    """Render one series as a horizontal bar chart.

    Bars are scaled to the maximum value; zero-max charts render empty
    bars rather than dividing by zero.
    """
    if len(labels) != len(values):
        raise ConfigurationError("labels and values must align")
    if not labels:
        raise ConfigurationError("nothing to chart")
    if width < 10:
        raise ConfigurationError("width must be at least 10")
    if any(v < 0 for v in values):
        raise ConfigurationError("bar charts require non-negative values")
    peak = max(values)
    label_width = max(len(str(label)) for label in labels)
    value_width = max(len(_format_value(v)) for v in values)
    lines = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        if peak > 0:
            bar = _FULL * max(1 if value > 0 else 0, round(value / peak * width))
        else:
            bar = ""
        lines.append(
            f"{str(label):>{label_width}}  {_format_value(value):>{value_width}}  {bar}"
        )
    return "\n".join(lines)


def series_chart(
    x_labels: Sequence[object],
    series: Mapping[str, Sequence[float]],
    width: int = 50,
    title: str = "",
) -> str:
    """Render several named series as stacked bar-chart sections.

    All sections share one scale, so cross-series comparison is visual
    (e.g. Fig. 5's latency families).
    """
    if not series:
        raise ConfigurationError("nothing to chart")
    peak = max((max(values) for values in series.values()), default=0.0)
    sections = []
    if title:
        sections.append(title)
    for name, values in series.items():
        if len(values) != len(x_labels):
            raise ConfigurationError("every series must match the x labels")
        if any(v < 0 for v in values):
            raise ConfigurationError("bar charts require non-negative values")
        label_width = max(len(str(x)) for x in x_labels)
        value_width = max(len(_format_value(v)) for v in values)
        lines = [f"-- {name}"]
        for x, value in zip(x_labels, values):
            if peak > 0:
                bar = _FULL * max(1 if value > 0 else 0, round(value / peak * width))
            else:
                bar = ""
            lines.append(
                f"{str(x):>{label_width}}  "
                f"{_format_value(value):>{value_width}}  {bar}"
            )
        sections.append("\n".join(lines))
    return "\n\n".join(sections)
