"""Paper-vs-measured headline comparison (the abstract's claims).

The abstract promises, relative to a state-of-the-art server running
optimised Memcached (the Bags baseline):

* Mercury: density 2.9x, power efficiency 4.9x, throughput 10x,
  throughput/GB 3.5x;
* Iridium: density 14x (14.8x in §6.6), power efficiency 2.4x,
  throughput 5.2x, at 2.8x *less* TPS/GB;
* vs TSSP: Mercury 3x and Iridium 1.5x the TPS/W.

:func:`headline_ratios` recomputes every ratio from the models and
:func:`compare_headlines` reports measured-vs-paper side by side, which
is what EXPERIMENTS.md and the integration tests consume.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.commodity import MEMCACHED_BAGS
from repro.baselines.tssp import TSSP
from repro.core.metrics import OperatingPoint, evaluate_server
from repro.core.server import ServerDesign
from repro.core.stack import iridium_stack, mercury_stack

#: The paper's published headline ratios (vs Bags unless stated).
PAPER_HEADLINES: dict[str, float] = {
    "mercury_density_x": 2.9,
    "mercury_tps_per_watt_x": 4.9,
    "mercury_tps_x": 10.0,
    "mercury_tps_per_gb_x": 3.5,
    "iridium_density_x": 14.8,
    "iridium_tps_per_watt_x": 2.4,
    "iridium_tps_x": 5.2,
    "iridium_tps_per_gb_inverse_x": 2.8,
    "mercury_vs_tssp_tps_per_watt_x": 3.0,
    "iridium_vs_tssp_tps_per_watt_x": 1.5,
}


@dataclass(frozen=True)
class HeadlineComparison:
    """One headline metric: what the paper claims vs what we measure."""

    name: str
    paper: float
    measured: float

    @property
    def relative_error(self) -> float:
        return abs(self.measured - self.paper) / self.paper


def headline_ratios(point: OperatingPoint = OperatingPoint()) -> dict[str, float]:
    """Recompute every abstract headline from the models."""
    mercury = evaluate_server(ServerDesign(stack=mercury_stack(32)), point)
    iridium = evaluate_server(ServerDesign(stack=iridium_stack(32)), point)
    bags = MEMCACHED_BAGS
    return {
        "mercury_density_x": mercury.density_gb / bags.memory_gb,
        "mercury_tps_per_watt_x": mercury.tps_per_watt / bags.tps_per_watt,
        "mercury_tps_x": mercury.tps / bags.tps,
        "mercury_tps_per_gb_x": mercury.tps_per_gb / bags.tps_per_gb,
        "iridium_density_x": iridium.density_gb / bags.memory_gb,
        "iridium_tps_per_watt_x": iridium.tps_per_watt / bags.tps_per_watt,
        "iridium_tps_x": iridium.tps / bags.tps,
        "iridium_tps_per_gb_inverse_x": bags.tps_per_gb / iridium.tps_per_gb,
        "mercury_vs_tssp_tps_per_watt_x": mercury.tps_per_watt / TSSP.tps_per_watt,
        "iridium_vs_tssp_tps_per_watt_x": iridium.tps_per_watt / TSSP.tps_per_watt,
    }


def compare_headlines(
    point: OperatingPoint = OperatingPoint(),
) -> list[HeadlineComparison]:
    """Measured-vs-paper rows for every headline, in a stable order."""
    measured = headline_ratios(point)
    return [
        HeadlineComparison(name=name, paper=paper, measured=measured[name])
        for name, paper in PAPER_HEADLINES.items()
    ]
