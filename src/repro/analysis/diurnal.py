"""Day-in-the-life analysis of a cache tier under diurnal traffic (§2.2).

Front-end fleets scale with the daily traffic curve; a stateful cache
tier cannot — it is provisioned for the peak and idles at night.  This
module walks a provisioned fleet through the 24-hour curve and reports,
hour by hour: utilization, the M/G/1 sub-millisecond SLA fraction, and
energy drawn — quantifying both of the paper's §2.2 claims (stranded
capacity, and why density rather than elasticity cuts the footprint).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.metrics import OperatingPoint, evaluate_server
from repro.core.server import ServerDesign
from repro.errors import ConfigurationError
from repro.sim.queueing import sla_fraction_met
from repro.workloads.diurnal import DiurnalTraffic


@dataclass(frozen=True)
class HourlyState:
    """One hour of a cache tier's day."""

    hour: int
    offered_tps: float
    utilization: float
    sla_fraction: float
    power_w: float


@dataclass(frozen=True)
class DayReport:
    """The tier's whole day, plus daily aggregates."""

    server_name: str
    servers: int
    hours: tuple[HourlyState, ...]

    @property
    def peak_utilization(self) -> float:
        return max(state.utilization for state in self.hours)

    @property
    def mean_utilization(self) -> float:
        return sum(state.utilization for state in self.hours) / len(self.hours)

    @property
    def stranded_fraction(self) -> float:
        """Average idle share of the provisioned capacity — §2.2's waste."""
        return 1.0 - self.mean_utilization / self.peak_utilization

    @property
    def worst_sla(self) -> float:
        return min(state.sla_fraction for state in self.hours)

    @property
    def energy_kwh(self) -> float:
        return sum(state.power_w for state in self.hours) / 1000.0


def day_in_the_life(
    design: ServerDesign,
    servers: int,
    traffic: DiurnalTraffic,
    point: OperatingPoint = OperatingPoint(),
    sla_deadline_s: float = 1e-3,
) -> DayReport:
    """Walk ``servers`` copies of a design through a 24-hour curve.

    Raises:
        ConfigurationError: if the fleet cannot absorb the peak hour.
    """
    if servers <= 0:
        raise ConfigurationError("fleet must have at least one server")
    metrics = evaluate_server(design, point)
    model = design.stack.latency_model(memory=point.memory)
    service = point.mean_request_time(model)
    fleet_capacity = servers * metrics.tps
    total_cores = servers * design.total_cores

    hours = []
    for hour in range(24):
        offered = traffic.rate(hour)
        utilization = offered / fleet_capacity
        if utilization >= 1.0:
            raise ConfigurationError(
                f"fleet saturated at hour {hour}: offered {offered:.0f} TPS "
                f"exceeds capacity {fleet_capacity:.0f}"
            )
        per_core_rate = offered / total_cores
        sla = sla_fraction_met(per_core_rate, service, sla_deadline_s)
        # Power: stacks idle at their fixed power; memory power follows
        # the traffic. Approximate by scaling the operating-point power's
        # memory share with utilization (fixed share dominates anyway).
        power = servers * metrics.power_w
        hours.append(
            HourlyState(
                hour=hour,
                offered_tps=offered,
                utilization=utilization,
                sla_fraction=sla,
                power_w=power,
            )
        )
    return DayReport(
        server_name=metrics.name, servers=servers, hours=tuple(hours)
    )


def fleet_for_peak(
    design: ServerDesign,
    traffic: DiurnalTraffic,
    point: OperatingPoint = OperatingPoint(),
    utilization_target: float = 0.75,
) -> int:
    """Servers needed so the peak hour runs at the utilization target."""
    if not 0.0 < utilization_target <= 1.0:
        raise ConfigurationError("utilization target must be in (0, 1]")
    metrics = evaluate_server(design, point)
    import math

    return max(1, math.ceil(traffic.peak_rate_hz / (metrics.tps * utilization_target)))
