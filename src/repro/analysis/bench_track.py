"""Benchmark-regression tracker: append per-run records, diff vs last run.

The benchmark harness measures throughput and latency every run, but a
number printed once is a number forgotten: a 15 % TPS regression hides
easily inside a 20-benchmark session.  This module keeps the history.

Each benchmark session appends one *run* to a JSON history file
(``benchmarks/out/BENCH_history.json`` by default): a monotonically
increasing ``seq``, optional free-form ``meta``, and a ``records`` map
of benchmark name → measurements (``wall_s`` always; ``tps`` / ``rtt_s``
when the bench reports them).  :func:`regression_report` then diffs the
newest run against the previous one and flags any tracked benchmark
whose TPS dropped (or wall-clock grew) by more than a threshold.

The file format is deliberately dumb JSON — greppable, mergeable, and
diff-able in code review — and the module doubles as a CLI::

    python -m repro.analysis.bench_track --history benchmarks/out/BENCH_history.json --check

which exits non-zero when the latest run regressed, so CI can gate on it.
"""

from __future__ import annotations

import argparse
import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from repro.errors import ConfigurationError

#: Current schema version of the history file.
SCHEMA_VERSION = 1

#: Default relative TPS drop that flags a regression (10 %).
DEFAULT_TPS_THRESHOLD = 0.10

#: Default relative wall-clock growth that flags a regression (75 % —
#: wall time on shared CI machines is noisy, so the gate is loose).
DEFAULT_WALL_THRESHOLD = 0.75

#: Measurement fields where *smaller* is better.
_LOWER_IS_BETTER = frozenset({"wall_s", "rtt_s", "joules_per_op"})


def _lower_is_better(field: str) -> bool:
    """Whether growth in ``field`` is the bad direction.

    Beyond the classic fields, any ``*_s`` duration, any
    ``*_amplification`` factor (the flashstore benches track write/read
    amplification), and any ``*_joules_per_op`` energy cost reads as a
    cost, not a gain.
    """
    return field in _LOWER_IS_BETTER or field.endswith(
        ("_s", "_amplification", "_joules_per_op")
    )


def _is_throughput(field: str) -> bool:
    """``tps``, any ``*_tps`` endpoint (e.g. ``put_tps``), any
    ``*_per_sec`` rate (the simulator core tracks ``events_per_sec``),
    and any ``*_per_watt`` efficiency figure gate alike: a drop is a
    regression."""
    return (
        field == "tps"
        or field.endswith("_tps")
        or field.endswith("_per_sec")
        or field.endswith("_per_watt")
    )


def _empty_history() -> dict:
    return {"version": SCHEMA_VERSION, "runs": []}


def load_history(path: str | Path) -> dict:
    """Load a history file, returning an empty history if absent.

    A corrupt or wrong-version file raises :class:`ConfigurationError`
    rather than silently starting over — losing the baseline is exactly
    the failure a tracker exists to prevent.
    """
    path = Path(path)
    if not path.exists():
        return _empty_history()
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"unreadable bench history {path}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("version") != SCHEMA_VERSION:
        raise ConfigurationError(
            f"bench history {path} has unsupported version "
            f"{payload.get('version') if isinstance(payload, dict) else payload!r}"
        )
    if not isinstance(payload.get("runs"), list):
        raise ConfigurationError(f"bench history {path} has no runs list")
    return payload


def append_run(
    path: str | Path,
    records: Mapping[str, Mapping[str, float]],
    meta: Mapping[str, Any] | None = None,
    max_runs: int = 200,
) -> dict:
    """Append one run of measurements and rewrite the history file.

    ``records`` maps benchmark name → {field: value}; non-finite values
    are dropped.  History is capped at ``max_runs`` (oldest evicted) so
    a long-lived checkout never grows an unbounded file.  Returns the
    run entry that was written.
    """
    if not records:
        raise ConfigurationError("refusing to append an empty benchmark run")
    history = load_history(path)
    clean: dict[str, dict[str, float]] = {}
    for name, fields in sorted(records.items()):
        row = {
            key: float(value)
            for key, value in sorted(fields.items())
            if isinstance(value, (int, float)) and math.isfinite(float(value))
        }
        if row:
            clean[str(name)] = row
    if not clean:
        raise ConfigurationError("no finite measurements in benchmark run")
    runs = history["runs"]
    seq = (runs[-1]["seq"] + 1) if runs else 1
    entry: dict[str, Any] = {"seq": seq, "records": clean}
    if meta:
        entry["meta"] = dict(meta)
    runs.append(entry)
    del runs[:-max_runs]
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(history, indent=2, sort_keys=True) + "\n")
    return entry


@dataclass(frozen=True)
class Delta:
    """One benchmark measurement compared across two runs."""

    bench: str
    field: str
    previous: float
    current: float
    flagged: bool

    @property
    def ratio(self) -> float:
        """current / previous (inf when previous is zero)."""
        if self.previous == 0:
            return math.inf if self.current else 1.0
        return self.current / self.previous

    @property
    def change(self) -> float:
        """Signed relative change, e.g. -0.12 for a 12 % drop."""
        return self.ratio - 1.0


def regression_report(
    history: Mapping[str, Any],
    tps_threshold: float = DEFAULT_TPS_THRESHOLD,
    wall_threshold: float = DEFAULT_WALL_THRESHOLD,
) -> list[Delta]:
    """Diff the newest run against the previous one.

    Returns every comparable (bench, field) pair as a :class:`Delta`;
    ``flagged`` is set when a throughput-like field (``tps``, any
    ``*_tps`` endpoint, or any ``*_per_watt`` efficiency) dropped by
    more than ``tps_threshold``, a ``joules_per_op`` energy cost grew
    by more than the same threshold, or wall-clock grew by more than
    ``wall_threshold``.  Latency (``rtt_s``) deltas are reported but
    never flagged on their own — the simulated RTT is deterministic, so
    a real change there shows up in review, while the gate watches
    throughput and energy.
    """
    runs = history.get("runs", [])
    if len(runs) < 2:
        return []
    previous, current = runs[-2]["records"], runs[-1]["records"]
    deltas: list[Delta] = []
    for bench in sorted(set(previous) & set(current)):
        before, after = previous[bench], current[bench]
        for field in sorted(set(before) & set(after)):
            old, new = float(before[field]), float(after[field])
            flagged = False
            if _is_throughput(field) and old > 0:
                flagged = (new - old) / old < -tps_threshold
            elif field == "wall_s" and old > 0:
                flagged = (new - old) / old > wall_threshold
            elif (
                field == "joules_per_op" or field.endswith("_joules_per_op")
            ) and old > 0:
                flagged = (new - old) / old > tps_threshold
            deltas.append(Delta(bench, field, old, new, flagged))
    return deltas


def render_report(deltas: list[Delta]) -> str:
    """Human-readable delta table, flagged rows marked ``!!``."""
    if not deltas:
        return "bench tracker: fewer than two runs recorded, nothing to compare"
    lines = [
        "benchmark regression report (latest run vs previous)",
        f"{'':2s} {'benchmark':40s} {'field':8s} {'previous':>14s} "
        f"{'current':>14s} {'change':>8s}",
    ]
    for d in deltas:
        marker = "!!" if d.flagged else "  "
        arrow = "" if abs(d.change) < 5e-4 else ("+" if d.change > 0 else "")
        lines.append(
            f"{marker} {d.bench:40s} {d.field:8s} {d.previous:>14.6g} "
            f"{d.current:>14.6g} {arrow}{d.change:>7.1%}"
        )
    flagged = [d for d in deltas if d.flagged]
    if flagged:
        lines.append("")
        lines.append(f"{len(flagged)} regression(s) flagged:")
        for d in flagged:
            direction = "grew" if _lower_is_better(d.field) else "dropped"
            lines.append(
                f"  {d.bench}: {d.field} {direction} "
                f"{abs(d.change):.1%} ({d.previous:g} -> {d.current:g})"
            )
    else:
        lines.append("")
        lines.append("no regressions flagged")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.analysis.bench_track",
        description="Diff the latest benchmark run against the previous one.",
    )
    parser.add_argument(
        "--history",
        default="benchmarks/out/BENCH_history.json",
        help="history file written by the benchmark harness",
    )
    parser.add_argument(
        "--tps-threshold",
        type=float,
        default=DEFAULT_TPS_THRESHOLD,
        help="relative TPS drop that counts as a regression (default 0.10)",
    )
    parser.add_argument(
        "--wall-threshold",
        type=float,
        default=DEFAULT_WALL_THRESHOLD,
        help="relative wall-clock growth that counts as a regression",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero when any regression is flagged (CI gate)",
    )
    args = parser.parse_args(argv)
    try:
        history = load_history(args.history)
    except ConfigurationError as exc:
        print(f"error: {exc}")
        return 2
    deltas = regression_report(
        history,
        tps_threshold=args.tps_threshold,
        wall_threshold=args.wall_threshold,
    )
    print(render_report(deltas))
    if args.check and any(d.flagged for d in deltas):
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
