"""Plain-text rendering of regenerated tables and figure series.

The benchmarks print through these helpers so their output reads like the
paper's tables: a header row, aligned columns, and a caption.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import ConfigurationError


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000:
            return f"{value:,.0f}"
        if magnitude >= 10:
            return f"{value:.1f}"
        return f"{value:.3g}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    caption: str = "",
) -> str:
    """Render rows as an aligned plain-text table."""
    if not headers:
        raise ConfigurationError("a table needs headers")
    formatted = [[_format_cell(cell) for cell in row] for row in rows]
    for row in formatted:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row width {len(row)} != header width {len(headers)}"
            )
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in formatted)) if formatted else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if caption:
        lines.append(caption)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in formatted:
        lines.append("  ".join(row[i].rjust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


def render_series(
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    caption: str = "",
) -> str:
    """Render figure data as one x column plus one column per series."""
    if not series:
        raise ConfigurationError("a figure needs at least one series")
    headers = [x_label, *series.keys()]
    rows = []
    for index, x in enumerate(x_values):
        row: list[object] = [x]
        for values in series.values():
            if len(values) != len(x_values):
                raise ConfigurationError(
                    "every series must have one value per x point"
                )
            row.append(values[index])
        rows.append(row)
    return render_table(headers, rows, caption=caption)
