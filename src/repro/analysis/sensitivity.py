"""Sensitivity analysis: how robust are the headlines to the calibration?

The latency model's constants were fitted to the paper's anchor points;
a fair question is whether the headline conclusions depend on the exact
values.  This module perturbs each calibration constant by a factor,
recomputes the abstract's headline ratios, and reports the swing — the
ablation that shows the conclusions are structural (density and power
arithmetic) rather than artefacts of the fit.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.calibration import DEFAULT_CALIBRATION, CalibrationConstants
from repro.core.metrics import OperatingPoint, evaluate_server
from repro.core.server import ServerDesign
from repro.core.stack import StackConfig, iridium_stack, mercury_stack
from repro.errors import ConfigurationError
from repro.network.tcp import TcpCostModel

#: Scalar calibration fields a perturbation sweep covers.
PERTURBABLE_FIELDS: tuple[str, ...] = (
    "memcached_get_instructions",
    "memcached_put_instructions",
    "hash_per_key_byte_instructions",
    "ifetch_misses_with_l2",
    "ifetch_misses_without_l2",
    "data_accesses_get",
    "flash_reads_get",
    "flash_write_amplification",
    "tcp.per_transaction_instructions",
    "tcp.per_packet_instructions",
    "tcp.per_byte_instructions",
)


def perturb(
    calibration: CalibrationConstants, field: str, factor: float
) -> CalibrationConstants:
    """A copy of ``calibration`` with one field scaled by ``factor``.

    ``field`` may be a dotted path into the nested TCP cost model.
    """
    if factor <= 0:
        raise ConfigurationError("perturbation factor must be positive")
    if field.startswith("tcp."):
        leaf = field.split(".", 1)[1]
        if not hasattr(calibration.tcp, leaf):
            raise ConfigurationError(f"unknown TCP field {leaf!r}")
        new_tcp = replace(calibration.tcp, **{leaf: getattr(calibration.tcp, leaf) * factor})
        return replace(calibration, tcp=new_tcp)
    if not hasattr(calibration, field):
        raise ConfigurationError(f"unknown calibration field {field!r}")
    value = getattr(calibration, field) * factor
    if field == "flash_write_amplification":
        value = max(1.0, value)
    return replace(calibration, **{field: value})


def _with_calibration(stack: StackConfig, calibration: CalibrationConstants) -> StackConfig:
    return replace(stack, calibration=calibration)


def headline_under(
    calibration: CalibrationConstants, point: OperatingPoint = OperatingPoint()
) -> dict[str, float]:
    """Mercury/Iridium vs Bags headline ratios under a calibration."""
    from repro.baselines.commodity import MEMCACHED_BAGS

    mercury = evaluate_server(
        ServerDesign(stack=_with_calibration(mercury_stack(32), calibration)), point
    )
    iridium = evaluate_server(
        ServerDesign(stack=_with_calibration(iridium_stack(32), calibration)), point
    )
    bags = MEMCACHED_BAGS
    return {
        "mercury_tps_x": mercury.tps / bags.tps,
        "mercury_tps_per_watt_x": mercury.tps_per_watt / bags.tps_per_watt,
        "mercury_density_x": mercury.density_gb / bags.memory_gb,
        "iridium_tps_x": iridium.tps / bags.tps,
        "iridium_density_x": iridium.density_gb / bags.memory_gb,
    }


@dataclass(frozen=True)
class SensitivityRow:
    """Headline swing when one constant moves by +/- the factor."""

    field: str
    factor: float
    low: dict[str, float]
    high: dict[str, float]

    def max_relative_swing(self, baseline: dict[str, float]) -> float:
        """Largest relative change of any headline across the +/- pair."""
        swing = 0.0
        for name, base in baseline.items():
            for variant in (self.low, self.high):
                swing = max(swing, abs(variant[name] - base) / base)
        return swing

    def conclusions_hold(self, baseline: dict[str, float]) -> bool:
        """Whether every ordering-level conclusion survives the swing.

        Conclusions: Mercury beats Bags on TPS by >3x, Iridium by >2x,
        densities are untouched by timing constants.
        """
        for variant in (self.low, self.high):
            if variant["mercury_tps_x"] < 3.0 or variant["iridium_tps_x"] < 2.0:
                return False
            if abs(variant["mercury_density_x"] - baseline["mercury_density_x"]) > 0.5:
                return False
        return True


def sensitivity_sweep(
    factor: float = 1.5,
    fields: tuple[str, ...] = PERTURBABLE_FIELDS,
    point: OperatingPoint = OperatingPoint(),
    *,
    parallel: int | None = None,
    cache=None,
    registry=None,
) -> list[SensitivityRow]:
    """Perturb each field by x``factor`` and /``factor``; report swings.

    With ``parallel``/``cache`` the 2x|fields| headline evaluations run
    through the experiment engine (each perturbation is one ``headline``
    spec), so repeated ablations are cache hits.  Plain operating points
    only; a memory override or GET/PUT mix falls back to the direct loop.
    """
    if factor <= 1.0:
        raise ConfigurationError("factor must exceed 1 (it is applied both ways)")
    if point.memory is None and point.get_fraction is None:
        from repro.exp import ExperimentSpec, run_experiments
        from repro.telemetry.metrics import NULL_REGISTRY

        specs = []
        for field in fields:
            for direction, scale in (("low", 1.0 / factor), ("high", factor)):
                specs.append(
                    ExperimentSpec(
                        kind="headline",
                        verb=point.verb,
                        value_bytes=point.value_bytes,
                        calibration_scale=((field, scale),),
                        label=f"sensitivity[{field} {direction} x{factor:g}]",
                    )
                )
        report = run_experiments(
            specs,
            parallel=parallel,
            cache=cache,
            registry=registry if registry is not None else NULL_REGISTRY,
        )
        ratios = [
            {k: v for k, v in result.items() if k != "kind"}
            for result in report.results
        ]
        return [
            SensitivityRow(
                field=field,
                factor=factor,
                low=ratios[2 * i],
                high=ratios[2 * i + 1],
            )
            for i, field in enumerate(fields)
        ]
    rows = []
    for field in fields:
        low = headline_under(perturb(DEFAULT_CALIBRATION, field, 1.0 / factor), point)
        high = headline_under(perturb(DEFAULT_CALIBRATION, field, factor), point)
        rows.append(SensitivityRow(field=field, factor=factor, low=low, high=high))
    return rows
