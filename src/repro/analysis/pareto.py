"""Pareto-frontier extraction over the Mercury/Iridium design space.

Figs. 7-8 plot every configuration; the decision-relevant subset is the
Pareto frontier — designs not dominated on all the objectives at once
(throughput, efficiency, density, and negated power).  This module
extracts frontiers for arbitrary objective subsets, which is how a
capacity planner should read Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.design_space import design_space
from repro.core.metrics import OperatingPoint, ServerMetrics, evaluate_server
from repro.errors import ConfigurationError

#: Objectives available for frontier extraction; each maps metrics to a
#: maximise-me score.
OBJECTIVES = {
    "tps": lambda m: m.tps,
    "tps_per_watt": lambda m: m.tps_per_watt,
    "tps_per_gb": lambda m: m.tps_per_gb,
    "density_gb": lambda m: m.density_gb,
    "low_power": lambda m: -m.power_w,
}


@dataclass(frozen=True)
class ParetoPoint:
    """One design with its objective scores."""

    metrics: ServerMetrics
    scores: tuple[float, ...]

    def dominates(self, other: "ParetoPoint") -> bool:
        """Weakly better on every objective and strictly on at least one."""
        at_least_as_good = all(a >= b for a, b in zip(self.scores, other.scores))
        strictly_better = any(a > b for a, b in zip(self.scores, other.scores))
        return at_least_as_good and strictly_better


def pareto_frontier(
    objectives: tuple[str, ...] = ("tps", "density_gb"),
    point: OperatingPoint = OperatingPoint(),
    **space_kwargs,
) -> list[ParetoPoint]:
    """Non-dominated designs for the chosen objectives.

    Returns points sorted by the first objective, descending.
    """
    if len(objectives) < 2:
        raise ConfigurationError("a frontier needs at least two objectives")
    for name in objectives:
        if name not in OBJECTIVES:
            known = ", ".join(sorted(OBJECTIVES))
            raise ConfigurationError(f"unknown objective {name!r}; known: {known}")
    scorers = [OBJECTIVES[name] for name in objectives]
    points = []
    for design in design_space(**space_kwargs):
        metrics = evaluate_server(design, point)
        points.append(
            ParetoPoint(
                metrics=metrics,
                scores=tuple(scorer(metrics) for scorer in scorers),
            )
        )
    frontier = [
        candidate
        for candidate in points
        if not any(other.dominates(candidate) for other in points)
    ]
    frontier.sort(key=lambda p: p.scores[0], reverse=True)
    return frontier
