"""Builders for the paper's four tables.

Each function returns ``(headers, rows)`` ready for
:func:`repro.analysis.report.render_table`; the benchmark files print
them and EXPERIMENTS.md records paper-vs-measured.
"""

from __future__ import annotations

from repro.baselines.commodity import COMMODITY_BASELINES
from repro.baselines.tssp import TSSP
from repro.core.components import COMPONENT_CATALOG
from repro.core.design_space import CORES_PER_STACK_SWEEP, EVALUATED_CORES
from repro.core.metrics import OperatingPoint, evaluate_server
from repro.core.server import DEFAULT_CONSTRAINTS, ServerConstraints, ServerDesign
from repro.core.stack import iridium_stack, mercury_stack
from repro.units import GB

Row = list[object]
Table = tuple[list[str], list[Row]]


def table1_components() -> Table:
    """Table 1: power and area for the components of a 3D stack."""
    headers = ["Component", "Power (mW)", "Area (mm^2)"]
    rows: list[Row] = []
    for component in COMPONENT_CATALOG:
        if component.power_w_per_gbs > 0:
            power = f"{component.power_w_per_gbs * 1e3:.0f} (per GB/s)"
        else:
            power = f"{component.power_w * 1e3:.0f}"
        rows.append([component.name, power, component.area_mm2])
    return headers, rows


def table2_memory_technologies() -> Table:
    """Table 2: 3D-stacked DRAM vs DIMM packages."""
    from repro.memory.dram_dimm import MEMORY_TECH_CATALOG

    headers = ["DRAM", "BW (GB/s)", "Capacity (MB)", "Stacked"]
    rows: list[Row] = [
        [
            tech.name,
            tech.bandwidth_bytes_s / GB,
            tech.capacity_bytes / (1024 * 1024),
            "yes" if tech.stacked else "no",
        ]
        for tech in MEMORY_TECH_CATALOG
    ]
    return headers, rows


def table3_configurations(
    constraints: ServerConstraints = DEFAULT_CONSTRAINTS,
) -> Table:
    """Table 3: area/power/density/max-BW for every 1.5U configuration."""
    headers = [
        "Family",
        "CPU",
        "Cores/stack",
        "Stacks",
        "Area (cm^2)",
        "Power (W)",
        "Density (GB)",
        "Max BW (GB/s)",
    ]
    rows: list[Row] = []
    for family, build in (("Mercury", mercury_stack), ("Iridium", iridium_stack)):
        for core in EVALUATED_CORES:
            for n in CORES_PER_STACK_SWEEP:
                design = ServerDesign(
                    stack=build(cores=n, core=core), constraints=constraints
                )
                rows.append(
                    [
                        family,
                        core.name,
                        n,
                        design.num_stacks,
                        design.area_cm2,
                        design.budget_power_w(),
                        design.density_gb,
                        design.max_bandwidth_bytes_s() / GB,
                    ]
                )
    return headers, rows


def table4_comparison(point: OperatingPoint = OperatingPoint()) -> Table:
    """Table 4: A7 Mercury/Iridium (n=8,16,32) vs prior art at 64 B GETs."""
    headers = [
        "System",
        "Stacks",
        "Cores",
        "Memory (GB)",
        "Power (W)",
        "TPS (millions)",
        "KTPS/Watt",
        "KTPS/GB",
        "Bandwidth (GB/s)",
    ]
    rows: list[Row] = []
    for build in (mercury_stack, iridium_stack):
        for n in (8, 16, 32):
            metrics = evaluate_server(ServerDesign(stack=build(cores=n)), point)
            rows.append(
                [
                    metrics.name,
                    metrics.stacks,
                    metrics.cores,
                    metrics.density_gb,
                    metrics.power_w,
                    metrics.tps / 1e6,
                    metrics.ktps_per_watt,
                    metrics.ktps_per_gb,
                    metrics.bandwidth_bytes_s / GB,
                ]
            )
    for baseline in COMMODITY_BASELINES:
        rows.append(
            [
                baseline.name,
                1,
                baseline.threads,
                baseline.memory_gb,
                baseline.power_w,
                baseline.tps / 1e6,
                baseline.tps_per_watt / 1e3,
                baseline.tps_per_gb / 1e3,
                baseline.bandwidth_bytes_s(point.value_bytes) / GB,
            ]
        )
    rows.append(
        [
            TSSP.name,
            1,
            1,
            TSSP.memory_gb,
            TSSP.power_w,
            TSSP.tps / 1e6,
            TSSP.tps_per_watt / 1e3,
            TSSP.tps_per_gb / 1e3,
            TSSP.bandwidth_bytes_s(point.value_bytes) / GB,
        ]
    )
    return headers, rows
