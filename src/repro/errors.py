"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without catching programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A hardware or server configuration is internally inconsistent."""


class CapacityError(ReproError):
    """A component was asked to hold more than it physically can."""


class ProtocolError(ReproError):
    """Malformed memcached protocol input."""


class StorageError(ReproError):
    """A key-value storage operation could not be completed."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an invalid state."""


class NodeUnavailableError(ReproError):
    """A request to a cluster node timed out or the node is down.

    Raised by the fault-aware transport; resilient clients catch it and
    retry, hedge, or fail over instead of surfacing it to callers.
    """

    def __init__(self, node: str, reason: str = "timeout"):
        super().__init__(f"node {node!r} unavailable ({reason})")
        self.node = node
        self.reason = reason
