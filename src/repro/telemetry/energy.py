"""Activity-based energy metering for full-system DES runs.

The static power model prices a design at one operating point; this
module *measures* energy while the simulation runs.  An
:class:`EnergyMeter` is an instrument in the PR 4/5 sense — attach it
via ``RunOptions.with_instruments(energy=...)`` and the run charges it
as activity happens:

* every busy interval on a core charges ``(active - idle)`` watts for
  the service time (the idle floor is accrued continuously);
* every request charges its memory bytes at the DRAM/flash-bus
  joules-per-byte price and its wire bytes at the PHY serialisation
  price;
* flash page reads/programs and block erases (the FTL's and the tiered
  store's) charge the Grupp et al. array energies;
* the NIC floor, the chassis floor and delivery losses accrue with
  simulated time.

Energy is conserved by construction: ``sum(components) == total_j``
exactly, and the windowed series the meter keeps (joules of stack-side
activity per window) is charged so that window sums equal the charged
energy bit-for-bit.  On top of the windows the meter runs two
:class:`~repro.telemetry.slo.Alert`-style lifecycles:

* ``thermal_throttle`` — the simulated stack's windowed power exceeded
  the passive-cooling limit; fires once per sustained violation and
  clears when a window comes back under.  While active, the meter's
  :attr:`derate_factor` drops below 1.0 so the run can slow the cores
  and show the TPS cost of running hot.
* ``power_budget_burn`` — the extrapolated enclosure (``num_stacks``
  stacks behaving like the simulated one) exceeded the stack power
  budget.

Registry metrics (``energy_*`` / ``power_*``) carry the same numbers
for the Prometheus exporter and the :class:`TimeSeriesRecorder`.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Sequence

from repro.errors import ConfigurationError, SimulationError
from repro.power.dynamic import DynamicPowerModel
from repro.telemetry.critical_path import (
    DEFAULT_QUANTILES,
    AttributionTable,
    critical_path,
)
from repro.telemetry.metrics import MetricsRegistry, NULL_REGISTRY
from repro.telemetry.slo import Alert
from repro.telemetry.timeseries import WindowedSeries
from repro.telemetry.tracing import RequestTrace

#: Critical-path components during which the serving core is *waiting*
#: (queueing, lingering, backoff) rather than executing: they burn the
#: idle floor, not active power.  Matched against the last dot-qualified
#: part of the branch-qualified component name.
WAIT_COMPONENTS = frozenset(
    {"queue", "client", "batch_wait", "linger", "backoff", "hedge_wait"}
)

#: Default frequency-derating factor applied while thermally throttled:
#: the memcached/hash phases slow to 1/0.8 = 1.25x their calibrated time.
DEFAULT_THROTTLE_DERATE = 0.8

_COMPONENTS = (
    "cores_active",
    "cores_idle",
    "memory",
    "flash_array",
    "flash_erase",
    "nic",
    "nic_wire",
    "delivery_loss",
    "chassis",
)


class EnergyMeter:
    """Integrates per-component power over simulated time.

    ``model`` prices events (see :class:`DynamicPowerModel`);
    ``window_s`` sets the power-averaging window for the timeline and
    the alerts.  ``num_stacks`` extrapolates enclosure-level numbers
    (wall power, budget burn, TPS/W) from the one simulated stack; the
    energy ledger itself always covers one stack plus the full chassis
    floor.  ``throttle_derate`` in (0, 1] is the frequency factor
    applied while the thermal alert is active (1.0 = measure only,
    never perturb).
    """

    def __init__(
        self,
        model: DynamicPowerModel,
        window_s: float = 0.01,
        registry: MetricsRegistry = NULL_REGISTRY,
        num_stacks: int = 1,
        passive_limit_w: float | None = None,
        budget_w: float | None = None,
        throttle_derate: float = 1.0,
        sinks: Sequence[Callable] = (),
    ):
        from repro.core.thermal import PASSIVE_COOLING_LIMIT_W

        if window_s <= 0:
            raise ConfigurationError("energy window must be positive")
        if num_stacks < 1:
            raise ConfigurationError("num_stacks must be at least 1")
        if not 0.0 < throttle_derate <= 1.0:
            raise ConfigurationError("throttle_derate must be in (0, 1]")
        self.model = model
        self.window_s = window_s
        self.registry = registry
        self.num_stacks = num_stacks
        self.passive_limit_w = (
            PASSIVE_COOLING_LIMIT_W if passive_limit_w is None else passive_limit_w
        )
        self.budget_w = budget_w
        self.throttle_derate = throttle_derate
        self._sinks = list(sinks)

        self.components: dict[str, float] = {name: 0.0 for name in _COMPONENTS}
        #: Stack-side *activity* joules per window (everything above the
        #: idle floor: core busy increments, memory/flash/wire charges).
        self.activity = WindowedSeries(
            "stack_activity_joules", window_s, kind="sum"
        )
        self._floor_until_s = 0.0
        self._stack_side_at_accrual = 0.0
        self.busy_core_seconds = 0.0
        self.alerts: list[Alert] = []
        self._throttle: Alert | None = None
        self._budget_alert: Alert | None = None
        self.throttle_windows = 0
        self._finalized: dict | None = None

        self._counters = {
            name: registry.counter("energy_joules_total", {"component": name})
            for name in _COMPONENTS
        }
        self._stack_gauge = registry.gauge("power_stack_watts")
        self._server_gauge = registry.gauge("power_server_watts")
        self._derate_gauge = registry.gauge("power_throttle_derate")
        self._derate_gauge.set(1.0)
        self._throttle_counter = registry.counter("energy_throttle_events_total")
        self._budget_counter = registry.counter("energy_budget_events_total")

    # --- charging -----------------------------------------------------------

    def _charge(self, component: str, joules: float) -> None:
        if joules < 0:
            raise SimulationError("cannot charge negative energy")
        self.components[component] += joules
        self._counters[component].inc(joules)

    def _charge_point(self, component: str, t_s: float, joules: float) -> None:
        if joules == 0.0:
            return
        self._charge(component, joules)
        self.activity.observe(t_s, joules)

    def charge_core_busy(self, start_s: float, service_s: float) -> None:
        """One busy interval on one core: active-above-idle watts for
        ``service_s``, split exactly across power windows."""
        if service_s < 0:
            raise SimulationError("service time cannot be negative")
        if service_s == 0.0:
            return
        self.busy_core_seconds += service_s
        watts = self.model.core_active_w - self.model.core_idle_w
        total = watts * service_s
        self._charge("cores_active", total)
        # Split across windows; the final window takes the remainder so
        # the window sum equals the charged total bit-for-bit.
        first = self.activity.index_of(start_s)
        last = self.activity.index_of(start_s + service_s)
        charged = 0.0
        for index in range(first, last):
            overlap = self.activity.start_of(index + 1) - max(
                start_s, self.activity.start_of(index)
            )
            part = watts * overlap
            self.activity.observe_index(index, part)
            charged += part
        self.activity.observe_index(last, total - charged)

    def _charge_spread(
        self, component: str, start_s: float, end_s: float, joules: float
    ) -> None:
        """Charge ``joules`` spread uniformly across ``[start_s, end_s)``.

        The bulk analogue of :meth:`_charge_point` for fluid
        fast-forward windows: a window's aggregate energy is deposited
        proportionally into each overlapped power window (final window
        takes the float remainder so the window sum equals the charged
        total bit-for-bit), keeping the power timeline — and therefore
        thermal-throttle evaluation — smooth instead of spiky.
        """
        if joules == 0.0:
            return
        if end_s <= start_s:
            self._charge_point(component, start_s, joules)
            return
        self._charge(component, joules)
        rate = joules / (end_s - start_s)
        first = self.activity.index_of(start_s)
        last = self.activity.index_of(end_s)
        charged = 0.0
        for index in range(first, last):
            overlap = self.activity.start_of(index + 1) - max(
                start_s, self.activity.start_of(index)
            )
            part = rate * overlap
            self.activity.observe_index(index, part)
            charged += part
        self.activity.observe_index(last, joules - charged)

    def charge_core_busy_bulk(
        self, start_s: float, end_s: float, busy_core_seconds: float
    ) -> None:
        """Aggregate core-busy time spread uniformly across a span."""
        if busy_core_seconds < 0:
            raise SimulationError("service time cannot be negative")
        if busy_core_seconds == 0.0:
            return
        self.busy_core_seconds += busy_core_seconds
        watts = self.model.core_active_w - self.model.core_idle_w
        self._charge_spread(
            "cores_active", start_s, end_s, watts * busy_core_seconds
        )

    def charge_memory_bytes_bulk(
        self, start_s: float, end_s: float, num_bytes: float
    ) -> None:
        """Aggregate memory traffic spread uniformly across a span."""
        self._charge_spread(
            "memory", start_s, end_s, self.model.memory_j_per_byte * num_bytes
        )

    def charge_nic_bytes_bulk(
        self, start_s: float, end_s: float, wire_bytes: float
    ) -> None:
        """Aggregate wire traffic spread uniformly across a span."""
        self._charge_spread(
            "nic_wire", start_s, end_s, self.model.nic_j_per_byte * wire_bytes
        )

    def charge_flash_bulk(
        self,
        start_s: float,
        end_s: float,
        pages_read: float,
        pages_programmed: float,
        blocks_erased: float,
    ) -> None:
        """Aggregate flash-array work spread uniformly across a span."""
        self._charge_spread(
            "flash_array",
            start_s,
            end_s,
            self.model.flash_read_j_per_page * pages_read
            + self.model.flash_program_j_per_page * pages_programmed,
        )
        self._charge_spread(
            "flash_erase",
            start_s,
            end_s,
            self.model.flash_erase_j_per_block * blocks_erased,
        )

    def charge_memory_bytes(self, t_s: float, num_bytes: float) -> None:
        """DRAM-port or flash-channel traffic for one request."""
        self._charge_point("memory", t_s, self.model.memory_j_per_byte * num_bytes)

    def charge_flash_reads(self, t_s: float, pages: float) -> None:
        self._charge_point(
            "flash_array", t_s, self.model.flash_read_j_per_page * pages
        )

    def charge_flash_programs(self, t_s: float, pages: float) -> None:
        self._charge_point(
            "flash_array", t_s, self.model.flash_program_j_per_page * pages
        )

    def charge_flash_erases(self, t_s: float, blocks: float) -> None:
        """``blocks`` may be fractional: log-structured stores amortise
        one block erase across the pages programmed into it."""
        self._charge_point(
            "flash_erase", t_s, self.model.flash_erase_j_per_block * blocks
        )

    def charge_nic_bytes(self, t_s: float, wire_bytes: float) -> None:
        """Serialisation energy for bytes on the wire (both directions)."""
        self._charge_point("nic_wire", t_s, self.model.nic_j_per_byte * wire_bytes)

    def _accrue_floors(self, until_s: float) -> None:
        """Time-priced components (idle cores, NIC, chassis) up to
        ``until_s``, plus delivery losses on stack-side energy so far."""
        elapsed = until_s - self._floor_until_s
        if elapsed < 0:
            raise SimulationError("energy meter clock moved backwards")
        if elapsed > 0:
            self._charge(
                "cores_idle", self.model.cores * self.model.core_idle_w * elapsed
            )
            self._charge("nic", self.model.nic_idle_w * elapsed)
            self._charge("chassis", self.model.chassis_w * elapsed)
            self._floor_until_s = until_s
        stack_side = self.stack_side_j
        delta = stack_side - self._stack_side_at_accrual
        if delta > 0:
            self._charge(
                "delivery_loss", self.model.delivery_loss_fraction * delta
            )
            self._stack_side_at_accrual = stack_side

    # --- readings -----------------------------------------------------------

    @property
    def stack_side_j(self) -> float:
        """Joules drawn by the stack itself (before delivery and chassis)."""
        return sum(
            self.components[name]
            for name in _COMPONENTS
            if name not in ("delivery_loss", "chassis")
        )

    @property
    def total_j(self) -> float:
        return sum(self.components.values())

    def stack_window_w(self, index: int) -> float:
        """Mean stack-side watts over one complete window."""
        return (
            self.model.idle_floor_w + self.activity.get(index, 0.0) / self.window_s
        )

    def server_window_w(self, index: int) -> float:
        """Extrapolated wall watts over one window (``num_stacks`` alike)."""
        return self.model.server_power_w(self.stack_window_w(index), self.num_stacks)

    def timeline(self) -> list[tuple[float, float, float]]:
        """Complete windows as ``(start_s, stack_w, server_w)`` rows.

        Every window up to the accrual clock is reported — including
        idle ones the sparse activity series never stored, which sit at
        the floor power.  That is the point of measuring: the troughs
        exist on the timeline.
        """
        last_complete = self.activity.index_of(self._floor_until_s)
        return [
            (
                self.activity.start_of(index),
                self.stack_window_w(index),
                self.server_window_w(index),
            )
            for index in range(last_complete)
        ]

    @property
    def derate_factor(self) -> float:
        """Current frequency factor: ``throttle_derate`` while the
        thermal alert is active, 1.0 otherwise."""
        if self._throttle is not None and self._throttle.active:
            return self.throttle_derate
        return 1.0

    @property
    def throttled(self) -> bool:
        return self._throttle is not None and self._throttle.active

    def attach_sink(self, sink: Callable) -> None:
        """``sink(event, alert, now_s)`` with event in {"fire", "clear"}."""
        self._sinks.append(sink)

    # --- alert lifecycle ----------------------------------------------------

    def _emit(self, event: str, alert: Alert, now_s: float) -> None:
        for sink in self._sinks:
            sink(event, alert, now_s)

    def _evaluate_window(self, index: int, now_s: float) -> None:
        stack_w = self.stack_window_w(index)
        if stack_w > self.passive_limit_w:
            self.throttle_windows += 1
            if self._throttle is None or not self._throttle.active:
                alert = Alert(
                    rule="thermal_throttle",
                    objective=self.model.stack_name,
                    fired_at_s=now_s,
                    peak_burn=stack_w / self.passive_limit_w,
                )
                self._throttle = alert
                self.alerts.append(alert)
                self._throttle_counter.inc()
                self._derate_gauge.set(self.throttle_derate)
                self._emit("fire", alert, now_s)
            else:
                self._throttle.peak_burn = max(
                    self._throttle.peak_burn, stack_w / self.passive_limit_w
                )
        elif self._throttle is not None and self._throttle.active:
            self._throttle.cleared_at_s = now_s
            self._derate_gauge.set(1.0)
            self._emit("clear", self._throttle, now_s)

        if self.budget_w is not None:
            aggregate_w = stack_w * self.num_stacks
            if aggregate_w > self.budget_w:
                if self._budget_alert is None or not self._budget_alert.active:
                    alert = Alert(
                        rule="power_budget_burn",
                        objective=f"{self.num_stacks}x{self.model.stack_name}",
                        fired_at_s=now_s,
                        peak_burn=aggregate_w / self.budget_w,
                    )
                    self._budget_alert = alert
                    self.alerts.append(alert)
                    self._budget_counter.inc()
                    self._emit("fire", alert, now_s)
                else:
                    self._budget_alert.peak_burn = max(
                        self._budget_alert.peak_burn, aggregate_w / self.budget_w
                    )
            elif self._budget_alert is not None and self._budget_alert.active:
                self._budget_alert.cleared_at_s = now_s
                self._emit("clear", self._budget_alert, now_s)

    def tick(self, now_s: float) -> None:
        """Close out the window ending at ``now_s``: accrue floors, set
        the power gauges, evaluate the alert rules."""
        self._accrue_floors(now_s)
        index = self.activity.index_of(now_s) - 1
        if index < 0:
            return
        self._stack_gauge.set(self.stack_window_w(index))
        self._server_gauge.set(self.server_window_w(index))
        self._evaluate_window(index, now_s)

    def install(self, sim, horizon_s: float) -> None:
        """Schedule the window tick on the simulated clock."""
        if horizon_s <= 0:
            raise ConfigurationError("horizon must be positive")
        # eps keeps the historical float-slop boundary: a horizon that is
        # an exact multiple of the window still gets its closing tick.
        sim.recurring(self.window_s, self.tick, horizon_s, eps=1e-12)

    # --- summary ------------------------------------------------------------

    def finalize(self, now_s: float, completed: int) -> dict:
        """Close the ledger at ``now_s`` and return the JSON-safe summary."""
        if self._finalized is not None:
            return self._finalized
        self._accrue_floors(now_s)
        if self._throttle is not None and self._throttle.active:
            self._throttle.cleared_at_s = now_s
            self._emit("clear", self._throttle, now_s)
            self._derate_gauge.set(1.0)
        if self._budget_alert is not None and self._budget_alert.active:
            self._budget_alert.cleared_at_s = now_s
            self._emit("clear", self._budget_alert, now_s)

        duration = now_s if now_s > 0 else self.window_s
        total = self.total_j
        stack_mean_w = self.stack_side_j / duration
        server_mean_w = self.model.server_power_w(stack_mean_w, self.num_stacks)
        windows = self.timeline()
        server_powers = [row[2] for row in windows]
        tps = completed / duration
        summary = {
            "stack": self.model.stack_name,
            "num_stacks": self.num_stacks,
            "window_s": self.window_s,
            "duration_s": duration,
            "completed": completed,
            "total_j": total,
            "components_j": {
                name: self.components[name] for name in _COMPONENTS
            },
            "stack_mean_power_w": stack_mean_w,
            "server_mean_power_w": server_mean_w,
            "peak_window_power_w": max(server_powers) if server_powers else server_mean_w,
            "trough_window_power_w": (
                min(server_powers) if server_powers else server_mean_w
            ),
            "joules_per_op": total / completed if completed else 0.0,
            "measured_tps_per_watt": (
                tps * self.num_stacks / server_mean_w if server_mean_w > 0 else 0.0
            ),
            "throttle_windows": self.throttle_windows,
            "throttle_derate": self.throttle_derate,
            "alerts": [alert.to_dict() for alert in self.alerts],
        }
        self._finalized = summary
        return summary


# --- per-span attribution -----------------------------------------------------------


def segment_power_w(component: str, model: DynamicPowerModel) -> float:
    """Core watts burned during one critical-path segment.

    Wait-type components (see :data:`WAIT_COMPONENTS`) hold the core at
    its idle floor; everything else executes at active power.  The
    branch qualifier is ignored: ``replica_put.queue`` waits like
    ``queue`` does.
    """
    leaf = component.rsplit(".", 1)[-1]
    if leaf in WAIT_COMPONENTS:
        return model.core_idle_w
    return model.core_active_w


def trace_energy_j(trace: RequestTrace, model: DynamicPowerModel) -> float:
    """Core energy attributed to one request along its critical path.

    The critical-path segments exactly tile ``[arrival, end]`` (the
    PR 6 identity), so per-segment joules — duration times the
    segment's power — tile the request's energy by construction.
    """
    return sum(
        segment.duration_s * segment_power_w(segment.component, model)
        for segment in critical_path(trace)
    )


def energy_tail_attribution(
    traces: Iterable[RequestTrace],
    model: DynamicPowerModel,
    quantiles: tuple[float, ...] = DEFAULT_QUANTILES,
) -> tuple[AttributionTable, dict[float, float]]:
    """Joules-per-op attribution by RTT-quantile cohort.

    Returns the component share table (fractions of cohort *energy*
    rather than cohort RTT) and the mean joules-per-op of each cohort —
    "how much more energy does a p99.9 request burn than the median".
    """
    finished = sorted(
        (t for t in traces if t.end_s is not None),
        key=lambda t: (t.rtt_s, t.request_id),
    )
    if not finished:
        raise ConfigurationError(
            "energy attribution needs at least one finished trace"
        )
    for q in quantiles:
        if not 0.0 <= q < 1.0:
            raise ConfigurationError("attribution quantiles must be in [0, 1)")
    paths = [critical_path(trace) for trace in finished]
    count = len(finished)
    shares: dict[float, dict[str, float]] = {}
    sizes: dict[float, int] = {}
    min_rtts: dict[float, float] = {}
    cohort_j_per_op: dict[float, float] = {}
    for q in quantiles:
        first = min(count - 1, int(math.floor(q * count)))
        cohort = finished[first:]
        cohort_paths = paths[first:]
        totals: dict[str, float] = {}
        for path in cohort_paths:
            for segment in path:
                joules = segment.duration_s * segment_power_w(
                    segment.component, model
                )
                totals[segment.component] = (
                    totals.get(segment.component, 0.0) + joules
                )
        total_j = sum(totals.values())
        shares[q] = (
            {name: value / total_j for name, value in totals.items()}
            if total_j > 0
            else {name: 0.0 for name in totals}
        )
        sizes[q] = len(cohort)
        min_rtts[q] = cohort[0].rtt_s
        cohort_j_per_op[q] = total_j / len(cohort)
    table = AttributionTable(
        quantiles=tuple(quantiles),
        shares=shares,
        cohort_sizes=sizes,
        cohort_min_rtt_s=min_rtts,
    )
    return table, cohort_j_per_op
