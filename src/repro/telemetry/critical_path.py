"""Critical-path extraction and tail attribution over causal traces.

The Fig. 4 component breakdown explains the *average* RTT; the 1.1 ms /
99.9 % SLA is a *tail* property, and with quorum fan-out, hedged GETs
and fault windows in the pipeline, the mean no longer says which branch
put a request over the deadline.  This module answers that: for each
committed trace, :func:`critical_path` walks the span tree backwards
from the completion time and extracts the unique chain of intervals
that *bounded* the RTT — a replica branch that lost the W-ack race
contributes nothing, the one that arrived W-th contributes its whole
chain.  The extracted segments exactly tile ``[arrival, end]``, so
their durations sum to the RTT (an identity, tested as one).

Components on the path are branch-qualified: a ``queue`` span nested
under a ``replica_put`` wrapper reports as ``replica_put.queue``, so
quorum fan-out, hedges, and handoff stay distinguishable from the PR 1
pipeline stages in the same table.  :func:`tail_attribution` aggregates
per-component shares over the p50/p99/p99.9 cohorts (the traces at and
above each RTT quantile) — the "why does Iridium miss the SLA" table —
and :func:`waterfall` renders one trace as an ASCII tree with the
critical path highlighted.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import ConfigurationError
from repro.telemetry.tracing import RequestTrace, Span, Tracer

#: Quantile cohorts reported by default: the median and the SLA tails.
DEFAULT_QUANTILES = (0.5, 0.99, 0.999)


@dataclass(frozen=True)
class PathSegment:
    """One interval of the chain that bounded a request's RTT.

    ``component`` is the branch-qualified owner of the interval
    (``replica_put.queue``, ``hedge.memcached``, or ``client`` for time
    outside every span); ``span_id`` is the owning span, ``None`` for
    the virtual root.
    """

    component: str
    start_s: float
    duration_s: float
    node: str = ""
    span_id: int | None = None

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s


def critical_path(
    trace: RequestTrace, eps: float = 1e-12
) -> list[PathSegment]:
    """The chain of intervals that bounded ``trace``'s RTT, in time order.

    Backward walk: starting from the completion time, repeatedly step to
    the child span that ends latest at or before the current frontier —
    that child is what the parent was waiting on — attribute the gap to
    the parent, recurse into the child, and continue from the child's
    start.  Branches that end earlier (replicas that lost the W-ack
    race, the slower side of a hedge) never advance the frontier and
    drop out.  The returned segments exactly tile
    ``[arrival_s, end_s]``: their durations sum to the RTT.
    """
    if trace.end_s is None:
        raise ConfigurationError("critical path requires a finished trace")
    children = trace.child_map()
    segments: list[PathSegment] = []

    def emit(
        component: str, start: float, end: float, node: str, span_id: int | None
    ) -> None:
        if end - start > 0.0:
            segments.append(PathSegment(component, start, end - start, node, span_id))

    def walk(
        component: str,
        branch: str | None,
        start: float,
        end: float,
        kids: Sequence[Span],
        node: str,
        span_id: int | None,
    ) -> None:
        current = end
        ordered = sorted(
            kids, key=lambda s: (s.end_s, s.start_s, s.span_id), reverse=True
        )
        for child in ordered:
            if current - start <= eps:
                break
            if child.end_s > current + eps:
                continue  # overlaps an interval already attributed
            child_end = min(child.end_s, current)
            child_start = max(min(child.start_s, child_end), start)
            emit(component, child_end, current, node, span_id)
            walk(
                child.name if branch is None else f"{branch}.{child.name}",
                child.name if branch is None else branch,
                child_start,
                child_end,
                children.get(child.span_id, ()),
                child.node,
                child.span_id,
            )
            current = child_start
        emit(component, start, current, node, span_id)

    walk(
        "client", None, trace.arrival_s, trace.end_s, children.get(None, ()), "", None
    )
    segments.reverse()
    return segments


# --- tail attribution ---------------------------------------------------------------


@dataclass
class AttributionTable:
    """Critical-path component shares per RTT-quantile cohort.

    ``shares[q][component]`` is the fraction of the cohort's total RTT
    spent in ``component`` on the critical path; shares per cohort sum
    to 1.  The cohort at quantile ``q`` is every trace whose RTT is at
    or above the ``q``-th percentile, so p50 reads "the slower half"
    and p99.9 reads "the worst 0.1 %".
    """

    quantiles: tuple[float, ...]
    shares: dict[float, dict[str, float]]
    cohort_sizes: dict[float, int]
    cohort_min_rtt_s: dict[float, float]

    def components(self) -> list[str]:
        """Union of components, sorted by their share in the tightest
        (last) cohort, largest first."""
        tail = self.shares[self.quantiles[-1]]
        names = {name for row in self.shares.values() for name in row}
        return sorted(names, key=lambda name: (-tail.get(name, 0.0), name))

    def to_dict(self) -> dict:
        return {
            "quantiles": list(self.quantiles),
            "shares": {
                str(q): {name: round(share, 6) for name, share in sorted(row.items())}
                for q, row in self.shares.items()
            },
            "cohort_sizes": {str(q): n for q, n in self.cohort_sizes.items()},
            "cohort_min_rtt_s": {
                str(q): rtt for q, rtt in self.cohort_min_rtt_s.items()
            },
        }

    def render(self) -> str:
        """Terminal-friendly tail-vs-median attribution table."""
        def p_label(q: float) -> str:
            return ("p%g" % (q * 100)).replace(".0", "")

        header = f"{'component':<28s}" + "".join(
            f"{p_label(q):>10s}" for q in self.quantiles
        )
        lines = ["critical-path share of cohort RTT", header]
        for name in self.components():
            row = f"{name:<28s}" + "".join(
                f"{self.shares[q].get(name, 0.0) * 100:>9.1f}%"
                for q in self.quantiles
            )
            lines.append(row)
        lines.append(
            f"{'cohort size':<28s}"
            + "".join(f"{self.cohort_sizes[q]:>10d}" for q in self.quantiles)
        )
        lines.append(
            f"{'cohort min RTT':<28s}"
            + "".join(
                f"{self.cohort_min_rtt_s[q] * 1e6:>8.1f}us"
                for q in self.quantiles
            )
        )
        return "\n".join(lines)


def tail_attribution(
    traces: Iterable[RequestTrace],
    quantiles: tuple[float, ...] = DEFAULT_QUANTILES,
) -> AttributionTable:
    """Aggregate critical-path component shares per RTT-quantile cohort."""
    finished = sorted(
        (t for t in traces if t.end_s is not None), key=lambda t: (t.rtt_s, t.request_id)
    )
    if not finished:
        raise ConfigurationError("tail attribution needs at least one finished trace")
    for q in quantiles:
        if not 0.0 <= q < 1.0:
            raise ConfigurationError("attribution quantiles must be in [0, 1)")
    paths = [critical_path(trace) for trace in finished]
    count = len(finished)
    shares: dict[float, dict[str, float]] = {}
    sizes: dict[float, int] = {}
    min_rtts: dict[float, float] = {}
    for q in quantiles:
        first = min(count - 1, int(math.floor(q * count)))
        cohort = finished[first:]
        cohort_paths = paths[first:]
        totals: dict[str, float] = {}
        for path in cohort_paths:
            for segment in path:
                totals[segment.component] = (
                    totals.get(segment.component, 0.0) + segment.duration_s
                )
        total_rtt = sum(trace.rtt_s for trace in cohort)
        shares[q] = (
            {name: value / total_rtt for name, value in totals.items()}
            if total_rtt > 0
            else {name: 0.0 for name in totals}
        )
        sizes[q] = len(cohort)
        min_rtts[q] = cohort[0].rtt_s
    return AttributionTable(
        quantiles=tuple(quantiles),
        shares=shares,
        cohort_sizes=sizes,
        cohort_min_rtt_s=min_rtts,
    )


# --- waterfall ----------------------------------------------------------------------


def waterfall(trace: RequestTrace, width: int = 48) -> str:
    """One trace as an ASCII waterfall tree.

    Each span is a row: indentation shows nesting, the bar shows its
    interval on a ``[arrival, end]`` timeline, and spans on the critical
    path are marked ``*`` and drawn with ``#``.
    """
    if trace.end_s is None:
        raise ConfigurationError("waterfall requires a finished trace")
    rtt = trace.rtt_s
    span_of_time = rtt if rtt > 0 else 1.0
    on_path = {
        segment.span_id
        for segment in critical_path(trace)
        if segment.span_id is not None
    }
    children = trace.child_map()

    def bar(span: Span) -> str:
        offset = int((span.start_s - trace.arrival_s) / span_of_time * width)
        offset = min(max(offset, 0), width)
        length = int(round(span.duration_s / span_of_time * width))
        length = min(max(length, 1 if span.duration_s > 0 else 0), width - offset)
        fill = "#" if span.span_id in on_path else "-"
        return " " * offset + fill * length

    attrs = " ".join(f"{k}={v}" for k, v in sorted(trace.attrs.items()))
    lines = [
        f"trace {trace.request_id}  rtt={rtt * 1e6:.1f}us  {attrs}".rstrip(),
        f"{'request':<26s} |{'=' * width}|",
    ]

    def render(span: Span, depth: int) -> None:
        marker = "*" if span.span_id in on_path else " "
        label = f"{'  ' * depth}{marker}{span.name}"
        where = span.node or "client"
        lines.append(f"{label:<20s} {where:>5s} |{bar(span):<{width}s}|")
        for child in children.get(span.span_id, ()):
            render(child, depth + 1)

    for root in children.get(None, ()):
        render(root, 1)
    return "\n".join(lines)


# --- digest -------------------------------------------------------------------------


def compute_trace_digest(
    tracer: Tracer, quantiles: tuple[float, ...] = DEFAULT_QUANTILES
) -> dict:
    """A compact, JSON-stable summary of a run's traces, cheap enough to
    ride inside every cached experiment-grid cell.

    Carries the sampling counters, a hash of the retained trace-id set
    (two same-seed runs must agree bit-for-bit), and the tail cohort's
    critical-path shares.
    """
    traces = tracer.traces
    ids = ",".join(str(trace.request_id) for trace in traces)
    digest: dict = {
        "committed": tracer.committed,
        "retained": len(traces),
        "dropped": tracer.dropped_traces,
        "slo_violations": tracer.slo_violations,
        "slo_deadline_s": tracer.slo_deadline_s,
        "trace_ids_sha256": hashlib.sha256(ids.encode()).hexdigest()[:16],
    }
    finished = [trace for trace in traces if trace.end_s is not None]
    if finished:
        digest["critical_path"] = tail_attribution(finished, quantiles).to_dict()
    return digest
