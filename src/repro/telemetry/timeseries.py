"""Windowed time-series metrics on the simulated clock.

The registry and tracer answer "what happened over the whole run"; this
module answers "what happened *when*".  A :class:`WindowedSeries` buckets
observations into fixed-cadence windows of simulated time — it is the
one windowing primitive shared by the hit-rate recovery timeline in
:mod:`repro.sim.full_system`, the SLO burn-rate monitor, and the
:class:`TimeSeriesRecorder` below.  Series are ring-buffered (old
windows are evicted past ``max_windows``), mergeable across runs with
the same cadence, and JSONL-exportable.

A :class:`TimeSeriesRecorder` turns a whole
:class:`~repro.telemetry.metrics.MetricsRegistry` into a timeline: on a
recurring DES event it snapshots every counter (per-window delta), gauge
(last value), and histogram (count/sum deltas plus per-window quantiles
computed from the *bucket-count delta*, so a tail spike inside one
window is visible even when the cumulative histogram has long since
averaged it away).  Everything is driven by the simulated clock, so two
identical-seed runs produce bit-identical timelines.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Callable, Iterable, Iterator

from repro.errors import ConfigurationError
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    StreamingHistogram,
)

#: Default ring capacity for recorder series: generous for any sane
#: cadence, bounded so an accidental microsecond interval cannot eat
#: the heap.
DEFAULT_MAX_WINDOWS = 65_536

#: Quantiles the recorder derives from per-window histogram deltas.
DEFAULT_WINDOW_QUANTILES = (0.5, 0.99)


class WindowedSeries:
    """Per-window aggregation of a stream of (time, value) observations.

    Window ``i`` covers simulated time ``[i * interval_s, (i+1) *
    interval_s)``.  ``kind`` selects the in-window fold: ``"sum"``
    accumulates (counts, deltas), ``"last"`` keeps the latest value
    (gauge snapshots), ``"max"`` keeps the peak.  Only occupied windows
    are stored, so a sparse timeline costs memory proportional to its
    active windows, and the dict-style views (``items``, ``get``,
    iteration over indices) make a series a drop-in for the ad-hoc
    ``{window_index: count}`` maps it replaces.
    """

    __slots__ = ("name", "interval_s", "max_windows", "kind", "_values", "evicted")

    _FOLDS: dict[str, Callable[[float, float], float]] = {
        "sum": lambda old, new: old + new,
        "last": lambda old, new: new,
        "max": max,
    }

    def __init__(
        self,
        name: str,
        interval_s: float,
        max_windows: int | None = None,
        kind: str = "sum",
    ):
        if interval_s <= 0:
            raise ConfigurationError("window interval must be positive")
        if max_windows is not None and max_windows < 1:
            raise ConfigurationError("max_windows must be positive (or None)")
        if kind not in self._FOLDS:
            raise ConfigurationError(f"unknown series kind {kind!r}")
        self.name = name
        self.interval_s = interval_s
        self.max_windows = max_windows
        self.kind = kind
        self._values: dict[int, float] = {}
        self.evicted = 0

    # --- window geometry ---------------------------------------------------------

    def index_of(self, t_s: float) -> int:
        """Window index covering simulated time ``t_s``."""
        return int(t_s / self.interval_s)

    def start_of(self, index: int) -> float:
        """Simulated start time of window ``index``."""
        return index * self.interval_s

    # --- recording ---------------------------------------------------------------

    def observe(self, t_s: float, value: float = 1.0) -> None:
        """Fold one observation at time ``t_s`` into its window."""
        self.observe_index(self.index_of(t_s), value)

    def observe_index(self, index: int, value: float = 1.0) -> None:
        """Fold one observation directly into window ``index``."""
        old = self._values.get(index)
        if old is None:
            self._values[index] = value
            self._evict(index)
        else:
            self._values[index] = self._FOLDS[self.kind](old, value)

    def _evict(self, newest: int) -> None:
        """Ring bound: drop windows older than the retention horizon."""
        if self.max_windows is None or len(self._values) <= self.max_windows:
            return
        floor = newest - self.max_windows + 1
        stale = [i for i in self._values if i < floor]
        for index in stale:
            del self._values[index]
            self.evicted += 1

    # --- dict-style views (drop-in for {index: value} maps) ----------------------

    def items(self) -> list[tuple[int, float]]:
        """Occupied ``(window_index, value)`` pairs, index-ordered."""
        return sorted(self._values.items())

    def get(self, index: int, default: float = 0) -> float:
        return self._values.get(index, default)

    def __getitem__(self, index: int) -> float:
        return self._values[index]

    def __contains__(self, index: int) -> bool:
        return index in self._values

    def __iter__(self) -> Iterator[int]:
        return iter(sorted(self._values))

    def __len__(self) -> int:
        return len(self._values)

    def __bool__(self) -> bool:
        return bool(self._values)

    @property
    def total(self) -> float:
        """Sum of all retained window values."""
        return sum(self._values.values())

    # --- time-domain views -------------------------------------------------------

    def timeline(self) -> list[tuple[float, float]]:
        """Occupied ``(window_start_s, value)`` pairs, time-ordered."""
        return [(self.start_of(i), v) for i, v in self.items()]

    def rate_timeline(
        self, denominator: "WindowedSeries"
    ) -> list[tuple[float, float]]:
        """Per-window ``self/denominator`` ratio over the denominator's
        occupied windows (0.0 where the denominator window is empty) —
        e.g. hits/gets for a hit-rate timeline."""
        if denominator.interval_s != self.interval_s:
            raise ConfigurationError("rate needs matching window cadence")
        return [
            (denominator.start_of(i), (self.get(i, 0.0) / v) if v else 0.0)
            for i, v in denominator.items()
        ]

    def sum_over(self, start_s: float, end_s: float) -> float:
        """Sum of values in windows whose start lies in ``[start_s, end_s)``."""
        return sum(
            v for i, v in self._values.items()
            if start_s <= self.start_of(i) < end_s
        )

    # --- merge / serialisation ---------------------------------------------------

    def merge(self, other: "WindowedSeries") -> "WindowedSeries":
        """Window-wise combination of two same-cadence series."""
        if other.interval_s != self.interval_s:
            raise ConfigurationError("cannot merge series with different cadence")
        if other.kind != self.kind:
            raise ConfigurationError("cannot merge series of different kinds")
        merged = WindowedSeries(
            self.name, self.interval_s, max_windows=self.max_windows, kind=self.kind
        )
        merged._values = dict(self._values)
        for index, value in other.items():
            merged.observe_index(index, value)
        return merged

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "interval_s": self.interval_s,
            "kind": self.kind,
            "evicted": self.evicted,
            "windows": {str(i): v for i, v in self.items()},
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "WindowedSeries":
        series = cls(
            payload["name"], payload["interval_s"], kind=payload.get("kind", "sum")
        )
        series._values = {int(i): v for i, v in payload["windows"].items()}
        series.evicted = payload.get("evicted", 0)
        return series


def _metric_key(metric) -> str:
    """Flattened ``name{k="v",...}`` key used in recorder rows."""
    if not metric.labels:
        return metric.name
    labels = ",".join(f'{k}="{v}"' for k, v in metric.labels)
    return "%s{%s}" % (metric.name, labels)


class TimeSeriesRecorder:
    """Snapshots a registry on a fixed simulated-time cadence.

    Each tick produces one row: per-counter increments since the last
    tick, current gauge values, and per-histogram count/sum deltas plus
    quantiles of the *samples recorded inside the window* (derived from
    the bucket-count delta, clamped to bucket resolution).  Rows are
    ring-buffered at ``max_windows`` and exportable as JSONL, one row
    per line, ``t_s`` first.

    :meth:`install` schedules the tick as a recurring DES event; the
    host should call :meth:`flush` after the run to capture the final
    partial window.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        interval_s: float,
        max_windows: int = DEFAULT_MAX_WINDOWS,
        quantiles: tuple[float, ...] = DEFAULT_WINDOW_QUANTILES,
    ):
        if interval_s <= 0:
            raise ConfigurationError("recorder interval must be positive")
        if max_windows < 1:
            raise ConfigurationError("max_windows must be positive")
        self.registry = registry
        self.interval_s = interval_s
        self.max_windows = max_windows
        self.quantiles = quantiles
        self.rows: list[dict] = []
        self.dropped_rows = 0
        self.ticks = 0
        self._last_t: float | None = None
        self._last_counter: dict[str, float] = {}
        self._last_hist: dict[str, tuple[int, float, tuple[int, ...]]] = {}

    # --- snapshotting ------------------------------------------------------------

    def snapshot(self, now_s: float) -> dict:
        """Take one row at simulated time ``now_s`` and retain it."""
        if self._last_t is not None and now_s <= self._last_t:
            raise ConfigurationError("recorder snapshots must move forward in time")
        row: dict = {"t_s": round(now_s, 12)}
        for metric in self.registry:
            key = _metric_key(metric)
            if isinstance(metric, StreamingHistogram):
                last_count, last_sum, last_buckets = self._last_hist.get(
                    key, (0, 0.0, ())
                )
                delta_count = metric.count - last_count
                row[f"{key}_count"] = delta_count
                row[f"{key}_sum"] = metric.total - last_sum
                if delta_count > 0:
                    delta_buckets = [
                        c - (last_buckets[i] if i < len(last_buckets) else 0)
                        for i, c in enumerate(metric.counts)
                    ]
                    for q in self.quantiles:
                        row[f"{key}_p{_q_label(q)}"] = _delta_percentile(
                            metric, delta_buckets, delta_count, q
                        )
                self._last_hist[key] = (
                    metric.count, metric.total, tuple(metric.counts)
                )
            elif isinstance(metric, Counter):
                row[key] = metric.value - self._last_counter.get(key, 0)
                self._last_counter[key] = metric.value
            elif isinstance(metric, Gauge):
                row[key] = metric.value
        self._last_t = now_s
        self.ticks += 1
        self.rows.append(row)
        if len(self.rows) > self.max_windows:
            del self.rows[0]
            self.dropped_rows += 1
        return row

    def flush(self, now_s: float) -> None:
        """Capture the final partial window, if time moved past the
        last tick (idempotent at a given ``now_s``)."""
        if self._last_t is None or now_s > self._last_t:
            self.snapshot(now_s)

    # --- DES wiring --------------------------------------------------------------

    def install(self, sim, horizon_s: float) -> None:
        """Schedule recurring snapshots on ``sim`` until ``horizon_s``.

        ``sim`` is duck-typed to :class:`repro.sim.events.Simulator`
        (needs ``recurring``).  The first tick fires one interval in,
        the last at or before the horizon.
        """
        if horizon_s <= 0:
            raise ConfigurationError("recorder horizon must be positive")
        sim.recurring(self.interval_s, self.snapshot, horizon_s)

    # --- views / export ----------------------------------------------------------

    def series(self, key: str, kind: str = "sum") -> WindowedSeries:
        """Re-window one row column as a :class:`WindowedSeries`."""
        out = WindowedSeries(key, self.interval_s, kind=kind)
        for row in self.rows:
            if key in row:
                out.observe(max(0.0, row["t_s"] - self.interval_s / 2), row[key])
        return out

    def to_jsonl(self) -> str:
        """One compact JSON object per retained row."""
        return "".join(
            json.dumps(row, separators=(",", ":"), sort_keys=True) + "\n"
            for row in self.rows
        )

    def merge(self, other: "TimeSeriesRecorder") -> list[dict]:
        """Combine two same-cadence recorders' rows by window time:
        counters/histogram deltas add, gauges take the later sample."""
        if other.interval_s != self.interval_s:
            raise ConfigurationError("cannot merge recorders with different cadence")
        by_time: dict[float, dict] = {}
        gauge_keys = {
            _metric_key(m)
            for source in (self.registry, other.registry)
            for m in source
            if isinstance(m, Gauge)
        }
        for row in self.rows + other.rows:
            merged = by_time.setdefault(row["t_s"], {"t_s": row["t_s"]})
            for key, value in row.items():
                if key == "t_s":
                    continue
                if key in gauge_keys or key not in merged:
                    merged[key] = value
                else:
                    merged[key] += value
        return [by_time[t] for t in sorted(by_time)]


def write_timeseries_jsonl(path: str | Path, recorder: TimeSeriesRecorder) -> Path:
    """Dump a recorder's rows to ``path`` as JSONL; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(recorder.to_jsonl())
    return path


def _q_label(q: float) -> str:
    """0.5 -> '50', 0.99 -> '99', 0.999 -> '999'."""
    scaled = round(q * 100, 9)
    if float(scaled).is_integer():
        return str(int(scaled))
    return f"{q:g}".replace("0.", "", 1)


def _delta_percentile(
    histogram: StreamingHistogram,
    delta_buckets: list[int],
    delta_count: int,
    p: float,
) -> float:
    """Quantile of the samples recorded since the last tick, to bucket
    resolution (the exact min/max of just this window are not kept)."""
    rank = p * delta_count
    seen = 0
    for index, bucket_count in enumerate(delta_buckets):
        seen += bucket_count
        if seen >= rank and bucket_count:
            upper = histogram.bucket_upper_bound(index)
            if math.isinf(upper):
                return histogram.max_seen
            return upper
    return histogram.max_seen
