"""DES hot-path profiler: where does ``run()`` spend real seconds?

The simulator's cost model charges *simulated* time; this profiler
measures the *wall-clock* cost of producing it, attributed per event
type — so before attempting a performance PR we can see whether the
real seconds go to arrivals, completions, hedges, anti-entropy sweeps,
or somewhere unexpected.  Attach it to a
:class:`~repro.sim.events.Simulator` and every event callback is timed
and binned by its (compressed) qualname; coarse phases outside the
event loop (setup, warmup) are timed with :meth:`SimProfiler.span`.

The profiler observes, it does not perturb: simulated outcomes are
identical with it attached or not (it adds wall-clock overhead only),
and a detached simulator pays a single ``is None`` check per event.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable


@dataclass
class EventStats:
    """Accumulated cost of one event type (or one named span)."""

    name: str
    calls: int = 0
    wall_s: float = 0.0
    sim_s: float = 0.0
    max_wall_s: float = 0.0

    def add(self, wall_s: float, sim_s: float) -> None:
        self.calls += 1
        self.wall_s += wall_s
        self.sim_s += sim_s
        if wall_s > self.max_wall_s:
            self.max_wall_s = wall_s

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "calls": self.calls,
            "wall_s": self.wall_s,
            "sim_s": self.sim_s,
            "max_wall_s": self.max_wall_s,
        }


def _label(callback: Callable) -> str:
    """Compressed identity of an event callback: ``run.arrive``, not
    ``FullSystemStack.run.<locals>.arrive``."""
    name = getattr(callback, "__qualname__", None)
    if name is None:
        name = type(callback).__name__
    if "functools.partial" in name:  # pragma: no cover - defensive
        name = "partial"
    parts = [p for p in name.split(".") if p != "<locals>"]
    return ".".join(parts[-2:]) if len(parts) > 1 else parts[0]


class SimProfiler:
    """Per-event-type wall-clock and simulated-time attribution.

    ``clock`` is injectable for deterministic tests; the default is
    :func:`time.perf_counter`.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self.clock = clock
        self.events: dict[str, EventStats] = {}
        self.spans: dict[str, EventStats] = {}
        self.total_events = 0
        self.total_wall_s = 0.0

    # --- simulator side ----------------------------------------------------------

    def attach(self, sim) -> None:
        """Hook into a :class:`~repro.sim.events.Simulator` (duck-typed:
        anything with a ``profiler`` attribute its step loop consults)."""
        sim.profiler = self

    def record_event(
        self, callback: Callable, wall_s: float, sim_advance_s: float
    ) -> None:
        """Called by the simulator's step loop around each callback."""
        label = _label(callback)
        stats = self.events.get(label)
        if stats is None:
            stats = self.events[label] = EventStats(label)
        stats.add(wall_s, sim_advance_s)
        self.total_events += 1
        self.total_wall_s += wall_s

    # --- host side ---------------------------------------------------------------

    @contextmanager
    def span(self, name: str):
        """Time a coarse wall-clock phase outside the event loop
        (setup, warmup, export)."""
        start = self.clock()
        try:
            yield
        finally:
            elapsed = self.clock() - start
            stats = self.spans.get(name)
            if stats is None:
                stats = self.spans[name] = EventStats(name)
            stats.add(elapsed, 0.0)

    # --- reporting ---------------------------------------------------------------

    def top_events(self, n: int = 10) -> list[EventStats]:
        """Event types by wall-clock cost, heaviest first."""
        return sorted(
            self.events.values(), key=lambda s: (-s.wall_s, s.name)
        )[:n]

    def report(self, top_n: int = 10) -> str:
        """Terminal-friendly hot-path digest."""
        lines: list[str] = []
        if self.spans:
            lines.append("wall-clock by phase")
            for stats in sorted(
                self.spans.values(), key=lambda s: (-s.wall_s, s.name)
            ):
                lines.append(
                    f"  {stats.name:32s} {stats.wall_s * 1e3:10.1f} ms "
                    f"({stats.calls} spans)"
                )
        header = (
            f"event loop: {self.total_events} events, "
            f"{self.total_wall_s * 1e3:.1f} ms wall"
        )
        if self.total_events:
            header += (
                f", {self.total_wall_s / self.total_events * 1e6:.2f} us/event"
            )
        lines.append(header)
        if self.events:
            lines.append(
                f"  {'event type':32s} {'calls':>9s} {'wall ms':>9s} "
                f"{'%':>6s} {'us/call':>8s} {'sim s':>9s}"
            )
            for stats in self.top_events(top_n):
                share = (
                    stats.wall_s / self.total_wall_s if self.total_wall_s else 0.0
                )
                per_call = stats.wall_s / stats.calls * 1e6 if stats.calls else 0.0
                lines.append(
                    f"  {stats.name:32s} {stats.calls:>9d} "
                    f"{stats.wall_s * 1e3:>9.1f} {share:>6.1%} "
                    f"{per_call:>8.2f} {stats.sim_s:>9.4f}"
                )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "total_events": self.total_events,
            "total_wall_s": self.total_wall_s,
            "events": [s.to_dict() for s in self.top_events(len(self.events))],
            "spans": [s.to_dict() for s in self.spans.values()],
        }
