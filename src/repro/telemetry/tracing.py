"""Span-based request tracing on the simulated clock.

A request crossing the full-system pipeline touches the NIC MAC, a
core's FIFO queue, and the Memcached service components; each stage is a
:class:`Span` with a start time and duration in *simulated* seconds.
Committed traces feed two consumers: the JSONL trace dump (every span of
every request, for offline analysis) and the per-component histograms in
the :class:`~repro.telemetry.metrics.MetricsRegistry` (for percentiles
without retaining traces).

Span durations within a trace are contiguous and exhaustive by
construction: they sum to the request's RTT, which is what makes the
Fig. 4-style component breakdown an identity rather than an estimate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import ConfigurationError
from repro.telemetry.metrics import MetricsRegistry, NULL_REGISTRY

#: Traces retained by default before the tracer starts dropping (the
#: aggregates keep counting; only the per-request span lists are capped).
DEFAULT_MAX_TRACES = 100_000


@dataclass(frozen=True)
class Span:
    """One pipeline stage of one request, on the simulated clock."""

    name: str
    start_s: float
    duration_s: float


@dataclass
class RequestTrace:
    """The spans and outcome of a single request."""

    request_id: int
    arrival_s: float
    attrs: dict = field(default_factory=dict)
    spans: list[Span] = field(default_factory=list)
    end_s: float | None = None

    def add_span(self, name: str, start_s: float, duration_s: float) -> None:
        if duration_s < 0:
            raise ConfigurationError("span duration cannot be negative")
        self.spans.append(Span(name, start_s, duration_s))

    def finish(self, end_s: float) -> None:
        if end_s < self.arrival_s:
            raise ConfigurationError("trace cannot end before it arrived")
        self.end_s = end_s

    @property
    def rtt_s(self) -> float:
        if self.end_s is None:
            raise ConfigurationError("trace not finished")
        return self.end_s - self.arrival_s

    def span_total_s(self) -> float:
        return sum(span.duration_s for span in self.spans)

    def to_dict(self) -> dict:
        return {
            "request_id": self.request_id,
            "arrival_s": self.arrival_s,
            "rtt_s": self.rtt_s,
            **self.attrs,
            "spans": [
                {"name": s.name, "start_s": s.start_s, "duration_s": s.duration_s}
                for s in self.spans
            ],
        }


class Tracer:
    """Collects request traces and folds them into component aggregates."""

    enabled = True

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        max_traces: int = DEFAULT_MAX_TRACES,
    ):
        if max_traces < 0:
            raise ConfigurationError("max_traces cannot be negative")
        self.registry = registry if registry is not None else MetricsRegistry()
        self.max_traces = max_traces
        self.traces: list[RequestTrace] = []
        self.committed = 0
        self.dropped_traces = 0
        self.component_seconds: dict[str, float] = {}
        self._next_id = 0

    def begin(self, arrival_s: float, **attrs) -> RequestTrace:
        """Open a trace for a request arriving at ``arrival_s``."""
        trace = RequestTrace(
            request_id=self._next_id, arrival_s=arrival_s, attrs=dict(attrs)
        )
        self._next_id += 1
        return trace

    def commit(self, trace: RequestTrace) -> None:
        """Finalize a finished trace: aggregate spans, retain if room."""
        if trace.end_s is None:
            raise ConfigurationError("commit requires a finished trace")
        self.committed += 1
        for span in trace.spans:
            self.component_seconds[span.name] = (
                self.component_seconds.get(span.name, 0.0) + span.duration_s
            )
            self.registry.histogram(
                "span_duration_seconds", labels={"component": span.name}
            ).record(span.duration_s)
        self.registry.histogram("request_rtt_seconds").record(trace.rtt_s)
        if len(self.traces) < self.max_traces:
            self.traces.append(trace)
        else:
            self.dropped_traces += 1

    def breakdown_fractions(self) -> dict[str, float]:
        """Component shares of total traced time (the Fig. 4 split)."""
        total = sum(self.component_seconds.values())
        if total == 0.0:
            return {name: 0.0 for name in self.component_seconds}
        return {
            name: seconds / total for name, seconds in self.component_seconds.items()
        }


class _NullTrace(RequestTrace):
    def add_span(self, name: str, start_s: float, duration_s: float) -> None:
        pass

    def finish(self, end_s: float) -> None:
        pass


class NullTracer(Tracer):
    """No-op tracer: begin() hands out one shared inert trace."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(registry=NULL_REGISTRY, max_traces=0)
        self._trace = _NullTrace(request_id=-1, arrival_s=0.0)

    def begin(self, arrival_s: float, **attrs) -> RequestTrace:
        return self._trace

    def commit(self, trace: RequestTrace) -> None:
        pass


#: Shared no-op tracer, the default wherever tracing is optional.
NULL_TRACER = NullTracer()


class TelemetrySession:
    """One run's registry + tracer, handed to instrumented components.

    ``TelemetrySession()`` gives live telemetry; :data:`NULL_TELEMETRY`
    (the default everywhere) gives the zero-cost no-op pair.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        max_traces: int = DEFAULT_MAX_TRACES,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = (
            tracer
            if tracer is not None
            else Tracer(self.registry, max_traces=max_traces)
        )

    @property
    def enabled(self) -> bool:
        return self.registry.enabled or self.tracer.enabled


class _NullTelemetry(TelemetrySession):
    def __init__(self) -> None:
        super().__init__(registry=NULL_REGISTRY, tracer=NULL_TRACER)


#: Shared disabled session: instrumentation against it records nothing.
NULL_TELEMETRY = _NullTelemetry()
