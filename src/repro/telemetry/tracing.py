"""Causal span-tree tracing on the simulated clock.

A request crossing the full-system pipeline touches the NIC MAC, a
core's FIFO queue, and the Memcached service components; each stage is a
:class:`Span` with a start time and duration in *simulated* seconds.
Spans form a **forest** per request: every span carries a ``span_id``
and an optional ``parent_id``, so fan-out structure — quorum replica
writes, hedged GETs, verify reads — nests under wrapper spans instead of
flattening into one contiguous list.  A trace with no fan-out degrades
to the flat PR 1 layout (every span a root), which keeps the Fig. 4
identity: root span durations sum to the request's RTT.

Work that outlives the request — hinted-handoff replay, anti-entropy
sweeps, read-repair, hedge stragglers — cannot nest inside the trace
without breaking that identity, so it is emitted as a
:class:`FollowSpan` via :meth:`Tracer.follow_from`, linked back to the
originating trace by request id (the OpenTracing *follows-from*
relationship).

Committed traces feed three consumers: the JSONL trace dump, the
per-component histograms in the
:class:`~repro.telemetry.metrics.MetricsRegistry`, and the
critical-path analyzer (:mod:`repro.telemetry.critical_path`).

Retention is **deterministic tail-based sampling**: traces that violate
the configured SLO deadline or carry an error attribute are always kept
(they are the ones worth debugging), while the remaining "normal"
traces pass through a seeded Algorithm-R reservoir so the retained set
stays within ``max_traces`` and is bit-identical across same-seed runs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.telemetry.metrics import MetricsRegistry, NULL_REGISTRY

#: Traces retained by default before the reservoir starts evicting (the
#: aggregates keep counting; only the per-request span lists are capped).
DEFAULT_MAX_TRACES = 100_000

#: Keys of :meth:`RequestTrace.to_dict` that user attrs may not shadow;
#: attrs live under the ``"attrs"`` key precisely so they cannot.
RESERVED_TRACE_KEYS = frozenset({"request_id", "arrival_s", "rtt_s", "attrs", "spans"})


class Span:
    """One stage of one request, a node in the trace's causal forest.

    ``span_id`` is unique within its trace; ``parent_id`` is ``None``
    for root spans (direct children of the request itself).  ``kind``
    is a coarse role tag (``server``, ``client``, ``producer``,
    ``internal``); ``node`` and ``stack`` say *where* the time went
    (e.g. ``core2`` on the ``mercury-4`` stack).

    A plain slotted class, not a dataclass: several Spans are built per
    request on the tracing hot path, and a hand-written ``__init__``
    is measurably cheaper than the generated (frozen) one.  Treat
    instances as immutable.
    """

    __slots__ = (
        "name", "start_s", "duration_s", "span_id",
        "parent_id", "kind", "node", "stack",
    )

    def __init__(
        self,
        name: str,
        start_s: float,
        duration_s: float,
        span_id: int = 0,
        parent_id: int | None = None,
        kind: str = "internal",
        node: str = "",
        stack: str = "",
    ):
        self.name = name
        self.start_s = start_s
        self.duration_s = duration_s
        self.span_id = span_id
        self.parent_id = parent_id
        self.kind = kind
        self.node = node
        self.stack = stack

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, {self.start_s}, {self.duration_s}, "
            f"span_id={self.span_id}, parent_id={self.parent_id}, "
            f"kind={self.kind!r}, node={self.node!r}, stack={self.stack!r})"
        )


class FollowSpan:
    """Background work causally linked to (but outside) a request trace.

    ``follows_from`` is the originating trace's request id, or ``None``
    when the work has no single originating request (an anti-entropy
    sweep repairs keys from many writers).  Slotted for the same
    hot-path reason as :class:`Span`; treat instances as immutable.
    """

    __slots__ = (
        "name", "start_s", "duration_s", "node", "stack",
        "kind", "follows_from",
    )

    def __init__(
        self,
        name: str,
        start_s: float,
        duration_s: float,
        node: str = "",
        stack: str = "",
        kind: str = "producer",
        follows_from: int | None = None,
    ):
        self.name = name
        self.start_s = start_s
        self.duration_s = duration_s
        self.node = node
        self.stack = stack
        self.kind = kind
        self.follows_from = follows_from

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    def __repr__(self) -> str:
        return (
            f"FollowSpan({self.name!r}, {self.start_s}, {self.duration_s}, "
            f"node={self.node!r}, stack={self.stack!r}, kind={self.kind!r}, "
            f"follows_from={self.follows_from})"
        )


@dataclass(slots=True)
class RequestTrace:
    """The span tree and outcome of a single request."""

    request_id: int
    arrival_s: float
    attrs: dict = field(default_factory=dict)
    spans: list[Span] = field(default_factory=list)
    end_s: float | None = None
    _next_span_id: int = field(default=1, repr=False, compare=False)

    def add_span(
        self,
        name: str,
        start_s: float,
        duration_s: float,
        *,
        parent: Span | int | None = None,
        kind: str = "internal",
        node: str = "",
        stack: str = "",
    ) -> Span:
        """Append a span and return it (so callers can parent under it).

        ``parent`` accepts a :class:`Span` from the same trace or a raw
        span id; ``None`` makes a root span.
        """
        if duration_s < 0:
            raise ConfigurationError("span duration cannot be negative")
        parent_id = parent.span_id if isinstance(parent, Span) else parent
        span_id = self._next_span_id
        self._next_span_id = span_id + 1
        span = Span(name, start_s, duration_s, span_id, parent_id, kind, node, stack)
        self.spans.append(span)
        return span

    def annotate(self, **attrs) -> None:
        """Merge request-level attributes (core, verb, hit, error, ...)."""
        self.attrs.update(attrs)

    def finish(self, end_s: float) -> None:
        if end_s < self.arrival_s:
            raise ConfigurationError("trace cannot end before it arrived")
        self.end_s = end_s

    @property
    def rtt_s(self) -> float:
        if self.end_s is None:
            raise ConfigurationError("trace not finished")
        return self.end_s - self.arrival_s

    @property
    def is_error(self) -> bool:
        """True when the request did not complete (``error`` attr set)."""
        return "error" in self.attrs

    def span_total_s(self) -> float:
        """Total *root* span time — nested children refine their parent's
        interval rather than adding to it, preserving the RTT identity."""
        return sum(span.duration_s for span in self.spans if span.parent_id is None)

    def child_map(self) -> dict[int | None, list[Span]]:
        """Spans grouped by ``parent_id`` (key ``None`` = roots),
        preserving append order within each group."""
        children: dict[int | None, list[Span]] = {}
        for span in self.spans:
            children.setdefault(span.parent_id, []).append(span)
        return children

    def roots(self) -> list[Span]:
        return [span for span in self.spans if span.parent_id is None]

    def to_dict(self) -> dict:
        """JSON-safe record.  User attrs are namespaced under ``"attrs"``
        so an attr named ``spans`` or ``rtt_s`` can never shadow the
        reserved keys (:data:`RESERVED_TRACE_KEYS`)."""
        return {
            "request_id": self.request_id,
            "arrival_s": self.arrival_s,
            "rtt_s": self.rtt_s,
            "attrs": dict(self.attrs),
            "spans": [
                {
                    "name": s.name,
                    "start_s": s.start_s,
                    "duration_s": s.duration_s,
                    "span_id": s.span_id,
                    "parent_id": s.parent_id,
                    "kind": s.kind,
                    "node": s.node,
                    "stack": s.stack,
                }
                for s in self.spans
            ],
        }


class Tracer:
    """Collects request traces and folds them into component aggregates.

    ``slo_deadline_s`` arms tail-based sampling: a committed trace whose
    RTT exceeds the deadline (or that carries an ``error`` attr) is a
    *keeper* and is always retained; the rest compete for the remaining
    ``max_traces`` slots through a seeded reservoir.  Keepers are never
    evicted — if violations alone exceed ``max_traces`` the cap yields,
    because losing the evidence of an SLA breach is worse than a larger
    retained set.  Without a deadline only error traces are keepers,
    which on an error-free workload reduces to a uniform reservoir
    sample of size ``max_traces``.
    """

    enabled = True

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        max_traces: int = DEFAULT_MAX_TRACES,
        *,
        slo_deadline_s: float | None = None,
        sampling_seed: int = 0,
        max_follow_spans: int = DEFAULT_MAX_TRACES,
    ):
        if max_traces < 0:
            raise ConfigurationError("max_traces cannot be negative")
        if slo_deadline_s is not None and slo_deadline_s <= 0:
            raise ConfigurationError("SLO deadline must be positive")
        if max_follow_spans < 0:
            raise ConfigurationError("max_follow_spans cannot be negative")
        self.registry = registry if registry is not None else MetricsRegistry()
        self.max_traces = max_traces
        self.slo_deadline_s = slo_deadline_s
        self.sampling_seed = sampling_seed
        self.max_follow_spans = max_follow_spans
        self.committed = 0
        self.dropped_traces = 0
        self.slo_violations = 0
        self.component_seconds: dict[str, float] = {}
        self.follow_spans: list[FollowSpan] = []
        self.dropped_follow_spans = 0
        self._keepers: list[RequestTrace] = []
        self._reservoir: list[RequestTrace] = []
        self._normals_seen = 0
        self._next_id = 0
        # Plain int seed: deterministic across processes (no str hashing).
        self._rng = random.Random(sampling_seed)
        self._committed_total = self.registry.counter("tracer_committed_total")
        self._dropped_total = self.registry.counter("tracer_dropped_traces_total")
        self._sampled_total = self.registry.counter("tracer_sampled_total")
        # Hot-path caches: registry.histogram() normalizes labels on
        # every call, which dominates commit() at full-system rates.
        self._span_histograms: dict = {}
        self._rtt_histogram = None
        self._error_rtt_histogram = None

    def _span_histogram(self, component: str):
        histogram = self._span_histograms.get(component)
        if histogram is None:
            histogram = self.registry.histogram(
                "span_duration_seconds", labels={"component": component}
            )
            self._span_histograms[component] = histogram
        return histogram

    @property
    def traces(self) -> list[RequestTrace]:
        """Retained traces (keepers + reservoir), in request-id order."""
        return sorted(
            self._keepers + self._reservoir, key=lambda trace: trace.request_id
        )

    def begin(self, arrival_s: float, **attrs) -> RequestTrace:
        """Open a trace for a request arriving at ``arrival_s``."""
        trace = RequestTrace(
            request_id=self._next_id, arrival_s=arrival_s, attrs=dict(attrs)
        )
        self._next_id += 1
        return trace

    def commit(self, trace: RequestTrace) -> None:
        """Finalize a finished trace: aggregate spans, then sample."""
        if trace.end_s is None:
            raise ConfigurationError("commit requires a finished trace")
        self.committed += 1
        self._committed_total.inc()
        component_seconds = self.component_seconds
        histograms = self._span_histograms
        for span in trace.spans:
            name = span.name
            duration = span.duration_s
            component_seconds[name] = component_seconds.get(name, 0.0) + duration
            histogram = histograms.get(name)
            if histogram is None:
                histogram = self._span_histogram(name)
            histogram.record(duration)
        if trace.is_error:
            # Errored requests never completed: keep the unlabeled RTT
            # histogram equal to the completed-request population.
            if self._error_rtt_histogram is None:
                self._error_rtt_histogram = self.registry.histogram(
                    "request_rtt_seconds", labels={"outcome": "error"}
                )
            self._error_rtt_histogram.record(trace.rtt_s)
        else:
            if self._rtt_histogram is None:
                self._rtt_histogram = self.registry.histogram(
                    "request_rtt_seconds"
                )
            self._rtt_histogram.record(trace.rtt_s, exemplar=trace.request_id)
        self._retain(trace)

    # --- tail-based sampling -----------------------------------------------------

    def is_keeper(self, trace: RequestTrace) -> bool:
        """Would tail sampling always retain this trace?"""
        if trace.is_error:
            return True
        return self.slo_deadline_s is not None and trace.rtt_s > self.slo_deadline_s

    def _drop(self, count: int = 1) -> None:
        self.dropped_traces += count
        self._dropped_total.inc(count)

    def _retain(self, trace: RequestTrace) -> None:
        keeper = self.is_keeper(trace)
        if keeper:
            self.slo_violations += 1
        if self.max_traces == 0:
            self._drop()
            return
        if keeper:
            self._keepers.append(trace)
            self._sampled_total.inc()
            # Evict reservoir normals (never keepers) to honor the cap.
            while (
                len(self._keepers) + len(self._reservoir) > self.max_traces
                and self._reservoir
            ):
                victim = self._rng.randrange(len(self._reservoir))
                self._reservoir.pop(victim)
                self._drop()
            return
        capacity = self.max_traces - len(self._keepers)
        if capacity <= 0:
            self._drop()
            return
        self._normals_seen += 1
        if len(self._reservoir) < capacity:
            self._reservoir.append(trace)
            self._sampled_total.inc()
            return
        # Algorithm R: the new normal replaces a random resident with
        # probability reservoir_size / normals_seen.
        slot = self._rng.randrange(self._normals_seen)
        if slot < len(self._reservoir):
            self._reservoir[slot] = trace
            self._sampled_total.inc()
        self._drop()

    # --- follows-from ------------------------------------------------------------

    def follow_from(
        self,
        name: str,
        start_s: float,
        duration_s: float,
        *,
        node: str = "",
        stack: str = "",
        kind: str = "producer",
        trace: RequestTrace | int | None = None,
    ) -> FollowSpan | None:
        """Record background work linked to (but outside) a trace.

        ``trace`` is the originating :class:`RequestTrace` or its
        request id (``None`` for unattributed background work).  The
        duration folds into the component aggregates either way; the
        span object itself is retained up to ``max_follow_spans``.
        """
        if duration_s < 0:
            raise ConfigurationError("span duration cannot be negative")
        origin = trace.request_id if isinstance(trace, RequestTrace) else trace
        if origin is not None and origin < 0:
            origin = None  # a null trace's sentinel id carries no link
        self.component_seconds[name] = (
            self.component_seconds.get(name, 0.0) + duration_s
        )
        self._span_histogram(name).record(duration_s)
        span = FollowSpan(
            name=name,
            start_s=start_s,
            duration_s=duration_s,
            node=node,
            stack=stack,
            kind=kind,
            follows_from=origin,
        )
        if len(self.follow_spans) < self.max_follow_spans:
            self.follow_spans.append(span)
        else:
            self.dropped_follow_spans += 1
        return span

    def breakdown_fractions(self) -> dict[str, float]:
        """Component shares of total traced time (the Fig. 4 split)."""
        total = sum(self.component_seconds.values())
        if total == 0.0:
            return {name: 0.0 for name in self.component_seconds}
        return {
            name: seconds / total for name, seconds in self.component_seconds.items()
        }


#: Inert span handed out by the null trace so fan-out call sites can
#: still parent under the return value without branching.
_NULL_SPAN = Span("null", 0.0, 0.0)


class _NullTrace(RequestTrace):
    def add_span(self, name, start_s, duration_s, **kwargs) -> Span:
        return _NULL_SPAN

    def annotate(self, **attrs) -> None:
        pass

    def finish(self, end_s: float) -> None:
        pass


class NullTracer(Tracer):
    """No-op tracer: begin() hands out one shared inert trace."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(registry=NULL_REGISTRY, max_traces=0)
        self._trace = _NullTrace(request_id=-1, arrival_s=0.0)

    @property
    def traces(self) -> list[RequestTrace]:
        return []

    def begin(self, arrival_s: float, **attrs) -> RequestTrace:
        return self._trace

    def commit(self, trace: RequestTrace) -> None:
        pass

    def follow_from(self, name, start_s, duration_s, **kwargs) -> FollowSpan | None:
        return None


#: Shared no-op tracer, the default wherever tracing is optional.
NULL_TRACER = NullTracer()


class TelemetrySession:
    """One run's registry + tracer, handed to instrumented components.

    ``TelemetrySession()`` gives live telemetry; :data:`NULL_TELEMETRY`
    (the default everywhere) gives the zero-cost no-op pair.
    ``slo_deadline_s`` and ``sampling_seed`` configure the tracer's
    tail-based sampling (see :class:`Tracer`).
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        max_traces: int = DEFAULT_MAX_TRACES,
        slo_deadline_s: float | None = None,
        sampling_seed: int = 0,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = (
            tracer
            if tracer is not None
            else Tracer(
                self.registry,
                max_traces=max_traces,
                slo_deadline_s=slo_deadline_s,
                sampling_seed=sampling_seed,
            )
        )

    @property
    def enabled(self) -> bool:
        return self.registry.enabled or self.tracer.enabled


class _NullTelemetry(TelemetrySession):
    def __init__(self) -> None:
        super().__init__(registry=NULL_REGISTRY, tracer=NULL_TRACER)


#: Shared disabled session: instrumentation against it records nothing.
NULL_TELEMETRY = _NullTelemetry()
