"""Low-overhead metric primitives: counters, gauges, streaming histograms.

The simulator produces millions of latency samples per run; storing and
sorting them all (the seed approach) costs memory linear in request count
and makes percentiles O(n log n).  :class:`StreamingHistogram` instead
bins samples into fixed log-spaced buckets (HDR-histogram style): O(1)
per sample, a few hundred integers of state, and any percentile within
one bucket width of the exact order statistic.

A :class:`MetricsRegistry` names and owns metrics; :data:`NULL_REGISTRY`
is a no-op drop-in so instrumented code pays nothing when telemetry is
off — the hot path does one attribute call on an object whose methods do
nothing, and no sample is ever recorded.
"""

from __future__ import annotations

import math
import re
from typing import Iterator, Mapping

from repro.errors import ConfigurationError

_METRIC_NAME = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")

#: Default histogram range: 100 ns .. 100 s covers every simulated
#: latency the models produce (service times are ~10 us, RTTs < 1 s).
DEFAULT_MIN_VALUE = 1e-7
DEFAULT_MAX_VALUE = 100.0
DEFAULT_BUCKETS_PER_DECADE = 25


def _label_key(labels: Mapping[str, str] | None) -> tuple[tuple[str, str], ...]:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ConfigurationError("counters only go up; use a gauge")
        self.value += amount


class Gauge:
    """A value that moves both ways, with a high-water mark."""

    __slots__ = ("name", "labels", "value", "high_water")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0
        self.high_water = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.high_water:
            self.high_water = value

    def inc(self, amount: float = 1.0) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class StreamingHistogram:
    """Fixed-bucket log-spaced histogram with streaming percentiles.

    Buckets span ``[min_value, max_value)`` with ``buckets_per_decade``
    bins per factor of ten, so each bucket covers a relative width of
    ``10**(1/buckets_per_decade)`` (~9.6 % at the default 25).  Samples
    below the range land in bucket 0, above it in the last bucket; the
    exact min/max/sum are tracked alongside, so ``mean`` is exact and
    percentile estimates are clamped to the observed extremes.
    """

    __slots__ = (
        "name", "labels", "min_value", "max_value", "buckets_per_decade",
        "counts", "count", "total", "min_seen", "max_seen", "exemplars",
    )

    def __init__(
        self,
        name: str = "",
        labels: tuple[tuple[str, str], ...] = (),
        min_value: float = DEFAULT_MIN_VALUE,
        max_value: float = DEFAULT_MAX_VALUE,
        buckets_per_decade: int = DEFAULT_BUCKETS_PER_DECADE,
    ):
        if min_value <= 0 or max_value <= min_value:
            raise ConfigurationError("need 0 < min_value < max_value")
        if buckets_per_decade < 1:
            raise ConfigurationError("need at least one bucket per decade")
        self.name = name
        self.labels = labels
        self.min_value = min_value
        self.max_value = max_value
        self.buckets_per_decade = buckets_per_decade
        decades = math.log10(max_value / min_value)
        self.counts = [0] * (int(math.ceil(decades * buckets_per_decade)) + 1)
        self.count = 0
        self.total = 0.0
        self.min_seen = math.inf
        self.max_seen = -math.inf
        # bucket index -> latest exemplar (e.g. a trace id) seen there
        self.exemplars: dict[int, object] = {}

    # --- recording ---------------------------------------------------------------

    def _index(self, value: float) -> int:
        if value <= self.min_value:
            return 0
        index = int(math.log10(value / self.min_value) * self.buckets_per_decade)
        return min(index, len(self.counts) - 1)

    def record(self, value: float, exemplar: object | None = None) -> None:
        if value < 0:
            raise ConfigurationError("histogram values must be non-negative")
        index = self._index(value)
        self.counts[index] += 1
        self.count += 1
        self.total += value
        if value < self.min_seen:
            self.min_seen = value
        if value > self.max_seen:
            self.max_seen = value
        if exemplar is not None:
            self.exemplars[index] = exemplar

    def record_bucketed(
        self,
        bucket_counts: "Mapping[int, int] | dict[int, int]",
        total: float,
        min_seen: float,
        max_seen: float,
    ) -> None:
        """Fold a pre-bucketed batch of samples in one call.

        ``bucket_counts`` maps bucket index → sample count on *this*
        histogram's bucket grid; ``total`` is the batch's exact value
        sum and ``min_seen``/``max_seen`` its extremes.  This is the
        batched hot path for the fluid fast-forward windows: folding a
        calibration-derived distribution for a million requests costs
        one call per bucket, not one per request, and percentile reads
        land on the same bucket edges as sample-at-a-time recording.
        """
        counts = self.counts
        top = len(counts) - 1
        added = 0
        for index, n in bucket_counts.items():
            if n <= 0:
                continue
            if not 0 <= index <= top:
                raise ConfigurationError(
                    f"bucket index {index} outside histogram range 0..{top}"
                )
            counts[index] += n
            added += n
        if not added:
            return
        self.count += added
        self.total += total
        if min_seen < self.min_seen:
            self.min_seen = min_seen
        if max_seen > self.max_seen:
            self.max_seen = max_seen

    # --- exemplars ---------------------------------------------------------------

    def exemplar_for(self, value: float) -> object | None:
        """The exemplar stored in the bucket ``value`` would land in."""
        return self.exemplars.get(self._index(value))

    def exemplars_above(self, threshold: float) -> list[object]:
        """Exemplars from every bucket that can hold values above
        ``threshold`` (ascending bucket order) — e.g. trace ids of
        SLO-violating RTTs.  Buckets straddling the threshold are
        included, so the list may contain one sub-threshold exemplar."""
        return [
            self.exemplars[index]
            for index in sorted(self.exemplars)
            if self.bucket_upper_bound(index) > threshold
        ]

    # --- bucket geometry ---------------------------------------------------------

    def bucket_upper_bound(self, index: int) -> float:
        """Upper edge of bucket ``index`` (the last bucket is open-ended)."""
        if index >= len(self.counts) - 1:
            return math.inf
        return self.min_value * 10 ** ((index + 1) / self.buckets_per_decade)

    @property
    def bucket_ratio(self) -> float:
        """Relative width of one bucket (upper/lower edge ratio)."""
        return 10 ** (1 / self.buckets_per_decade)

    # --- statistics --------------------------------------------------------------

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def minimum(self) -> float:
        return self.min_seen if self.count else 0.0

    @property
    def maximum(self) -> float:
        return self.max_seen if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Value at quantile ``p`` in (0, 1), within one bucket width.

        Returns the upper edge of the bucket where the cumulative count
        crosses ``p * count``, clamped to the observed min/max so the
        estimate never leaves the sampled range.
        """
        if not 0.0 < p < 1.0:
            raise ConfigurationError("percentile must be in (0, 1)")
        if self.count == 0:
            return 0.0
        rank = p * self.count
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank:
                edge = self.bucket_upper_bound(index)
                return min(self.max_seen, max(self.min_seen, edge))
        return self.max_seen  # pragma: no cover - rank <= count always hits

    def quantiles(self, ps: tuple[float, ...] = (0.5, 0.95, 0.99, 0.999)) -> dict[float, float]:
        return {p: self.percentile(p) for p in ps}

    def fraction_below(self, threshold: float) -> float:
        """Fraction of samples <= ``threshold`` (interpolated in-bucket)."""
        if self.count == 0:
            return 0.0
        if threshold >= self.max_seen:
            return 1.0
        if threshold < self.min_seen:
            return 0.0
        below = 0.0
        for index, bucket_count in enumerate(self.counts):
            if not bucket_count:
                continue
            upper = self.bucket_upper_bound(index)
            lower = upper / self.bucket_ratio if index else 0.0
            if upper <= threshold:
                below += bucket_count
            elif lower < threshold:
                # log-linear interpolation within the straddling bucket
                if upper == math.inf:
                    upper = self.max_seen
                span = upper - lower
                below += bucket_count * ((threshold - lower) / span if span > 0 else 1.0)
        return min(1.0, below / self.count)

    def merge(self, other: "StreamingHistogram") -> "StreamingHistogram":
        """Combine two histograms with identical bucket geometry."""
        if (
            other.min_value != self.min_value
            or other.max_value != self.max_value
            or other.buckets_per_decade != self.buckets_per_decade
        ):
            raise ConfigurationError("cannot merge histograms with different buckets")
        merged = StreamingHistogram(
            name=self.name,
            labels=self.labels,
            min_value=self.min_value,
            max_value=self.max_value,
            buckets_per_decade=self.buckets_per_decade,
        )
        merged.counts = [a + b for a, b in zip(self.counts, other.counts)]
        merged.count = self.count + other.count
        merged.total = self.total + other.total
        merged.min_seen = min(self.min_seen, other.min_seen)
        merged.max_seen = max(self.max_seen, other.max_seen)
        merged.exemplars = {**self.exemplars, **other.exemplars}
        return merged

    def to_dict(self) -> dict:
        """Snapshot for machine-readable export (only occupied buckets).

        Carries the bucket geometry and the exact min/max/sum alongside
        the counts, so :meth:`from_dict` restores a histogram whose
        ``minimum``/``maximum``/``mean`` — and any later :meth:`merge` —
        are exact, not bucket-quantised.
        """
        payload = {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "min_value": self.min_value,
            "max_value": self.max_value,
            "buckets_per_decade": self.buckets_per_decade,
            "buckets": {
                f"{self.bucket_upper_bound(i):.6g}": c
                for i, c in enumerate(self.counts)
                if c
            },
        }
        if self.exemplars:
            # Keyed by bucket index; omitted entirely when empty so
            # exemplar-free snapshots stay byte-identical to older ones.
            payload["exemplars"] = {
                str(index): self.exemplars[index] for index in sorted(self.exemplars)
            }
        return payload

    @classmethod
    def from_dict(
        cls,
        payload: Mapping,
        name: str = "",
        labels: tuple[tuple[str, str], ...] = (),
    ) -> "StreamingHistogram":
        """Rebuild a histogram from a :meth:`to_dict` snapshot.

        Bucket keys are mapped back to indices through the geometry (the
        ``.6g``-formatted upper bound is only used to locate the bucket,
        never as a sample), and the exact count/sum/min/max are restored
        verbatim — the round trip loses nothing.
        """
        histogram = cls(
            name=name,
            labels=labels,
            min_value=payload.get("min_value", DEFAULT_MIN_VALUE),
            max_value=payload.get("max_value", DEFAULT_MAX_VALUE),
            buckets_per_decade=payload.get(
                "buckets_per_decade", DEFAULT_BUCKETS_PER_DECADE
            ),
        )
        last = len(histogram.counts) - 1
        for key, bucket_count in payload["buckets"].items():
            upper = float(key)
            if math.isinf(upper):
                index = last
            else:
                index = round(
                    math.log10(upper / histogram.min_value)
                    * histogram.buckets_per_decade
                ) - 1
                index = min(max(index, 0), last)
            histogram.counts[index] += bucket_count
        histogram.count = payload["count"]
        histogram.total = payload["sum"]
        if histogram.count:
            histogram.min_seen = payload["min"]
            histogram.max_seen = payload["max"]
        for key, exemplar in payload.get("exemplars", {}).items():
            histogram.exemplars[min(int(key), last)] = exemplar
        return histogram


class MetricsRegistry:
    """Named metrics, created on first use and shared thereafter."""

    enabled = True

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, tuple[tuple[str, str], ...]], object] = {}

    def _get(self, kind: type, name: str, labels: Mapping[str, str] | None, **kwargs):
        if not _METRIC_NAME.match(name):
            raise ConfigurationError(f"invalid metric name {name!r}")
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = kind(name, key[1], **kwargs)
            self._metrics[key] = metric
        elif not isinstance(metric, kind):
            raise ConfigurationError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        return metric

    def counter(self, name: str, labels: Mapping[str, str] | None = None) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, labels: Mapping[str, str] | None = None) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        labels: Mapping[str, str] | None = None,
        **kwargs,
    ) -> StreamingHistogram:
        return self._get(StreamingHistogram, name, labels, **kwargs)

    def __iter__(self) -> Iterator[object]:
        """Metrics in registration order."""
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def get(self, name: str, labels: Mapping[str, str] | None = None):
        """Look up an existing metric, or None."""
        return self._metrics.get((name, _label_key(labels)))


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass


class _NullHistogram(StreamingHistogram):
    __slots__ = ()

    def record(self, value: float, exemplar: object | None = None) -> None:
        pass


class NullRegistry(MetricsRegistry):
    """The default: every metric is a shared do-nothing singleton."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._counter = _NullCounter("null")
        self._gauge = _NullGauge("null")
        self._histogram = _NullHistogram("null")

    def counter(self, name: str, labels: Mapping[str, str] | None = None) -> Counter:
        return self._counter

    def gauge(self, name: str, labels: Mapping[str, str] | None = None) -> Gauge:
        return self._gauge

    def histogram(self, name, labels=None, **kwargs) -> StreamingHistogram:
        return self._histogram

    def __iter__(self) -> Iterator[object]:
        return iter(())

    def __len__(self) -> int:
        return 0

    def get(self, name, labels=None):
        return None


#: Shared no-op registry: the default for every instrumented component.
NULL_REGISTRY = NullRegistry()


#: Human descriptions for well-known metric names, emitted as ``# HELP``
#: lines by the Prometheus exporter.  Components register new names via
#: :func:`describe_metric` at import time.
METRIC_DESCRIPTIONS: dict[str, str] = {
    "request_rtt_seconds": "End-to-end request round-trip time on the simulated clock",
    "queue_wait_seconds": "Time a job waited in a FIFO resource before service",
    "queue_depth": "Jobs currently queued at a FIFO resource",
    "span_duration_seconds": "Per-component span durations from committed request traces",
    "requests_completed_total": "Requests that completed within the run horizon",
    "requests_served_total": "Requests served, by core",
    "requests_failed_total": "Requests the client gave up on",
    "mac_drops_total": "Packets dropped by the on-stack MAC buffer",
    "get_hits_total": "GET requests answered from the store",
    "get_misses_total": "GET requests that missed",
    "puts_total": "Logical PUT requests completed",
    "response_bytes_total": "Response payload bytes returned to clients",
    "client_retries_total": "Client retry attempts after timeouts",
    "client_timeouts_total": "Request attempts the client timed out",
    "client_failovers_total": "Nodes removed from the client ring after repeated timeouts",
    "client_hedged_requests_total": "Hedged duplicate GETs issued by the client",
    "fault_events_total": "Fault-schedule transitions applied, by kind",
    "fault_packets_dropped_total": "Packets lost to injected loss windows",
    "fault_packets_corrupted_total": "Packets corrupted in flight by injected windows",
    "degraded_mode": "Active fault windows plus nodes currently down",
    "nodes_down": "Nodes currently crashed",
    "nic_mac_drops_total": "Frames dropped because the MAC buffer was full",
    "nic_mac_forwarded_total": "Frames forwarded from the MAC to a core",
    "nic_link_drops_total": "Frames lost on the link by fault injection",
    "nic_link_corruptions_total": "Frames that failed the FCS after injected corruption",
    "nic_mac_buffered_bytes": "Bytes currently buffered in the on-stack MAC",
    "replication_replica_writes_total": "Physical replica copies written for logical PUTs",
    "replication_redirected_reads_total": "GETs served by a non-primary replica",
    "replication_verify_reads_total": "Background read-quorum verification reads",
    "replication_read_repairs_total": "Stale replicas repaired on the read path",
    "replication_hints_queued_total": "Writes parked as hints for down replicas",
    "replication_hints_replayed_total": "Parked hints replayed at node readmission",
    "replication_hints_dropped_total": "Hints dropped because the hint queue was full",
    "replication_hint_queue_depth": "Hints currently parked across all nodes",
    "replication_antientropy_sweeps_total": "Anti-entropy digest sweeps completed",
    "replication_antientropy_repairs_total": "Keys repaired by anti-entropy sweeps",
    "replication_antientropy_dirty_buckets_total": "Digest buckets found divergent",
    "batch_flushes_total": "Coalesced batches shipped by the DES batch former, by flush reason",
    "batch_ops_total": "Requests that rode a coalesced batch in the DES",
    "batch_size": "Ops per coalesced batch shipped by the DES batch former",
    "client_batch_flushes_total": "Client batch buffers flushed, by reason (size/linger/barrier)",
    "client_batched_ops_total": "Operations shipped inside client-side batches",
    "client_batch_dedup_total": "Duplicate in-flight GETs folded onto an earlier batch rider",
    "client_batch_size": "Ops per flushed client batch",
    "memcached_batches_total": "Multi-op frames (multiget/mset) served by the server loop",
    "memcached_batched_ops_total": "Operations carried inside multi-op frames",
    "background_busy_seconds": "Simulated core-busy time charged to background tasks",
    "replica_put_wait_seconds": "Queue wait for replica PUT copies at follower cores",
    "tracer_committed_total": "Request traces finalized by the tracer",
    "tracer_dropped_traces_total": "Committed traces not retained by tail sampling",
    "tracer_sampled_total": "Committed traces admitted to the retained set",
    "slo_alerts_fired_total": "SLO burn-rate alert firings, by rule",
    "slo_alerts_cleared_total": "SLO burn-rate alert clearings, by rule",
    "slo_alerts_active": "SLO alerts currently firing",
    "slo_burn_rate": "Error-budget burn multiple, by rule and window",
    "bench_artefacts_total": "Benchmark artefacts regenerated this session",
    "flashstore_appends_total": "Items appended to the tiered store's log tier",
    "flashstore_pages_programmed_total": "Flash pages programmed by the tiered store, by cause (log/conversion/compaction)",
    "flashstore_pages_read_total": "Flash pages read on the tiered GET path, by tier",
    "flashstore_conversions_total": "Sealed log segments converted into hash stores",
    "flashstore_compactions_total": "Hash-store merge-compactions into the sorted tier",
    "flashstore_filter_false_positives_total": "Flash pages read because a cuckoo fingerprint matched a different key",
    "flashstore_write_amplification": "Measured tiered-store WA: flash bytes programmed per host byte written",
    "flashstore_read_amplification": "Measured tiered-store RA: flash pages read per GET hit, false positives included",
    "flashstore_index_bytes_per_key": "Modelled in-memory index bytes per live key across all tiers",
    "ftl_erases_total": "Blocks erased by the baseline FTL's garbage collector",
    "ftl_gc_page_moves_total": "Valid pages relocated by FTL garbage collection",
    "ftl_write_amplification": "Measured FTL WA: physical pages programmed per host page written",
    "energy_joules_total": "Measured energy by component (cores/memory/flash/NIC/chassis/delivery losses)",
    "energy_throttle_events_total": "Thermal-throttle alerts fired (windowed stack power over the passive-cooling limit)",
    "energy_budget_events_total": "Power-budget burn alerts fired (extrapolated enclosure power over the stack budget)",
    "power_stack_watts": "Mean stack-side power over the last complete energy window",
    "power_server_watts": "Extrapolated wall power over the last complete energy window (num_stacks alike + chassis + delivery)",
    "power_throttle_derate": "Current thermal frequency-derate factor (1.0 = full speed)",
    "thermal_per_stack_watts": "Per-stack dissipation carried by the thermal report (design TDP or measured mean)",
    "thermal_headroom_watts": "Watts of margin under the passive-cooling limit (negative = over)",
    "thermal_power_density_w_per_cm2": "Heat flux through the 4.41 cm^2 package top",
    "thermal_passively_coolable": "1 if the per-stack power fits passive cooling, else 0",
    "bench_wall_seconds": "Wall-clock time per benchmark",
}


def describe_metric(name: str, help_text: str) -> None:
    """Register (or update) the ``# HELP`` description for a metric."""
    if not _METRIC_NAME.match(name):
        raise ConfigurationError(f"invalid metric name {name!r}")
    METRIC_DESCRIPTIONS[name] = help_text


def metric_description(name: str) -> str | None:
    """The registered description for ``name``, if any."""
    return METRIC_DESCRIPTIONS.get(name)
