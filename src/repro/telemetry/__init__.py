"""Telemetry: metric primitives, request tracing, pluggable exporters.

The observability layer for the simulator and kvstore.  Everything is
opt-in: instrumented components default to :data:`NULL_TELEMETRY` /
:data:`NULL_REGISTRY`, whose methods are no-ops, so a run without
telemetry is byte-for-byte identical to the uninstrumented code path.

Enable it by constructing a :class:`TelemetrySession` and passing it to
``FullSystemStack.run(..., telemetry=session)``, then export with
:func:`write_trace_jsonl`, :func:`prometheus_text`, or
:func:`summary_table` — or from the shell: ``python -m repro telemetry``.
"""

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    NullRegistry,
    NULL_REGISTRY,
    StreamingHistogram,
    describe_metric,
    metric_description,
)
from repro.telemetry.tracing import (
    FollowSpan,
    NullTracer,
    NULL_TELEMETRY,
    NULL_TRACER,
    RequestTrace,
    Span,
    TelemetrySession,
    Tracer,
)
from repro.telemetry.critical_path import (
    AttributionTable,
    PathSegment,
    compute_trace_digest,
    critical_path,
    tail_attribution,
    waterfall,
)
from repro.telemetry.exporters import (
    escape_label_value,
    prometheus_text,
    summary_table,
    trace_events,
    trace_events_json,
    trace_to_jsonl,
    validate_trace_events,
    write_prometheus,
    write_trace_events,
    write_trace_jsonl,
)
from repro.telemetry.timeseries import (
    TimeSeriesRecorder,
    WindowedSeries,
    write_timeseries_jsonl,
)
from repro.telemetry.slo import (
    Alert,
    BurnRateRule,
    SloMonitor,
    SloObjective,
    default_burn_rules,
    paper_sla_objectives,
)
from repro.telemetry.energy import (
    EnergyMeter,
    WAIT_COMPONENTS,
    energy_tail_attribution,
    segment_power_w,
    trace_energy_j,
)
from repro.telemetry.profiler import SimProfiler

__all__ = [
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "StreamingHistogram",
    "describe_metric",
    "metric_description",
    "FollowSpan",
    "NullTracer",
    "NULL_TELEMETRY",
    "NULL_TRACER",
    "RequestTrace",
    "Span",
    "TelemetrySession",
    "Tracer",
    "AttributionTable",
    "PathSegment",
    "compute_trace_digest",
    "critical_path",
    "tail_attribution",
    "waterfall",
    "escape_label_value",
    "prometheus_text",
    "summary_table",
    "trace_events",
    "trace_events_json",
    "trace_to_jsonl",
    "validate_trace_events",
    "write_prometheus",
    "write_trace_events",
    "write_trace_jsonl",
    "TimeSeriesRecorder",
    "WindowedSeries",
    "write_timeseries_jsonl",
    "Alert",
    "BurnRateRule",
    "SloMonitor",
    "SloObjective",
    "default_burn_rules",
    "paper_sla_objectives",
    "EnergyMeter",
    "WAIT_COMPONENTS",
    "energy_tail_attribution",
    "segment_power_w",
    "trace_energy_j",
    "SimProfiler",
]
