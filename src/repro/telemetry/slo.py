"""SLO monitoring: objectives, multi-window burn-rate alerts, sinks.

The paper's headline claims are service-level claims (a 1.1 ms RTT SLA
at load), so the observatory tracks them the way a production service
would: an :class:`SloObjective` states the promise ("99.9 % of requests
answer within 1.1 ms", "99.9 % of requests succeed"), and a
:class:`BurnRateRule` alerts on the *rate* the error budget is being
spent — the Google-SRE multi-window form, where an alert fires only
when both a long window (evidence the burn is sustained) and a short
window (evidence it is still happening) exceed the threshold, and
clears when the short window recovers.

Everything runs on the simulated clock: request outcomes fold into
per-objective :class:`~repro.telemetry.timeseries.WindowedSeries`, and
:meth:`SloMonitor.install` evaluates the rules on a recurring DES
event.  Two identical-seed runs therefore fire and clear alerts at
identical simulated times.  Firings are appended to
:attr:`SloMonitor.alerts`, counted in the metrics registry
(``slo_alerts_fired_total`` / ``slo_alerts_cleared_total``, burn-rate
gauges), and pushed to pluggable alert sinks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.errors import ConfigurationError
from repro.telemetry.metrics import MetricsRegistry, NULL_REGISTRY
from repro.telemetry.timeseries import WindowedSeries


@dataclass(frozen=True)
class SloObjective:
    """One promise about request outcomes.

    ``target`` is the good fraction promised (e.g. 0.999).  With
    ``deadline_s`` set this is a latency objective: a request is good
    only if it completed within the deadline.  Without it, it is an
    availability objective: completed at all = good.  Failed requests
    are bad under every objective.
    """

    name: str
    target: float
    deadline_s: float | None = None

    def __post_init__(self):
        if not 0.0 < self.target < 1.0:
            raise ConfigurationError("SLO target must be in (0, 1)")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ConfigurationError("SLO deadline must be positive")

    @property
    def error_budget(self) -> float:
        """Bad fraction the objective tolerates (1 - target)."""
        return 1.0 - self.target

    def is_good(self, latency_s: float | None, ok: bool) -> bool:
        if not ok:
            return False
        if self.deadline_s is None:
            return True
        return latency_s is not None and latency_s <= self.deadline_s


@dataclass(frozen=True)
class BurnRateRule:
    """Fire when the budget burns ``threshold``× too fast, sustained.

    Burn rate over a window = (bad fraction in window) / error budget;
    1.0 means the budget is being spent exactly at the rate the
    objective allows.  The rule fires when *both* the long and short
    windows burn at ≥ ``threshold`` and clears when the short window
    drops below it.  Windows are in simulated seconds.
    """

    name: str
    objective: str
    long_window_s: float
    short_window_s: float
    threshold: float

    def __post_init__(self):
        if self.short_window_s <= 0 or self.long_window_s <= 0:
            raise ConfigurationError("burn-rate windows must be positive")
        if self.short_window_s > self.long_window_s:
            raise ConfigurationError("short window cannot exceed the long window")
        if self.threshold <= 0:
            raise ConfigurationError("burn threshold must be positive")


@dataclass
class Alert:
    """One firing of one rule, with its lifecycle on the simulated clock."""

    rule: str
    objective: str
    fired_at_s: float
    cleared_at_s: float | None = None
    peak_burn: float = 0.0
    #: Representative trace ids captured at fire time (histogram
    #: exemplars of SLO-violating buckets) — the "which requests" link.
    exemplar_trace_ids: tuple = ()

    @property
    def active(self) -> bool:
        return self.cleared_at_s is None

    def to_dict(self) -> dict:
        payload = {
            "rule": self.rule,
            "objective": self.objective,
            "fired_at_s": self.fired_at_s,
            "cleared_at_s": self.cleared_at_s,
            "peak_burn": round(self.peak_burn, 6),
        }
        if self.exemplar_trace_ids:
            payload["exemplar_trace_ids"] = list(self.exemplar_trace_ids)
        return payload


#: An alert sink: called as ``sink(event, alert, now_s)`` with event
#: ``"fire"`` or ``"clear"``.
AlertSink = Callable[[str, Alert, float], None]


class SloMonitor:
    """Tracks objectives from per-request outcomes and runs burn rules.

    Feed it with :meth:`record` (one call per finished or failed
    request, at the simulated completion time) and either call
    :meth:`evaluate` yourself on a cadence or :meth:`install` it on a
    simulator.  ``resolution_s`` is the internal bucketing of outcomes;
    rule windows are rounded up to whole resolution buckets, so choose
    a resolution that divides the short window.
    """

    def __init__(
        self,
        objectives: Sequence[SloObjective],
        rules: Sequence[BurnRateRule] = (),
        resolution_s: float = 0.05,
        registry: MetricsRegistry = NULL_REGISTRY,
        sinks: Iterable[AlertSink] = (),
    ):
        if not objectives:
            raise ConfigurationError("an SLO monitor needs at least one objective")
        if resolution_s <= 0:
            raise ConfigurationError("resolution must be positive")
        names = [o.name for o in objectives]
        if len(set(names)) != len(names):
            raise ConfigurationError("objective names must be unique")
        self.objectives = {o.name: o for o in objectives}
        for rule in rules:
            if rule.objective not in self.objectives:
                raise ConfigurationError(
                    f"rule {rule.name!r} references unknown objective "
                    f"{rule.objective!r}"
                )
            if rule.short_window_s < resolution_s:
                raise ConfigurationError(
                    f"rule {rule.name!r} short window is finer than the "
                    f"monitor resolution"
                )
        rule_names = [r.name for r in rules]
        if len(set(rule_names)) != len(rule_names):
            raise ConfigurationError("rule names must be unique")
        self.rules = tuple(rules)
        self.resolution_s = resolution_s
        self.sinks = list(sinks)
        self._exemplar_source: Callable[[], Sequence] | None = None
        self.alerts: list[Alert] = []
        self._active: dict[str, Alert] = {}
        self._good: dict[str, WindowedSeries] = {}
        self._total: dict[str, WindowedSeries] = {}
        for name in self.objectives:
            self._good[name] = WindowedSeries(f"{name}_good", resolution_s)
            self._total[name] = WindowedSeries(f"{name}_total", resolution_s)
        self._registry = registry
        self._fired_total = {
            r.name: registry.counter("slo_alerts_fired_total", {"rule": r.name})
            for r in self.rules
        }
        self._cleared_total = {
            r.name: registry.counter("slo_alerts_cleared_total", {"rule": r.name})
            for r in self.rules
        }
        self._burn_gauges = {
            (r.name, span): registry.gauge(
                "slo_burn_rate", {"rule": r.name, "window": span}
            )
            for r in self.rules
            for span in ("short", "long")
        }
        self._active_gauge = registry.gauge("slo_alerts_active")

    # --- outcome intake ----------------------------------------------------------

    def record(
        self, t_s: float, latency_s: float | None = None, ok: bool = True
    ) -> None:
        """Fold one request outcome (at its completion time) into every
        objective's good/total windows."""
        for name, objective in self.objectives.items():
            self._total[name].observe(t_s)
            if objective.is_good(latency_s, ok):
                self._good[name].observe(t_s)

    def record_bulk(self, t_s: float, count: int, fraction_under) -> None:
        """Fold ``count`` successful completions at ``t_s`` in one call.

        ``fraction_under(deadline_s)`` returns the share of the batch
        within a latency deadline.  This is the fluid fast-forward path:
        a window's completions land as one weighted observation per
        objective instead of one call per request, against the same
        good/total windows :meth:`record` feeds.
        """
        if count <= 0:
            return
        for name, objective in self.objectives.items():
            self._total[name].observe(t_s, float(count))
            if objective.deadline_s is None:
                good = float(count)
            else:
                good = count * fraction_under(objective.deadline_s)
            if good > 0.0:
                self._good[name].observe(t_s, good)

    # --- burn-rate math ----------------------------------------------------------

    def bad_fraction(self, objective: str, window_s: float, now_s: float) -> float:
        """Bad fraction of outcomes in the trailing ``window_s``
        (0.0 when the window saw no traffic)."""
        start = now_s - window_s
        total = self._total[objective].sum_over(start, now_s)
        if total <= 0:
            return 0.0
        good = self._good[objective].sum_over(start, now_s)
        return max(0.0, 1.0 - good / total)

    def burn_rate(self, objective: str, window_s: float, now_s: float) -> float:
        """Error-budget burn multiple over the trailing window."""
        return (
            self.bad_fraction(objective, window_s, now_s)
            / self.objectives[objective].error_budget
        )

    # --- evaluation --------------------------------------------------------------

    def evaluate(self, now_s: float) -> list[tuple[str, Alert]]:
        """Run every rule at simulated time ``now_s``.

        Returns the ``(event, alert)`` transitions that happened — an
        alert in steady state (still firing, still clear) produces no
        transition, so a sustained violation fires exactly once.
        """
        transitions: list[tuple[str, Alert]] = []
        for rule in self.rules:
            short = self.burn_rate(rule.objective, rule.short_window_s, now_s)
            long = self.burn_rate(rule.objective, rule.long_window_s, now_s)
            self._burn_gauges[(rule.name, "short")].set(short)
            self._burn_gauges[(rule.name, "long")].set(long)
            active = self._active.get(rule.name)
            if active is not None:
                active.peak_burn = max(active.peak_burn, short, long)
            if active is None and short >= rule.threshold and long >= rule.threshold:
                alert = Alert(
                    rule=rule.name,
                    objective=rule.objective,
                    fired_at_s=now_s,
                    peak_burn=max(short, long),
                    exemplar_trace_ids=(
                        tuple(self._exemplar_source())
                        if self._exemplar_source is not None
                        else ()
                    ),
                )
                self._active[rule.name] = alert
                self.alerts.append(alert)
                self._fired_total[rule.name].inc()
                transitions.append(("fire", alert))
            elif active is not None and short < rule.threshold:
                active.cleared_at_s = now_s
                del self._active[rule.name]
                self._cleared_total[rule.name].inc()
                transitions.append(("clear", active))
        self._active_gauge.set(len(self._active))
        for event, alert in transitions:
            for sink in self.sinks:
                sink(event, alert, now_s)
        return transitions

    @property
    def active_alerts(self) -> tuple[Alert, ...]:
        return tuple(self._active.values())

    def attach_exemplars(self, source: Callable[[], Sequence]) -> None:
        """Attach a callable sampled at every alert *fire*: it returns
        representative trace ids (e.g.
        ``StreamingHistogram.exemplars_above`` on the RTT histogram) so
        each alert links to concrete SLO-violating traces."""
        self._exemplar_source = source

    # --- DES wiring --------------------------------------------------------------

    def install(self, sim, horizon_s: float, interval_s: float | None = None) -> None:
        """Evaluate the rules on a recurring DES event until the horizon.

        The default cadence is half the shortest rule window (at least
        the monitor resolution) — fine enough that a violation window is
        detected within a window of when it became sustained.
        """
        if not self.rules:
            return
        if interval_s is None:
            interval_s = max(
                self.resolution_s,
                min(rule.short_window_s for rule in self.rules) / 2.0,
            )
        if interval_s <= 0:
            raise ConfigurationError("evaluation interval must be positive")
        sim.recurring(interval_s, self.evaluate, horizon_s)


def paper_sla_objectives(
    deadline_s: float = 1.1e-3, target: float = 0.999
) -> tuple[SloObjective, SloObjective]:
    """The reproduction's default promises: the paper's 1.1 ms RTT SLA
    as a latency objective, plus request availability at the same
    target."""
    return (
        SloObjective("latency", target=target, deadline_s=deadline_s),
        SloObjective("availability", target=target),
    )


def default_burn_rules(
    objectives: Iterable[SloObjective],
    short_window_s: float,
    long_window_s: float,
    threshold: float = 10.0,
) -> tuple[BurnRateRule, ...]:
    """One multi-window rule per objective, sized for simulated runs
    (seconds, not the 5-min/1-h windows of wall-clock dashboards)."""
    return tuple(
        BurnRateRule(
            name=f"{o.name}_burn",
            objective=o.name,
            long_window_s=long_window_s,
            short_window_s=short_window_s,
            threshold=threshold,
        )
        for o in objectives
    )
