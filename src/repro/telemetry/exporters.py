"""Pluggable metric/trace export: JSONL traces, Perfetto, Prometheus text.

Four consumers, four formats:

* ``trace_to_jsonl`` / ``write_trace_jsonl`` — one JSON object per
  request, spans inline (user attrs namespaced under ``"attrs"``), for
  offline tooling (jq, pandas).
* ``trace_events`` / ``trace_events_json`` / ``write_trace_events`` —
  Chrome/Perfetto trace-event JSON: every retained span becomes a
  complete ("X") event on a per-node track, follow-from spans ride on
  the same tracks with their originating trace id in ``args``.  The
  JSON rendering is canonical (sorted keys, no whitespace) so two
  same-seed runs export bit-identical files.
* ``prometheus_text`` / ``write_prometheus`` — the text exposition
  format scrapers and dashboards already speak: counters and gauges as
  samples, histograms as summary quantiles plus ``_sum``/``_count``/
  ``_min``/``_max`` and exemplar comment lines linking buckets to
  trace ids.
* ``summary_table`` — a human-readable digest (quantile table plus an
  ASCII component-breakdown chart) for terminals and bench logs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from repro.errors import ConfigurationError
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    StreamingHistogram,
    metric_description,
)
from repro.telemetry.tracing import RequestTrace, Tracer

#: Quantiles reported for every histogram in every exporter.
SUMMARY_QUANTILES = (0.5, 0.95, 0.99, 0.999)


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format:
    backslash, double quote, and line feed."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    """``# HELP`` text escaping: backslash and line feed only."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _labels_text(labels: Sequence[tuple[str, str]], extra: str = "") -> str:
    parts = [f'{key}="{escape_label_value(value)}"' for key, value in labels]
    if extra:
        parts.append(extra)
    return "{%s}" % ",".join(parts) if parts else ""


def _format_number(value: float) -> str:
    if value != value or value in (float("inf"), float("-inf")):
        return str(value)
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


# --- traces ------------------------------------------------------------------------


def trace_to_jsonl(traces: Iterable[RequestTrace]) -> str:
    """Serialise finished traces, one compact JSON object per line."""
    return "".join(
        json.dumps(trace.to_dict(), separators=(",", ":")) + "\n" for trace in traces
    )


def write_trace_jsonl(path: str | Path, tracer: Tracer) -> Path:
    """Dump a tracer's retained traces to ``path``; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(trace_to_jsonl(tracer.traces))
    return path


# --- chrome/perfetto trace events ---------------------------------------------------


def trace_events(tracer: Tracer) -> dict:
    """The tracer's retained spans as a Chrome trace-event document.

    One process (`pid` 1), one thread track per distinct ``node`` label
    (plus ``client`` for unlabeled spans), thread ids assigned in sorted
    label order so the layout is deterministic.  Every span — in-trace
    and follow-from — is a complete ("X") event with microsecond
    ``ts``/``dur``; causal structure rides in ``args`` (``trace_id``,
    ``span_id``, ``parent_id``, ``follows_from``).
    """
    traces = tracer.traces
    labels = {span.node or "client" for trace in traces for span in trace.spans}
    labels.update(span.node or "client" for span in tracer.follow_spans)
    labels.add("client")
    tids = {label: index + 1 for index, label in enumerate(sorted(labels))}
    events: list[dict] = [
        {
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "name": "thread_name",
            "args": {"name": label},
        }
        for label, tid in sorted(tids.items(), key=lambda item: item[1])
    ]
    for trace in traces:
        for span in trace.spans:
            events.append(
                {
                    "ph": "X",
                    "pid": 1,
                    "tid": tids[span.node or "client"],
                    "name": span.name,
                    "cat": span.kind,
                    "ts": span.start_s * 1e6,
                    "dur": span.duration_s * 1e6,
                    "args": {
                        "trace_id": trace.request_id,
                        "span_id": span.span_id,
                        "parent_id": span.parent_id,
                        "stack": span.stack,
                    },
                }
            )
    for span in tracer.follow_spans:
        events.append(
            {
                "ph": "X",
                "pid": 1,
                "tid": tids[span.node or "client"],
                "name": span.name,
                "cat": f"follow:{span.kind}",
                "ts": span.start_s * 1e6,
                "dur": span.duration_s * 1e6,
                "args": {"follows_from": span.follows_from, "stack": span.stack},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def trace_events_json(tracer: Tracer) -> str:
    """Canonical (sorted-key, whitespace-free) trace-event JSON — two
    same-seed runs produce bit-identical bytes."""
    return json.dumps(trace_events(tracer), sort_keys=True, separators=(",", ":"))


def write_trace_events(path: str | Path, tracer: Tracer) -> Path:
    """Write the Perfetto-loadable trace-event file; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(trace_events_json(tracer) + "\n")
    return path


def validate_trace_events(payload: object) -> int:
    """Minimal schema check for a trace-event document (the CI smoke
    gate).  Returns the event count; raises ``ConfigurationError`` on
    the first malformed event."""
    if not isinstance(payload, dict) or not isinstance(
        payload.get("traceEvents"), list
    ):
        raise ConfigurationError("trace-event document needs a traceEvents list")
    for position, event in enumerate(payload["traceEvents"]):
        where = f"traceEvents[{position}]"
        if not isinstance(event, dict):
            raise ConfigurationError(f"{where} is not an object")
        if not isinstance(event.get("name"), str):
            raise ConfigurationError(f"{where} has no name")
        phase = event.get("ph")
        if phase not in ("X", "M"):
            raise ConfigurationError(f"{where} has unsupported phase {phase!r}")
        if not isinstance(event.get("pid"), int) or not isinstance(
            event.get("tid"), int
        ):
            raise ConfigurationError(f"{where} needs integer pid/tid")
        if phase == "X":
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    raise ConfigurationError(f"{where} needs non-negative {key}")
    return len(payload["traceEvents"])


# --- prometheus text exposition -------------------------------------------------


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render every metric in the registry as Prometheus text format."""
    lines: list[str] = []
    typed: set[str] = set()

    def declare(name: str, kind: str) -> None:
        if name not in typed:
            help_text = metric_description(name)
            if help_text:
                lines.append(f"# HELP {name} {_escape_help(help_text)}")
            lines.append(f"# TYPE {name} {kind}")
            typed.add(name)

    for metric in registry:
        name = metric.name
        if isinstance(metric, Counter):
            declare(name, "counter")
            lines.append(f"{name}{_labels_text(metric.labels)} {metric.value}")
        elif isinstance(metric, Gauge):
            declare(name, "gauge")
            lines.append(
                f"{name}{_labels_text(metric.labels)} "
                f"{_format_number(metric.value)}"
            )
            lines.append(
                f"{name}_high_water{_labels_text(metric.labels)} "
                f"{_format_number(metric.high_water)}"
            )
        elif isinstance(metric, StreamingHistogram):
            declare(name, "summary")
            for quantile in SUMMARY_QUANTILES:
                value = metric.percentile(quantile) if metric.count else 0.0
                quantile_label = 'quantile="%s"' % quantile
                lines.append(
                    f"{name}{_labels_text(metric.labels, quantile_label)} "
                    f"{_format_number(value)}"
                )
            labels = _labels_text(metric.labels)
            lines.append(f"{name}_sum{labels} {_format_number(metric.total)}")
            lines.append(f"{name}_count{labels} {metric.count}")
            lines.append(f"{name}_min{labels} {_format_number(metric.minimum)}")
            lines.append(f"{name}_max{labels} {_format_number(metric.maximum)}")
            for index in sorted(metric.exemplars):
                # OpenMetrics-style exemplar, as a comment so strict
                # text-format parsers skip it: bucket edge -> trace id.
                upper = metric.bucket_upper_bound(index)
                lines.append(
                    f"# EXEMPLAR {name}{labels} le={_format_number(upper)} "
                    f"trace_id={metric.exemplars[index]}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(path: str | Path, registry: MetricsRegistry) -> Path:
    """Write the registry snapshot to ``path``; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(prometheus_text(registry))
    return path


# --- human summary ------------------------------------------------------------------


def summary_table(registry: MetricsRegistry, tracer: Tracer | None = None) -> str:
    """A terminal-friendly digest of a registry (and optional tracer)."""
    from repro.analysis.ascii_chart import bar_chart

    sections: list[str] = []
    histogram_rows: list[str] = []
    scalar_rows: list[str] = []
    for metric in registry:
        label = metric.name + "".join(f" {k}={v}" for k, v in metric.labels)
        if isinstance(metric, StreamingHistogram):
            if metric.count == 0:
                continue
            qs = {q: metric.percentile(q) for q in SUMMARY_QUANTILES}
            if metric.name.endswith("_seconds"):
                scale, unit = 1e6, "us"
            else:
                # Dimensionless histograms (batch_size, ...): raw values.
                scale, unit = 1.0, "  "
            histogram_rows.append(
                f"{label:44s} n={metric.count:<9d} "
                f"mean={metric.mean * scale:9.1f}{unit} "
                f"p50={qs[0.5] * scale:9.1f}{unit} "
                f"p95={qs[0.95] * scale:9.1f}{unit} "
                f"p99={qs[0.99] * scale:9.1f}{unit} "
                f"max={metric.maximum * scale:9.1f}{unit}"
            )
        elif isinstance(metric, Gauge):
            scalar_rows.append(
                f"{label:44s} {metric.value:>14g}  (high water {metric.high_water:g})"
            )
        elif isinstance(metric, Counter):
            scalar_rows.append(f"{label:44s} {metric.value:>14d}")
    if histogram_rows:
        sections.append("latency histograms\n" + "\n".join(histogram_rows))
    if scalar_rows:
        sections.append("counters & gauges\n" + "\n".join(scalar_rows))
    if tracer is not None and tracer.component_seconds:
        names = sorted(
            tracer.component_seconds, key=tracer.component_seconds.get, reverse=True
        )
        sections.append(
            bar_chart(
                names,
                [tracer.component_seconds[n] for n in names],
                title=f"time by component (s, {tracer.committed} requests traced)",
            )
        )
    return "\n\n".join(sections) if sections else "(no metrics recorded)"
